//! Pass 2a: intra-procedural dataflow over the [`crate::parse`] event
//! stream. For each function this produces [`FnFacts`]: which locks it
//! acquires (and what was already held), which blocking calls it makes,
//! every outgoing call edge with the guards live at the call, plus the
//! raw material for the determinism and growth rules. The global pieces
//! (call-graph fixpoints, cycle detection) live in [`crate::callgraph`].
//!
//! Guard tracking is scope-based and deliberately conservative in the
//! safe direction for each rule:
//!
//! - a `let g = m.lock();` (optionally chained through guard-preserving
//!   methods like `unwrap`) binds a guard that lives until `drop(g)` or
//!   the end of its block;
//! - `m.lock().method(…)` creates a temporary guard that lives to the end
//!   of the statement — or to the end of the enclosing `match` when it is
//!   the scrutinee, which is exactly the real-Rust footgun;
//! - guards moved into calls are assumed still live (over-approximation);
//! - a closure body is treated as executing at its definition site.

use crate::config::Config;
use crate::lexer::{Tok, Token};
use crate::model::FileModel;
use crate::parse::{self, Call, Event, FnIr};
use std::collections::BTreeSet;

/// A lock that was live at some program point: identity plus where it was
/// acquired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeldLock {
    /// `crate::field` identity (last receiver segment, crate-qualified).
    pub lock: String,
    pub line: u32,
}

/// One lock acquisition site.
#[derive(Debug, Clone)]
pub struct LockAcq {
    pub lock: String,
    pub line: u32,
    /// Locks already held when this one was acquired (order edges).
    pub held: Vec<HeldLock>,
}

/// One blocking call site.
#[derive(Debug, Clone)]
pub struct BlockingUse {
    /// Display name (`recv_timeout`, `thread::sleep`, …).
    pub callee: String,
    pub line: u32,
    /// Guards live across the call, after the condvar-argument exemption.
    pub held: Vec<HeldLock>,
}

/// One outgoing call edge (for the workspace call graph).
#[derive(Debug, Clone)]
pub struct CallUse {
    pub callee: String,
    pub line: u32,
    pub held: Vec<HeldLock>,
}

/// Float accumulation (or unordered reduction) inside a parallel region.
#[derive(Debug, Clone)]
pub struct NondetFloat {
    /// The accumulator variable, or the offending combinator name.
    pub what: String,
    pub line: u32,
    /// The `par_*` entry point that opened the region.
    pub par_method: String,
}

/// Hash-order iteration feeding an ordered sink.
#[derive(Debug, Clone)]
pub struct HashIter {
    /// The iterated binding/field name.
    pub source: String,
    pub line: u32,
    /// The sink that consumed the order (`push`, `writeln`, `collect`, …).
    pub sink: String,
}

/// A collection-growing call site.
#[derive(Debug, Clone)]
pub struct GrowSite {
    /// Display receiver (`outboxes`, `conns`, …).
    pub recv: String,
    pub method: String,
    pub line: u32,
}

/// Everything pass 2a learns about one function.
#[derive(Debug)]
pub struct FnFacts {
    pub name: String,
    pub line: u32,
    pub in_test: bool,
    pub acquisitions: Vec<LockAcq>,
    pub blocking: Vec<BlockingUse>,
    pub calls: Vec<CallUse>,
    pub nondet_floats: Vec<NondetFloat>,
    pub hash_iters: Vec<HashIter>,
    pub grow_sites: Vec<GrowSite>,
    /// True when the function shows any evidence of a capacity bound.
    pub has_growth_guard: bool,
}

/// Names in `file` whose declared type mentions `HashMap`/`HashSet`
/// (struct fields, params, ascribed lets) — hash-ordered sources.
pub fn hash_names_in(file: &FileModel) -> BTreeSet<String> {
    let toks = &file.lexed.tokens;
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        let (Some(Tok::Ident(name)), Some(Tok::Punct(':'))) =
            (toks.get(i).map(|t| &t.tok), toks.get(i + 1).map(|t| &t.tok))
        else {
            continue;
        };
        // `name: … HashMap …` up to the next item of punctuation that ends
        // a declaration — a shallow window is plenty for declared types
        for t in &toks[i + 2..(i + 10).min(toks.len())] {
            match &t.tok {
                Tok::Ident(t) if t == "HashMap" || t == "HashSet" => {
                    names.insert(name.clone());
                    break;
                }
                Tok::Punct(',' | ';' | ')' | '}' | '=') => break,
                _ => {}
            }
        }
    }
    names
}

/// Runs pass 2a on every function of `file`.
pub fn analyze_file(
    file: &FileModel,
    krate: &str,
    cfg: &Config,
    hash_names: &BTreeSet<String>,
) -> Vec<FnFacts> {
    parse::functions(file)
        .iter()
        .map(|f| analyze_fn(file, f, krate, cfg, hash_names))
        .collect()
}

/// A live guard during the walk.
#[derive(Debug)]
struct Guard {
    lock: String,
    line: u32,
    /// Binding name; `None` for statement temporaries.
    var: Option<String>,
    /// Scope depth at acquisition (persistent guards die when their scope
    /// closes).
    depth: u32,
    /// Temporaries die once the walk passes this token index.
    until: Option<usize>,
}

const ITER_METHODS: &[&str] = &["iter", "iter_mut", "into_iter", "keys", "values", "drain"];
const SHRINK_METHODS: &[&str] = &[
    "truncate", "retain", "pop", "pop_front", "drain", "remove", "split_off", "evict", "shed",
    "clear",
];

fn analyze_fn(
    file: &FileModel,
    f: &FnIr,
    krate: &str,
    cfg: &Config,
    hash_names: &BTreeSet<String>,
) -> FnFacts {
    let toks = &file.lexed.tokens;
    let mut facts = FnFacts {
        name: f.name.clone(),
        line: f.line,
        in_test: f.in_test,
        acquisitions: Vec::new(),
        blocking: Vec::new(),
        calls: Vec::new(),
        nondet_floats: Vec::new(),
        hash_iters: Vec::new(),
        grow_sites: Vec::new(),
        has_growth_guard: growth_guard_evidence(toks, f.body, cfg),
    };

    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: u32 = 0;
    // all `let` bindings seen so far: (var, tok-of-init-start, is_float)
    let mut lets: Vec<(String, usize, bool)> = Vec::new();
    let mut local_vars: BTreeSet<String> = BTreeSet::new();
    let mut hash_vars: BTreeSet<String> = hash_names.clone();
    for (p, ty) in &f.params {
        if ty.contains("HashMap") || ty.contains("HashSet") {
            hash_vars.insert(p.clone());
        } else if !ty.is_empty() {
            // a typed non-hash param shadows any same-named hash elsewhere
            hash_vars.remove(p);
        }
    }
    // open parallel regions: (start, end, par method name)
    let mut par_regions: Vec<(usize, usize, String)> = Vec::new();
    // the most recent let whose initializer we may still be inside
    let mut open_let: Option<parse::LetBind> = None;

    for ev in &f.events {
        let at = ev.tok();
        guards.retain(|g| g.until.is_none_or(|u| u >= at));
        match ev {
            Event::Open { .. } => depth += 1,
            Event::Close { .. } => {
                guards.retain(|g| g.var.is_none() || g.depth < depth);
                depth = depth.saturating_sub(1);
            }
            Event::Let(l) => {
                let is_float = l.ty.contains("f32")
                    || l.ty.contains("f64")
                    || range_has_float(toks, l.init);
                for v in &l.vars {
                    lets.push((v.clone(), l.init.0, is_float));
                    local_vars.insert(v.clone());
                }
                if l.ty.contains("HashMap")
                    || l.ty.contains("HashSet")
                    || range_has_ident(toks, l.init, &["HashMap", "HashSet"])
                {
                    for v in &l.vars {
                        hash_vars.insert(v.clone());
                    }
                } else {
                    // a local rebinding to something that is visibly not a
                    // hash container shadows a same-named hash declared
                    // elsewhere in the crate (the names are a crate-wide
                    // union, so this is what keeps e.g. a local `edges`
                    // array from aliasing a `edges: HashMap` in another
                    // file)
                    for v in &l.vars {
                        hash_vars.remove(v);
                    }
                }
                open_let = Some(l.clone());
            }
            Event::OpAssign(a) => {
                if let Some((start, _, par)) = par_regions
                    .iter()
                    .find(|(s, e, _)| a.tok > *s && a.tok < *e)
                    .cloned()
                {
                    // accumulating into a float declared before the
                    // parallel region = order-dependent result
                    let outer_float = lets
                        .iter()
                        .rev()
                        .find(|(v, _, _)| *v == a.var)
                        .is_some_and(|&(_, ltok, fl)| fl && ltok < start);
                    if outer_float {
                        facts.nondet_floats.push(NondetFloat {
                            what: a.var.clone(),
                            line: a.line,
                            par_method: par,
                        });
                    }
                }
            }
            Event::For(fi) => {
                let src = fi.source.last().cloned().unwrap_or_default();
                let iterates_hash = !src.is_empty()
                    && src != "self"
                    && hash_vars.contains(&src)
                    && fi.methods.iter().all(|m| !cfg.order_neutral.contains(m));
                if iterates_hash {
                    if let Some(sink) = sink_in_range(toks, fi.body, cfg) {
                        facts.hash_iters.push(HashIter {
                            source: src,
                            line: fi.line,
                            sink,
                        });
                    }
                }
            }
            Event::Call(c) => {
                if c.is_macro {
                    continue;
                }
                // parallel region entry
                if c.method.starts_with("par_") {
                    let end = stmt_end(toks, c.close, f.body.1);
                    par_regions.push((c.tok, end, c.method.clone()));
                    check_par_terminals(toks, c.close, (c.tok, end), &mut facts);
                }
                // guard release
                if c.method == "drop" && c.recv.is_empty() && c.qual.is_empty() {
                    guards.retain(|g| {
                        g.var.as_ref().is_none_or(|v| !c.args.contains(v))
                    });
                    continue;
                }
                // hash iteration via method chain
                if ITER_METHODS.contains(&c.method.as_str()) {
                    let src = c.recv.last().cloned().unwrap_or_default();
                    if !src.is_empty() && src != "()" && hash_vars.contains(&src) {
                        if let Some(sink) = chain_order_sink(toks, c.close, cfg) {
                            facts.hash_iters.push(HashIter {
                                source: src,
                                line: c.line,
                                sink,
                            });
                        }
                    }
                }
                // collection growth
                if cfg.grow_calls.contains(&c.method) && !c.recv.is_empty() {
                    let head = c.recv.first().map(String::as_str).unwrap_or("");
                    let is_local_builder = c.recv.len() == 1
                        && head != "()"
                        && head != "self"
                        && local_vars.contains(head);
                    if !is_local_builder {
                        facts.grow_sites.push(GrowSite {
                            recv: c.recv.join("."),
                            method: c.method.clone(),
                            line: c.line,
                        });
                    }
                }
                // lock acquisition?
                if let Some(lock) = lock_name(c, krate, cfg) {
                    let held: Vec<HeldLock> = guards
                        .iter()
                        .map(|g| HeldLock { lock: g.lock.clone(), line: g.line })
                        .collect();
                    facts.acquisitions.push(LockAcq {
                        lock: lock.clone(),
                        line: c.line,
                        held,
                    });
                    let bound = open_let
                        .as_ref()
                        .filter(|l| c.tok >= l.init.0 && c.tok < l.init.1)
                        .filter(|l| chain_reaches(toks, c.close, l.init.1, cfg))
                        .and_then(|l| l.vars.first().cloned());
                    if let Some(var) = bound {
                        guards.push(Guard {
                            lock,
                            line: c.line,
                            var: Some(var),
                            depth,
                            until: None,
                        });
                    } else {
                        let mut until = stmt_end(toks, c.close, f.body.1);
                        if let Some(ext) = c.match_extent {
                            until = until.max(ext);
                        }
                        guards.push(Guard {
                            lock,
                            line: c.line,
                            var: None,
                            depth,
                            until: Some(until),
                        });
                    }
                    continue;
                }
                // blocking?
                let qual_name = c
                    .qual
                    .last()
                    .map(|q| format!("{q}::{}", c.method))
                    .unwrap_or_default();
                let blocks = cfg.blocking_calls.contains(&c.method)
                    || cfg.blocking_calls.contains(&qual_name);
                // The condvar exemption applies to the direct blocking fact
                // AND the call edge: `cv.wait(guard)` releases the guard it
                // is handed, so that guard is not held across whatever the
                // callee name resolves to in the workspace graph either.
                let is_condvar_wait = cfg.condvar_waits.contains(&c.method);
                let held: Vec<HeldLock> = guards
                    .iter()
                    .filter(|g| {
                        !(is_condvar_wait
                            && g.var.as_ref().is_some_and(|v| c.args.contains(v)))
                    })
                    .map(|g| HeldLock { lock: g.lock.clone(), line: g.line })
                    .collect();
                if blocks {
                    facts.blocking.push(BlockingUse {
                        callee: if qual_name.is_empty() || !cfg.blocking_calls.contains(&qual_name)
                        {
                            c.method.clone()
                        } else {
                            qual_name
                        },
                        line: c.line,
                        held: held.clone(),
                    });
                }
                // call edge (for the global graph)
                facts.calls.push(CallUse {
                    callee: c.method.clone(),
                    line: c.line,
                    held,
                });
            }
        }
        // leaving the initializer closes the open let
        if let Some(l) = &open_let {
            if at >= l.init.1 {
                open_let = None;
            }
        }
    }
    facts
}

/// Lock identity of `c`, when it is an acquisition.
fn lock_name(c: &Call, krate: &str, cfg: &Config) -> Option<String> {
    if cfg.lock_methods.contains(&c.method) && c.args.is_empty() && !c.recv.is_empty() {
        let tail = c
            .recv
            .iter()
            .rev()
            .find(|s| *s != "self")
            .cloned()
            .unwrap_or_else(|| "self".into());
        if tail == "()" {
            // chained off an expression — identity unknown; still a guard,
            // but with a line-unique name so it can't create false cycles
            return Some(format!("{krate}::<expr@{}>", c.line));
        }
        return Some(format!("{krate}::{tail}"));
    }
    if cfg.lock_wrappers.contains(&c.method) && c.recv.is_empty() {
        let tail = c
            .arg0_path
            .iter()
            .rev()
            .find(|s| *s != "self")
            .cloned()
            .unwrap_or_else(|| format!("<expr@{}>", c.line));
        return Some(format!("{krate}::{tail}"));
    }
    None
}

/// True when the method chain starting after `close` runs — through
/// guard-preserving methods and `?` only — to `init_end` (so the whole
/// initializer tail is this chain and the binding receives the guard).
fn chain_reaches(toks: &[Token], close: usize, init_end: usize, cfg: &Config) -> bool {
    let mut k = close;
    loop {
        let next = k + 1;
        match toks.get(next).map(|t| &t.tok) {
            Some(Tok::Punct('?')) => k = next,
            Some(Tok::Punct('.')) => {
                let (Some(Tok::Ident(m)), Some(Tok::Punct('('))) = (
                    toks.get(next + 1).map(|t| &t.tok),
                    toks.get(next + 2).map(|t| &t.tok),
                ) else {
                    return false;
                };
                if !cfg.guard_preserving.contains(m) {
                    return false;
                }
                k = match_close_paren(toks, next + 2, init_end + 1);
            }
            _ => return next >= init_end,
        }
    }
}

fn match_close_paren(toks: &[Token], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < end.min(toks.len()) {
        match &toks[i].tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    open
}

/// Token index ending the statement whose call closes at `from` (a `)`):
/// the first `;` (or block-opening `{`) at relative bracket depth 0.
/// Scanning starts *after* `from`, so closure bodies inside a chained
/// `.for_each(|x| { … })` stay inside the statement (their `{` sits at
/// paren depth ≥ 1).
fn stmt_end(toks: &[Token], from: usize, fn_close: usize) -> usize {
    let mut depth = 0i32;
    let mut j = from + 1;
    while j < fn_close.min(toks.len()) {
        match &toks[j].tok {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Punct(';') if depth <= 0 => return j,
            Tok::Punct('{') if depth <= 0 => return j,
            Tok::Punct('}') if depth < 0 => return j,
            _ => {}
        }
        j += 1;
    }
    fn_close
}

fn range_has_float(toks: &[Token], range: (usize, usize)) -> bool {
    toks[range.0.min(toks.len())..range.1.min(toks.len())]
        .iter()
        .any(|t| matches!(&t.tok, Tok::Num(n) if n.contains('.')))
}

fn range_has_ident(toks: &[Token], range: (usize, usize), names: &[&str]) -> bool {
    toks[range.0.min(toks.len())..range.1.min(toks.len())]
        .iter()
        .any(|t| matches!(&t.tok, Tok::Ident(s) if names.contains(&s.as_str())))
}

/// Order-losing combinators (`reduce`, `fold`, float `sum`) chained
/// *directly* on a parallel iterator. Sequential folds inside the worker
/// closure are chunk-local and deterministic; it is the cross-chunk
/// combine order that must go through `cdat::reduce`, so only the par
/// chain itself is walked here.
fn check_par_terminals(toks: &[Token], close: usize, region: (usize, usize), facts: &mut FnFacts) {
    let floats = range_has_float(toks, region) || range_has_ident(toks, region, &["f32", "f64"]);
    if !floats {
        return;
    }
    let mut k = close;
    loop {
        let next = k + 1;
        match toks.get(next).map(|t| &t.tok) {
            Some(Tok::Punct('?')) => k = next,
            Some(Tok::Punct('.')) => {
                let Some(Tok::Ident(m)) = toks.get(next + 1).map(|t| &t.tok) else { return };
                if m == "reduce" || m == "fold" || m == "sum" {
                    facts.nondet_floats.push(NondetFloat {
                        what: m.clone(),
                        line: toks[next + 1].line,
                        par_method: "par chain".into(),
                    });
                    return;
                }
                if m == "for_each" {
                    return; // closure accumulation is handled via OpAssign
                }
                let open = next + 2;
                if matches!(toks.get(open).map(|t| &t.tok), Some(Tok::Punct('('))) {
                    k = match_close_paren(toks, open, toks.len());
                } else if matches!(toks.get(open).map(|t| &t.tok), Some(Tok::Punct(':'))) {
                    // turbofish: `sum::<f64>()` was already matched above;
                    // other turbofished adapters — skip to their call
                    let mut j = open;
                    while j < toks.len() && !matches!(toks[j].tok, Tok::Punct('(')) {
                        j += 1;
                    }
                    k = match_close_paren(toks, j, toks.len());
                } else {
                    k = next + 1;
                }
            }
            _ => return,
        }
    }
}

/// First ordered sink called inside `range` (a loop body), if any.
fn sink_in_range(toks: &[Token], range: (usize, usize), cfg: &Config) -> Option<String> {
    let mut j = range.0;
    while j < range.1.min(toks.len()) {
        if let Tok::Ident(m) = &toks[j].tok {
            let called = matches!(toks.get(j + 1).map(|t| &t.tok), Some(Tok::Punct('(')))
                || (matches!(toks.get(j + 1).map(|t| &t.tok), Some(Tok::Punct('!')))
                    && matches!(toks.get(j + 2).map(|t| &t.tok), Some(Tok::Punct('('))));
            if called
                && (cfg.ordered_sinks.contains(m)
                    || matches!(m.as_str(), "write" | "writeln" | "format"))
            {
                return Some(m.clone());
            }
        }
        j += 1;
    }
    None
}

/// Walks the method chain after `close`; returns the first order-reading
/// sink, stopping early at order-neutral terminals.
fn chain_order_sink(toks: &[Token], close: usize, cfg: &Config) -> Option<String> {
    let mut k = close;
    loop {
        let next = k + 1;
        match toks.get(next).map(|t| &t.tok) {
            Some(Tok::Punct('?')) => k = next,
            Some(Tok::Punct('.')) => {
                let Some(Tok::Ident(m)) = toks.get(next + 1).map(|t| &t.tok) else {
                    return None;
                };
                if cfg.order_neutral.contains(m) {
                    return None;
                }
                if m == "collect" {
                    // ordered only when collecting into a sequence
                    for t in &toks[next + 2..(next + 12).min(toks.len())] {
                        match &t.tok {
                            Tok::Ident(t) if t == "Vec" || t == "String" => {
                                return Some("collect".into());
                            }
                            Tok::Ident(t)
                                if t.starts_with("BTree")
                                    || t == "HashMap"
                                    || t == "HashSet" =>
                            {
                                return None;
                            }
                            Tok::Punct('(') => break,
                            _ => {}
                        }
                    }
                    return None;
                }
                if cfg.ordered_sinks.contains(m) {
                    return Some(m.clone());
                }
                if m == "for_each" || m == "fold" {
                    // order flows into the closure — sink if the closure
                    // itself writes ordered output
                    let open = next + 2;
                    let end = match_close_paren(toks, open, toks.len());
                    return sink_in_range(toks, (open, end), cfg)
                        .map(|s| format!("{m}({s})"));
                }
                // some other adapter (map/filter/cloned/…): keep walking
                let open = next + 2;
                if matches!(toks.get(open).map(|t| &t.tok), Some(Tok::Punct('('))) {
                    k = match_close_paren(toks, open, toks.len());
                } else {
                    k = next + 1;
                }
            }
            _ => return None,
        }
    }
}

/// Any evidence of a capacity bound in the function body.
fn growth_guard_evidence(toks: &[Token], body: (usize, usize), cfg: &Config) -> bool {
    let (open, close) = body;
    for j in open..close.min(toks.len()) {
        if let Tok::Ident(s) = &toks[j].tok {
            let lower = s.to_ascii_lowercase();
            if cfg.growth_guards.iter().any(|m| lower.contains(m.as_str())) {
                return true;
            }
            if SHRINK_METHODS.contains(&s.as_str())
                && matches!(toks.get(j + 1).map(|t| &t.tok), Some(Tok::Punct('(')))
            {
                return true;
            }
            if s == "len" {
                // `x.len() <|>=…` comparison nearby
                for t in &toks[(j + 1)..(j + 6).min(toks.len())] {
                    if matches!(t.tok, Tok::Punct('<' | '>')) {
                        return true;
                    }
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn facts_of(src: &str) -> Vec<FnFacts> {
        let file = FileModel::parse(PathBuf::from("mem.rs"), src);
        let cfg = Config::defaults(PathBuf::from("."));
        let names = hash_names_in(&file);
        analyze_file(&file, "t", &cfg, &names)
    }

    #[test]
    fn guard_held_across_blocking_is_seen() {
        let src = "\
fn bad(&self) {
    let rx = self.work_rx.lock();
    let next = rx.recv_timeout(t);
}
fn good(&self) {
    let next = { let rx = self.work_rx.lock(); rx.try_recv() };
    std::thread::sleep(t);
}
";
        let fs = facts_of(src);
        let bad = &fs[0];
        assert_eq!(bad.blocking.len(), 1);
        assert_eq!(bad.blocking[0].held.len(), 1);
        assert_eq!(bad.blocking[0].held[0].lock, "t::work_rx");
        let good = &fs[1];
        let sleep = good.blocking.iter().find(|b| b.callee == "sleep").expect("sleep");
        assert!(sleep.held.is_empty(), "guard died with its block");
    }

    #[test]
    fn condvar_wait_exempts_its_own_guard_only() {
        let src = "\
fn wait(&self) {
    let mut done = self.done.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    while !*done {
        done = self.cv.wait(done).unwrap_or_else(std::sync::PoisonError::into_inner);
    }
}
fn bad(&self) {
    let other = self.state.lock();
    let mut done = self.done.lock();
    done = self.cv.wait(done);
}
";
        let fs = facts_of(src);
        let ok = &fs[0];
        let w = ok.blocking.iter().find(|b| b.callee == "wait").expect("wait");
        assert!(w.held.is_empty(), "the waited guard is released by the wait");
        let bad = &fs[1];
        let w = bad.blocking.iter().find(|b| b.callee == "wait").expect("wait");
        assert_eq!(w.held.len(), 1);
        assert_eq!(w.held[0].lock, "t::state");
    }

    #[test]
    fn nested_acquisition_records_order_edges() {
        let src = "\
fn ab(&self) {
    let a = self.alpha.lock();
    let b = self.beta.lock();
    drop(b);
    drop(a);
}
";
        let fs = facts_of(src);
        let acqs = &fs[0].acquisitions;
        assert_eq!(acqs.len(), 2);
        assert!(acqs[0].held.is_empty());
        assert_eq!(acqs[1].held.len(), 1);
        assert_eq!(acqs[1].held[0].lock, "t::alpha");
    }

    #[test]
    fn transient_guard_lives_to_statement_end_and_match_extent() {
        let src = "\
fn transient(&self) {
    self.mux.lock().submit(job);
    std::thread::sleep(t);
}
fn scrutinee(&self) {
    match self.mux.lock().open(s) {
        Ok(_) => std::thread::sleep(t),
        Err(_) => {}
    }
}
";
        let fs = facts_of(src);
        let sleep = fs[0].blocking.iter().find(|b| b.callee == "sleep").expect("sleep");
        assert!(sleep.held.is_empty(), "temporary dropped at `;`");
        let sleep2 = fs[1].blocking.iter().find(|b| b.callee == "sleep").expect("sleep");
        assert_eq!(sleep2.held.len(), 1, "scrutinee temp lives for the match");
    }

    #[test]
    fn wrapper_locks_and_io_read_are_distinguished() {
        let src = "\
fn wrapped(&self) {
    let mut inflight = std_lock(&self.inflight);
    inflight.remove(&key);
}
fn io(&self, f: &mut File) {
    f.read(&mut buf);
}
";
        let fs = facts_of(src);
        assert_eq!(fs[0].acquisitions.len(), 1);
        assert_eq!(fs[0].acquisitions[0].lock, "t::inflight");
        assert!(fs[1].acquisitions.is_empty(), "read(buf) is I/O, not RwLock");
    }

    #[test]
    fn float_accumulation_in_par_region_is_flagged_only_for_captures() {
        let src = "\
fn bad(xs: &mut [f64]) {
    let mut total = 0.0;
    xs.par_iter_mut().for_each(|x| { total += *x; });
}
fn good(xs: &mut [f64]) {
    xs.par_chunks_mut(8).for_each(|c| {
        let mut acc = 0.0;
        for v in c.iter() { acc += *v; }
    });
}
";
        let fs = facts_of(src);
        assert_eq!(fs[0].nondet_floats.len(), 1);
        assert_eq!(fs[0].nondet_floats[0].what, "total");
        assert!(fs[1].nondet_floats.is_empty(), "chunk-local acc is fine");
    }

    #[test]
    fn hash_iteration_into_ordered_sink() {
        let src = "\
struct S { entries: HashMap<u64, u32> }
fn bad(&self, out: &mut Vec<u64>) {
    for (k, _) in self.entries.iter() {
        out.push(*k);
    }
}
fn neutral(&self) -> Option<u64> {
    self.entries.iter().map(|(k, _)| *k).min()
}
fn chain(&self) -> Vec<u64> {
    self.entries.keys().cloned().collect::<Vec<_>>()
}
";
        let fs = facts_of(src);
        assert_eq!(fs[0].hash_iters.len(), 1);
        assert_eq!(fs[0].hash_iters[0].sink, "push");
        assert!(fs[1].hash_iters.is_empty(), "min() neutralizes order");
        assert_eq!(fs[2].hash_iters.len(), 1);
        assert_eq!(fs[2].hash_iters[0].sink, "collect");
    }

    #[test]
    fn growth_sites_and_guards() {
        let src = "\
fn unbounded(&mut self, x: u32) {
    self.backlog.push(x);
}
fn bounded(&mut self, x: u32) {
    if self.backlog.len() < self.max_backlog {
        self.backlog.push(x);
    }
}
fn local_builder(&self) -> Vec<u32> {
    let mut v = Vec::new();
    v.push(1);
    v
}
";
        let fs = facts_of(src);
        assert_eq!(fs[0].grow_sites.len(), 1);
        assert!(!fs[0].has_growth_guard);
        assert!(fs[1].has_growth_guard);
        assert!(fs[2].grow_sites.is_empty(), "local builders are exempt");
    }
}
