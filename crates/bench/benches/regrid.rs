//! Plan/apply regridding bench: cold (plan + apply every timestep) versus
//! warm (plan once from the cache, sparse-apply per timestep), plus thread
//! scaling of the parallel apply. Emits `BENCH_regrid.json`.
//!
//! The design claim under test: amortising the stencil/overlap search into
//! a cached CSR weight matrix makes steady-state regridding (animation
//! frames, repeated pipeline runs) at least 5× cheaper per timestep than
//! re-deriving the weights each call.
//!
//! `REGRID_BENCH_SMOKE=1` shrinks reps for CI smoke runs.

use cdat::plan_cache;
use cdat::regrid::regrid;
use cdat::regrid_plan::{RegridMethod, RegridPlan};
use cdms::synth::SynthesisSpec;
use cdms::{RectGrid, Variable};
use std::time::Instant;

const N_TIMES: usize = 8;

fn smoke() -> bool {
    std::env::var("REGRID_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false)
}

/// Best observed time — the standard interference-resistant estimator on
/// a shared single-core box, where medians of sub-ms timings can swing 2×.
fn best(xs: Vec<f64>) -> f64 {
    xs.into_iter().fold(f64::INFINITY, f64::min)
}

/// Per-timestep cold latency: every timestep re-plans and applies, exactly
/// what a per-call regridder pays. Best of `reps` runs, ms.
fn cold_ms_per_step(var: &Variable, target: &RectGrid, method: RegridMethod, reps: usize) -> f64 {
    let (lat, lon) = (&var.axes[var.rank() - 2], &var.axes[var.rank() - 1]);
    let slabs: Vec<Variable> =
        (0..N_TIMES).map(|t| var.time_slab(t).expect("slab")).collect();
    let mut runs = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        for slab in &slabs {
            let plan = RegridPlan::build(method, lat, lon, target).expect("plan");
            std::hint::black_box(plan.apply(slab).expect("apply"));
        }
        runs.push(t0.elapsed().as_secs_f64() * 1e3 / N_TIMES as f64);
    }
    best(runs)
}

/// Per-timestep warm latency: the plan is built once (cache hit in steady
/// state) and only the sparse apply runs per timestep.
fn warm_ms_per_step(var: &Variable, target: &RectGrid, method: RegridMethod, reps: usize) -> f64 {
    let (lat, lon) = (&var.axes[var.rank() - 2], &var.axes[var.rank() - 1]);
    let plan = RegridPlan::build(method, lat, lon, target).expect("plan");
    let slabs: Vec<Variable> =
        (0..N_TIMES).map(|t| var.time_slab(t).expect("slab")).collect();
    let mut runs = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        for slab in &slabs {
            std::hint::black_box(plan.apply(slab).expect("apply"));
        }
        runs.push(t0.elapsed().as_secs_f64() * 1e3 / N_TIMES as f64);
    }
    best(runs)
}

/// Whole-variable apply (all timesteps in one parallel pass) under a given
/// worker count, ms. Uses RAYON_NUM_THREADS, which the vendored rayon
/// honours at dispatch time; also returns the pool size the dispatcher
/// actually resolved, so single-core boxes (effective pool of 1 regardless
/// of the request) are visible in the artifact instead of looking like a
/// scaling failure. Any externally-set RAYON_NUM_THREADS is restored.
fn scaling_ms(var: &Variable, target: &RectGrid, threads: usize, reps: usize) -> (f64, usize) {
    let (lat, lon) = (&var.axes[var.rank() - 2], &var.axes[var.rank() - 1]);
    let plan = RegridPlan::build(RegridMethod::Conservative, lat, lon, target).expect("plan");
    let prev = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
    let effective = rayon::current_num_threads();
    let mut runs = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(plan.apply(var).expect("apply"));
        runs.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    match prev {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    (best(runs), effective)
}

fn main() {
    let reps = if smoke() { 6 } else { 15 };
    let ds = SynthesisSpec::new(N_TIMES, 6, 24, 48).seed(2012).build();
    let ta = ds.variable("ta").expect("ta");
    let tos = ds.variable("tos").expect("tos");
    // Upsample 24x48 -> 64x128: the shape hyperwall panels ask for.
    let target = RectGrid::uniform(64, 128).expect("grid");

    let bi_cold = cold_ms_per_step(tos, &target, RegridMethod::Bilinear, reps);
    let bi_warm = warm_ms_per_step(tos, &target, RegridMethod::Bilinear, reps);
    let co_cold = cold_ms_per_step(tos, &target, RegridMethod::Conservative, reps);
    let co_warm = warm_ms_per_step(tos, &target, RegridMethod::Conservative, reps);

    // Thread scaling of one whole-variable parallel apply (time*lev planes).
    // An externally-set RAYON_NUM_THREADS wins over hardware detection, so
    // CI can pin the wide row; `scaling_ms` reports what the pool resolved.
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let wide = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(hw);
    // Full sweep at 1/2/4/8 requested workers (the BENCH_render.json
    // convention), plus the legacy one-thread / wide rows derived from it.
    let sweep: Vec<(usize, f64, usize)> = [1usize, 2, 4, 8]
        .iter()
        .map(|&t| {
            let (ms, pool) = scaling_ms(ta, &target, t, reps);
            (t, ms, pool)
        })
        .collect();
    let (t1, pool1) = sweep
        .first()
        .map(|&(_, ms, pool)| (ms, pool))
        .unwrap_or((f64::NAN, 1));
    let (tn, pool_n) = scaling_ms(ta, &target, wide, reps);
    let sweep_json = sweep
        .iter()
        .map(|(t, ms, pool)| {
            format!(
                "    {{ \"requested\": {t}, \"effective_pool\": {pool}, \
                 \"apply_ms\": {ms:.4} }}"
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    // Cache counters over a realistic reuse pattern: two variables, same
    // grid pair, through the public wrapper API.
    plan_cache::clear_global();
    regrid(tos, &target, RegridMethod::Conservative).expect("regrid tos");
    regrid(ta, &target, RegridMethod::Conservative).expect("regrid ta");
    let stats = plan_cache::global_stats();

    let speedup_bi = bi_cold / bi_warm;
    let speedup_co = co_cold / co_warm;
    let headline = speedup_bi.max(speedup_co);
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"regrid\",\n",
            "  \"n_times\": {},\n",
            "  \"reps\": {},\n",
            "  \"src_grid\": \"24x48\",\n",
            "  \"dst_grid\": \"64x128\",\n",
            "  \"bilinear_cold_ms_per_step\": {:.4},\n",
            "  \"bilinear_warm_ms_per_step\": {:.4},\n",
            "  \"bilinear_warm_over_cold_speedup\": {:.2},\n",
            "  \"conservative_cold_ms_per_step\": {:.4},\n",
            "  \"conservative_warm_ms_per_step\": {:.4},\n",
            "  \"conservative_warm_over_cold_speedup\": {:.2},\n",
            "  \"warm_over_cold_speedup\": {:.2},\n",
            "  \"apply_one_thread_ms\": {:.4},\n",
            "  \"apply_all_threads_ms\": {:.4},\n",
            "  \"hardware_threads\": {},\n",
            "  \"effective_pool_one_thread\": {},\n",
            "  \"effective_pool_all_threads\": {},\n",
            "  \"requested_threads\": {},\n",
            "  \"thread_sweep\": [\n{}\n  ],\n",
            "  \"cache_hits\": {},\n",
            "  \"cache_misses\": {}\n",
            "}}\n"
        ),
        N_TIMES,
        reps,
        bi_cold,
        bi_warm,
        speedup_bi,
        co_cold,
        co_warm,
        speedup_co,
        headline,
        t1,
        tn,
        hw,
        pool1,
        pool_n,
        wide,
        sweep_json,
        stats.hits,
        stats.misses
    );
    // workspace root, independent of the bench binary's cwd
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_regrid.json");
    std::fs::write(path, &json).expect("write artifact");
    println!("{json}");
    println!(
        "bench regrid: warm apply {headline:.1}x faster than cold plan+apply \
         (bilinear {speedup_bi:.1}x, conservative {speedup_co:.1}x)"
    );
    assert!(
        headline >= 5.0,
        "warm-cache apply must be >= 5x faster than cold plan+apply, got {headline:.2}x"
    );
}
