//! E3 / Fig 3: isosurface extraction and rendering — scaling with grid
//! size, colored-by-second-variable cost, and watertightness overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dv3d_bench::bench_dataset_sized;
use dv3d::translation::{translate_scalar, TranslationOptions};
use rvtk::filters::{isosurface, isosurface_colored};

fn extraction_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_isosurface_extraction");
    group.sample_size(10);
    for (nlat, nlon) in [(16usize, 32usize), (24, 48), (36, 72)] {
        let ds = bench_dataset_sized(nlat, nlon);
        let ta = ds.variable("ta").unwrap().time_slab(0).unwrap();
        let img = translate_scalar(&ta, &TranslationOptions::default()).unwrap();
        let (lo, hi) = img.scalar_range().unwrap();
        let iso = (lo + hi) / 2.0;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nlat}x{nlon}")),
            &img,
            |b, img| b.iter(|| isosurface(img, iso).unwrap()),
        );
    }
    group.finish();
}

fn colored_vs_plain(c: &mut Criterion) {
    let ds = bench_dataset_sized(24, 48);
    let ta = ds.variable("ta").unwrap().time_slab(0).unwrap();
    let hus = ds.variable("hus").unwrap().time_slab(0).unwrap();
    let opts = TranslationOptions::default();
    let ta_img = translate_scalar(&ta, &opts).unwrap();
    let hus_img = translate_scalar(&hus, &opts).unwrap();
    let (lo, hi) = ta_img.scalar_range().unwrap();
    let iso = (lo + hi) / 2.0;

    let mut group = c.benchmark_group("fig3_isosurface_coloring");
    group.sample_size(10);
    group.bench_function("plain", |b| b.iter(|| isosurface(&ta_img, iso).unwrap()));
    group.bench_function("colored_by_hus", |b| {
        b.iter(|| isosurface_colored(&ta_img, iso, &hus_img).unwrap())
    });
    group.finish();
}

fn full_plot_render(c: &mut Criterion) {
    use dv3d::cell::Dv3dCell;
    use dv3d::plots::PlotSpec;
    let ds = bench_dataset_sized(24, 48);
    let ta = ds.variable("ta").unwrap().time_slab(0).unwrap();
    let img = translate_scalar(&ta, &TranslationOptions::default()).unwrap();
    let mut cell = Dv3dCell::try_new("iso", PlotSpec::isosurface(img)).unwrap();
    cell.render(96, 72).unwrap();
    let mut group = c.benchmark_group("fig3_isosurface_cell_render");
    group.sample_size(10);
    group.bench_function("96x72", |b| b.iter(|| cell.render(96, 72).unwrap()));
    group.finish();
}

criterion_group!(benches, extraction_scaling, colored_vs_plain, full_plot_render);
criterion_main!(benches);
