//! E6 / §III.F: provenance costs — per-action recording overhead,
//! materialization vs tree depth, serialization, and the executor's
//! result-cache ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dv3d::modules::prebuilt_plot_workflow;
use vistrails::executor::Executor;
use vistrails::module::ModuleRegistry;
use vistrails::provenance::{Action, Vistrail};
use vistrails::value::ParamValue;

fn deep_vistrail(depth: usize) -> (Vistrail, u64) {
    let mut vt = Vistrail::new("deep");
    let mut head = vt
        .add_action(Vistrail::ROOT, Action::AddModule { id: 1, type_name: "m".into() })
        .unwrap();
    for i in 0..depth {
        head = vt
            .add_action(
                head,
                Action::SetParameter {
                    module: 1,
                    name: format!("p{}", i % 8),
                    value: ParamValue::Int(i as i64),
                },
            )
            .unwrap();
    }
    (vt, head)
}

fn action_recording(c: &mut Criterion) {
    let mut group = c.benchmark_group("provenance_record");
    group.sample_size(10);
    for depth in [10usize, 100, 400] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            b.iter(|| deep_vistrail(d))
        });
    }
    group.finish();
}

fn materialize_vs_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("provenance_materialize");
    group.sample_size(10);
    for depth in [10usize, 100, 400] {
        let (vt, head) = deep_vistrail(depth);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| vt.materialize(head).unwrap())
        });
    }
    group.finish();
}

fn serialization(c: &mut Criterion) {
    let (vt, _) = deep_vistrail(200);
    let json = vt.to_json().unwrap();
    let mut group = c.benchmark_group("provenance_serde");
    group.sample_size(10);
    group.bench_function("to_json_200", |b| b.iter(|| vt.to_json().unwrap()));
    group.bench_function("from_json_200", |b| b.iter(|| Vistrail::from_json(&json).unwrap()));
    group.finish();
}

fn executor_cache_ablation(c: &mut Criterion) {
    let wf = prebuilt_plot_workflow("slicer", "ta", (1, 3, 12, 24)).unwrap();
    let pipeline = wf.vistrail.materialize(wf.version).unwrap();
    let registry = {
        let mut r = ModuleRegistry::new();
        dv3d::modules::register_all(&mut r);
        r
    };
    let mut group = c.benchmark_group("executor_cache");
    group.sample_size(10);
    group.bench_function("caching_on_warm", |b| {
        let mut exec = Executor::new(registry.clone());
        exec.execute(&pipeline).unwrap(); // warm
        b.iter(|| exec.execute(&pipeline).unwrap())
    });
    group.bench_function("caching_off", |b| {
        let mut exec = Executor::new(registry.clone());
        exec.caching_enabled = false;
        b.iter(|| exec.execute(&pipeline).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    action_recording,
    materialize_vs_depth,
    serialization,
    executor_cache_ablation
);
criterion_main!(benches);
