//! `.ncr` v1 vs v2 I/O bench: what does the checksummed, sectioned format
//! cost over the legacy unchecked encoding? Emits `BENCH_ncr_io.json`.
//!
//! The design claim under test: on the end-to-end storage path — atomic
//! file write (temp + fsync + read-back verify + rename) plus file read —
//! the v2 section checksums add **< 15%** to a round trip on a
//! representative dataset. Both versions go through the same crash-safe
//! write protocol, so the delta isolates the format itself: CRC32C over
//! every section payload on encode and again on decode (slicing-by-16,
//! three interleaved streams — see `cdms::storage::crc32c`).
//!
//! In-memory decode is reported for visibility but not asserted: a
//! pure-compute comparison pits one table-driven CRC pass against one
//! parse pass and is a property of the CPU, not of the storage design
//! the paper's pipeline actually runs on. In-memory **encode** IS
//! asserted (< 25% over v1): the v2 encoder frames sections in place
//! into one exactly-reserved buffer, so its only intrinsic extra work
//! over v1 is the CRC pass itself — a regression here means per-section
//! temporaries or reallocation crept back in.
//!
//! `NCR_IO_BENCH_SMOKE=1` shrinks reps and the dataset for CI smoke runs.

use cdms::format;
use cdms::synth::SynthesisSpec;
use cdms::Dataset;
use std::path::Path;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var("NCR_IO_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false)
}

/// One timed call, in milliseconds. Minima over interleaved reps are the
/// interference-resistant estimator on a shared single-core box.
fn once_ms<T>(mut f: impl FnMut() -> T) -> f64 {
    let t0 = Instant::now();
    std::hint::black_box(f());
    t0.elapsed().as_secs_f64() * 1e3
}

/// Best-of-`reps` atomic write + read for BOTH versions, interleaved
/// rep-by-rep so load drift on a shared box hits v1 and v2 equally —
/// back-to-back blocks would let one version soak up a quiet (or busy)
/// spell and skew the ratio.
fn file_roundtrips_ms(reps: usize, dir: &Path, ds: &Dataset) -> (f64, f64, f64, f64) {
    let p1 = dir.join("v1.ncr");
    let p2 = dir.join("v2.ncr");
    let (mut w1, mut w2, mut r1, mut r2) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        w1 = w1.min(once_ms(|| format::write_dataset_v1(ds, &p1).expect("v1 write")));
        w2 = w2.min(once_ms(|| format::write_dataset(ds, &p2).expect("v2 write")));
        r1 = r1.min(once_ms(|| format::read_dataset(&p1).expect("v1 read")));
        r2 = r2.min(once_ms(|| format::read_dataset(&p2).expect("v2 read")));
    }
    (w1, w2, r1, r2)
}

fn mb(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn main() {
    let (reps, spec) = if smoke() {
        (6, SynthesisSpec::new(4, 2, 24, 48).seed(77))
    } else {
        (15, SynthesisSpec::new(12, 4, 64, 128).seed(77))
    };
    let ds: Dataset = spec.build();

    let v1 = format::to_bytes_v1(&ds);
    let v2 = format::to_bytes(&ds);
    assert!(format::from_bytes(&v1).is_ok() && format::from_bytes(&v2).is_ok());

    // In-memory encode/decode: format compute cost only (reported, not
    // asserted — see module doc). Interleaved for the same reason as the
    // file path below.
    let (mut enc_v1, mut enc_v2, mut dec_v1, mut dec_v2) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        enc_v1 = enc_v1.min(once_ms(|| format::to_bytes_v1(&ds)));
        enc_v2 = enc_v2.min(once_ms(|| format::to_bytes(&ds)));
        dec_v1 = dec_v1.min(once_ms(|| format::from_bytes(&v1).expect("v1 decode")));
        dec_v2 = dec_v2.min(once_ms(|| format::from_bytes(&v2).expect("v2 decode")));
    }

    // End-to-end storage path, identical atomic protocol for both versions.
    let dir = std::env::temp_dir().join(format!("ncr_io_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench dir");
    let (w1, w2, r1, r2) = file_roundtrips_ms(reps, &dir, &ds);
    std::fs::remove_dir_all(&dir).ok();

    let write_overhead = (w2 / w1 - 1.0) * 100.0;
    let read_overhead = (r2 / r1 - 1.0) * 100.0;
    let roundtrip_overhead = ((w2 + r2) / (w1 + r1) - 1.0) * 100.0;
    let enc_overhead = (enc_v2 / enc_v1 - 1.0) * 100.0;
    let dec_overhead = (dec_v2 / dec_v1 - 1.0) * 100.0;
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"ncr_io\",\n",
            "  \"reps\": {},\n",
            "  \"v1_bytes\": {},\n",
            "  \"v2_bytes\": {},\n",
            "  \"file_write_v1_ms\": {:.4},\n",
            "  \"file_write_v2_ms\": {:.4},\n",
            "  \"file_read_v1_ms\": {:.4},\n",
            "  \"file_read_v2_ms\": {:.4},\n",
            "  \"file_write_v2_mb_per_s\": {:.1},\n",
            "  \"file_read_v2_mb_per_s\": {:.1},\n",
            "  \"write_overhead_pct\": {:.2},\n",
            "  \"read_overhead_pct\": {:.2},\n",
            "  \"checksum_overhead_pct\": {:.2},\n",
            "  \"encode_v1_ms\": {:.4},\n",
            "  \"encode_v2_ms\": {:.4},\n",
            "  \"decode_v1_ms\": {:.4},\n",
            "  \"decode_v2_ms\": {:.4},\n",
            "  \"encode_overhead_pct\": {:.2},\n",
            "  \"decode_overhead_pct\": {:.2}\n",
            "}}\n"
        ),
        reps,
        v1.len(),
        v2.len(),
        w1,
        w2,
        r1,
        r2,
        mb(v2.len()) / (w2 / 1e3),
        mb(v2.len()) / (r2 / 1e3),
        write_overhead,
        read_overhead,
        roundtrip_overhead,
        enc_v1,
        enc_v2,
        dec_v1,
        dec_v2,
        enc_overhead,
        dec_overhead,
    );
    // workspace root, independent of the bench binary's cwd
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ncr_io.json");
    std::fs::write(path, &json).expect("write artifact");
    println!("{json}");
    println!(
        "bench ncr_io: v2 round-trip checksum overhead {roundtrip_overhead:.1}% \
         (write {write_overhead:.1}%, read {read_overhead:.1}%; \
         in-memory encode {enc_overhead:.1}%, decode {dec_overhead:.1}%)"
    );
    assert!(
        roundtrip_overhead < 15.0,
        "v2 checksumming must cost < 15% on a storage round trip, got \
         {roundtrip_overhead:.2}% (write {write_overhead:.2}%, read {read_overhead:.2}%)"
    );
    assert!(
        enc_overhead < 25.0,
        "v2 in-place encode must cost < 25% over v1, got {enc_overhead:.2}% \
         (v1 {enc_v1:.4} ms, v2 {enc_v2:.4} ms)"
    );
}
