//! E8 / §III.D: 4D animation throughput — frames/sec stepping a plot
//! through time, per plot type.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dv3d::animation::AnimationController;
use dv3d::cell::Dv3dCell;
use dv3d::plots::PlotSpec;
use dv3d::translation::{translate_scalar, TranslationOptions};
use dv3d_bench::bench_dataset;

fn animation_loop(c: &mut Criterion) {
    let ds = bench_dataset();
    let pr = ds.variable("pr").unwrap();
    let opts = TranslationOptions::default();
    let first = translate_scalar(&pr.time_slab(0).unwrap(), &opts).unwrap();
    let n_frames = pr.n_times() as u64;

    let mut group = c.benchmark_group("fig_animation");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n_frames));
    for (name, spec) in [
        ("slicer", PlotSpec::slicer(first.clone())),
        ("volume", PlotSpec::volume(first.clone())),
    ] {
        let mut anim = AnimationController::from_variable(pr, &opts).unwrap();
        let mut cell = Dv3dCell::try_new(name, spec).unwrap();
        cell.show_colorbar = false;
        cell.show_labels = false;
        cell.render(96, 72).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| anim.render_loop(&mut cell, 96, 72).unwrap())
        });
    }
    group.finish();
}

fn frame_step_only(c: &mut Criterion) {
    // just the data swap + state rescale, no rendering
    let ds = bench_dataset();
    let pr = ds.variable("pr").unwrap();
    let opts = TranslationOptions::default();
    let mut anim = AnimationController::from_variable(pr, &opts).unwrap();
    let first = translate_scalar(&pr.time_slab(0).unwrap(), &opts).unwrap();
    let mut cell = Dv3dCell::new("step", PlotSpec::slicer(first));
    let mut group = c.benchmark_group("fig_animation_step");
    group.sample_size(10);
    group.bench_function("set_image", |b| {
        b.iter(|| anim.step(cell.plot_mut(), 1).unwrap())
    });
    group.finish();
}

criterion_group!(benches, animation_loop, frame_step_only);
criterion_main!(benches);
