//! Ensemble-scale analysis bench: the dependency-counting TaskGraph
//! executor driving the `cdat::ensemble` DAG (N member sources → one
//! batched regrid → ensemble reductions → per-region chains), plus the
//! batched multi-RHS regrid against the per-member loop it replaces.
//! Emits `BENCH_ensemble.json`.
//!
//! Two design claims under test:
//!
//! 1. **Event-driven executor scales.** With inner kernels pinned to one
//!    rayon worker (so all parallelism comes from task-level overlap), the
//!    ensemble DAG at two executor workers must be >= 1.5x faster than
//!    `run_serial`. Asserted only when the box has more than one hardware
//!    thread and the executor actually resolved more than one worker
//!    (`speedup_asserted` in the JSON, the BENCH_render.json convention).
//!    A 1/2/4/8 worker sweep is recorded either way.
//! 2. **Batched regrid beats the member loop.** One cached CSR plan
//!    applied to all members as a blocked multi-RHS SpMM must not lose to
//!    N single applies at >= 32 members (same plan cache warmth, one
//!    rayon worker, so the win is pure CSR-row reuse and cache locality).
//!
//! Both paths are held to bit-identity before any timing: the 2-worker
//! executor against `run_serial` on every DAG output, and the batched
//! regrid against per-member applies. `ENSEMBLE_BENCH_SMOKE=1` shrinks
//! member count, field shape, and reps for CI smoke runs.

use cdat::ensemble::{self, Region};
use cdat::regrid::{regrid, regrid_batch};
use cdat::regrid_plan::RegridMethod;
use cdms::{RectGrid, Variable};
use std::time::Instant;

fn smoke() -> bool {
    std::env::var("ENSEMBLE_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false)
}

/// Best observed time — the interference-resistant estimator on a shared
/// box, where medians of short timings can swing 2×.
fn best(xs: Vec<f64>) -> f64 {
    xs.into_iter().fold(f64::INFINITY, f64::min)
}

fn once_ms<T>(mut f: impl FnMut() -> T) -> f64 {
    let t0 = Instant::now();
    std::hint::black_box(f());
    t0.elapsed().as_secs_f64() * 1e3
}

/// Asserts two variables carry bit-identical data and identical masks.
fn assert_bit_identical(want: &Variable, got: &Variable, what: &str) {
    let wb: Vec<u32> = want.array.data().iter().map(|v| v.to_bits()).collect();
    let gb: Vec<u32> = got.array.data().iter().map(|v| v.to_bits()).collect();
    assert_eq!(wb, gb, "{what}: data bits diverged");
    assert_eq!(want.array, got.array, "{what}: arrays diverged");
}

fn main() {
    let smoke = smoke();
    // Members × (time, lev, lat, lon), regridded up to the analysis grid.
    let (n_members, shape, target, reps) = if smoke {
        (32, (12, 1, 12, 24), RectGrid::uniform(16, 32).expect("grid"), 3)
    } else {
        (48, (12, 2, 24, 48), RectGrid::uniform(32, 64).expect("grid"), 7)
    };
    let regions = [
        Region::new("tropics", (-20.0, 20.0), (0.0, 360.0)),
        Region::new("north", (30.0, 80.0), (0.0, 360.0)),
        Region::new("south", (-80.0, -30.0), (0.0, 360.0)),
    ];
    let method = RegridMethod::Conservative;
    let members = ensemble::synth_members(n_members, shape, 2026).expect("members");

    let hardware_threads =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let rayon_env = std::env::var("RAYON_NUM_THREADS").ok();

    let g = ensemble::build_graph(members.clone(), target.clone(), method, &regions)
        .expect("build graph");

    // ---- bit-identity gates, before any timing ------------------------
    // 1. the 2-worker executor against the serial oracle on every output
    let serial = g.run_serial().expect("serial run");
    let par = g.run_with_pool(2).expect("parallel run");
    assert_eq!(serial.outputs.len(), par.outputs.len(), "output sets differ");
    for (name, want) in &serial.outputs {
        let got = par.outputs.get(name).unwrap_or_else(|| panic!("missing output {name}"));
        assert_bit_identical(want, got, &format!("task '{name}' pool 2 vs serial"));
    }
    // 2. the batched multi-RHS regrid against N single applies
    let member_refs: Vec<&Variable> = members.iter().collect();
    let batched = regrid_batch(&member_refs, &target, method).expect("batch regrid");
    assert_eq!(batched.len(), members.len());
    for (b, m) in batched.iter().zip(&members) {
        let single = regrid(m, &target, method).expect("single regrid");
        assert_bit_identical(&single, b, &format!("batched regrid of '{}'", m.id));
    }
    drop((batched, serial, par));

    // ---- timing: inner kernels pinned to one rayon worker -------------
    // All speedup below must come from executor-level task overlap (claim
    // 1) or from the blocked SpMM's memory behaviour (claim 2), not from
    // the kernels' own data parallelism.
    std::env::set_var("RAYON_NUM_THREADS", "1");

    // serial-oracle baseline
    let mut runs = Vec::with_capacity(reps);
    for _ in 0..reps {
        runs.push(once_ms(|| g.run_serial().expect("serial run")));
    }
    let serial_ms = best(runs);

    if std::env::var("ENSEMBLE_BENCH_DEBUG").is_ok() {
        let report = g.run_serial().expect("serial run");
        let mut by_cost: Vec<(&String, f64)> = report
            .timings
            .iter()
            .map(|(name, d)| (name, d.as_secs_f64() * 1e3))
            .collect();
        by_cost.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        for (name, ms) in by_cost.iter().take(12) {
            println!("task {name}: {ms:.2} ms");
        }
    }

    // 1/2/4/8 executor-worker sweep
    let sweep: Vec<(usize, f64, usize)> = [1usize, 2, 4, 8]
        .iter()
        .map(|&w| {
            let mut runs = Vec::with_capacity(reps);
            let mut workers = 1;
            for _ in 0..reps {
                runs.push(once_ms(|| {
                    let report = g.run_with_pool(w).expect("pooled run");
                    workers = report.workers;
                    report
                }));
            }
            (w, best(runs), workers)
        })
        .collect();
    let (two_ms, two_workers) = sweep
        .iter()
        .find(|&&(w, _, _)| w == 2)
        .map(|&(_, ms, workers)| (ms, workers))
        .unwrap_or((f64::NAN, 1));
    let dag_speedup = serial_ms / two_ms;
    let speedup_asserted = hardware_threads > 1 && two_workers > 1;
    if speedup_asserted {
        assert!(
            dag_speedup >= 1.5,
            "2-worker executor only {dag_speedup:.2}x over run_serial \
             (serial {serial_ms:.2} ms, 2 workers {two_ms:.2} ms)"
        );
    }

    // batched regrid vs the per-member loop, both plan-cache warm
    let mut loop_runs = Vec::with_capacity(reps);
    let mut batch_runs = Vec::with_capacity(reps);
    for _ in 0..reps {
        loop_runs.push(once_ms(|| {
            for m in &members {
                std::hint::black_box(regrid(m, &target, method).expect("single regrid"));
            }
        }));
        batch_runs.push(once_ms(|| {
            regrid_batch(&member_refs, &target, method).expect("batch regrid")
        }));
    }
    let loop_ms = best(loop_runs);
    let batch_ms = best(batch_runs);
    let batch_speedup = loop_ms / batch_ms;
    assert!(
        batch_speedup >= 1.0,
        "batched regrid lost to the per-member loop at {n_members} members: \
         {batch_ms:.2} ms vs {loop_ms:.2} ms"
    );

    match rayon_env {
        Some(ref v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }

    let sweep_json = sweep
        .iter()
        .map(|(w, ms, workers)| {
            format!(
                "    {{ \"requested\": {w}, \"workers\": {workers}, \
                 \"run_ms\": {ms:.4} }}"
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"ensemble\",\n",
            "  \"smoke\": {},\n",
            "  \"members\": {},\n",
            "  \"member_shape\": \"{}x{}x{}x{}\",\n",
            "  \"dst_grid\": \"{}x{}\",\n",
            "  \"regions\": {},\n",
            "  \"reps\": {},\n",
            "  \"hardware_threads\": {},\n",
            "  \"rayon_num_threads_env\": {},\n",
            "  \"dag_serial_ms\": {:.4},\n",
            "  \"dag_two_worker_ms\": {:.4},\n",
            "  \"dag_two_worker_speedup\": {:.2},\n",
            "  \"speedup_asserted\": {},\n",
            "  \"worker_sweep\": [\n{}\n  ],\n",
            "  \"regrid_loop_ms\": {:.4},\n",
            "  \"regrid_batch_ms\": {:.4},\n",
            "  \"batch_over_loop_speedup\": {:.2}\n",
            "}}\n"
        ),
        smoke,
        n_members,
        shape.0,
        shape.1,
        shape.2,
        shape.3,
        target.lat.len(),
        target.lon.len(),
        regions.len(),
        reps,
        hardware_threads,
        rayon_env.map(|v| format!("\"{v}\"")).unwrap_or_else(|| "null".into()),
        serial_ms,
        two_ms,
        dag_speedup,
        speedup_asserted,
        sweep_json,
        loop_ms,
        batch_ms,
        batch_speedup,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ensemble.json");
    std::fs::write(path, &json).expect("write artifact");
    println!("{json}");
    println!(
        "bench ensemble: DAG serial {serial_ms:.1} ms vs 2 workers {two_ms:.1} ms \
         ({dag_speedup:.2}x, asserted: {speedup_asserted}); batched regrid \
         {batch_speedup:.2}x over the {n_members}-member loop"
    );
}
