//! E5 / Fig 5: hyperwall scaling — client count sweep, the mirror
//! downsample ablation, and the distributed-vs-single-node comparison.
//!
//! On this single-core host the distributed numbers mostly show protocol
//! overhead; the *mirror vs full-res* ratio is the hardware-independent
//! shape result.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dv3d::interaction::{CameraOp, ConfigOp};
use hyperwall::cluster::{run_single_node_baseline, run_wall};
use hyperwall::workflow::WallWorkflowConfig;

fn cfg(n_cells: usize) -> WallWorkflowConfig {
    WallWorkflowConfig { n_cells, synth: (1, 2, 10, 20), cell_px: (64, 48) }
}

fn client_count_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_wall_clients");
    group.sample_size(10);
    for n in [1usize, 4, 15] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| run_wall(&cfg(n), 4, 1, &[]).unwrap())
        });
    }
    group.finish();
}

fn mirror_downsample_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_mirror_downsample");
    group.sample_size(10);
    let config = WallWorkflowConfig { n_cells: 4, synth: (1, 2, 10, 20), cell_px: (128, 96) };
    for d in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            b.iter(|| run_wall(&config, d, 1, &[]).unwrap())
        });
    }
    group.finish();
}

fn distributed_vs_single_node(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_vs_single_node");
    group.sample_size(10);
    let config = cfg(8);
    group.bench_function("single_node_8cells", |b| {
        b.iter(|| run_single_node_baseline(&config, 1).unwrap())
    });
    group.bench_function("distributed_8cells", |b| {
        b.iter(|| run_wall(&config, 4, 1, &[]).unwrap())
    });
    group.finish();
}

fn op_broadcast_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_op_broadcast");
    group.sample_size(10);
    let config = cfg(15);
    let ops = vec![ConfigOp::Camera(CameraOp::Azimuth(10.0))];
    group.bench_function("wall_with_interaction", |b| {
        b.iter(|| run_wall(&config, 4, 2, &ops).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    client_count_sweep,
    mirror_downsample_ablation,
    distributed_vs_single_node,
    op_broadcast_latency
);
criterion_main!(benches);
