//! Multi-tenant service bench: sessions × throughput × p99 across the
//! three load regimes the admission/shedding design targets —
//!
//! * **healthy**: paced conforming sessions within worker capacity;
//! * **overloaded**: 4× the session count, no pacing, queues past the
//!   overload watermark (degraded answers + `Busy` backpressure);
//! * **one misbehaving client**: the healthy population plus a single
//!   scripted quota-storm flooder (seeded [`FaultPlan`]), which the
//!   service must reject/shed while conforming latency holds.
//!
//! Emits `BENCH_service.json`. `SERVICE_BENCH_SMOKE=1` shrinks the run
//! for CI smoke checks.

use hyperwall::fault::FaultPlan;
use hyperwall::protocol::ServiceWork;
use hyperwall::service::client::{run_faulted_client, ClientRunStats, ServiceClient};
use hyperwall::service::quota::{QuotaConfig, MILLI};
use hyperwall::service::{spawn_service, MuxConfig, ServiceConfig};
use std::time::{Duration, Instant};

const IO: Duration = Duration::from_millis(500);

fn service_cfg() -> ServiceConfig {
    ServiceConfig {
        mux: MuxConfig {
            max_sessions: 32,
            inbox_capacity: 12,
            quota: QuotaConfig { burst: 12, refill_milli_per_round: 4 * MILLI },
            quantum: 2,
            overload_watermark: 16,
            shed_watermark: 32,
            misbehave_threshold: 4,
            round_ms: 2,
        },
        workers: 2,
        io_deadline_ms: 250,
        round_interval_ms: 2,
    }
}

fn work(seed: u64) -> ServiceWork {
    ServiceWork::Analysis { seed, len: 256 }
}

/// One scenario's observables.
#[derive(Debug)]
struct Outcome {
    sessions: usize,
    throughput_rps: f64,
    p99_ms: f64,
    degraded: u64,
    retry_afters: u64,
    busies: u64,
    timeouts: u64,
}

fn summarize(sessions: usize, stats: &[ClientRunStats], elapsed: Duration) -> Outcome {
    let answered: u64 = stats.iter().map(|s| s.full_responses + s.degraded_responses).sum();
    Outcome {
        sessions,
        throughput_rps: answered as f64 / elapsed.as_secs_f64().max(1e-9),
        p99_ms: stats.iter().filter_map(|s| s.percentile_ms(99.0)).fold(0.0, f64::max),
        degraded: stats.iter().map(|s| s.degraded_responses).sum(),
        retry_afters: stats.iter().map(|s| s.retry_afters).sum(),
        busies: stats.iter().map(|s| s.busies).sum(),
        timeouts: stats.iter().map(|s| s.timeouts).sum(),
    }
}

/// Background pressure styles riding alongside the measured sessions.
enum Load {
    /// No extra load: the measured sessions are the whole population.
    None,
    /// `n` open-loop sessions, each blasting its full burst and draining —
    /// aggregate demand ~4× what the conforming population needs.
    OpenLoop(usize),
    /// One scripted quota-storm abuser from a seeded [`FaultPlan`].
    Flooder(u32),
}

/// Runs `n_sessions` conforming closed-loop clients (gap = pacing) plus
/// the scenario's background load, against a fresh service. Latency is
/// measured on the conforming sessions only.
fn run_scenario(n_sessions: usize, requests: usize, gap: Duration, load: Load) -> Outcome {
    let svc = spawn_service(service_cfg()).expect("spawn service");
    let addr = svc.addr();
    let works: Vec<ServiceWork> = (0..requests as u64).map(work).collect();
    let started = Instant::now();
    let stats: Vec<ClientRunStats> = std::thread::scope(|s| {
        let mut background = Vec::new();
        match load {
            Load::None => {}
            Load::OpenLoop(n) => {
                for id in 0..n as u64 {
                    background.push(s.spawn(move || {
                        let mut c = ServiceClient::connect(addr, 500 + id, IO).expect("connect");
                        for round in 0..4u64 {
                            c.flood(12, &work(7_000 + round));
                            c.drain_replies(Duration::from_millis(40));
                        }
                        c.close().ok();
                    }));
                }
            }
            Load::Flooder(storm) => {
                background.push(s.spawn(move || {
                    // seed 1, one session, one storm — deterministically abusive
                    let plan = FaultPlan::seeded_service_storm(1, 1, 1, storm);
                    run_faulted_client(addr, 9_000, &plan.client(0), &[work(999)], IO)
                        .expect("flooder run");
                }));
            }
        }
        let handles: Vec<_> = (0..n_sessions as u64)
            .map(|id| {
                let works = works.clone();
                s.spawn(move || {
                    let mut c = ServiceClient::connect(addr, id, IO).expect("connect");
                    let stats = c.run_closed_loop(&works, Duration::from_secs(2), gap);
                    c.close().ok();
                    stats
                })
            })
            .collect();
        for b in background {
            b.join().expect("background load thread");
        }
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = started.elapsed();
    svc.shutdown();
    summarize(n_sessions, &stats, elapsed)
}

fn main() {
    let smoke = std::env::var("SERVICE_BENCH_SMOKE").is_ok();
    let (sessions, requests, storm) = if smoke { (2, 6, 48) } else { (4, 24, 96) };

    let healthy = run_scenario(sessions, requests, Duration::from_millis(4), Load::None);
    // 4× population: the measured sessions plus 3× open-loop blasters
    let overloaded =
        run_scenario(sessions, requests, Duration::from_millis(4), Load::OpenLoop(sessions * 3));
    let misbehaving =
        run_scenario(sessions, requests, Duration::from_millis(4), Load::Flooder(storm));

    assert_eq!(healthy.timeouts, 0, "healthy run must not time out: {healthy:?}");
    assert_eq!(
        misbehaving.timeouts, 0,
        "conforming sessions must be answered despite the flooder: {misbehaving:?}"
    );
    assert!(
        overloaded.degraded + overloaded.retry_afters + overloaded.busies > 0,
        "4x load must trigger degradation or backpressure: {overloaded:?}"
    );

    let p99_ratio = misbehaving.p99_ms / healthy.p99_ms.max(1e-9);
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"service\",\n",
            "  \"smoke\": {},\n",
            "  \"requests_per_session\": {},\n",
            "  \"healthy\": {{ \"sessions\": {}, \"throughput_rps\": {:.1}, ",
            "\"p99_ms\": {:.3}, \"degraded\": {}, \"busies\": {}, \"retry_afters\": {} }},\n",
            "  \"overloaded\": {{ \"sessions\": {}, \"throughput_rps\": {:.1}, ",
            "\"p99_ms\": {:.3}, \"degraded\": {}, \"busies\": {}, \"retry_afters\": {} }},\n",
            "  \"one_misbehaving\": {{ \"sessions\": {}, \"throughput_rps\": {:.1}, ",
            "\"p99_ms\": {:.3}, \"degraded\": {}, \"busies\": {}, \"retry_afters\": {} }},\n",
            "  \"misbehaving_over_healthy_p99_ratio\": {:.3}\n",
            "}}\n"
        ),
        smoke,
        requests,
        healthy.sessions,
        healthy.throughput_rps,
        healthy.p99_ms,
        healthy.degraded,
        healthy.busies,
        healthy.retry_afters,
        // total population: the measured sessions plus the blasters
        overloaded.sessions * 4,
        overloaded.throughput_rps,
        overloaded.p99_ms,
        overloaded.degraded,
        overloaded.busies,
        overloaded.retry_afters,
        misbehaving.sessions,
        misbehaving.throughput_rps,
        misbehaving.p99_ms,
        misbehaving.degraded,
        misbehaving.busies,
        misbehaving.retry_afters,
        p99_ratio,
    );
    // workspace root, independent of the bench binary's cwd
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    std::fs::write(path, &json).expect("write artifact");
    println!("{json}");
    println!(
        "bench service: healthy p99 {:.1} ms, 4x-overload p99 {:.1} ms, \
         with-flooder p99 {:.1} ms (ratio {:.2})",
        healthy.p99_ms, overloaded.p99_ms, misbehaving.p99_ms, p99_ratio
    );
}
