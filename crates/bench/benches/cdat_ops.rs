//! E7 / §III.G: the CDAT operation suite — regridding (both schemes),
//! climatology/anomaly, averagers, and the parallel task graph ablation.

use cdat::{averager, climatology, regrid, statistics, taskgraph::TaskGraph};
use cdms::RectGrid;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dv3d_bench::{bench_dataset, bench_dataset_sized};
use std::sync::Arc;

fn regrid_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("cdat_regrid");
    group.sample_size(10);
    for (nlat, nlon) in [(24usize, 48usize), (48, 96)] {
        let ds = bench_dataset_sized(nlat, nlon);
        let ta = ds.variable("ta").unwrap().time_slab(0).unwrap();
        let target = RectGrid::uniform(nlat / 2, nlon / 2).unwrap();
        group.bench_with_input(
            BenchmarkId::new("bilinear", format!("{nlat}x{nlon}")),
            &(&ta, &target),
            |b, (ta, t)| b.iter(|| regrid::bilinear(ta, t).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("conservative", format!("{nlat}x{nlon}")),
            &(&ta, &target),
            |b, (ta, t)| b.iter(|| regrid::conservative(ta, t).unwrap()),
        );
    }
    group.finish();
}

fn analysis_suite(c: &mut Criterion) {
    let ds = bench_dataset();
    let ta = ds.variable("ta").unwrap();
    let mut group = c.benchmark_group("cdat_analysis");
    group.sample_size(10);
    group.bench_function("anomaly", |b| b.iter(|| climatology::anomaly(ta).unwrap()));
    group.bench_function("spatial_mean", |b| b.iter(|| averager::spatial_mean(ta).unwrap()));
    group.bench_function("zonal_mean", |b| b.iter(|| averager::zonal_mean(ta).unwrap()));
    group.bench_function("linear_trend", |b| {
        b.iter(|| statistics::linear_trend(ta).unwrap())
    });
    group.bench_function("correlation_self", |b| {
        b.iter(|| statistics::correlation(ta, ta).unwrap())
    });
    group.bench_function("pressure_interp", |b| {
        b.iter(|| regrid::pressure_interp(ta, &[925.0, 775.0, 550.0]).unwrap())
    });
    group.finish();
}

fn build_graph() -> TaskGraph {
    let ds = bench_dataset();
    let ta = ds.variable("ta").unwrap().clone();
    let mut g = TaskGraph::new();
    g.add_source("ta", ta).unwrap();
    g.add_task("anom", &["ta"], |d| climatology::anomaly(&d["ta"])).unwrap();
    g.add_task("zonal", &["ta"], |d| averager::zonal_mean(&d["ta"])).unwrap();
    g.add_task("regrid", &["ta"], |d| {
        let t = RectGrid::uniform(12, 24).unwrap();
        regrid::bilinear(&d["ta"], &t)
    })
    .unwrap();
    g.add_task("trend", &["ta"], |d| statistics::linear_trend(&d["ta"])).unwrap();
    g.add_task("series", &["anom"], |d| averager::spatial_mean(&d["anom"])).unwrap();
    g.add_task("summary", &["series", "zonal"], |d| {
        Ok(Arc::unwrap_or_clone(d["series"].clone()))
    })
    .unwrap();
    g
}

fn taskgraph_serial_vs_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("cdat_taskgraph");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        let g = build_graph();
        b.iter(|| g.run_serial().unwrap())
    });
    group.bench_function("parallel", |b| {
        let g = build_graph();
        b.iter(|| g.run_parallel().unwrap())
    });
    group.finish();
}

criterion_group!(benches, regrid_schemes, analysis_suite, taskgraph_serial_vs_parallel);
criterion_main!(benches);
