//! Fused analysis-pipeline bench: the canonical paper chain
//! anomaly → standardize → spatial_mean on a CMIP-shaped monthly field,
//! fused through `cdat::pipeline` versus the frozen pre-fusion eager
//! reference (`cdat::eager_ref`). Emits `BENCH_analysis.json`.
//!
//! The design claim under test: compiling the chain into a virtual-field
//! pass (one elementwise sweep feeding deterministic blocked reductions,
//! ~3 full-array passes instead of ~10 with intermediate materialization)
//! makes the end-to-end chain at least 2× faster single-threaded. The CI
//! assertion uses a 1.5× floor so shared-box jitter can't flake the run.
//!
//! Also reports serial-vs-parallel scaling of the fused pipeline with the
//! *effective* rayon pool size per row — single-core CI boxes resolve
//! every request to a pool of 1, and the artifact should say so rather
//! than look like a scaling failure. RAYON_NUM_THREADS is honoured: an
//! externally pinned value wins over hardware detection for the wide row.
//!
//! `ANALYSIS_BENCH_SMOKE=1` shrinks reps and the field for CI smoke runs.

use cdat::pipeline::{run, AnalysisStep};
use cdat::{averager, climatology, eager_ref, statistics};
use cdms::synth::SynthesisSpec;
use cdms::Variable;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var("ANALYSIS_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false)
}

fn best(xs: Vec<f64>) -> f64 {
    xs.into_iter().fold(f64::INFINITY, f64::min)
}

const CHAIN: [AnalysisStep; 3] =
    [AnalysisStep::Anomaly, AnalysisStep::Standardize, AnalysisStep::SpatialMean];

/// Frozen pre-fusion reference: every step materializes its output.
fn eager_chain(var: &Variable) -> Variable {
    let anom = eager_ref::anomaly(var).expect("eager anomaly");
    let std = eager_ref::standardize(&anom).expect("eager standardize");
    eager_ref::spatial_mean(&std).expect("eager spatial mean")
}

/// Fused stepwise path: each step uses the expression/reduction engine but
/// still materializes between steps. Separates fusion-within-a-step gains
/// from cross-step virtual-field gains in the artifact.
fn stepwise_fused(var: &Variable) -> Variable {
    let anom = climatology::anomaly(var).expect("fused anomaly");
    let std = statistics::standardize(&anom).expect("fused standardize");
    averager::spatial_mean(&std).expect("fused spatial mean")
}

/// Best-of-`reps` for one timed closure, ms. Interleaving happens at the
/// call site so drift on a shared box hits all contenders equally.
fn once_ms<T>(mut f: impl FnMut() -> T) -> f64 {
    let t0 = Instant::now();
    std::hint::black_box(f());
    t0.elapsed().as_secs_f64() * 1e3
}

/// Times the fused pipeline under a requested worker count, returning the
/// best-of-reps ms and the pool size the dispatcher actually resolved.
/// Any externally-set RAYON_NUM_THREADS is restored afterwards.
fn fused_ms_at(var: &Variable, threads: usize, reps: usize) -> (f64, usize) {
    let prev = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
    let effective = rayon::current_num_threads();
    let mut runs = Vec::with_capacity(reps);
    for _ in 0..reps {
        runs.push(once_ms(|| run(var, &CHAIN).expect("fused pipeline")));
    }
    match prev {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    (best(runs), effective)
}

fn main() {
    // 12 months x 17 levels x 73 lat x 144 lon: the 2.5-degree reanalysis
    // shape the paper's exploratory sessions page through.
    let (reps, spec) = if smoke() {
        (5, SynthesisSpec::new(12, 3, 24, 48).seed(41))
    } else {
        (12, SynthesisSpec::new(12, 17, 73, 144).seed(41))
    };
    let ds = spec.build();
    let ta = ds.variable("ta").expect("ta");

    // Sanity: the three paths agree on the headline scalar before timing.
    let fused_out = run(ta, &CHAIN).expect("fused pipeline");
    let eager_out = eager_chain(ta);
    for (f, e) in fused_out.array.data().iter().zip(eager_out.array.data()) {
        assert!((f - e).abs() <= 1e-4 * e.abs().max(1.0), "fused {f} vs eager {e}");
    }

    // Single-threaded contest: eager reference vs stepwise fused vs the
    // cross-step fused pipeline, interleaved rep-by-rep.
    let prev = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let (mut eager, mut stepwise, mut fused) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        eager = eager.min(once_ms(|| eager_chain(ta)));
        stepwise = stepwise.min(once_ms(|| stepwise_fused(ta)));
        fused = fused.min(once_ms(|| run(ta, &CHAIN).expect("fused pipeline")));
    }
    match prev {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }

    // Scaling rows: serial vs whatever the box (or RAYON_NUM_THREADS) offers.
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let wide = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(hw);
    // Full sweep at 1/2/4/8 requested workers (the BENCH_render.json
    // convention), plus the legacy serial / wide rows.
    let sweep: Vec<(usize, f64, usize)> = [1usize, 2, 4, 8]
        .iter()
        .map(|&t| {
            let (ms, pool) = fused_ms_at(ta, t, reps);
            (t, ms, pool)
        })
        .collect();
    let (serial_ms, pool1) = sweep
        .first()
        .map(|&(_, ms, pool)| (ms, pool))
        .unwrap_or((f64::NAN, 1));
    let (wide_ms, pool_n) = fused_ms_at(ta, wide, reps);
    let sweep_json = sweep
        .iter()
        .map(|(t, ms, pool)| {
            format!(
                "    {{ \"requested\": {t}, \"effective_pool\": {pool}, \
                 \"fused_ms\": {ms:.4} }}"
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    let speedup = eager / fused;
    let stepwise_speedup = eager / stepwise;
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"analysis\",\n",
            "  \"reps\": {},\n",
            "  \"shape\": \"{}\",\n",
            "  \"eager_chain_ms\": {:.4},\n",
            "  \"stepwise_fused_ms\": {:.4},\n",
            "  \"fused_pipeline_ms\": {:.4},\n",
            "  \"stepwise_over_eager_speedup\": {:.2},\n",
            "  \"fused_over_eager_speedup\": {:.2},\n",
            "  \"fused_serial_ms\": {:.4},\n",
            "  \"fused_parallel_ms\": {:.4},\n",
            "  \"hardware_threads\": {},\n",
            "  \"effective_pool_one_thread\": {},\n",
            "  \"effective_pool_all_threads\": {},\n",
            "  \"requested_threads\": {},\n",
            "  \"thread_sweep\": [\n{}\n  ]\n",
            "}}\n"
        ),
        reps,
        if smoke() { "12x3x24x48" } else { "12x17x73x144" },
        eager,
        stepwise,
        fused,
        stepwise_speedup,
        speedup,
        serial_ms,
        wide_ms,
        hw,
        pool1,
        pool_n,
        wide,
        sweep_json,
    );
    // workspace root, independent of the bench binary's cwd
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_analysis.json");
    std::fs::write(path, &json).expect("write artifact");
    println!("{json}");
    println!(
        "bench analysis: fused pipeline {speedup:.1}x faster than eager chain \
         single-threaded (stepwise fused {stepwise_speedup:.1}x)"
    );
    assert!(
        speedup >= 1.5,
        "fused pipeline must be >= 1.5x faster than the eager chain \
         single-threaded, got {speedup:.2}x (eager {eager:.4} ms, fused {fused:.4} ms)"
    );
}
