//! E4 / Fig 4: Hovmöller extraction, phase-speed measurement and the
//! time-as-vertical renders.

use cdat::hovmoller;
use cdms::synth::SynthesisSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dv3d::cell::Dv3dCell;
use dv3d::plots::PlotSpec;
use dv3d::translation::{translate_scalar, TranslationOptions};

fn section_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_hovmoller_section");
    group.sample_size(10);
    for nt in [16usize, 32, 64] {
        let ds = SynthesisSpec::new(nt, 1, 24, 72).seed(4).build();
        let wave = ds.variable("wave").unwrap().clone();
        group.bench_with_input(BenchmarkId::from_parameter(nt), &wave, |b, wave| {
            b.iter(|| hovmoller::lon_time_section(wave, (-15.0, 15.0)).unwrap())
        });
    }
    group.finish();
}

fn phase_speed_measurement(c: &mut Criterion) {
    let ds = SynthesisSpec::new(32, 1, 24, 72).seed(4).build();
    let wave = ds.variable("wave").unwrap();
    let section = hovmoller::lon_time_section(wave, (-15.0, 15.0)).unwrap();
    let mut group = c.benchmark_group("fig4_phase_speed");
    group.sample_size(10);
    group.bench_function("cross_correlation", |b| {
        b.iter(|| hovmoller::zonal_phase_speed(&section).unwrap())
    });
    group.finish();
}

fn hovmoller_renders(c: &mut Criterion) {
    let ds = SynthesisSpec::new(24, 1, 16, 48).seed(4).build();
    let vol = hovmoller::hovmoller_volume(ds.variable("wave").unwrap()).unwrap();
    let img = translate_scalar(&vol, &TranslationOptions::default()).unwrap();

    let mut group = c.benchmark_group("fig4_hovmoller_render");
    group.sample_size(10);
    for (name, spec) in [
        ("slicer", PlotSpec::hovmoller_slicer(img.clone())),
        ("volume", PlotSpec::hovmoller_volume(img.clone())),
    ] {
        let mut cell = Dv3dCell::try_new(name, spec).unwrap();
        cell.render(96, 72).unwrap();
        group.bench_function(name, |b| b.iter(|| cell.render(96, 72).unwrap()));
    }
    group.finish();
}

criterion_group!(benches, section_extraction, phase_speed_measurement, hovmoller_renders);
criterion_main!(benches);
