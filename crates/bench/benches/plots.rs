//! E2 / Fig 2: per-plot-type render cost across resolutions, plus the
//! volume renderer's early-ray-termination ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dv3d::cell::Dv3dCell;
use dv3d::plots::PlotSpec;
use dv3d::translation::{translate_vector, TranslationOptions};
use dv3d_bench::{bench_dataset, slab, ta_image};

fn plot_render(c: &mut Criterion) {
    let ds = bench_dataset();
    let ta_img = ta_image(&ds);
    let wind_img = translate_vector(
        &slab(&ds, "ua"),
        &slab(&ds, "va"),
        &TranslationOptions::default(),
    )
    .unwrap();

    let mut group = c.benchmark_group("fig2_plot_render");
    group.sample_size(10);
    for (name, spec) in [
        ("slicer", PlotSpec::slicer(ta_img.clone())),
        ("volume", PlotSpec::volume(ta_img.clone())),
        ("isosurface", PlotSpec::isosurface(ta_img.clone())),
        ("vector_slicer", PlotSpec::vector_slicer(wind_img)),
    ] {
        for res in [(96usize, 72usize), (192, 144)] {
            let mut cell = Dv3dCell::try_new(name, spec.clone()).unwrap();
            cell.render(res.0, res.1).unwrap(); // warm the camera
            group.bench_with_input(
                BenchmarkId::new(name, format!("{}x{}", res.0, res.1)),
                &res,
                |b, &(w, h)| b.iter(|| cell.render(w, h).unwrap()),
            );
        }
    }
    group.finish();
}

fn volume_early_termination_ablation(c: &mut Criterion) {
    use dv3d::plots::{Plot, VolumePlot};
    use rvtk::render::{Framebuffer, Renderer};

    let ds = bench_dataset();
    let img = ta_image(&ds);
    let mut group = c.benchmark_group("volume_early_termination");
    group.sample_size(10);
    for (label, early) in [("on", true), ("off", false)] {
        let mut plot = VolumePlot::new(img.clone()).unwrap();
        plot.early_termination = early;
        // make the medium dense so termination matters
        plot.editor.level = plot.editor.data_range.0
            + 0.3 * (plot.editor.data_range.1 - plot.editor.data_range.0);
        let mut renderer = Renderer::new();
        plot.populate(&mut renderer).unwrap();
        renderer.reset_camera();
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut fb = Framebuffer::new(96, 72);
                renderer.render(&mut fb);
                fb
            })
        });
    }
    group.finish();
}

criterion_group!(benches, plot_render, volume_early_termination_ablation);
criterion_main!(benches);
