//! Out-of-core `.ncr` v3 streaming bench. Emits `BENCH_ncr_stream.json`.
//!
//! Three design claims under test:
//!
//! * **Bounded memory** — a time series whose decoded full-resolution
//!   chunks dwarf the cache budget streams through a
//!   [`cdms::StreamingDataset`] whose peak resident chunk bytes NEVER
//!   exceed the budget (the high-water mark is asserted, not sampled:
//!   the cache evicts before it inserts).
//! * **Warm vs cold window latency** — revisiting a cached window costs
//!   cache-hit time, not a ranged read + CRC + decode. Both latencies
//!   are reported so regressions in either path are visible.
//! * **Fault-degraded playback overhead** — a seeded fault storm (dead
//!   chunks, corruption, transients) must not stall playback: every
//!   frame still arrives, degraded or masked where the plan dictates,
//!   and the wall-clock overhead over a healthy pass is reported.
//!
//! `NCR_STREAM_BENCH_SMOKE=1` shrinks the series for CI smoke runs.

use cdms::format_v3::{self, V3Options};
use cdms::storage::{FaultyStorage, LocalDisk, StorageFault, StorageFaultPlan};
use cdms::synth::SynthesisSpec;
use cdms::{Storage, StreamOptions, StreamingDataset};
use std::sync::Arc;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var("NCR_STREAM_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false)
}

fn once_ms<T>(mut f: impl FnMut() -> T) -> f64 {
    let t0 = Instant::now();
    std::hint::black_box(f());
    t0.elapsed().as_secs_f64() * 1e3
}

/// Streaming options for a playback session: tight budget, no artificial
/// waiting, one window of prefetch (the steady-playback configuration).
fn session_opts(cache_bytes: usize) -> StreamOptions {
    StreamOptions {
        cache_bytes,
        prefetch_windows: 1,
        max_retries: 3,
        backoff_base_ms: 0,
        backoff_cap_ms: 0,
        deadline_ms: None,
    }
}

/// Full playback pass over every frame via the degrade-don't-stall path.
/// Returns elapsed ms; panics if any frame fails to arrive.
fn play_all_ms(sd: &StreamingDataset, var: &str) -> f64 {
    let sv = sd.variable(var).expect("variable");
    once_ms(|| {
        for t in 0..sv.n_times() {
            let frame = sv.time_slab_degraded(t).expect("frame must never stall");
            std::hint::black_box(frame);
        }
    })
}

fn main() {
    let (reps, spec, window) = if smoke() {
        (4, SynthesisSpec::new(16, 2, 16, 24).seed(77), 2)
    } else {
        (10, SynthesisSpec::new(64, 2, 32, 48).seed(77), 2)
    };
    let ds = spec.build();
    let opts = V3Options { window, levels: 2, compress: false };
    let dir = std::env::temp_dir().join(format!("ncr_stream_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench dir");
    let path = dir.join("series.ncr");
    format_v3::write_dataset_v3_with(&LocalDisk, &ds, &path, &opts).expect("v3 write");

    let meta = format_v3::read_meta_with(&LocalDisk, &path).expect("v3 meta");
    let vi = meta.var_index("ta").expect("'ta' in file");
    let vm = &meta.vars[vi];
    let n_windows = vm.n_windows();
    assert!(n_windows >= 5, "bench needs enough windows to fault a few");
    let decoded_level0_bytes: usize =
        (0..n_windows).map(|w| vm.level_volume(w, 0).expect("volume") * 5).sum();
    // the premise: the series is 4× the cache
    let budget = decoded_level0_bytes / 4;

    // ---- cold vs warm window latency ----
    // cold: first touch of each window in a fresh prefetch-free session;
    // warm: re-touching a window that is already resident.
    let mut cold_ms = f64::INFINITY;
    let mut warm_ms = f64::INFINITY;
    for _ in 0..reps {
        let sd = StreamingDataset::open_with(
            Arc::new(LocalDisk),
            &path,
            StreamOptions { prefetch_windows: 0, ..session_opts(budget) },
        )
        .expect("open");
        let sv = sd.variable("ta").expect("ta");
        cold_ms = cold_ms.min(once_ms(|| sv.time_slab(0).expect("cold fetch")));
        warm_ms = warm_ms.min(once_ms(|| sv.time_slab(1).expect("warm fetch")));
        let r = sd.report();
        assert_eq!(r.cache_misses, 1, "cold touch is exactly one miss");
        assert_eq!(r.cache_hits, 1, "warm touch is exactly one hit");
    }

    // ---- healthy playback under the tight budget ----
    let mut healthy_ms = f64::INFINITY;
    let mut peak_cache = 0u64;
    let mut evictions = 0u64;
    for _ in 0..reps {
        let sd = StreamingDataset::open_with(Arc::new(LocalDisk), &path, session_opts(budget))
            .expect("open");
        healthy_ms = healthy_ms.min(play_all_ms(&sd, "ta"));
        let r = sd.report();
        assert!(
            r.peak_cache_bytes as usize <= budget,
            "cache ceiling violated: {} > {budget}",
            r.peak_cache_bytes
        );
        assert_eq!(r.degraded + r.salvaged + r.failed_chunks, 0, "healthy run degraded");
        peak_cache = r.peak_cache_bytes;
        evictions = r.evictions;
    }
    assert!(evictions > 0, "a 4×-budget series must evict");

    // ---- faulted playback: the storm never stalls the animation ----
    // window 1: level 0 dead → degraded frames; window 2: both levels
    // dead → masked frames; window 3: two transient failures → retried.
    let entry = |w: usize, l: usize| *meta.chunk(vi, w, l).expect("chunk entry");
    let fault_plan = || {
        let (e10, e20, e21, e30) = (entry(1, 0), entry(2, 0), entry(2, 1), entry(3, 0));
        StorageFaultPlan::none()
            .inject_read(e10.offset..e10.offset + 1, StorageFault::ReadError, 0)
            .inject_read(e20.offset..e20.offset + 1, StorageFault::ReadError, 0)
            .inject_read(e21.offset..e21.offset + 1, StorageFault::ReadError, 0)
            .inject_read(e30.offset..e30.offset + 1, StorageFault::Transient { times: 0 }, 2)
    };
    let mut faulted_ms = f64::INFINITY;
    let mut degraded = 0u64;
    let mut salvaged = 0u64;
    let mut retried = 0u64;
    let mut failed_chunks = 0u64;
    for _ in 0..reps {
        let storage: Arc<dyn Storage> = Arc::new(FaultyStorage::new(fault_plan()));
        let sd = StreamingDataset::open_with(storage, &path, session_opts(budget)).expect("open");
        faulted_ms = faulted_ms.min(play_all_ms(&sd, "ta"));
        let r = sd.report();
        assert!(r.peak_cache_bytes as usize <= budget, "faulted run broke the ceiling");
        assert_eq!(r.degraded, window as u64, "window 1 serves every frame from the pyramid");
        assert_eq!(r.salvaged, window as u64, "window 2 serves every frame masked");
        assert_eq!(r.failed_chunks, 3);
        degraded = r.degraded;
        salvaged = r.salvaged;
        retried = r.retried;
        failed_chunks = r.failed_chunks;
    }
    let faulted_overhead_pct = (faulted_ms / healthy_ms - 1.0) * 100.0;
    let warm_speedup = cold_ms / warm_ms.max(1e-9);

    std::fs::remove_dir_all(&dir).ok();

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"ncr_stream\",\n",
            "  \"smoke\": {},\n",
            "  \"reps\": {},\n",
            "  \"frames\": {},\n",
            "  \"windows\": {},\n",
            "  \"decoded_level0_bytes\": {},\n",
            "  \"cache_budget_bytes\": {},\n",
            "  \"peak_cache_bytes\": {},\n",
            "  \"cache_budget_respected\": true,\n",
            "  \"evictions\": {},\n",
            "  \"cold_window_ms\": {:.4},\n",
            "  \"warm_window_ms\": {:.4},\n",
            "  \"warm_speedup_x\": {:.1},\n",
            "  \"healthy_playback_ms\": {:.4},\n",
            "  \"faulted_playback_ms\": {:.4},\n",
            "  \"faulted_overhead_pct\": {:.2},\n",
            "  \"degraded\": {},\n",
            "  \"salvaged\": {},\n",
            "  \"retried\": {},\n",
            "  \"failed_chunks\": {}\n",
            "}}\n"
        ),
        smoke(),
        reps,
        vm.n_times(),
        n_windows,
        decoded_level0_bytes,
        budget,
        peak_cache,
        evictions,
        cold_ms,
        warm_ms,
        warm_speedup,
        healthy_ms,
        faulted_ms,
        faulted_overhead_pct,
        degraded,
        salvaged,
        retried,
        failed_chunks,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ncr_stream.json");
    std::fs::write(out, &json).expect("write artifact");
    println!("{json}");
    println!(
        "bench ncr_stream: peak cache {peak_cache} B of {budget} B budget; \
         warm window {warm_speedup:.1}× faster than cold; \
         fault storm overhead {faulted_overhead_pct:.1}% with every frame served"
    );
}
