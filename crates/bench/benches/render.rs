//! Tile-binned rendering bench: the three headline numbers of the tile /
//! delta-transport work, emitted as `BENCH_render.json`.
//!
//! 1. **Tile vs scanline frame time.** A multi-actor scene (surfaces,
//!    wireframes, point sprites spread across the screen) rendered by the
//!    tile-binned engine versus the frozen row-band scanline reference.
//!    With more than one hardware thread the tile engine must be >= 1.5x
//!    faster; on a single-core runner the ratio is still reported but the
//!    assert is skipped (`speedup_asserted: false` in the JSON).
//! 2. **Delta vs full-frame transport bytes.** A small-camera-motion
//!    script encoded through `FrameStreamer` as dirty-tile deltas versus
//!    the same frames as full keyframes; the delta stream must be >= 4x
//!    smaller per frame on the wire.
//! 3. **Interaction-to-photon.** A loopback wall run reporting the time
//!    from the Execute broadcast to the first pixel content arriving at
//!    the server (`FrameReport::first_content_ms`).
//!
//! The bench honours `RAYON_NUM_THREADS` (the vendored rayon reads it at
//! dispatch time) and reports both the env setting and the effective pool
//! size. `RENDER_BENCH_SMOKE=1` shrinks sizes and reps for CI smoke runs.

use hyperwall::frame_delta::FrameStreamer;
use hyperwall::protocol::encode_frame;
use rvtk::color::Color;
use rvtk::math::Vec3;
use rvtk::poly_data::PolyData;
use rvtk::render::{scanline_ref, Actor, Framebuffer, Renderer, Representation};
use std::time::Instant;

fn smoke() -> bool {
    std::env::var("RENDER_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

// xorshift64* — deterministic scenes, no wall clock, no external crates
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    fn unit(&mut self) -> f64 {
        (self.next() % 10_000) as f64 / 9_999.0
    }
}

/// A localized actor cluster: a little surface shell, wireframe ring or
/// point cloud around a random center. Many small clusters spread over the
/// screen is exactly the workload where binning wins — every scanline band
/// re-walks every line and re-tests every sprite, while a tile only sees
/// the primitives binned to it.
fn cluster(rng: &mut Rng, kind: usize) -> Actor {
    let c = Vec3::new(
        rng.unit() * 3.0 - 1.5,
        rng.unit() * 3.0 - 1.5,
        rng.unit() * 3.0 - 1.5,
    );
    let r = 0.1 + rng.unit() * 0.25;
    let mut pd = PolyData::new();
    let n = 14;
    for i in 0..n {
        let a = i as f64 / n as f64 * std::f64::consts::TAU;
        let wob = 0.7 + 0.3 * rng.unit();
        pd.add_point(Vec3::new(
            c.x + r * a.cos() * wob,
            c.y + r * a.sin() * wob,
            c.z + r * (rng.unit() - 0.5),
        ));
    }
    pd.add_point(c);
    match kind % 3 {
        0 => {
            for i in 0..n as u32 {
                pd.triangles.push([i, (i + 1) % n as u32, n as u32]);
            }
        }
        1 => {
            let ring: Vec<u32> = (0..n as u32).chain([0]).collect();
            pd.lines.push(ring);
            for i in 0..n as u32 {
                pd.lines.push(vec![i, n as u32]);
            }
        }
        _ => {}
    }
    pd.scalars = Some((0..=n).map(|i| i as f32 / n as f32).collect());
    let color = Color::rgb(
        0.3 + 0.7 * rng.unit() as f32,
        0.3 + 0.7 * rng.unit() as f32,
        0.3 + 0.7 * rng.unit() as f32,
    );
    let mut a = Actor::from_poly_data(pd).with_color(color);
    a.property.representation = match kind % 3 {
        0 => Representation::Surface,
        1 => Representation::Wireframe,
        _ => Representation::Points,
    };
    a.property.point_size = 3.0 + rng.unit() as f32 * 4.0;
    a.property.lighting = kind.is_multiple_of(3);
    a
}

fn scene(n_actors: usize) -> Renderer {
    let mut rng = Rng::new(0xBEEF_CAFE);
    let mut r = Renderer::new();
    for k in 0..n_actors {
        r.add_actor(cluster(&mut rng, k));
    }
    r.background = Color::rgb(0.04, 0.04, 0.1);
    r.reset_camera();
    r.camera.azimuth(25.0);
    r.camera.elevation(-15.0);
    r
}

/// A sinuous contour-style polyline sweeping across the domain, like one
/// isoline of a 2D climate field.
fn contour_actor(rng: &mut Rng, k: usize) -> Actor {
    let mut pd = PolyData::new();
    let n = 60usize;
    let y0 = rng.unit() * 3.0 - 1.5;
    let z0 = rng.unit() * 2.0 - 1.0;
    let amp = 0.3 + rng.unit() * 0.5;
    let freq = 4.0 + rng.unit() * 8.0;
    let phase = rng.unit() * std::f64::consts::TAU;
    for i in 0..n {
        let x = i as f64 / (n - 1) as f64 * 3.0 - 1.5;
        pd.add_point(Vec3::new(
            x,
            y0 + amp * (freq * x + phase).sin(),
            z0 + 0.1 * (2.0 * freq * x).cos(),
        ));
    }
    pd.lines.push((0..n as u32).collect());
    let t = (k % 7) as f32 / 6.0;
    let mut a = Actor::from_poly_data(pd)
        .with_color(Color::rgb(0.2 + 0.8 * t, 0.9 - 0.5 * t, 0.4 + 0.5 * t));
    a.property.representation = Representation::Wireframe;
    a
}

/// A scatter of station-marker point sprites, like an observation network
/// overlaid on the field. Wall-display glyph sizes: 10–24 px across.
fn markers_actor(rng: &mut Rng) -> Actor {
    let mut pd = PolyData::new();
    let n = 90usize;
    for _ in 0..n {
        pd.add_point(Vec3::new(
            rng.unit() * 3.0 - 1.5,
            rng.unit() * 3.0 - 1.5,
            rng.unit() * 2.0 - 1.0,
        ));
    }
    let mut a = Actor::from_poly_data(pd)
        .with_color(Color::rgb(0.9, 0.8, 0.2 + 0.6 * rng.unit() as f32));
    a.property.representation = Representation::Points;
    a.property.point_size = 10.0 + rng.unit() as f32 * 14.0;
    a
}

/// One sheet of vertical graticule / profile drop-lines: single-segment
/// lines spanning the full vertical extent of the domain, like the
/// longitude grid on a 3D box outline or drop-lines under a flight track.
/// Each projects to a near-vertical screen segment crossing every row
/// band — and, at the zoomed-in exploratory camera below, extending past
/// the viewport — which is the row-band engine's worst case twice over:
/// every band re-walks the entire segment (including its off-screen
/// extent, since the reference has no scissoring) to plot its own slice
/// of rows, while the tile engine bins only the visible crossings.
fn graticule_actor(rng: &mut Rng, k: usize) -> Actor {
    let mut pd = PolyData::new();
    let n_lines = 32usize;
    let z0 = (k % 5) as f64 * 0.45 - 0.9;
    for i in 0..n_lines {
        let x = i as f64 / (n_lines - 1) as f64 * 2.8 - 1.4 + (rng.unit() - 0.5) * 0.05;
        let tilt = (rng.unit() - 0.5) * 0.12;
        let a = pd.add_point(Vec3::new(x, -1.7, z0 + (rng.unit() - 0.5) * 0.1));
        let b = pd.add_point(Vec3::new(x + tilt, 1.7, z0 + (rng.unit() - 0.5) * 0.1));
        pd.lines.push(vec![a, b]);
    }
    let mut a = Actor::from_poly_data(pd).with_color(Color::rgb(0.5, 0.6, 0.7));
    a.property.representation = Representation::Wireframe;
    a
}

/// The perf scene: the shape of a DV3D exploratory frame — many contour
/// isolines, several station-marker layers, and a few lit surface patches.
/// Line- and sprite-heavy is exactly where row-banding loses: every band
/// re-walks every line and re-tests every sprite bbox, so the redundant
/// work grows with the worker count, while the tile engine visits each
/// line step and sprite pixel once regardless of the pool size.
fn perf_scene(
    n_contours: usize,
    n_marker_layers: usize,
    n_graticules: usize,
    n_surfaces: usize,
) -> Renderer {
    let mut rng = Rng::new(0xC0_FFEE);
    let mut r = Renderer::new();
    for k in 0..n_contours {
        r.add_actor(contour_actor(&mut rng, k));
    }
    for _ in 0..n_marker_layers {
        r.add_actor(markers_actor(&mut rng));
    }
    for k in 0..n_graticules {
        r.add_actor(graticule_actor(&mut rng, k));
    }
    for k in 0..n_surfaces {
        r.add_actor(cluster(&mut rng, 3 * k)); // kind 0: lit surfaces
    }
    r.background = Color::rgb(0.04, 0.04, 0.1);
    r.reset_camera();
    // A gentle oblique view: enough tilt to be a 3D exploratory frame,
    // while the graticule sheets still project to near-full-height
    // segments — the row-band engine's worst case, since every band
    // re-walks each full-height line for its own slice of rows.
    r.camera.azimuth(12.0);
    r.camera.elevation(-12.0);
    // Fill the viewport: `reset_camera` frames the bounding sphere with
    // generous margin, which would leave the graticule sheets spanning
    // only ~a third of the frame height.
    r.camera.zoom(3.0);
    r
}

fn main() {
    let smoke = smoke();
    let (w, h) = if smoke { (256, 192) } else { (480, 360) };
    let n_actors = 24;
    let reps = if smoke { 3 } else { 7 };

    let hardware_threads =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let rayon_env = std::env::var("RAYON_NUM_THREADS").ok();
    // measured inside a parallel region so the vendored rayon has resolved
    // RAYON_NUM_THREADS into an actual pool
    let rayon_threads = rayon::current_num_threads();

    // ---- 1. tile vs scanline frame time -------------------------------
    let (n_contours, n_markers, n_graticules, n_surfaces) =
        if smoke { (2, 1, 16, 1) } else { (6, 1, 48, 2) };
    let scene = perf_scene(n_contours, n_markers, n_graticules, n_surfaces);
    let n_actors_perf = n_contours + n_markers + n_graticules + n_surfaces;
    let mut fb_tile = Framebuffer::new(w, h);
    let mut fb_scan = Framebuffer::new(w, h);
    // warm both paths once, and hold them to bit-identity on RGBA8 output
    scene.render(&mut fb_tile);
    scanline_ref::render_scene_scanline(&scene, &mut fb_scan);
    assert_eq!(
        fb_tile.to_rgba8(),
        fb_scan.to_rgba8(),
        "tile and scanline engines diverged on the bench scene"
    );

    let mut tile_ms = Vec::new();
    let mut scan_ms = Vec::new();
    for _ in 0..reps {
        let t = Instant::now();
        scene.render(&mut fb_tile);
        tile_ms.push(t.elapsed().as_secs_f64() * 1000.0);
        let t = Instant::now();
        scanline_ref::render_scene_scanline(&scene, &mut fb_scan);
        scan_ms.push(t.elapsed().as_secs_f64() * 1000.0);
    }
    let tile = median(tile_ms);
    let scan = median(scan_ms);
    let speedup = scan / tile;
    // the >= 1.5x claim is a parallel-speedup claim: only enforceable when
    // the pool actually has more than one worker on real cores
    let speedup_asserted = hardware_threads > 1 && rayon_threads > 1;
    if speedup_asserted {
        assert!(
            speedup >= 1.5,
            "tile engine only {speedup:.2}x over scanline at {rayon_threads} threads"
        );
    }

    // ---- 2. delta vs full-frame transport bytes -----------------------
    // a small-camera-motion interaction script with the cadence of real
    // exploratory use: the user nudges the orbit, then studies the result
    // for a few frames before the next nudge. Stills cost a near-empty
    // delta (every tile hash matches), and even the nudge frames ship only
    // the tiles whose RGBA8 content actually changed.
    let mut motion_scene = self::scene(n_actors);
    let (dw, dh) = if smoke { (160, 120) } else { (320, 240) };
    let script: &[f64] =
        &[0.012, 0.0, 0.0, 0.008, 0.0, 0.0, -0.012, 0.0, 0.0, 0.008, 0.0, 0.0];
    let mut delta_stream = FrameStreamer::new(dw, dh, 0); // deltas after frame 0
    let mut key_stream = FrameStreamer::new(dw, dh, 0);
    let mut fb = Framebuffer::new(dw, dh);
    let mut delta_bytes = Vec::new();
    let mut key_bytes = Vec::new();
    for (i, step) in script.iter().enumerate() {
        motion_scene.camera.azimuth(*step);
        motion_scene.render(&mut fb);
        let rgba = fb.to_rgba8();
        let frame = i as u64;
        let (msg, _) = delta_stream.encode(0, frame, &rgba).expect("delta encode");
        let wire = encode_frame(&msg).expect("frame bytes").len() as f64;
        key_stream.force_keyframe();
        let (kmsg, _) = key_stream.encode(0, frame, &rgba).expect("key encode");
        let kwire = encode_frame(&kmsg).expect("frame bytes").len() as f64;
        if i > 0 {
            // frame 0 is a keyframe on both streams; compare steady state
            delta_bytes.push(wire);
            key_bytes.push(kwire);
        }
        if std::env::var("RENDER_BENCH_DEBUG").is_ok() {
            println!("frame {i} step {step}: delta {wire} key {kwire}");
        }
    }
    let delta_per_frame = delta_bytes.iter().sum::<f64>() / delta_bytes.len() as f64;
    let key_per_frame = key_bytes.iter().sum::<f64>() / key_bytes.len() as f64;
    let delta_ratio = key_per_frame / delta_per_frame;
    assert!(
        delta_ratio >= 4.0,
        "delta transport only {delta_ratio:.2}x smaller than keyframes \
         ({delta_per_frame:.0} vs {key_per_frame:.0} bytes/frame)"
    );

    // ---- 3. interaction-to-photon on the wall harness -----------------
    use dv3d::interaction::{CameraOp, ConfigOp};
    use hyperwall::cluster::run_wall;
    use hyperwall::workflow::WallWorkflowConfig;
    let wall_cfg = WallWorkflowConfig {
        n_cells: 2,
        synth: (1, 2, 10, 20),
        cell_px: if smoke { (48, 36) } else { (96, 72) },
    };
    let wall_frames = if smoke { 2 } else { 4 };
    let ops = vec![ConfigOp::Camera(CameraOp::Azimuth(15.0))];
    let report = run_wall(&wall_cfg, 4, wall_frames, &ops).expect("wall run");
    assert_eq!(report.resync_requests, 0, "healthy wall needed resyncs");
    let photon: Vec<f64> = report
        .frames
        .iter()
        .flat_map(|f| f.first_content_ms.iter().copied())
        .filter(|&ms| ms > 0.0)
        .collect();
    assert!(!photon.is_empty(), "no pixel content reached the server");
    let photon_mean = photon.iter().sum::<f64>() / photon.len() as f64;
    let photon_worst = photon.iter().cloned().fold(0.0f64, f64::max);

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"render\",\n",
            "  \"smoke\": {},\n",
            "  \"hardware_threads\": {},\n",
            "  \"rayon_threads\": {},\n",
            "  \"rayon_num_threads_env\": {},\n",
            "  \"frame_px\": [{}, {}],\n",
            "  \"n_actors\": {},\n",
            "  \"reps\": {},\n",
            "  \"scanline_frame_ms\": {:.3},\n",
            "  \"tile_frame_ms\": {:.3},\n",
            "  \"tile_speedup\": {:.3},\n",
            "  \"speedup_asserted\": {},\n",
            "  \"delta_px\": [{}, {}],\n",
            "  \"raw_frame_bytes\": {},\n",
            "  \"keyframe_bytes_per_frame\": {:.1},\n",
            "  \"delta_bytes_per_frame\": {:.1},\n",
            "  \"key_over_delta_ratio\": {:.2},\n",
            "  \"interaction_to_photon_mean_ms\": {:.3},\n",
            "  \"interaction_to_photon_worst_ms\": {:.3}\n",
            "}}\n"
        ),
        smoke,
        hardware_threads,
        rayon_threads,
        rayon_env.map(|v| format!("\"{v}\"")).unwrap_or_else(|| "null".into()),
        w,
        h,
        n_actors_perf,
        reps,
        scan,
        tile,
        speedup,
        speedup_asserted,
        dw,
        dh,
        dw * dh * 4,
        key_per_frame,
        delta_per_frame,
        delta_ratio,
        photon_mean,
        photon_worst
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_render.json");
    std::fs::write(path, &json).expect("write artifact");
    println!("{json}");
    println!(
        "bench render: tile {tile:.2} ms vs scanline {scan:.2} ms ({speedup:.2}x, \
         asserted: {speedup_asserted}), delta {delta_per_frame:.0} B/frame vs \
         key {key_per_frame:.0} B/frame ({delta_ratio:.1}x), \
         photon {photon_mean:.1} ms mean"
    );
}
