//! Fault-tolerance bench: frame round-trip times of a healthy wall versus
//! the same wall with one permanently dead panel (mirror-substituted).
//!
//! The design claim under test: graceful degradation keeps the wall
//! animating at comparable per-frame cost — the server's low-res mirror
//! render of the dead cell is cheap, so losing a panel must not stall the
//! other panels. Emits `BENCH_hyperwall_faults.json`.

use hyperwall::cluster::{run_wall, run_wall_with_faults, WallRunReport};
use hyperwall::fault::{Fault, FaultPlan};
use hyperwall::server::WallTuning;
use hyperwall::workflow::WallWorkflowConfig;
use std::time::Duration;

const N_CELLS: usize = 4;
const N_FRAMES: u64 = 8;
const REPS: usize = 5;

fn cfg() -> WallWorkflowConfig {
    WallWorkflowConfig { n_cells: N_CELLS, synth: (1, 2, 10, 20), cell_px: (64, 48) }
}

fn tuning() -> WallTuning {
    WallTuning {
        io_deadline: Duration::from_secs(1),
        frame_deadline: Duration::from_secs(1),
        backoff_base_frames: 1,
        max_reconnect_attempts: 1,
        reconnect_poll: Duration::from_millis(5),
        heartbeat_every_frames: 0,
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// Mean per-frame round trip of one run, ms.
fn mean_round_trip(report: &WallRunReport) -> f64 {
    report.frames.iter().map(|f| f.round_trip_ms).sum::<f64>()
        / report.frames.len().max(1) as f64
}

fn main() {
    // healthy wall
    let mut healthy_ms = Vec::new();
    for _ in 0..REPS {
        let report = run_wall(&cfg(), 4, N_FRAMES, &[]).expect("healthy wall");
        assert_eq!(report.degraded_frames, 0);
        healthy_ms.push(mean_round_trip(&report));
    }

    // same wall, one panel dead from frame 0 and never coming back
    let plan = FaultPlan::none()
        .inject(0, Fault::DropAtFrame(0))
        .inject(0, Fault::RefuseReconnect(u32::MAX));
    let mut dead_ms = Vec::new();
    let mut degraded_frames = 0;
    for _ in 0..REPS {
        let report = run_wall_with_faults(&cfg(), 4, N_FRAMES, &[], &plan, tuning())
            .expect("degraded wall");
        assert!(report.degraded_frames > 0, "fault plan had no effect: {report:?}");
        degraded_frames = report.degraded_frames;
        dead_ms.push(mean_round_trip(&report));
    }

    let healthy = median(healthy_ms);
    let dead = median(dead_ms);
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"hyperwall_faults\",\n",
            "  \"n_cells\": {},\n",
            "  \"n_frames\": {},\n",
            "  \"reps\": {},\n",
            "  \"healthy_frame_round_trip_ms\": {:.3},\n",
            "  \"one_dead_panel_frame_round_trip_ms\": {:.3},\n",
            "  \"dead_over_healthy_ratio\": {:.3},\n",
            "  \"degraded_panel_frames_per_run\": {}\n",
            "}}\n"
        ),
        N_CELLS,
        N_FRAMES,
        REPS,
        healthy,
        dead,
        dead / healthy,
        degraded_frames
    );
    // workspace root, independent of the bench binary's cwd
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hyperwall_faults.json");
    std::fs::write(path, &json).expect("write artifact");
    println!("{json}");
    println!(
        "bench hyperwall_faults: healthy {healthy:.2} ms/frame, one dead panel {dead:.2} ms/frame"
    );
}
