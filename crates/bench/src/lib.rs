#![forbid(unsafe_code)]

//! Shared fixtures for the benchmark harness.
//!
//! Each bench target regenerates one experiment from DESIGN.md's
//! per-experiment index (E2–E8); EXPERIMENTS.md records the measured
//! numbers next to the paper's qualitative claims.

use cdms::synth::SynthesisSpec;
use cdms::{Dataset, Variable};
use dv3d::translation::{translate_scalar, TranslationOptions};
use rvtk::ImageData;

/// The standard bench dataset: 8 timesteps, 6 levels, 24×48 horizontal.
pub fn bench_dataset() -> Dataset {
    SynthesisSpec::new(8, 6, 24, 48).seed(2012).build()
}

/// A larger dataset for scaling sweeps.
pub fn bench_dataset_sized(nlat: usize, nlon: usize) -> Dataset {
    SynthesisSpec::new(4, 6, nlat, nlon).seed(2012).build()
}

/// Temperature at t=0 as image data.
pub fn ta_image(ds: &Dataset) -> ImageData {
    let ta = ds.variable("ta").expect("ta").time_slab(0).expect("slab");
    translate_scalar(&ta, &TranslationOptions::default()).expect("translate")
}

/// A scalar variable at t=0.
pub fn slab(ds: &Dataset, name: &str) -> Variable {
    ds.variable(name).expect("variable").time_slab(0).expect("slab")
}
