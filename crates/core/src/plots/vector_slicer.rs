//! The Vector slicer plot: a draggable plane showing the vector field as
//! arrow glyphs or streamlines — "browse the structure of variables (such
//! as wind velocity) that have both magnitude and direction" (§III.C).

use crate::interaction::{Axis3, ConfigOp, VectorMode};
use crate::plots::{image_range, Plot};
use crate::transfer::TransferEditor;
use crate::{Dv3dError, Result};
use rvtk::filters::{glyphs_on_slice, streamlines, GlyphOptions, SliceAxis, StreamlineOptions};
use rvtk::math::Vec3;
use rvtk::render::{Actor, Renderer};
use rvtk::{ImageData, LookupTable};

/// An interactive vector-field slice plane.
#[derive(Debug, Clone)]
pub struct VectorSlicerPlot {
    image: ImageData,
    /// The slicing axis (planes are perpendicular to it).
    pub axis: Axis3,
    /// Slice position along the axis.
    pub slice_index: usize,
    /// Glyphs or streamlines.
    pub mode: VectorMode,
    /// Color state (colors by speed).
    pub editor: TransferEditor,
    /// Glyph controls.
    pub glyph_options: GlyphOptions,
    /// Streamline controls.
    pub streamline_options: StreamlineOptions,
    /// Streamline seeds per in-plane direction.
    pub seed_density: usize,
}

impl VectorSlicerPlot {
    /// A vector slicer over `image` (must carry vectors), z-plane default.
    pub fn new(image: ImageData, mode: VectorMode) -> Result<VectorSlicerPlot> {
        if image.vectors.is_none() {
            return Err(Dv3dError::Config("vector slicer needs a vector field".into()));
        }
        let editor = TransferEditor::new(image_range(&image));
        let slice_index = image.dims[2] / 2;
        let diag = image.bounds().diagonal();
        Ok(VectorSlicerPlot {
            image,
            axis: Axis3::Z,
            slice_index,
            mode,
            editor,
            glyph_options: GlyphOptions {
                stride: 2,
                scale: diag / 400.0,
                ..Default::default()
            },
            streamline_options: StreamlineOptions {
                step_size: diag / 200.0,
                max_steps: 300,
                ..Default::default()
            },
            seed_density: 6,
        })
    }

    fn slice_axis(&self) -> SliceAxis {
        SliceAxis::from(self.axis)
    }

    /// Seed points on the current plane for streamline integration.
    fn plane_seeds(&self) -> Vec<Vec3> {
        let b = self.image.bounds();
        let ai = self.slice_axis().index();
        let coord = self.image.origin[ai] + self.slice_index as f64 * self.image.spacing[ai];
        let n = self.seed_density.max(1);
        let mut seeds = Vec::with_capacity(n * n);
        let (u_ax, v_ax) = match self.slice_axis() {
            SliceAxis::X => (1, 2),
            SliceAxis::Y => (0, 2),
            SliceAxis::Z => (0, 1),
        };
        let lo = [b.min.x, b.min.y, b.min.z];
        let hi = [b.max.x, b.max.y, b.max.z];
        for j in 0..n {
            for i in 0..n {
                let mut p = [0.0f64; 3];
                p[ai] = coord;
                p[u_ax] = lo[u_ax]
                    + (hi[u_ax] - lo[u_ax]) * (i as f64 + 0.5) / n as f64;
                p[v_ax] = lo[v_ax]
                    + (hi[v_ax] - lo[v_ax]) * (j as f64 + 0.5) / n as f64;
                seeds.push(Vec3::new(p[0], p[1], p[2]));
            }
        }
        seeds
    }
}

impl Plot for VectorSlicerPlot {
    fn type_name(&self) -> &'static str {
        "Vector Slicer"
    }

    fn configure(&mut self, op: &ConfigOp) -> Result<bool> {
        match op {
            ConfigOp::MoveSlice { axis, delta } => {
                if *axis == self.axis {
                    let ai = self.slice_axis().index();
                    let n = self.image.dims[ai] as i64;
                    self.slice_index =
                        (self.slice_index as i64 + delta).clamp(0, n - 1) as usize;
                } else {
                    // switching axes re-centres the plane
                    self.axis = *axis;
                    let ai = self.slice_axis().index();
                    self.slice_index = self.image.dims[ai] / 2;
                }
                Ok(true)
            }
            ConfigOp::SetSlice { axis, index } => {
                self.axis = *axis;
                let ai = self.slice_axis().index();
                if *index >= self.image.dims[ai] {
                    return Err(Dv3dError::Config(format!("slice index {index} out of range")));
                }
                self.slice_index = *index;
                Ok(true)
            }
            ConfigOp::SetVectorMode(mode) => {
                self.mode = *mode;
                Ok(true)
            }
            ConfigOp::NextColormap => {
                self.editor.next_colormap();
                Ok(true)
            }
            ConfigOp::SetColormap(name) => {
                if !self.editor.set_colormap(name) {
                    return Err(Dv3dError::Config(format!("unknown colormap '{name}'")));
                }
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    fn populate(&self, renderer: &mut Renderer) -> Result<()> {
        let geometry = match self.mode {
            VectorMode::Glyphs => glyphs_on_slice(
                &self.image,
                self.slice_axis(),
                self.slice_index,
                &self.glyph_options,
            )?,
            VectorMode::Streamlines => {
                streamlines(&self.image, &self.plane_seeds(), &self.streamline_options)?
            }
        };
        let mut actor =
            Actor::from_poly_data(geometry).with_lookup_table(self.editor.lookup_table());
        actor.property.lighting = false;
        renderer.add_actor(actor);
        Ok(())
    }

    fn scalar_range(&self) -> (f32, f32) {
        self.editor.data_range
    }

    fn legend(&self) -> LookupTable {
        self.editor.lookup_table()
    }

    fn set_image(&mut self, image: ImageData) -> Result<()> {
        if image.vectors.is_none() {
            return Err(Dv3dError::Config("vector slicer needs a vector field".into()));
        }
        let ai = self.slice_axis().index();
        self.slice_index = self.slice_index.min(image.dims[ai].saturating_sub(1));
        self.editor.rescale(image_range(&image));
        self.image = image;
        Ok(())
    }

    fn image(&self) -> &ImageData {
        &self.image
    }

    fn status_line(&self) -> String {
        format!("vectors {:?} {:?}@{}", self.mode, self.axis, self.slice_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvtk::render::Framebuffer;
    use rvtk::Color;

    fn wind() -> ImageData {
        let n = 12;
        let mut vectors = Vec::with_capacity(n * n * n);
        for _k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let (x, y) = (i as f64 - 5.5, j as f64 - 5.5);
                    vectors.push([-y as f32, x as f32, 0.0]);
                }
            }
        }
        ImageData::from_fn([12, 12, 12], [1.0; 3], [0.0; 3], |x, y, _| {
            (((x - 5.5).powi(2) + (y - 5.5).powi(2)) as f32).sqrt()
        })
        .with_vectors(vectors)
        .unwrap()
    }

    #[test]
    fn requires_vectors() {
        let img = ImageData::from_fn([4, 4, 4], [1.0; 3], [0.0; 3], |_, _, _| 0.0);
        assert!(VectorSlicerPlot::new(img, VectorMode::Glyphs).is_err());
    }

    #[test]
    fn glyph_mode_renders_arrows() {
        let p = VectorSlicerPlot::new(wind(), VectorMode::Glyphs).unwrap();
        let mut r = Renderer::new();
        p.populate(&mut r).unwrap();
        assert!(!r.actors()[0].poly_data.lines.is_empty());
        r.reset_camera();
        let mut fb = Framebuffer::new(48, 48);
        r.render(&mut fb);
        assert!(fb.covered_pixels(Color::BLACK) > 20);
    }

    #[test]
    fn streamline_mode_renders_circles() {
        let mut p = VectorSlicerPlot::new(wind(), VectorMode::Glyphs).unwrap();
        p.configure(&ConfigOp::SetVectorMode(VectorMode::Streamlines)).unwrap();
        let mut r = Renderer::new();
        p.populate(&mut r).unwrap();
        let lines = &r.actors()[0].poly_data.lines;
        assert!(!lines.is_empty());
        // streamlines are long polylines, not 2-point glyph segments
        assert!(lines.iter().any(|l| l.len() > 10));
    }

    #[test]
    fn moving_and_switching_axes() {
        let mut p = VectorSlicerPlot::new(wind(), VectorMode::Glyphs).unwrap();
        assert_eq!(p.axis, Axis3::Z);
        p.configure(&ConfigOp::MoveSlice { axis: Axis3::Z, delta: 3 }).unwrap();
        assert_eq!(p.slice_index, 9);
        // switching axis re-centres
        p.configure(&ConfigOp::MoveSlice { axis: Axis3::X, delta: 1 }).unwrap();
        assert_eq!(p.axis, Axis3::X);
        assert_eq!(p.slice_index, 6);
        assert!(p.configure(&ConfigOp::SetSlice { axis: Axis3::Y, index: 99 }).is_err());
    }

    #[test]
    fn seeds_lie_on_the_plane() {
        let p = VectorSlicerPlot::new(wind(), VectorMode::Streamlines).unwrap();
        for s in p.plane_seeds() {
            assert!((s.z - p.slice_index as f64).abs() < 1e-9);
        }
        assert_eq!(p.plane_seeds().len(), 36);
    }

    #[test]
    fn set_image_validates_vectors() {
        let mut p = VectorSlicerPlot::new(wind(), VectorMode::Glyphs).unwrap();
        let plain = ImageData::from_fn([4, 4, 4], [1.0; 3], [0.0; 3], |_, _, _| 0.0);
        assert!(p.set_image(plain).is_err());
        assert!(p.set_image(wind()).is_ok());
    }
}
