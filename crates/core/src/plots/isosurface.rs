//! The Isosurface plot: a surface of one variable, optionally colored by
//! the spatially corresponding values of a second variable (§III.C).

use crate::interaction::ConfigOp;
use crate::plots::{image_range, Plot};
use crate::transfer::TransferEditor;
use crate::{Dv3dError, Result};
use parking_lot::Mutex;
use rvtk::filters::{isosurface, isosurface_colored};
use rvtk::render::{Actor, Renderer};
use rvtk::{ImageData, LookupTable, PolyData};

/// An interactive isosurface view.
///
/// Extraction is the expensive step (marching tetrahedra over every cell),
/// so the surface is cached and only re-extracted when the isovalue or the
/// data changes — camera navigation re-renders at rasterization cost only.
#[derive(Debug)]
pub struct IsosurfacePlot {
    image: ImageData,
    color_image: Option<ImageData>,
    /// Current isovalue.
    pub isovalue: f32,
    /// Colormap state; ranges over the *color* variable when present.
    pub editor: TransferEditor,
    /// Cached `(isovalue, surface)` of the last extraction.
    cache: Mutex<Option<(f32, PolyData)>>,
}

impl Clone for IsosurfacePlot {
    fn clone(&self) -> Self {
        IsosurfacePlot {
            image: self.image.clone(),
            color_image: self.color_image.clone(),
            isovalue: self.isovalue,
            editor: self.editor.clone(),
            cache: Mutex::new(self.cache.lock().clone()),
        }
    }
}

impl IsosurfacePlot {
    /// A new isosurface at `isovalue` (defaults to the range midpoint).
    pub fn new(
        image: ImageData,
        color_image: Option<ImageData>,
        isovalue: Option<f32>,
    ) -> Result<IsosurfacePlot> {
        if let Some(ci) = &color_image {
            if ci.dims != image.dims {
                return Err(Dv3dError::Config(format!(
                    "color field dims {:?} != surface field dims {:?}",
                    ci.dims, image.dims
                )));
            }
        }
        let surf_range = image_range(&image);
        let isovalue = isovalue.unwrap_or((surf_range.0 + surf_range.1) / 2.0);
        let color_range = color_image.as_ref().map(image_range).unwrap_or(surf_range);
        let mut plot = IsosurfacePlot {
            image,
            color_image,
            isovalue,
            editor: TransferEditor::new(color_range),
            cache: Mutex::new(None),
        };
        // When coloring by a second variable, auto-range the colormap to the
        // values actually present *on the surface* — the full color-field
        // range is usually dominated by regions the surface never visits.
        if plot.color_image.is_some() {
            if let Ok(surf) = plot.extract() {
                if let Some(r) = surf.scalar_range() {
                    if r.1 > r.0 {
                        plot.editor = TransferEditor::new(r);
                    }
                }
            }
        }
        Ok(plot)
    }

    /// Extracts the current surface, served from the cache when the
    /// isovalue hasn't changed since the last extraction.
    pub fn extract(&self) -> Result<rvtk::PolyData> {
        if let Some((v, surf)) = self.cache.lock().as_ref() {
            if *v == self.isovalue {
                return Ok(surf.clone());
            }
        }
        let surf = match &self.color_image {
            Some(ci) => isosurface_colored(&self.image, self.isovalue, ci)?,
            None => isosurface(&self.image, self.isovalue)?,
        };
        *self.cache.lock() = Some((self.isovalue, surf.clone()));
        Ok(surf)
    }
}

impl Plot for IsosurfacePlot {
    fn type_name(&self) -> &'static str {
        "Isosurface"
    }

    fn configure(&mut self, op: &ConfigOp) -> Result<bool> {
        match op {
            ConfigOp::SetIsovalue(v) => {
                self.isovalue = *v;
                Ok(true)
            }
            ConfigOp::AdjustIsovalue { delta_frac } => {
                let range = image_range(&self.image);
                self.isovalue = (self.isovalue + delta_frac * (range.1 - range.0))
                    .clamp(range.0, range.1);
                Ok(true)
            }
            ConfigOp::Leveling { dx, dy } => {
                self.editor.drag(*dx, *dy);
                Ok(true)
            }
            ConfigOp::NextColormap => {
                self.editor.next_colormap();
                Ok(true)
            }
            ConfigOp::SetColormap(name) => {
                if !self.editor.set_colormap(name) {
                    return Err(Dv3dError::Config(format!("unknown colormap '{name}'")));
                }
                Ok(true)
            }
            ConfigOp::ToggleInvert => {
                self.editor.toggle_invert();
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    fn populate(&self, renderer: &mut Renderer) -> Result<()> {
        let surf = self.extract()?;
        let actor = if self.color_image.is_some() {
            Actor::from_poly_data(surf).with_lookup_table(self.editor.lookup_table())
        } else {
            Actor::from_poly_data(surf).with_color(rvtk::Color::rgb(0.75, 0.8, 0.9))
        };
        renderer.add_actor(actor);
        Ok(())
    }

    fn scalar_range(&self) -> (f32, f32) {
        self.editor.data_range
    }

    fn legend(&self) -> LookupTable {
        self.editor.lookup_table()
    }

    fn set_image(&mut self, image: ImageData) -> Result<()> {
        if let Some(ci) = &self.color_image {
            if ci.dims != image.dims {
                return Err(Dv3dError::Config("new image dims do not match color field".into()));
            }
        }
        // keep the isovalue at the same relative position in the new range
        let old = image_range(&self.image);
        let new = image_range(&image);
        let rel = ((self.isovalue - old.0) / (old.1 - old.0).max(1e-6)).clamp(0.0, 1.0);
        self.isovalue = new.0 + rel * (new.1 - new.0);
        if self.color_image.is_none() {
            self.editor.rescale(new);
        }
        self.image = image;
        *self.cache.lock() = None; // data changed: invalidate
        Ok(())
    }

    fn image(&self) -> &ImageData {
        &self.image
    }

    fn status_line(&self) -> String {
        format!(
            "isosurface @ {:.3}{}",
            self.isovalue,
            if self.color_image.is_some() { " (colored)" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvtk::render::Framebuffer;
    use rvtk::Color;

    fn radial() -> ImageData {
        ImageData::from_fn([14, 14, 14], [1.0; 3], [0.0; 3], |x, y, z| {
            (((x - 6.5).powi(2) + (y - 6.5).powi(2) + (z - 6.5).powi(2)) as f32).sqrt()
        })
    }

    #[test]
    fn default_isovalue_is_midrange() {
        let p = IsosurfacePlot::new(radial(), None, None).unwrap();
        let (lo, hi) = image_range(p.image());
        assert!((p.isovalue - (lo + hi) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn isovalue_ops() {
        let mut p = IsosurfacePlot::new(radial(), None, None).unwrap();
        p.configure(&ConfigOp::SetIsovalue(4.0)).unwrap();
        assert_eq!(p.isovalue, 4.0);
        p.configure(&ConfigOp::AdjustIsovalue { delta_frac: 10.0 }).unwrap();
        let (_, hi) = image_range(p.image());
        assert_eq!(p.isovalue, hi); // clamped
    }

    #[test]
    fn smaller_isovalue_gives_smaller_surface() {
        let mut p = IsosurfacePlot::new(radial(), None, Some(5.0)).unwrap();
        let big = p.extract().unwrap().surface_area();
        p.configure(&ConfigOp::SetIsovalue(2.5)).unwrap();
        let small = p.extract().unwrap().surface_area();
        assert!(small < big, "{small} !< {big}");
    }

    #[test]
    fn colored_surface_uses_lut_ranged_to_surface_values() {
        let color = ImageData::from_fn([14, 14, 14], [1.0; 3], [0.0; 3], |_, _, z| z as f32);
        let p = IsosurfacePlot::new(radial(), Some(color), Some(5.0)).unwrap();
        // the sphere of radius 5 around z=6.5 only visits z ∈ [1.5, 11.5]:
        // the colormap ranges over what the surface shows, not (0, 13)
        let (lo, hi) = p.scalar_range();
        assert!(lo > 0.5 && lo < 2.5, "lo {lo}");
        assert!(hi > 10.5 && hi < 12.5, "hi {hi}");
        let mut r = Renderer::new();
        p.populate(&mut r).unwrap();
        assert!(r.actors()[0].property.lookup_table.is_some());
    }

    #[test]
    fn mismatched_color_dims_rejected() {
        let color = ImageData::from_fn([4, 4, 4], [1.0; 3], [0.0; 3], |_, _, _| 0.0);
        assert!(IsosurfacePlot::new(radial(), Some(color), None).is_err());
    }

    #[test]
    fn renders_nonempty() {
        let p = IsosurfacePlot::new(radial(), None, Some(4.0)).unwrap();
        let mut r = Renderer::new();
        p.populate(&mut r).unwrap();
        r.reset_camera();
        let mut fb = Framebuffer::new(48, 48);
        r.render(&mut fb);
        assert!(fb.covered_pixels(Color::BLACK) > 50);
    }

    #[test]
    fn extraction_cache_hits_and_invalidates() {
        let mut p = IsosurfacePlot::new(radial(), None, Some(5.0)).unwrap();
        let a = p.extract().unwrap();
        // same isovalue: cached copy is identical
        let b = p.extract().unwrap();
        assert_eq!(a, b);
        // new isovalue: different surface
        p.configure(&ConfigOp::SetIsovalue(3.0)).unwrap();
        let c = p.extract().unwrap();
        assert_ne!(a.points.len(), c.points.len());
        // new data: invalidated (extract matches a fresh plot)
        let img2 = ImageData::from_fn([14, 14, 14], [1.0; 3], [0.0; 3], |x, _, _| x as f32);
        p.set_image(img2.clone()).unwrap();
        let fresh = IsosurfacePlot::new(img2, None, Some(p.isovalue)).unwrap();
        assert_eq!(p.extract().unwrap(), fresh.extract().unwrap());
    }

    #[test]
    fn set_image_preserves_relative_isovalue() {
        let mut p = IsosurfacePlot::new(radial(), None, None).unwrap();
        let (lo, hi) = image_range(p.image());
        let rel = (p.isovalue - lo) / (hi - lo);
        let scaled = ImageData::from_fn([14, 14, 14], [1.0; 3], [0.0; 3], |x, y, z| {
            10.0 * (((x - 6.5).powi(2) + (y - 6.5).powi(2) + (z - 6.5).powi(2)) as f32).sqrt()
        });
        p.set_image(scaled).unwrap();
        let (lo2, hi2) = image_range(p.image());
        let rel2 = (p.isovalue - lo2) / (hi2 - lo2);
        assert!((rel - rel2).abs() < 1e-5);
    }
}
