//! The Hovmöller plots: slicer and volume render over a data volume whose
//! vertical dimension is *time* instead of height — "browse the 3D
//! structure of spatial time series" (§III.C, Fig 4).

use crate::interaction::ConfigOp;
use crate::plots::{Plot, SlicerPlot, VolumePlot};
use crate::Result;
use rvtk::render::Renderer;
use rvtk::{ImageData, LookupTable};

/// Which underlying view a Hovmöller plot uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HovmollerMode {
    Slicer,
    Volume,
}

/// A Hovmöller plot: delegates to a slicer or volume plot over a
/// time-as-z volume, but identifies itself distinctly (labels, palette).
pub struct HovmollerPlot {
    inner: Box<dyn Plot>,
    mode: HovmollerMode,
}

impl std::fmt::Debug for HovmollerPlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HovmollerPlot").field("mode", &self.mode).finish()
    }
}

impl HovmollerPlot {
    /// Wraps a time-as-z image in the requested mode.
    pub fn new(image: ImageData, mode: HovmollerMode) -> Result<HovmollerPlot> {
        let inner: Box<dyn Plot> = match mode {
            HovmollerMode::Slicer => Box::new(SlicerPlot::new(image, None)?),
            HovmollerMode::Volume => Box::new(VolumePlot::new(image)?),
        };
        Ok(HovmollerPlot { inner, mode })
    }

    /// The underlying mode.
    pub fn mode(&self) -> HovmollerMode {
        self.mode
    }
}

impl Plot for HovmollerPlot {
    fn type_name(&self) -> &'static str {
        match self.mode {
            HovmollerMode::Slicer => "Hovmoller Slicer",
            HovmollerMode::Volume => "Hovmoller Volume",
        }
    }

    fn configure(&mut self, op: &ConfigOp) -> Result<bool> {
        self.inner.configure(op)
    }

    fn populate(&self, renderer: &mut Renderer) -> Result<()> {
        self.inner.populate(renderer)
    }

    fn scalar_range(&self) -> (f32, f32) {
        self.inner.scalar_range()
    }

    fn legend(&self) -> LookupTable {
        self.inner.legend()
    }

    fn set_image(&mut self, image: ImageData) -> Result<()> {
        self.inner.set_image(image)
    }

    fn image(&self) -> &ImageData {
        self.inner.image()
    }

    fn status_line(&self) -> String {
        format!("hovmoller(time-as-z) {}", self.inner.status_line())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::{Axis3, ConfigOp};
    use rvtk::render::Framebuffer;
    use rvtk::Color;

    fn wave_volume() -> ImageData {
        // z is "time": an eastward-shifting sine in x
        ImageData::from_fn([24, 8, 10], [1.0, 1.0, 2.0], [0.0; 3], |x, _, t| {
            ((0.5 * (x - 2.0 * t)).sin()) as f32
        })
    }

    #[test]
    fn both_modes_construct_and_name_themselves() {
        let s = HovmollerPlot::new(wave_volume(), HovmollerMode::Slicer).unwrap();
        assert_eq!(s.type_name(), "Hovmoller Slicer");
        assert_eq!(s.mode(), HovmollerMode::Slicer);
        let v = HovmollerPlot::new(wave_volume(), HovmollerMode::Volume).unwrap();
        assert_eq!(v.type_name(), "Hovmoller Volume");
        assert!(s.status_line().contains("hovmoller"));
    }

    #[test]
    fn slicer_mode_moves_time_planes() {
        let mut p = HovmollerPlot::new(wave_volume(), HovmollerMode::Slicer).unwrap();
        // the z axis is time here: moving it browses the time series
        assert!(p.configure(&ConfigOp::MoveSlice { axis: Axis3::Z, delta: 2 }).unwrap());
        let mut r = Renderer::new();
        p.populate(&mut r).unwrap();
        assert_eq!(r.actors().len(), 1);
    }

    #[test]
    fn volume_mode_renders_ridges() {
        let p = HovmollerPlot::new(wave_volume(), HovmollerMode::Volume).unwrap();
        let mut r = Renderer::new();
        p.populate(&mut r).unwrap();
        r.reset_camera();
        let mut fb = Framebuffer::new(48, 48);
        r.render(&mut fb);
        assert!(fb.covered_pixels(Color::BLACK) > 30);
    }

    #[test]
    fn set_image_delegates() {
        let mut p = HovmollerPlot::new(wave_volume(), HovmollerMode::Volume).unwrap();
        let img = ImageData::from_fn([12, 4, 5], [1.0; 3], [0.0; 3], |x, _, _| x as f32);
        p.set_image(img).unwrap();
        assert_eq!(p.image().dims, [12, 4, 5]);
        assert_eq!(p.scalar_range(), (0.0, 11.0));
    }
}
