//! The Volume render plot: maps variable values to opacity and color,
//! revealing 3D structure at a glance; the interactive leveling interface
//! "greatly simplifies" transfer-function construction (§III.C).

use crate::interaction::ConfigOp;
use crate::plots::{image_range, Plot};
use crate::transfer::TransferEditor;
use crate::{Dv3dError, Result};
use rvtk::render::{BlendMode, Renderer, Volume, VolumeProperty};
use rvtk::{ImageData, LookupTable};

/// An interactive volume rendering.
#[derive(Debug, Clone)]
pub struct VolumePlot {
    image: ImageData,
    /// Transfer-function state driven by leveling drags.
    pub editor: TransferEditor,
    /// Blend mode (composite / MIP / average).
    pub blend: BlendMode,
    /// Ray sample distance in world units.
    pub sample_distance: f64,
    /// Early ray termination (ablation toggle).
    pub early_termination: bool,
}

impl VolumePlot {
    /// A volume plot with leveling initialized to the upper half range.
    pub fn new(image: ImageData) -> Result<VolumePlot> {
        let range = image_range(&image);
        let mut editor = TransferEditor::new(range);
        // start with the upper values emphasized, like DV3D's default
        editor.level = range.0 + 0.65 * (range.1 - range.0);
        editor.window = (range.1 - range.0) * 0.5;
        let diag = image.bounds().diagonal();
        Ok(VolumePlot {
            image,
            editor,
            blend: BlendMode::Composite,
            sample_distance: (diag / 150.0).max(1e-3),
            early_termination: true,
        })
    }

    fn volume_property(&self) -> VolumeProperty {
        VolumeProperty {
            color: self.editor.color_function(),
            opacity: self.editor.opacity_function(),
            blend: self.blend,
            sample_distance: self.sample_distance,
            early_termination_alpha: if self.early_termination { 0.98 } else { 2.0 },
        }
    }
}

impl Plot for VolumePlot {
    fn type_name(&self) -> &'static str {
        "Volume"
    }

    fn configure(&mut self, op: &ConfigOp) -> Result<bool> {
        match op {
            ConfigOp::Leveling { dx, dy } => {
                self.editor.drag(*dx, *dy);
                Ok(true)
            }
            ConfigOp::NextColormap => {
                self.editor.next_colormap();
                Ok(true)
            }
            ConfigOp::SetColormap(name) => {
                if !self.editor.set_colormap(name) {
                    return Err(Dv3dError::Config(format!("unknown colormap '{name}'")));
                }
                Ok(true)
            }
            ConfigOp::ToggleInvert => {
                self.editor.toggle_invert();
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    fn populate(&self, renderer: &mut Renderer) -> Result<()> {
        renderer.add_volume(Volume {
            image: self.image.clone(),
            property: self.volume_property(),
            visible: true,
        });
        Ok(())
    }

    fn scalar_range(&self) -> (f32, f32) {
        self.editor.data_range
    }

    fn legend(&self) -> LookupTable {
        self.editor.lookup_table()
    }

    fn set_image(&mut self, image: ImageData) -> Result<()> {
        self.editor.rescale(image_range(&image));
        self.image = image;
        Ok(())
    }

    fn image(&self) -> &ImageData {
        &self.image
    }

    fn status_line(&self) -> String {
        format!(
            "volume L:{:.3} W:{:.3} {:?}",
            self.editor.level, self.editor.window, self.blend
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::ConfigOp;
    use rvtk::render::Framebuffer;
    use rvtk::Color;

    fn ball() -> ImageData {
        ImageData::from_fn([16, 16, 16], [1.0; 3], [0.0; 3], |x, y, z| {
            let d2 = (x - 7.5).powi(2) + (y - 7.5).powi(2) + (z - 7.5).powi(2);
            (60.0 - d2 as f32).max(0.0)
        })
    }

    #[test]
    fn renders_a_blob() {
        let p = VolumePlot::new(ball()).unwrap();
        let mut r = Renderer::new();
        p.populate(&mut r).unwrap();
        r.reset_camera();
        let mut fb = Framebuffer::new(48, 48);
        r.render(&mut fb);
        assert!(fb.covered_pixels(Color::BLACK) > 30);
    }

    #[test]
    fn leveling_changes_the_rendering() {
        let mut p = VolumePlot::new(ball()).unwrap();
        let render = |p: &VolumePlot| {
            let mut r = Renderer::new();
            p.populate(&mut r).unwrap();
            r.reset_camera();
            let mut fb = Framebuffer::new(32, 32);
            r.render(&mut fb);
            fb.mean_luminance()
        };
        let before = render(&p);
        // push the ramp all the way up: much less becomes visible
        p.configure(&ConfigOp::Leveling { dx: 1.0, dy: 0.0 }).unwrap();
        let after = render(&p);
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn handles_colormap_ops_only() {
        let mut p = VolumePlot::new(ball()).unwrap();
        assert!(p.configure(&ConfigOp::NextColormap).unwrap());
        assert!(p.configure(&ConfigOp::ToggleInvert).unwrap());
        assert!(p.configure(&ConfigOp::SetColormap("hot".into())).unwrap());
        assert!(p.configure(&ConfigOp::SetColormap("bogus".into())).is_err());
        assert!(!p
            .configure(&ConfigOp::MoveSlice {
                axis: crate::interaction::Axis3::X,
                delta: 1
            })
            .unwrap());
    }

    #[test]
    fn set_image_rescales_editor() {
        let mut p = VolumePlot::new(ball()).unwrap();
        let img2 = ImageData::from_fn([8, 8, 8], [1.0; 3], [0.0; 3], |x, _, _| 1000.0 * x as f32);
        p.set_image(img2).unwrap();
        assert_eq!(p.scalar_range(), (0.0, 7000.0));
        assert!(p.editor.level > 0.0);
    }

    #[test]
    fn status_line_mentions_blend() {
        let p = VolumePlot::new(ball()).unwrap();
        assert!(p.status_line().contains("Composite"));
    }
}
