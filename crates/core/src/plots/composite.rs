//! The composite plot: several plots of the same domain sharing one cell —
//! Fig 3's top panel is "a combination volume render and slicer plot".
//!
//! Configuration ops are offered to every member (each takes what it
//! understands), so a leveling drag reshapes the volume while slice keys
//! move the planes, exactly like interacting with the combined cell in the
//! paper's screenshot.

use crate::interaction::ConfigOp;
use crate::plots::Plot;
use crate::Result;
use rvtk::render::Renderer;
use rvtk::{ImageData, LookupTable};

/// Several plots rendered into one cell.
pub struct CompositePlot {
    members: Vec<Box<dyn Plot>>,
}

impl std::fmt::Debug for CompositePlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.members.iter().map(|m| m.type_name()).collect();
        f.debug_struct("CompositePlot").field("members", &names).finish()
    }
}

impl CompositePlot {
    /// Combines ready-built plots; at least one required.
    pub fn new(members: Vec<Box<dyn Plot>>) -> Result<CompositePlot> {
        if members.is_empty() {
            return Err(crate::Dv3dError::Config("composite of nothing".into()));
        }
        Ok(CompositePlot { members })
    }

    /// The member plots.
    pub fn members(&self) -> &[Box<dyn Plot>] {
        &self.members
    }

    /// Mutable member access.
    pub fn members_mut(&mut self) -> &mut [Box<dyn Plot>] {
        &mut self.members
    }
}

impl Plot for CompositePlot {
    fn type_name(&self) -> &'static str {
        "Composite"
    }

    fn configure(&mut self, op: &ConfigOp) -> Result<bool> {
        let mut any = false;
        for m in &mut self.members {
            if m.configure(op)? {
                any = true;
            }
        }
        Ok(any)
    }

    fn populate(&self, renderer: &mut Renderer) -> Result<()> {
        for m in &self.members {
            m.populate(renderer)?;
        }
        Ok(())
    }

    fn scalar_range(&self) -> (f32, f32) {
        self.members[0].scalar_range()
    }

    fn legend(&self) -> LookupTable {
        self.members[0].legend()
    }

    fn set_image(&mut self, image: ImageData) -> Result<()> {
        for m in &mut self.members {
            m.set_image(image.clone())?;
        }
        Ok(())
    }

    fn image(&self) -> &ImageData {
        self.members[0].image()
    }

    fn status_line(&self) -> String {
        self.members
            .iter()
            .map(|m| m.type_name())
            .collect::<Vec<_>>()
            .join(" + ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::Axis3;
    use crate::plots::PlotSpec;
    use rvtk::render::Framebuffer;
    use rvtk::Color;

    fn ball() -> ImageData {
        ImageData::from_fn([12, 12, 12], [1.0; 3], [0.0; 3], |x, y, z| {
            let d2 = (x - 5.5).powi(2) + (y - 5.5).powi(2) + (z - 5.5).powi(2);
            (40.0 - d2 as f32).max(0.0)
        })
    }

    fn combined() -> CompositePlot {
        CompositePlot::new(vec![
            PlotSpec::volume(ball()).build().unwrap(),
            PlotSpec::slicer(ball()).build().unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn empty_composite_rejected() {
        assert!(CompositePlot::new(vec![]).is_err());
    }

    #[test]
    fn populates_all_members() {
        let c = combined();
        let mut r = Renderer::new();
        c.populate(&mut r).unwrap();
        assert_eq!(r.actors().len(), 1); // slicer plane
        assert_eq!(r.volumes().len(), 1); // volume
        r.reset_camera();
        let mut fb = Framebuffer::new(64, 64);
        r.render(&mut fb);
        assert!(fb.covered_pixels(Color::BLACK) > 100);
    }

    #[test]
    fn ops_dispatch_to_whoever_understands() {
        let mut c = combined();
        // slice op: only the slicer takes it, composite reports handled
        assert!(c.configure(&ConfigOp::MoveSlice { axis: Axis3::Z, delta: 2 }).unwrap());
        // leveling: both volume and slicer editors take it
        assert!(c.configure(&ConfigOp::Leveling { dx: 0.1, dy: 0.1 }).unwrap());
        // isovalue: nobody
        assert!(!c.configure(&ConfigOp::SetIsovalue(1.0)).unwrap());
        assert_eq!(c.status_line(), "Volume + Slicer");
    }

    #[test]
    fn set_image_updates_every_member() {
        let mut c = combined();
        let ramp = ImageData::from_fn([8, 8, 8], [1.0; 3], [0.0; 3], |x, _, _| x as f32);
        c.set_image(ramp).unwrap();
        for m in c.members() {
            assert_eq!(m.image().dims, [8, 8, 8]);
        }
        assert_eq!(c.scalar_range(), (0.0, 7.0));
    }

    #[test]
    fn works_inside_a_cell() {
        use crate::cell::Dv3dCell;
        let mut cell = Dv3dCell::from_plot("fig3 top", Box::new(combined()));
        let fb = cell.render(96, 72).unwrap();
        assert!(fb.covered_pixels(Color::BLACK) > 100);
    }
}
