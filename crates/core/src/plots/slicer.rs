//! The Slicer plot: interactively draggable slice planes showing
//! pseudocolor images, optionally overlaid with a second variable's
//! contour map (§III.C).

use crate::interaction::{Axis3, ConfigOp};
use crate::plots::{image_range, Plot};
use crate::transfer::TransferEditor;
use crate::{Dv3dError, Result};
use rvtk::filters::{auto_levels, contour_lines, slice_axis, SliceAxis};
use rvtk::render::{Actor, Renderer};
use rvtk::{Color, ImageData, LookupTable};

/// Interactive slice planes through a scalar volume.
#[derive(Debug, Clone)]
pub struct SlicerPlot {
    image: ImageData,
    /// Optional second variable contoured over the z plane.
    overlay: Option<ImageData>,
    /// Current slice index per axis.
    pub slice_index: [usize; 3],
    /// Which planes are visible.
    pub plane_enabled: [bool; 3],
    /// Transfer-function state (colormap + range).
    pub editor: TransferEditor,
    /// Number of overlay contour levels.
    pub n_contours: usize,
}

impl SlicerPlot {
    /// A slicer with the z plane enabled at mid-volume.
    pub fn new(image: ImageData, overlay: Option<ImageData>) -> Result<SlicerPlot> {
        if let Some(ov) = &overlay {
            if ov.dims != image.dims {
                return Err(Dv3dError::Config(format!(
                    "overlay dims {:?} != image dims {:?}",
                    ov.dims, image.dims
                )));
            }
        }
        let editor = TransferEditor::new(image_range(&image));
        let slice_index = [image.dims[0] / 2, image.dims[1] / 2, image.dims[2] / 2];
        Ok(SlicerPlot {
            image,
            overlay,
            slice_index,
            plane_enabled: [false, false, true],
            editor,
            n_contours: 6,
        })
    }

    fn move_slice(&mut self, axis: Axis3, delta: i64) {
        let ai = SliceAxis::from(axis).index();
        let n = self.image.dims[ai] as i64;
        let cur = self.slice_index[ai] as i64;
        self.slice_index[ai] = (cur + delta).clamp(0, n - 1) as usize;
    }
}

impl Plot for SlicerPlot {
    fn type_name(&self) -> &'static str {
        "Slicer"
    }

    fn configure(&mut self, op: &ConfigOp) -> Result<bool> {
        match op {
            ConfigOp::MoveSlice { axis, delta } => {
                self.move_slice(*axis, *delta);
                Ok(true)
            }
            ConfigOp::SetSlice { axis, index } => {
                let ai = SliceAxis::from(*axis).index();
                if *index >= self.image.dims[ai] {
                    return Err(Dv3dError::Config(format!(
                        "slice index {index} out of range for axis {ai}"
                    )));
                }
                self.slice_index[ai] = *index;
                Ok(true)
            }
            ConfigOp::TogglePlane { axis } => {
                let ai = SliceAxis::from(*axis).index();
                self.plane_enabled[ai] = !self.plane_enabled[ai];
                Ok(true)
            }
            ConfigOp::Leveling { dx, dy } => {
                self.editor.drag(*dx, *dy);
                Ok(true)
            }
            ConfigOp::NextColormap => {
                self.editor.next_colormap();
                Ok(true)
            }
            ConfigOp::SetColormap(name) => {
                if !self.editor.set_colormap(name) {
                    return Err(Dv3dError::Config(format!("unknown colormap '{name}'")));
                }
                Ok(true)
            }
            ConfigOp::ToggleInvert => {
                self.editor.toggle_invert();
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    fn populate(&self, renderer: &mut Renderer) -> Result<()> {
        for (ai, axis) in [SliceAxis::X, SliceAxis::Y, SliceAxis::Z].into_iter().enumerate() {
            if !self.plane_enabled[ai] {
                continue;
            }
            let surf = slice_axis(&self.image, axis, self.slice_index[ai])?;
            let mut actor =
                Actor::from_poly_data(surf).with_lookup_table(self.editor.lookup_table());
            actor.property.lighting = false;
            renderer.add_actor(actor);
        }
        // overlay contours on the z plane
        if let Some(ov) = &self.overlay {
            if self.plane_enabled[2] {
                let range = image_range(ov);
                let levels = auto_levels(range, self.n_contours);
                let mut lines = contour_lines(ov, SliceAxis::Z, self.slice_index[2], &levels)?;
                // lift contour lines slightly above the plane so they show
                for p in &mut lines.points {
                    p.z += self.image.spacing[2] * 0.02;
                }
                let mut actor = Actor::from_poly_data(lines).with_color(Color::WHITE);
                actor.property.lighting = false;
                renderer.add_actor(actor);
            }
        }
        Ok(())
    }

    fn scalar_range(&self) -> (f32, f32) {
        self.editor.data_range
    }

    fn legend(&self) -> LookupTable {
        self.editor.lookup_table()
    }

    fn set_image(&mut self, image: ImageData) -> Result<()> {
        if let Some(ov) = &self.overlay {
            if ov.dims != image.dims {
                return Err(Dv3dError::Config("new image dims do not match overlay".into()));
            }
        }
        for ai in 0..3 {
            self.slice_index[ai] = self.slice_index[ai].min(image.dims[ai].saturating_sub(1));
        }
        self.editor.rescale(image_range(&image));
        self.image = image;
        Ok(())
    }

    fn image(&self) -> &ImageData {
        &self.image
    }

    fn status_line(&self) -> String {
        format!(
            "slices x:{} y:{} z:{} [{}{}{}]",
            self.slice_index[0],
            self.slice_index[1],
            self.slice_index[2],
            if self.plane_enabled[0] { 'X' } else { '-' },
            if self.plane_enabled[1] { 'Y' } else { '-' },
            if self.plane_enabled[2] { 'Z' } else { '-' },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvtk::render::Framebuffer;

    fn image() -> ImageData {
        ImageData::from_fn([8, 8, 6], [1.0; 3], [0.0; 3], |x, y, z| (x + y + z) as f32)
    }

    #[test]
    fn starts_mid_volume_with_z_plane() {
        let p = SlicerPlot::new(image(), None).unwrap();
        assert_eq!(p.slice_index, [4, 4, 3]);
        assert_eq!(p.plane_enabled, [false, false, true]);
    }

    #[test]
    fn move_slice_clamps() {
        let mut p = SlicerPlot::new(image(), None).unwrap();
        p.configure(&ConfigOp::MoveSlice { axis: Axis3::Z, delta: 100 }).unwrap();
        assert_eq!(p.slice_index[2], 5);
        p.configure(&ConfigOp::MoveSlice { axis: Axis3::Z, delta: -100 }).unwrap();
        assert_eq!(p.slice_index[2], 0);
    }

    #[test]
    fn set_slice_validates() {
        let mut p = SlicerPlot::new(image(), None).unwrap();
        assert!(p.configure(&ConfigOp::SetSlice { axis: Axis3::X, index: 7 }).unwrap());
        assert!(p.configure(&ConfigOp::SetSlice { axis: Axis3::X, index: 8 }).is_err());
    }

    #[test]
    fn toggling_planes_changes_scene_size() {
        let mut p = SlicerPlot::new(image(), None).unwrap();
        let mut r1 = Renderer::new();
        p.populate(&mut r1).unwrap();
        assert_eq!(r1.actors().len(), 1);
        p.configure(&ConfigOp::TogglePlane { axis: Axis3::X }).unwrap();
        p.configure(&ConfigOp::TogglePlane { axis: Axis3::Y }).unwrap();
        let mut r3 = Renderer::new();
        p.populate(&mut r3).unwrap();
        assert_eq!(r3.actors().len(), 3);
    }

    #[test]
    fn overlay_contours_add_line_actor() {
        let ov = ImageData::from_fn([8, 8, 6], [1.0; 3], [0.0; 3], |x, _, _| x as f32);
        let p = SlicerPlot::new(image(), Some(ov)).unwrap();
        let mut r = Renderer::new();
        p.populate(&mut r).unwrap();
        assert_eq!(r.actors().len(), 2);
        assert!(!r.actors()[1].poly_data.lines.is_empty());
    }

    #[test]
    fn overlay_dims_validated() {
        let ov = ImageData::from_fn([4, 4, 4], [1.0; 3], [0.0; 3], |_, _, _| 0.0);
        assert!(SlicerPlot::new(image(), Some(ov)).is_err());
    }

    #[test]
    fn unhandled_ops_return_false() {
        let mut p = SlicerPlot::new(image(), None).unwrap();
        assert!(!p.configure(&ConfigOp::SetIsovalue(1.0)).unwrap());
        assert!(!p.configure(&ConfigOp::StepTime(1)).unwrap());
    }

    #[test]
    fn renders_pseudocolor_slice() {
        let p = SlicerPlot::new(image(), None).unwrap();
        let mut r = Renderer::new();
        p.populate(&mut r).unwrap();
        r.reset_camera();
        let mut fb = Framebuffer::new(64, 64);
        r.render(&mut fb);
        assert!(fb.covered_pixels(Color::BLACK) > 100);
    }

    #[test]
    fn set_image_rescales_and_clamps() {
        let mut p = SlicerPlot::new(image(), None).unwrap();
        p.slice_index = [7, 7, 5];
        let smaller =
            ImageData::from_fn([4, 4, 2], [1.0; 3], [0.0; 3], |x, _, _| 100.0 * x as f32);
        p.set_image(smaller).unwrap();
        assert_eq!(p.slice_index, [3, 3, 1]);
        assert_eq!(p.scalar_range(), (0.0, 300.0));
    }

    #[test]
    fn status_line_reflects_state() {
        let p = SlicerPlot::new(image(), None).unwrap();
        assert_eq!(p.status_line(), "slices x:4 y:4 z:3 [--Z]");
    }
}
