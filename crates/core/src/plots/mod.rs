//! The DV3D plot types (§III.C): coordinated interactive 3D views, each
//! highlighting particular features of the data.
//!
//! Every plot implements [`Plot`]: it owns its data and interactive state,
//! responds to [`ConfigOp`]s, and populates an `rvtk` renderer with actors
//! and volumes. DV3D cells, the spreadsheet, the animation controller and
//! the hyperwall clients all drive plots exclusively through this trait.

mod composite;
mod hovmoller;
mod isosurface;
mod slicer;
mod vector_slicer;
mod volume;

pub use composite::CompositePlot;
pub use hovmoller::{HovmollerMode, HovmollerPlot};
pub use isosurface::IsosurfacePlot;
pub use slicer::SlicerPlot;
pub use vector_slicer::VectorSlicerPlot;
pub use volume::VolumePlot;

use crate::interaction::{ConfigOp, VectorMode};
use crate::Result;
use rvtk::render::Renderer;
use rvtk::{ImageData, LookupTable};

/// The common interface of all DV3D plot types.
pub trait Plot: Send {
    /// Short type name shown in labels ("Slicer", "Volume", …).
    fn type_name(&self) -> &'static str;

    /// Applies a configuration operation; returns `true` when the op was
    /// meaningful for this plot type (camera ops are handled by the cell).
    fn configure(&mut self, op: &ConfigOp) -> Result<bool>;

    /// Adds this plot's actors/volumes to a renderer.
    fn populate(&self, renderer: &mut Renderer) -> Result<()>;

    /// The scalar range being visualized.
    fn scalar_range(&self) -> (f32, f32);

    /// The lookup table for the cell's colorbar legend.
    fn legend(&self) -> LookupTable;

    /// Replaces the plot's data (animation steps through timesteps this
    /// way), preserving interactive state where it remains valid.
    fn set_image(&mut self, image: ImageData) -> Result<()>;

    /// The current primary image (used by probing).
    fn image(&self) -> &ImageData;

    /// One-line description of the interactive state for the cell label.
    fn status_line(&self) -> String;
}

/// A declarative description of a plot — what the plot-palette entries and
/// workflow modules construct.
#[derive(Debug, Clone)]
pub enum PlotSpec {
    Slicer {
        image: ImageData,
        /// Second variable overlaid as contour lines on the z plane.
        overlay: Option<ImageData>,
    },
    Volume {
        image: ImageData,
    },
    Isosurface {
        image: ImageData,
        /// Second variable coloring the surface.
        color_image: Option<ImageData>,
        /// Initial isovalue (defaults to the range midpoint).
        isovalue: Option<f32>,
    },
    Hovmoller {
        image: ImageData,
        mode: HovmollerMode,
    },
    VectorSlicer {
        image: ImageData,
        mode: VectorMode,
    },
    /// Several plots sharing one cell (Fig 3's combined volume + slicer).
    Combined {
        members: Vec<PlotSpec>,
    },
}

impl PlotSpec {
    /// A slicer over one field.
    pub fn slicer(image: ImageData) -> PlotSpec {
        PlotSpec::Slicer { image, overlay: None }
    }

    /// A slicer with a second-variable contour overlay.
    pub fn slicer_with_overlay(image: ImageData, overlay: ImageData) -> PlotSpec {
        PlotSpec::Slicer { image, overlay: Some(overlay) }
    }

    /// A volume rendering.
    pub fn volume(image: ImageData) -> PlotSpec {
        PlotSpec::Volume { image }
    }

    /// An isosurface at the range midpoint.
    pub fn isosurface(image: ImageData) -> PlotSpec {
        PlotSpec::Isosurface { image, color_image: None, isovalue: None }
    }

    /// An isosurface of one variable colored by another.
    pub fn isosurface_colored(image: ImageData, color_image: ImageData) -> PlotSpec {
        PlotSpec::Isosurface { image, color_image: Some(color_image), isovalue: None }
    }

    /// A Hovmöller slicer (time as the vertical dimension).
    pub fn hovmoller_slicer(image: ImageData) -> PlotSpec {
        PlotSpec::Hovmoller { image, mode: HovmollerMode::Slicer }
    }

    /// A Hovmöller volume rendering.
    pub fn hovmoller_volume(image: ImageData) -> PlotSpec {
        PlotSpec::Hovmoller { image, mode: HovmollerMode::Volume }
    }

    /// A vector slicer (glyphs by default).
    pub fn vector_slicer(image: ImageData) -> PlotSpec {
        PlotSpec::VectorSlicer { image, mode: VectorMode::Glyphs }
    }

    /// Fig 3's combined cell: a volume rendering with a slice plane.
    pub fn combined_volume_slicer(image: ImageData) -> PlotSpec {
        PlotSpec::Combined {
            members: vec![PlotSpec::volume(image.clone()), PlotSpec::slicer(image)],
        }
    }

    /// Builds the live plot object.
    pub fn build(self) -> Result<Box<dyn Plot>> {
        Ok(match self {
            PlotSpec::Slicer { image, overlay } => {
                Box::new(SlicerPlot::new(image, overlay)?)
            }
            PlotSpec::Volume { image } => Box::new(VolumePlot::new(image)?),
            PlotSpec::Isosurface { image, color_image, isovalue } => {
                Box::new(IsosurfacePlot::new(image, color_image, isovalue)?)
            }
            PlotSpec::Hovmoller { image, mode } => {
                Box::new(HovmollerPlot::new(image, mode)?)
            }
            PlotSpec::VectorSlicer { image, mode } => {
                Box::new(VectorSlicerPlot::new(image, mode)?)
            }
            PlotSpec::Combined { members } => {
                let built: Result<Vec<Box<dyn Plot>>> =
                    members.into_iter().map(|m| m.build()).collect();
                Box::new(CompositePlot::new(built?)?)
            }
        })
    }

    /// The plot type's palette name.
    pub fn palette_name(&self) -> &'static str {
        match self {
            PlotSpec::Slicer { .. } => "Slicer",
            PlotSpec::Volume { .. } => "Volume",
            PlotSpec::Isosurface { .. } => "Isosurface",
            PlotSpec::Hovmoller { mode: HovmollerMode::Slicer, .. } => "Hovmoller Slicer",
            PlotSpec::Hovmoller { mode: HovmollerMode::Volume, .. } => "Hovmoller Volume",
            PlotSpec::VectorSlicer { .. } => "Vector Slicer",
            PlotSpec::Combined { .. } => "Combined",
        }
    }
}

/// Range helper shared by plot constructors.
pub(crate) fn image_range(image: &ImageData) -> (f32, f32) {
    image.scalar_range().unwrap_or((0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_image() -> ImageData {
        ImageData::from_fn([6, 6, 4], [1.0; 3], [0.0; 3], |x, y, z| (x + y + z) as f32)
    }

    #[test]
    fn specs_build_all_plot_types() {
        let specs: Vec<(PlotSpec, &str)> = vec![
            (PlotSpec::slicer(tiny_image()), "Slicer"),
            (PlotSpec::volume(tiny_image()), "Volume"),
            (PlotSpec::isosurface(tiny_image()), "Isosurface"),
            (PlotSpec::hovmoller_slicer(tiny_image()), "Hovmoller Slicer"),
            (PlotSpec::hovmoller_volume(tiny_image()), "Hovmoller Volume"),
        ];
        for (spec, name) in specs {
            assert_eq!(spec.palette_name(), name);
            let plot = spec.build().unwrap();
            assert!(!plot.type_name().is_empty());
            assert!(!plot.status_line().is_empty());
        }
        // vector slicer needs vectors
        let n = 6 * 6 * 4;
        let img = tiny_image().with_vectors(vec![[1.0, 0.0, 0.0]; n]).unwrap();
        let plot = PlotSpec::vector_slicer(img).build().unwrap();
        assert_eq!(plot.type_name(), "Vector Slicer");
    }

    #[test]
    fn every_plot_renders_nonempty_scene() {
        use rvtk::render::{Framebuffer, Renderer};
        let n = 6 * 6 * 4;
        let plots: Vec<Box<dyn Plot>> = vec![
            PlotSpec::slicer(tiny_image()).build().unwrap(),
            PlotSpec::volume(tiny_image()).build().unwrap(),
            PlotSpec::isosurface(tiny_image()).build().unwrap(),
            PlotSpec::hovmoller_volume(tiny_image()).build().unwrap(),
            PlotSpec::vector_slicer(
                tiny_image().with_vectors(vec![[2.0, 1.0, 0.0]; n]).unwrap(),
            )
            .build()
            .unwrap(),
        ];
        for plot in plots {
            let mut r = Renderer::new();
            plot.populate(&mut r).unwrap();
            r.reset_camera();
            let mut fb = Framebuffer::new(48, 48);
            r.render(&mut fb);
            assert!(
                fb.covered_pixels(rvtk::Color::BLACK) > 10,
                "{} rendered empty",
                plot.type_name()
            );
        }
    }
}
