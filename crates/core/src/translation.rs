//! The DV3D translation module: CDMS variables → renderable image data.
//!
//! "A DV3D translation module converts the processed CDMS data volumes into
//! VTK image data instances to initialize the visualization branch of a
//! DV3D workflow" (§III.G). The mapping is:
//!
//! * longitude → x (degrees east),
//! * latitude → y (degrees north),
//! * level → z (level *index* stretched by a vertical scale — pressure
//!   levels are non-uniform, so index space keeps the grid regular), or
//! * time → z for Hovmöller volumes (variables tagged `dv3d_vertical=time`
//!   by [`cdat::hovmoller::hovmoller_volume`]).
//!
//! Masked elements become NaNs, which every downstream filter and renderer
//! treats as missing.

use crate::{Dv3dError, Result};
use cdms::axis::AxisKind;
use cdms::Variable;
use rvtk::ImageData;

/// Options controlling variable → image conversion.
#[derive(Debug, Clone)]
pub struct TranslationOptions {
    /// World-units of z per level (or per timestep for Hovmöller volumes).
    /// Chosen so a typical volume is visually box-like next to a 360°-wide
    /// horizontal domain.
    pub vertical_scale: f64,
    /// Override the automatic vertical-axis choice: `Some(true)` forces
    /// time-as-z, `Some(false)` forces level-as-z.
    pub time_as_vertical: Option<bool>,
}

impl Default for TranslationOptions {
    fn default() -> TranslationOptions {
        TranslationOptions { vertical_scale: 10.0, time_as_vertical: None }
    }
}

fn is_hovmoller(var: &Variable, opts: &TranslationOptions) -> bool {
    match opts.time_as_vertical {
        Some(b) => b,
        None => var
            .attributes
            .get("dv3d_vertical")
            .and_then(|a| a.as_text())
            .map(|s| s == "time")
            .unwrap_or(false),
    }
}

/// The axis kinds mapped to (x, y, z) for this variable.
fn axis_layout(var: &Variable, opts: &TranslationOptions) -> Result<(usize, usize, Option<usize>)> {
    let lat = var
        .axis_index(AxisKind::Latitude)
        .ok_or_else(|| Dv3dError::Config(format!("'{}' has no latitude axis", var.id)))?;
    let lon = var
        .axis_index(AxisKind::Longitude)
        .ok_or_else(|| Dv3dError::Config(format!("'{}' has no longitude axis", var.id)))?;
    let vertical = if is_hovmoller(var, opts) {
        var.axis_index(AxisKind::Time)
    } else {
        var.axis_index(AxisKind::Level)
    };
    Ok((lat, lon, vertical))
}

/// Converts a scalar variable to image data.
///
/// Accepts `(lat, lon)`, `(lev, lat, lon)`, or — tagged Hovmöller —
/// `(time, lat, lon)` variables. 2D fields produce a one-layer volume.
/// Returns an error for variables that still have both time and level axes
/// (select a time slab first).
pub fn translate_scalar(var: &Variable, opts: &TranslationOptions) -> Result<ImageData> {
    let hov = is_hovmoller(var, opts);
    if !hov && var.axis_index(AxisKind::Time).is_some() && var.n_times() > 1 {
        return Err(Dv3dError::Config(format!(
            "'{}' still has {} timesteps; take a time slab or build a Hovmöller volume",
            var.id,
            var.n_times()
        )));
    }
    let canon = var.to_canonical_order()?;
    let (lat_i, lon_i, vert_i) = axis_layout(&canon, opts)?;
    let lat = &canon.axes[lat_i];
    let lon = &canon.axes[lon_i];
    let nz = vert_i.map(|i| canon.axes[i].len()).unwrap_or(1);
    let (ny, nx) = (lat.len(), lon.len());

    // Horizontal spacing from the (assumed uniform) axes.
    let dx = if nx > 1 { (lon.values[1] - lon.values[0]).abs() } else { 1.0 };
    let dy = if ny > 1 { (lat.values[1] - lat.values[0]).abs() } else { 1.0 };
    let (lon_a, lon_b) = lon.range();
    let origin = [lon_a.min(lon_b), lat.range().0.min(lat.range().1), 0.0];

    // y must ascend with latitude; flip rows if the axis descends.
    let lat_ascending = lat.direction() >= 0;

    let mut scalars = vec![f32::NAN; nx * ny * nz];
    for k in 0..nz {
        for j in 0..ny {
            let jj = if lat_ascending { j } else { ny - 1 - j };
            for i in 0..nx {
                let value = match (vert_i, canon.rank()) {
                    (Some(_), 3) => canon.array.get_valid(&[k, jj, i]),
                    (None, 2) => canon.array.get_valid(&[jj, i]),
                    _ => {
                        return Err(Dv3dError::Config(format!(
                            "'{}' rank {} unsupported by translation",
                            var.id,
                            canon.rank()
                        )))
                    }
                }
                .map_err(Dv3dError::from)?;
                // Level index k ascends with height already: pressure axes
                // store 1000→10 hPa, so index order *is* bottom-up.
                scalars[i + nx * (j + ny * k)] = value.unwrap_or(f32::NAN);
            }
        }
    }
    ImageData::new([nx, ny, nz], [dx, dy, opts.vertical_scale], origin, scalars)
        .map_err(Dv3dError::from)
}

/// Converts a `(u, v)` wind pair to image data with vectors (w = 0).
/// The scalar field carries the wind speed for color mapping.
pub fn translate_vector(
    u: &Variable,
    v: &Variable,
    opts: &TranslationOptions,
) -> Result<ImageData> {
    if u.shape() != v.shape() {
        return Err(Dv3dError::Config(format!(
            "wind components differ in shape: {:?} vs {:?}",
            u.shape(),
            v.shape()
        )));
    }
    let speed = cdat::ops::magnitude(u, v)?;
    let mut img = translate_scalar(&speed, opts)?;

    // Re-walk the grid to attach vectors in the same layout.
    let canon_u = u.to_canonical_order()?;
    let canon_v = v.to_canonical_order()?;
    let (lat_i, _, vert_i) = axis_layout(&canon_u, opts)?;
    let lat = &canon_u.axes[lat_i];
    let lat_ascending = lat.direction() >= 0;
    let [nx, ny, nz] = img.dims;
    let mut vectors = vec![[0.0f32; 3]; nx * ny * nz];
    for k in 0..nz {
        for j in 0..ny {
            let jj = if lat_ascending { j } else { ny - 1 - j };
            for i in 0..nx {
                let (uu, vv) = match (vert_i, canon_u.rank()) {
                    (Some(_), 3) => (
                        canon_u.array.get_valid(&[k, jj, i]).map_err(Dv3dError::from)?,
                        canon_v.array.get_valid(&[k, jj, i]).map_err(Dv3dError::from)?,
                    ),
                    (None, 2) => (
                        canon_u.array.get_valid(&[jj, i]).map_err(Dv3dError::from)?,
                        canon_v.array.get_valid(&[jj, i]).map_err(Dv3dError::from)?,
                    ),
                    _ => {
                        return Err(Dv3dError::Config(
                            "unsupported rank for vector translation".into(),
                        ))
                    }
                };
                vectors[i + nx * (j + ny * k)] =
                    [uu.unwrap_or(0.0), vv.unwrap_or(0.0), 0.0];
            }
        }
    }
    img = img.with_vectors(vectors).map_err(Dv3dError::from)?;
    Ok(img)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdat::hovmoller::hovmoller_volume;
    use cdms::synth::SynthesisSpec;
    use rvtk::Vec3;

    #[test]
    fn translate_3d_scalar_layout() {
        let ds = SynthesisSpec::new(1, 4, 16, 32).build();
        let ta = ds.variable("ta").unwrap().time_slab(0).unwrap();
        let img = translate_scalar(&ta, &TranslationOptions::default()).unwrap();
        assert_eq!(img.dims, [32, 16, 4]);
        // spacing: 360/32 = 11.25° in x, 180/16 = 11.25° in y, 10 per level
        assert!((img.spacing[0] - 11.25).abs() < 1e-9);
        assert!((img.spacing[1] - 11.25).abs() < 1e-9);
        assert_eq!(img.spacing[2], 10.0);
        // value at (i, j, k) equals variable at (k, lat j, lon i)
        let expect = ta.array.get(&[1, 3, 5]).unwrap();
        assert_eq!(img.scalar(5, 3, 1), expect);
    }

    #[test]
    fn translate_2d_scalar_single_layer() {
        let ds = SynthesisSpec::new(1, 1, 8, 16).build();
        let lf = ds.variable("sftlf").unwrap();
        let img = translate_scalar(lf, &TranslationOptions::default()).unwrap();
        assert_eq!(img.dims, [16, 8, 1]);
        assert_eq!(img.scalar(3, 2, 0), lf.array.get(&[2, 3]).unwrap());
    }

    #[test]
    fn masked_values_become_nan() {
        let ds = SynthesisSpec::new(1, 1, 8, 16).build();
        let tos = ds.variable("tos").unwrap().time_slab(0).unwrap();
        let img = translate_scalar(&tos, &TranslationOptions::default()).unwrap();
        let n_nan = img.scalars.iter().filter(|v| v.is_nan()).count();
        assert_eq!(n_nan, tos.array.len() - tos.array.valid_count());
    }

    #[test]
    fn multi_time_without_hovmoller_tag_rejected() {
        let ds = SynthesisSpec::new(3, 2, 8, 16).build();
        let ta = ds.variable("ta").unwrap();
        assert!(translate_scalar(ta, &TranslationOptions::default()).is_err());
    }

    #[test]
    fn hovmoller_volume_maps_time_to_z() {
        let ds = SynthesisSpec::new(5, 1, 8, 16).build();
        let wave = hovmoller_volume(ds.variable("wave").unwrap()).unwrap();
        let img = translate_scalar(&wave, &TranslationOptions::default()).unwrap();
        assert_eq!(img.dims, [16, 8, 5]);
        let expect = wave.array.get(&[3, 2, 7]).unwrap();
        assert_eq!(img.scalar(7, 2, 3), expect);
    }

    #[test]
    fn explicit_time_as_vertical_override() {
        let ds = SynthesisSpec::new(4, 1, 8, 16).build();
        let pr = ds.variable("pr").unwrap(); // untagged (time, lat, lon)
        let opts =
            TranslationOptions { time_as_vertical: Some(true), ..Default::default() };
        let img = translate_scalar(pr, &opts).unwrap();
        assert_eq!(img.dims, [16, 8, 4]);
    }

    #[test]
    fn vector_translation_carries_speed_and_components() {
        let ds = SynthesisSpec::new(1, 3, 8, 16).build();
        let u = ds.variable("ua").unwrap().time_slab(0).unwrap();
        let v = ds.variable("va").unwrap().time_slab(0).unwrap();
        let img = translate_vector(&u, &v, &TranslationOptions::default()).unwrap();
        assert_eq!(img.dims, [16, 8, 3]);
        let vectors = img.vectors.as_ref().unwrap();
        let vec0 = vectors[img.index(4, 3, 1)];
        let uu = u.array.get(&[1, 3, 4]).unwrap();
        let vv = v.array.get(&[1, 3, 4]).unwrap();
        assert!((vec0[0] - uu).abs() < 1e-6);
        assert!((vec0[1] - vv).abs() < 1e-6);
        // scalar is the speed
        let s = img.scalar(4, 3, 1);
        assert!((s - (uu * uu + vv * vv).sqrt()).abs() < 1e-4);
    }

    #[test]
    fn vector_translation_shape_mismatch_rejected() {
        let a = SynthesisSpec::new(1, 2, 8, 16).build();
        let b = SynthesisSpec::new(1, 2, 8, 8).build();
        let u = a.variable("ua").unwrap().time_slab(0).unwrap();
        let v = b.variable("va").unwrap().time_slab(0).unwrap();
        assert!(translate_vector(&u, &v, &TranslationOptions::default()).is_err());
    }

    #[test]
    fn world_coordinates_are_degrees() {
        let ds = SynthesisSpec::new(1, 2, 16, 32).build();
        let ta = ds.variable("ta").unwrap().time_slab(0).unwrap();
        let img = translate_scalar(&ta, &TranslationOptions::default()).unwrap();
        let b = img.bounds();
        // lon spans 0..360-dlon, lat spans ±(90-dlat/2)
        assert!((b.min.x - 0.0).abs() < 1e-9);
        assert!((b.max.x - 348.75).abs() < 1e-6);
        assert!((b.min.y + 84.375).abs() < 1e-6);
        // sampling in world space works
        assert!(img.sample_world(Vec3::new(180.0, 0.0, 5.0)).is_some());
    }

    #[test]
    fn requires_horizontal_axes() {
        let ds = SynthesisSpec::new(4, 1, 8, 16).build();
        let series = cdat::averager::spatial_mean(ds.variable("pr").unwrap()).unwrap();
        assert!(translate_scalar(&series, &TranslationOptions::default()).is_err());
    }
}
