//! The calculator / command-line interface for deriving variables.
//!
//! The UV-CDAT GUI's bottom-right pane "contains tools for executing data
//! processing and analysis operations on variables using either a
//! command-line or calculator interface" (§III.E). This module implements
//! that interface: a small expression language over the variables of a
//! dataset, evaluated with CDAT operations.
//!
//! ```text
//! ta_c    = ta - 273.15
//! ta_anom = anom(ta)
//! gm      = avg(ta, 'lat', 'lon')
//! speed   = sqrt(ua*ua + va*va)
//! lo      = regrid(ta, 16, 32)
//! cons    = regrid(ta, 16, 32, 'conservative')
//! ```

use crate::{Dv3dError, Result};
use cdat::{averager, climatology, ops, regrid, statistics};
use cdms::axis::AxisKind;
use cdms::{Dataset, RectGrid, Variable};

/// A computed value: a full variable or a scalar.
#[derive(Debug, Clone)]
pub enum CalcValue {
    Variable(Variable),
    Scalar(f64),
}

impl CalcValue {
    /// The variable payload, if any.
    pub fn as_variable(&self) -> Option<&Variable> {
        match self {
            CalcValue::Variable(v) => Some(v),
            _ => None,
        }
    }

    /// The scalar payload, if any.
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            CalcValue::Scalar(s) => Some(*s),
            _ => None,
        }
    }
}

// ---- lexer ----

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    Str(String),
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
    Comma,
    Assign,
}

fn lex(src: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                out.push(Tok::Minus);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '/' => {
                out.push(Tok::Slash);
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            '=' => {
                out.push(Tok::Assign);
                i += 1;
            }
            '\'' | '"' => {
                let quote = c;
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && chars[j] != quote {
                    j += 1;
                }
                if j >= chars.len() {
                    return Err(Dv3dError::Config("unterminated string".into()));
                }
                out.push(Tok::Str(chars[start..j].iter().collect()));
                i = j + 1;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                let mut j = i;
                while j < chars.len()
                    && (chars[j].is_ascii_digit()
                        || chars[j] == '.'
                        || chars[j] == 'e'
                        || chars[j] == 'E'
                        || ((chars[j] == '+' || chars[j] == '-')
                            && j > start
                            && (chars[j - 1] == 'e' || chars[j - 1] == 'E')))
                {
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                let n: f64 = text
                    .parse()
                    .map_err(|_| Dv3dError::Config(format!("bad number '{text}'")))?;
                out.push(Tok::Number(n));
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < chars.len()
                    && (chars[j].is_ascii_alphanumeric() || chars[j] == '_')
                {
                    j += 1;
                }
                out.push(Tok::Ident(chars[start..j].iter().collect()));
                i = j;
            }
            other => {
                return Err(Dv3dError::Config(format!("unexpected character '{other}'")))
            }
        }
    }
    Ok(out)
}

// ---- parser / evaluator ----

struct Parser<'a> {
    toks: Vec<Tok>,
    pos: usize,
    env: &'a Dataset,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_tok(&mut self, t: Tok) -> Result<()> {
        match self.next() {
            Some(got) if got == t => Ok(()),
            got => Err(Dv3dError::Config(format!("expected {t:?}, got {got:?}"))),
        }
    }

    fn expr(&mut self) -> Result<CalcValue> {
        let mut left = self.term()?;
        while let Some(op) = self.peek().cloned() {
            match op {
                Tok::Plus | Tok::Minus => {
                    self.next();
                    let right = self.term()?;
                    left = binary(&left, &right, &op)?;
                }
                _ => break,
            }
        }
        Ok(left)
    }

    fn term(&mut self) -> Result<CalcValue> {
        let mut left = self.factor()?;
        while let Some(op) = self.peek().cloned() {
            match op {
                Tok::Star | Tok::Slash => {
                    self.next();
                    let right = self.factor()?;
                    left = binary(&left, &right, &op)?;
                }
                _ => break,
            }
        }
        Ok(left)
    }

    fn factor(&mut self) -> Result<CalcValue> {
        if self.peek() == Some(&Tok::Minus) {
            self.next();
            let v = self.factor()?;
            return match v {
                CalcValue::Scalar(s) => Ok(CalcValue::Scalar(-s)),
                CalcValue::Variable(var) => {
                    Ok(CalcValue::Variable(ops::mul_scalar(&var, -1.0)?))
                }
            };
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<CalcValue> {
        match self.next() {
            Some(Tok::Number(n)) => Ok(CalcValue::Scalar(n)),
            Some(Tok::LParen) => {
                let v = self.expr()?;
                self.expect_tok(Tok::RParen)?;
                Ok(v)
            }
            Some(Tok::Ident(name)) => {
                if self.peek() == Some(&Tok::LParen) {
                    self.next();
                    self.call(&name)
                } else {
                    let var = self.env.variable(&name).ok_or_else(|| {
                        Dv3dError::Config(format!("unknown variable '{name}'"))
                    })?;
                    Ok(CalcValue::Variable(var.clone()))
                }
            }
            other => Err(Dv3dError::Config(format!("unexpected token {other:?}"))),
        }
    }

    /// Parses a function call's arguments (after the open paren).
    fn call(&mut self, name: &str) -> Result<CalcValue> {
        let mut args: Vec<CalcValue> = Vec::new();
        let mut strings: Vec<String> = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                if let Some(Tok::Str(s)) = self.peek().cloned() {
                    self.next();
                    strings.push(s);
                } else {
                    args.push(self.expr()?);
                }
                match self.peek() {
                    Some(Tok::Comma) => {
                        self.next();
                    }
                    _ => break,
                }
            }
        }
        self.expect_tok(Tok::RParen)?;
        apply_function(name, args, strings)
    }
}

fn axis_kind(name: &str) -> Result<AxisKind> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "time" | "t" => AxisKind::Time,
        "lat" | "latitude" | "y" => AxisKind::Latitude,
        "lon" | "longitude" | "x" => AxisKind::Longitude,
        "lev" | "level" | "plev" => AxisKind::Level,
        other => return Err(Dv3dError::Config(format!("unknown axis '{other}'"))),
    })
}

fn one_var(name: &str, args: &[CalcValue]) -> Result<Variable> {
    match args.first() {
        Some(CalcValue::Variable(v)) if args.len() == 1 => Ok(v.clone()),
        _ => Err(Dv3dError::Config(format!("{name}() wants exactly one variable argument"))),
    }
}

fn apply_function(name: &str, args: Vec<CalcValue>, strings: Vec<String>) -> Result<CalcValue> {
    match name {
        "sqrt" | "abs" | "log" | "exp" => {
            let v = one_var(name, &args)?;
            let f: fn(f32) -> f32 = match name {
                "sqrt" => |x| x.sqrt(),
                "abs" => |x| x.abs(),
                "log" => |x| x.ln(),
                _ => |x| x.exp(),
            };
            Ok(CalcValue::Variable(ops::apply_sync(&v, &format!("{name}_{}", v.id), f)?))
        }
        "anom" => Ok(CalcValue::Variable(climatology::anomaly(&one_var(name, &args)?)?)),
        "trend" => Ok(CalcValue::Variable(statistics::linear_trend(&one_var(name, &args)?)?)),
        "stdz" => Ok(CalcValue::Variable(statistics::standardize(&one_var(name, &args)?)?)),
        "avg" => {
            let v = one_var(name, &args)?;
            if strings.is_empty() {
                return Err(Dv3dError::Config(
                    "avg() wants axis names, e.g. avg(ta, 'time')".into(),
                ));
            }
            let kinds: Vec<AxisKind> =
                strings.iter().map(|s| axis_kind(s)).collect::<Result<_>>()?;
            Ok(CalcValue::Variable(averager::average_over_kinds(&v, &kinds)?))
        }
        "regrid" => {
            let v = one_var(name, &args[..1])?;
            let dims: Vec<usize> = args[1..]
                .iter()
                .map(|a| {
                    a.as_scalar().map(|s| s as usize).ok_or_else(|| {
                        Dv3dError::Config("regrid(x, nlat, nlon) wants numbers".into())
                    })
                })
                .collect::<Result<_>>()?;
            if dims.len() != 2 {
                return Err(Dv3dError::Config("regrid(x, nlat, nlon)".into()));
            }
            let grid = RectGrid::uniform(dims[0], dims[1])?;
            // optional method string: regrid(x, nlat, nlon, 'conservative')
            let method = match strings.first() {
                None => cdat::regrid_plan::RegridMethod::Bilinear,
                Some(s) => cdat::regrid_plan::RegridMethod::parse(s).ok_or_else(|| {
                    Dv3dError::Config(format!(
                        "regrid(): unknown method '{s}' (try 'bilinear' or 'conservative')"
                    ))
                })?,
            };
            Ok(CalcValue::Variable(regrid::regrid(&v, &grid, method)?))
        }
        "corr" => {
            let (a, b) = match (args.first(), args.get(1)) {
                (Some(CalcValue::Variable(a)), Some(CalcValue::Variable(b))) => (a, b),
                _ => {
                    return Err(Dv3dError::Config("corr(a, b) wants two variables".into()))
                }
            };
            Ok(CalcValue::Scalar(statistics::correlation(a, b)?))
        }
        other => Err(Dv3dError::Config(format!("unknown function '{other}'"))),
    }
}

fn binary(left: &CalcValue, right: &CalcValue, op: &Tok) -> Result<CalcValue> {
    use CalcValue::*;
    Ok(match (left, right) {
        (Scalar(a), Scalar(b)) => Scalar(match op {
            Tok::Plus => a + b,
            Tok::Minus => a - b,
            Tok::Star => a * b,
            Tok::Slash => a / b,
            _ => return Err(Dv3dError::Config(format!("'{op:?}' is not a binary operator"))),
        }),
        (Variable(a), Variable(b)) => Variable(match op {
            Tok::Plus => ops::add(a, b)?,
            Tok::Minus => ops::sub(a, b)?,
            Tok::Star => ops::mul(a, b)?,
            Tok::Slash => ops::div(a, b)?,
            _ => return Err(Dv3dError::Config(format!("'{op:?}' is not a binary operator"))),
        }),
        (Variable(a), Scalar(s)) => Variable(match op {
            Tok::Plus => ops::add_scalar(a, *s as f32)?,
            Tok::Minus => ops::add_scalar(a, -*s as f32)?,
            Tok::Star => ops::mul_scalar(a, *s as f32)?,
            Tok::Slash => ops::mul_scalar(a, 1.0 / *s as f32)?,
            _ => return Err(Dv3dError::Config(format!("'{op:?}' is not a binary operator"))),
        }),
        (Scalar(s), Variable(b)) => Variable(match op {
            Tok::Plus => ops::add_scalar(b, *s as f32)?,
            Tok::Star => ops::mul_scalar(b, *s as f32)?,
            Tok::Minus => ops::add_scalar(&ops::mul_scalar(b, -1.0)?, *s as f32)?,
            Tok::Slash => {
                let inv = ops::apply_sync(b, &b.id, |x| 1.0 / x)?;
                ops::mul_scalar(&inv, *s as f32)?
            }
            _ => return Err(Dv3dError::Config(format!("'{op:?}' is not a binary operator"))),
        }),
    })
}

/// Evaluates a single statement against a dataset. `name = expr` stores the
/// result into the dataset under `name`; a bare expression just returns.
/// Returns the computed value either way.
pub fn evaluate(dataset: &mut Dataset, statement: &str) -> Result<CalcValue> {
    let toks = lex(statement)?;
    if toks.is_empty() {
        return Err(Dv3dError::Config("empty statement".into()));
    }
    // detect `ident = …`
    let (target, expr_toks) = match (&toks[0], toks.get(1)) {
        (Tok::Ident(name), Some(Tok::Assign)) => (Some(name.clone()), toks[2..].to_vec()),
        _ => (None, toks),
    };
    let mut p = Parser { toks: expr_toks, pos: 0, env: dataset };
    let value = p.expr()?;
    if p.pos != p.toks.len() {
        return Err(Dv3dError::Config(format!(
            "trailing tokens after expression: {:?}",
            &p.toks[p.pos..]
        )));
    }
    if let Some(name) = target {
        match &value {
            CalcValue::Variable(v) => {
                let mut named = v.clone();
                named.id = name;
                dataset.add_variable(named);
            }
            CalcValue::Scalar(_) => {
                return Err(Dv3dError::Config(
                    "cannot store a scalar as a dataset variable".into(),
                ))
            }
        }
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdms::synth::SynthesisSpec;

    fn ds() -> Dataset {
        SynthesisSpec::new(4, 2, 8, 16).build()
    }

    #[test]
    fn scalar_arithmetic() {
        let mut d = ds();
        assert_eq!(evaluate(&mut d, "2 + 3 * 4").unwrap().as_scalar(), Some(14.0));
        assert_eq!(evaluate(&mut d, "(2 + 3) * 4").unwrap().as_scalar(), Some(20.0));
        assert_eq!(evaluate(&mut d, "-2 + 1").unwrap().as_scalar(), Some(-1.0));
        assert_eq!(evaluate(&mut d, "1e2 / 4").unwrap().as_scalar(), Some(25.0));
    }

    #[test]
    fn variable_scalar_ops() {
        let mut d = ds();
        let v = evaluate(&mut d, "ta - 273.15").unwrap();
        let var = v.as_variable().unwrap();
        let orig = d.variable("ta").unwrap().array.mean().unwrap();
        assert!((var.array.mean().unwrap() - (orig - 273.15)).abs() < 1e-3);
    }

    #[test]
    fn variable_variable_ops_and_assignment() {
        let mut d = ds();
        evaluate(&mut d, "speed = sqrt(ua*ua + va*va)").unwrap();
        let speed = d.variable("speed").unwrap();
        assert_eq!(speed.shape(), d.variable("ua").unwrap().shape());
        let (lo, _) = speed.array.min_max().unwrap();
        assert!(lo >= 0.0);
    }

    #[test]
    fn functions_work() {
        let mut d = ds();
        evaluate(&mut d, "a = anom(ta)").unwrap();
        assert!(d.variable("a").unwrap().array.mean().unwrap().abs() < 0.5);
        let gm = evaluate(&mut d, "avg(ta, 'lat', 'lon')").unwrap();
        assert_eq!(gm.as_variable().unwrap().shape(), &[4, 2]);
        let lo = evaluate(&mut d, "regrid(ta, 4, 8)").unwrap();
        assert_eq!(&lo.as_variable().unwrap().shape()[2..], &[4, 8]);
        let cons = evaluate(&mut d, "regrid(ta, 4, 8, 'conservative')").unwrap();
        assert_eq!(&cons.as_variable().unwrap().shape()[2..], &[4, 8]);
        assert!(evaluate(&mut d, "regrid(ta, 4, 8, 'cubic')").is_err());
        let r = evaluate(&mut d, "corr(ta, ta)").unwrap();
        assert!((r.as_scalar().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn chained_statements_build_on_each_other() {
        let mut d = ds();
        evaluate(&mut d, "ta_c = ta - 273.15").unwrap();
        evaluate(&mut d, "warm = ta_c + 5").unwrap();
        let diff = evaluate(&mut d, "warm - ta_c").unwrap();
        let m = diff.as_variable().unwrap().array.mean().unwrap();
        assert!((m - 5.0).abs() < 1e-4);
    }

    #[test]
    fn error_cases() {
        let mut d = ds();
        assert!(evaluate(&mut d, "").is_err());
        assert!(evaluate(&mut d, "nope + 1").is_err());
        assert!(evaluate(&mut d, "ta + ").is_err());
        assert!(evaluate(&mut d, "ta ta").is_err());
        assert!(evaluate(&mut d, "foo(ta)").is_err());
        assert!(evaluate(&mut d, "avg(ta)").is_err());
        assert!(evaluate(&mut d, "avg(ta, 'bogus')").is_err());
        assert!(evaluate(&mut d, "x = 3").is_err()); // scalars not storable
        assert!(evaluate(&mut d, "'unterminated").is_err());
        assert!(evaluate(&mut d, "ta $ 2").is_err());
        assert!(evaluate(&mut d, "regrid(ta, 4)").is_err());
        assert!(evaluate(&mut d, "corr(ta, 3)").is_err());
    }

    #[test]
    fn scalar_minus_variable() {
        let mut d = ds();
        let v = evaluate(&mut d, "300 - ta").unwrap();
        let var = v.as_variable().unwrap();
        let orig = d.variable("ta").unwrap().array.mean().unwrap();
        assert!((var.array.mean().unwrap() - (300.0 - orig)).abs() < 1e-3);
    }

    #[test]
    fn shape_mismatch_reported() {
        let mut d = ds();
        evaluate(&mut d, "lo = regrid(ta, 4, 8)").unwrap();
        assert!(evaluate(&mut d, "ta + lo").is_err());
    }
}
