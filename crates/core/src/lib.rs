#![forbid(unsafe_code)]

//! # dv3d — exploratory 3D climate visualization (the paper's contribution)
//!
//! DV3D is "a package of high-level modules … providing user-friendly
//! workflow interfaces for advanced visualization and analysis of climate
//! data at a level appropriate for scientists" (Maxwell, SC 2012). This
//! crate is that package, built on the substrates in this workspace:
//! `cdms` (data), `cdat` (analysis), `rvtk` (rendering) and `vistrails`
//! (workflow + provenance).
//!
//! The pieces map to the paper section by section:
//!
//! * [`translation`] — converts CDMS variables into renderable image data
//!   (the "DV3D translation module", §III.G).
//! * [`plots`] — the plot types of §III.C: [`plots::SlicerPlot`],
//!   [`plots::VolumePlot`], [`plots::IsosurfacePlot`],
//!   [`plots::HovmollerPlot`] (slicer + volume over time-as-height) and
//!   [`plots::VectorSlicerPlot`].
//! * [`transfer`] — the interactive *leveling* editor that reshapes color
//!   and opacity transfer functions with mouse drags (§III.F).
//! * [`cell`] — the DV3D spreadsheet cell: plot + base map + labels +
//!   colorbar + pick display + navigation (§III.G).
//! * [`spreadsheet`] — multi-cell coordination with configuration
//!   propagation to active cells (§III.E).
//! * [`animation`] — 4D browsing by animating over time (§III.D).
//! * [`modules`] — registration of CDMS/CDAT/DV3D as VisTrails packages,
//!   plus the prebuilt-workflow plot palette (§III.A, §III.F).
//! * [`calculator`] — the command-line/calculator interface for deriving
//!   variables with CDAT operations (§III.E).
//! * [`gui`] — the headless model of the UV-CDAT GUI's panes: project
//!   view, variable view, plot palette (§III.E).
//! * [`interaction`] — key/mouse events → configuration operations,
//!   recorded as provenance (§III.F).
//!
//! ## Quickstart
//!
//! ```
//! use cdms::synth::SynthesisSpec;
//! use dv3d::prelude::*;
//!
//! // Synthesize a small atmosphere and show a temperature slicer.
//! let ds = SynthesisSpec::new(2, 4, 16, 32).build();
//! let ta = ds.variable("ta").unwrap().time_slab(0).unwrap();
//! let image = translate_scalar(&ta, &TranslationOptions::default()).unwrap();
//! let mut cell = Dv3dCell::new("quick", PlotSpec::slicer(image));
//! let frame = cell.render(160, 120).unwrap();
//! assert!(frame.covered_pixels(rvtk::Color::BLACK) > 100);
//! ```

pub mod animation;
pub mod calculator;
pub mod cell;
pub mod gui;
pub mod interaction;
pub mod modules;
pub mod plots;
pub mod spreadsheet;
pub mod transfer;
pub mod translation;

/// Errors raised by DV3D operations.
///
/// Substrate failures are wrapped as their typed errors (not stringified),
/// so `source()` walks the real cause chain.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Dv3dError {
    /// Underlying data-management failure.
    Cdms(cdms::CdmsError),
    /// Underlying visualization failure.
    Vtk(rvtk::VtkError),
    /// Underlying workflow failure.
    Workflow(vistrails::WfError),
    /// Bad plot configuration.
    Config(String),
}

impl std::fmt::Display for Dv3dError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Dv3dError::Cdms(e) => write!(f, "cdms: {e}"),
            Dv3dError::Vtk(e) => write!(f, "vtk: {e}"),
            Dv3dError::Workflow(e) => write!(f, "workflow: {e}"),
            Dv3dError::Config(m) => write!(f, "config: {m}"),
        }
    }
}

impl std::error::Error for Dv3dError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Dv3dError::Cdms(e) => Some(e),
            Dv3dError::Vtk(e) => Some(e),
            Dv3dError::Workflow(e) => Some(e),
            Dv3dError::Config(_) => None,
        }
    }
}

impl From<cdms::CdmsError> for Dv3dError {
    fn from(e: cdms::CdmsError) -> Self {
        Dv3dError::Cdms(e)
    }
}

impl From<rvtk::VtkError> for Dv3dError {
    fn from(e: rvtk::VtkError) -> Self {
        Dv3dError::Vtk(e)
    }
}

impl From<vistrails::WfError> for Dv3dError {
    fn from(e: vistrails::WfError) -> Self {
        Dv3dError::Workflow(e)
    }
}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, Dv3dError>;

/// The common imports.
pub mod prelude {
    pub use crate::animation::AnimationController;
    pub use crate::cell::Dv3dCell;
    pub use crate::interaction::{CameraOp, ConfigOp};
    pub use crate::plots::{Plot, PlotSpec};
    pub use crate::spreadsheet::Dv3dSpreadsheet;
    pub use crate::transfer::TransferEditor;
    pub use crate::translation::{translate_scalar, translate_vector, TranslationOptions};
    pub use crate::{Dv3dError, Result};
}
