//! 4D animation: stepping a plot through timesteps.
//!
//! "Animating over one of the data dimensions (typically time) provides a
//! very effective method for viewing and browsing 4D data" (§III.D). The
//! controller pre-translates each timestep of a variable into image data
//! and swaps frames into the plot, preserving interactive state.

use crate::plots::Plot;
use crate::translation::{translate_scalar, TranslationOptions};
use crate::{Dv3dError, Result};
use cdms::axis::AxisKind;
use cdms::{StreamReport, StreamingVariable, Variable};
use rvtk::ImageData;

/// Steps a plot through a time series.
#[derive(Debug, Clone)]
pub struct AnimationController {
    frames: Vec<ImageData>,
    current: usize,
    /// Wrap around at the ends.
    pub looping: bool,
}

impl AnimationController {
    /// Builds a controller from a `(time, [lev,] lat, lon)` variable by
    /// translating every time slab.
    pub fn from_variable(var: &Variable, opts: &TranslationOptions) -> Result<AnimationController> {
        if var.axis_index(AxisKind::Time).is_none() {
            return Err(Dv3dError::Config(format!("'{}' has no time axis", var.id)));
        }
        let nt = var.n_times();
        let mut frames = Vec::with_capacity(nt);
        for t in 0..nt {
            let slab = var.time_slab(t)?;
            frames.push(translate_scalar(&slab, opts)?);
        }
        Ok(AnimationController { frames, current: 0, looping: true })
    }

    /// Builds a controller like [`AnimationController::from_variable`],
    /// first regridding the whole variable onto `target`. The regrid plan
    /// is cached workspace-wide and applied to every timestep plane in one
    /// parallel pass, so re-animating (or animating a second variable on
    /// the same grid pair) skips the planning cost entirely.
    pub fn from_variable_regridded(
        var: &Variable,
        target: &cdms::RectGrid,
        method: cdat::regrid_plan::RegridMethod,
        opts: &TranslationOptions,
    ) -> Result<AnimationController> {
        let regridded = cdat::regrid::regrid(var, target, method).map_err(Dv3dError::from)?;
        AnimationController::from_variable(&regridded, opts)
    }

    /// Builds a controller from pre-made frames.
    pub fn from_frames(frames: Vec<ImageData>) -> Result<AnimationController> {
        if frames.is_empty() {
            return Err(Dv3dError::Config("animation needs at least one frame".into()));
        }
        Ok(AnimationController { frames, current: 0, looping: true })
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Never true (construction requires ≥ 1 frame).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Current frame index.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Steps by `delta` (negative allowed), honouring `looping`, and
    /// installs the frame into the plot. Returns the new index.
    pub fn step(&mut self, plot: &mut dyn Plot, delta: i64) -> Result<usize> {
        let n = self.frames.len() as i64;
        let raw = self.current as i64 + delta;
        self.current = if self.looping {
            raw.rem_euclid(n) as usize
        } else {
            raw.clamp(0, n - 1) as usize
        };
        plot.set_image(self.frames[self.current].clone())?;
        Ok(self.current)
    }

    /// Jumps to an absolute frame.
    pub fn seek(&mut self, plot: &mut dyn Plot, index: usize) -> Result<usize> {
        if index >= self.frames.len() {
            return Err(Dv3dError::Config(format!(
                "frame {index} out of range ({} frames)",
                self.frames.len()
            )));
        }
        self.current = index;
        plot.set_image(self.frames[index].clone())?;
        Ok(index)
    }

    /// Renders a full loop over all frames at the given size, returning the
    /// frames — the offline-animation path (and the fps benchmark body).
    pub fn render_loop(
        &mut self,
        cell: &mut crate::cell::Dv3dCell,
        width: usize,
        height: usize,
    ) -> Result<Vec<rvtk::render::Framebuffer>> {
        let mut out = Vec::with_capacity(self.frames.len());
        for i in 0..self.frames.len() {
            self.seek(cell.plot_mut(), i)?;
            out.push(cell.render(width, height)?);
        }
        Ok(out)
    }
}

/// Steps a plot through a time series streamed off disk.
///
/// Unlike [`AnimationController`], which pre-translates every timestep
/// into memory, this controller holds only a [`StreamingVariable`] — a
/// lazy, bounded-memory view of a `.ncr` v3 file — and translates each
/// frame on demand as the playhead reaches it. A series far larger than
/// RAM plays at a fixed memory ceiling (the stream's chunk-cache budget),
/// and faulted chunks degrade to a coarser pyramid level or masked fill
/// instead of stalling playback; [`StreamingAnimation::report`] says how
/// often that happened.
#[derive(Debug, Clone)]
pub struct StreamingAnimation {
    var: StreamingVariable,
    opts: TranslationOptions,
    current: usize,
    /// Wrap around at the ends.
    pub looping: bool,
}

impl StreamingAnimation {
    /// Wraps a streaming variable for playback. The variable must carry a
    /// time axis; frames are fetched, salvaged, and translated lazily.
    pub fn new(var: StreamingVariable, opts: TranslationOptions) -> Result<StreamingAnimation> {
        if !var.has_time_axis() {
            return Err(Dv3dError::Config(format!("'{}' has no time axis", var.id())));
        }
        Ok(StreamingAnimation { var, opts, current: 0, looping: true })
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.var.n_times()
    }

    /// Never true ([`StreamingVariable`] always has ≥ 1 timestep).
    pub fn is_empty(&self) -> bool {
        self.var.n_times() == 0
    }

    /// Current frame index.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Fault-tolerance counters for the underlying streaming session.
    pub fn report(&self) -> StreamReport {
        self.var.report()
    }

    /// Fetches and translates frame `t`, degrading rather than failing
    /// when chunks are unreadable. Also prefetches upcoming windows.
    fn frame(&self, t: usize) -> Result<ImageData> {
        let slab = self.var.time_slab_degraded(t).map_err(Dv3dError::from)?;
        translate_scalar(&slab, &self.opts)
    }

    /// Steps by `delta` (negative allowed), honouring `looping`, and
    /// installs the freshly streamed frame. Returns the new index.
    pub fn step(&mut self, plot: &mut dyn Plot, delta: i64) -> Result<usize> {
        let n = self.var.n_times() as i64;
        let raw = self.current as i64 + delta;
        let next = if self.looping {
            raw.rem_euclid(n) as usize
        } else {
            raw.clamp(0, n - 1) as usize
        };
        plot.set_image(self.frame(next)?)?;
        self.current = next;
        Ok(next)
    }

    /// Jumps to an absolute frame.
    pub fn seek(&mut self, plot: &mut dyn Plot, index: usize) -> Result<usize> {
        if index >= self.var.n_times() {
            return Err(Dv3dError::Config(format!(
                "frame {index} out of range ({} frames)",
                self.var.n_times()
            )));
        }
        plot.set_image(self.frame(index)?)?;
        self.current = index;
        Ok(index)
    }

    /// Renders one full pass over all frames at the given size — the
    /// offline path for series that never fit in memory at once.
    pub fn render_loop(
        &mut self,
        cell: &mut crate::cell::Dv3dCell,
        width: usize,
        height: usize,
    ) -> Result<Vec<rvtk::render::Framebuffer>> {
        let n = self.var.n_times();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            self.seek(cell.plot_mut(), i)?;
            out.push(cell.render(width, height)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Dv3dCell;
    use crate::plots::PlotSpec;
    use cdms::synth::SynthesisSpec;

    fn controller_and_cell() -> (AnimationController, Dv3dCell) {
        let ds = SynthesisSpec::new(4, 1, 8, 16).build();
        let pr = ds.variable("pr").unwrap();
        let opts = TranslationOptions::default();
        let anim = AnimationController::from_variable(pr, &opts).unwrap();
        let first = anim.frames[0].clone();
        (anim, Dv3dCell::new("pr", PlotSpec::slicer(first)))
    }

    #[test]
    fn builds_one_frame_per_timestep() {
        let (anim, _) = controller_and_cell();
        assert_eq!(anim.len(), 4);
        assert_eq!(anim.current(), 0);
    }

    #[test]
    fn regridded_animation_reuses_one_plan_across_frames() {
        use cdat::regrid_plan::RegridMethod;
        let ds = SynthesisSpec::new(6, 1, 8, 16).build();
        let pr = ds.variable("pr").unwrap();
        // deliberately odd target shape so the cache key is unique to this test
        let target = cdms::RectGrid::uniform(7, 13).unwrap();
        let opts = TranslationOptions::default();
        let before = cdat::plan_cache::global_stats();
        let a = AnimationController::from_variable_regridded(pr, &target, RegridMethod::Bilinear, &opts)
            .unwrap();
        let b = AnimationController::from_variable_regridded(pr, &target, RegridMethod::Bilinear, &opts)
            .unwrap();
        assert_eq!(a.len(), 6);
        assert_eq!(b.len(), 6);
        assert_eq!(a.frames[0].dims, b.frames[0].dims);
        let after = cdat::plan_cache::global_stats();
        assert!(after.hits > before.hits, "second animation must hit the cached plan");
    }

    #[test]
    fn requires_time_axis_and_frames() {
        let ds = SynthesisSpec::new(2, 1, 8, 16).build();
        let lf = ds.variable("sftlf").unwrap();
        assert!(AnimationController::from_variable(lf, &TranslationOptions::default()).is_err());
        assert!(AnimationController::from_frames(vec![]).is_err());
    }

    #[test]
    fn stepping_updates_plot_data() {
        let (mut anim, mut cell) = controller_and_cell();
        let d0 = cell.plot().image().scalars.clone();
        anim.step(cell.plot_mut(), 1).unwrap();
        assert_eq!(anim.current(), 1);
        assert_ne!(cell.plot().image().scalars, d0);
    }

    #[test]
    fn looping_wraps_both_directions() {
        let (mut anim, mut cell) = controller_and_cell();
        anim.step(cell.plot_mut(), -1).unwrap();
        assert_eq!(anim.current(), 3);
        anim.step(cell.plot_mut(), 2).unwrap();
        assert_eq!(anim.current(), 1);
        anim.looping = false;
        anim.step(cell.plot_mut(), 100).unwrap();
        assert_eq!(anim.current(), 3);
        anim.step(cell.plot_mut(), -100).unwrap();
        assert_eq!(anim.current(), 0);
    }

    #[test]
    fn seek_validates() {
        let (mut anim, mut cell) = controller_and_cell();
        assert_eq!(anim.seek(cell.plot_mut(), 2).unwrap(), 2);
        assert!(anim.seek(cell.plot_mut(), 4).is_err());
    }

    #[test]
    fn render_loop_produces_distinct_frames() {
        let (mut anim, mut cell) = controller_and_cell();
        cell.show_colorbar = false;
        cell.show_labels = false;
        let frames = anim.render_loop(&mut cell, 48, 48).unwrap();
        assert_eq!(frames.len(), 4);
        // consecutive frames differ somewhere (the wave moves)
        let a: Vec<[u8; 4]> = frames[0].colors().iter().map(|c| c.to_u8()).collect();
        let b: Vec<[u8; 4]> = frames[2].colors().iter().map(|c| c.to_u8()).collect();
        assert_ne!(a, b);
    }

    // ---- streaming playback ----

    mod streaming {
        use super::*;
        use cdms::format_v3::{self, V3Options};
        use cdms::storage::{FaultyStorage, LocalDisk, StorageFault, StorageFaultPlan};
        use cdms::{Storage, StreamOptions, StreamingDataset};
        use std::sync::Arc;

        fn temp_path(tag: &str) -> std::path::PathBuf {
            let dir =
                std::env::temp_dir().join(format!("dv3d_stream_anim_{}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            dir.join(format!("{tag}.ncr"))
        }

        #[test]
        fn streaming_matches_precomputed_animation() {
            let ds = SynthesisSpec::new(6, 1, 8, 16).seed(31).build();
            let pr = ds.variable("pr").unwrap();
            let opts = TranslationOptions::default();
            let path = temp_path("healthy");
            let v3 = V3Options { window: 2, levels: 2, compress: true };
            format_v3::write_dataset_v3_with(&LocalDisk, &ds, &path, &v3).unwrap();

            let sd = StreamingDataset::open(&path).unwrap();
            let mut precomputed = AnimationController::from_variable(pr, &opts).unwrap();
            let mut streamed =
                StreamingAnimation::new(sd.variable("pr").unwrap(), opts.clone()).unwrap();
            assert_eq!(streamed.len(), precomputed.len());

            let first = translate_scalar(&pr.time_slab(0).unwrap(), &opts).unwrap();
            let mut cell_a = Dv3dCell::new("pr", PlotSpec::slicer(first.clone()));
            let mut cell_b = Dv3dCell::new("pr", PlotSpec::slicer(first));
            for t in 0..streamed.len() {
                precomputed.seek(cell_a.plot_mut(), t).unwrap();
                streamed.seek(cell_b.plot_mut(), t).unwrap();
                assert_eq!(
                    cell_b.plot().image().scalars,
                    cell_a.plot().image().scalars,
                    "streamed frame {t} differs from precomputed"
                );
            }
            let report = streamed.report();
            assert_eq!(report.failed_chunks, 0);
            assert_eq!(report.degraded + report.salvaged + report.retried, 0);
            std::fs::remove_file(&path).ok();
        }

        #[test]
        fn streaming_render_survives_fault_storm() {
            let ds = SynthesisSpec::new(8, 1, 10, 16).seed(7).build();
            let pr = ds.variable("pr").unwrap();
            let v3 = V3Options { window: 2, levels: 2, compress: false };
            let path = temp_path("storm");
            format_v3::write_dataset_v3_with(&LocalDisk, &ds, &path, &v3).unwrap();

            // window 1: level 0 dead       → frames 2,3 degrade to the pyramid
            // window 2: both levels dead   → frames 4,5 fall back to masked fill
            let meta = format_v3::read_meta_with(&LocalDisk, &path).unwrap();
            let vi = meta.var_index("pr").unwrap();
            let entry = |w: usize, l: usize| *meta.chunk(vi, w, l).unwrap();
            let (e10, e20, e21) = (entry(1, 0), entry(2, 0), entry(2, 1));
            let plan = StorageFaultPlan::none()
                .inject_read(e10.offset..e10.offset + 1, StorageFault::ReadError, 0)
                .inject_read(e20.offset..e20.offset + 1, StorageFault::ReadError, 0)
                .inject_read(e21.offset..e21.offset + 1, StorageFault::ReadError, 0);
            let storage: Arc<dyn Storage> = Arc::new(FaultyStorage::new(plan));
            let sopts = StreamOptions {
                cache_bytes: 4_000,
                prefetch_windows: 1,
                backoff_base_ms: 0,
                backoff_cap_ms: 0,
                ..StreamOptions::default()
            };
            let sd = StreamingDataset::open_with(storage, &path, sopts).unwrap();

            let topts = TranslationOptions::default();
            let mut anim =
                StreamingAnimation::new(sd.variable("pr").unwrap(), topts.clone()).unwrap();
            let first = translate_scalar(&pr.time_slab(0).unwrap(), &topts).unwrap();
            let mut cell = Dv3dCell::new("pr", PlotSpec::slicer(first));
            cell.show_colorbar = false;
            cell.show_labels = false;

            // the acceptance criterion: every frame renders, storm or not
            let frames = anim.render_loop(&mut cell, 32, 32).unwrap();
            assert_eq!(frames.len(), 8);

            // stepping across the wrap keeps working with faults active
            assert_eq!(anim.step(cell.plot_mut(), 1).unwrap(), 0);
            assert_eq!(anim.step(cell.plot_mut(), -1).unwrap(), 7);

            let report = anim.report();
            assert_eq!(report.degraded, 2, "{report}");
            assert_eq!(report.salvaged, 2, "{report}");
            assert_eq!(report.failed_chunks, 3, "{report}");
            assert!(report.peak_cache_bytes <= 4_000, "{report}");
            std::fs::remove_file(&path).ok();
        }

        #[test]
        fn streaming_rejects_windowless_variables() {
            let ds = SynthesisSpec::new(2, 1, 6, 8).build();
            let path = temp_path("windowless");
            format_v3::write_dataset_v3(&ds, &path).unwrap();
            let sd = StreamingDataset::open(&path).unwrap();
            let lf = sd.variable("sftlf").unwrap();
            assert!(StreamingAnimation::new(lf, TranslationOptions::default()).is_err());
            std::fs::remove_file(&path).ok();
        }
    }
}
