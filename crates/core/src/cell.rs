//! The DV3D cell: what one spreadsheet slot renders.
//!
//! "The DV3D cell module includes a configurable base map, navigation
//! controls, onscreen dataset and variable labels, a pick operation
//! display, and legend/colormap displays" (§III.G). A [`Dv3dCell`] owns a
//! plot, its camera, overlay annotations and an operation log (the raw
//! material of provenance recording).

use crate::interaction::{CameraOp, ConfigOp};
use crate::plots::{Plot, PlotSpec};
use crate::{Dv3dError, Result};
use cdms::axis::AxisKind;
use cdms::Variable;
use rvtk::filters::{contour_lines, SliceAxis};
use rvtk::math::Vec3;
use rvtk::render::{
    draw_colorbar, draw_text, Actor, Camera, Framebuffer, Renderer, StereoMode, RenderWindow,
};
use rvtk::{Color, ImageData, PolyData};

/// One visualization cell.
pub struct Dv3dCell {
    /// Display name (typically "variable / dataset").
    pub name: String,
    plot: Box<dyn Plot>,
    camera: Camera,
    camera_valid: bool,
    /// Synthetic coastlines drawn at the volume base.
    base_map: Option<PolyData>,
    /// Draw the colorbar legend.
    pub show_colorbar: bool,
    /// Draw the dataset's bounding-box outline.
    pub show_outline: bool,
    /// Draw the name/status labels.
    pub show_labels: bool,
    /// Last pick result shown in the cell.
    pub pick_display: Option<(Vec3, f32)>,
    /// Stereo mode for this cell's renders.
    pub stereo: StereoMode,
    /// Background color.
    pub background: Color,
    /// Every configuration op applied, in order (provenance raw material).
    op_log: Vec<ConfigOp>,
}

impl std::fmt::Debug for Dv3dCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dv3dCell")
            .field("name", &self.name)
            .field("plot", &self.plot.type_name())
            .field("ops", &self.op_log.len())
            .finish()
    }
}

impl Dv3dCell {
    /// Builds a cell around a plot spec.
    pub fn new(name: &str, spec: PlotSpec) -> Dv3dCell {
        // dv3dlint: allow(no_panic) -- infallible convenience constructor; callers that can handle failure use try_new
        let plot = spec.build().expect("plot construction");
        Dv3dCell {
            name: name.to_string(),
            plot,
            camera: Camera::default(),
            camera_valid: false,
            base_map: None,
            show_colorbar: true,
            show_outline: false,
            show_labels: true,
            pick_display: None,
            stereo: StereoMode::Off,
            background: Color::BLACK,
            op_log: Vec::new(),
        }
    }

    /// Fallible constructor.
    pub fn try_new(name: &str, spec: PlotSpec) -> Result<Dv3dCell> {
        Ok(Self::from_plot(name, spec.build()?))
    }

    /// Wraps an already-built plot (composite plots take this path).
    pub fn from_plot(name: &str, plot: Box<dyn Plot>) -> Dv3dCell {
        Dv3dCell {
            name: name.to_string(),
            plot,
            camera: Camera::default(),
            camera_valid: false,
            base_map: None,
            show_colorbar: true,
            show_outline: false,
            show_labels: true,
            pick_display: None,
            stereo: StereoMode::Off,
            background: Color::BLACK,
            op_log: Vec::new(),
        }
    }

    /// The plot.
    pub fn plot(&self) -> &dyn Plot {
        self.plot.as_ref()
    }

    /// Mutable plot access (animation uses this).
    pub fn plot_mut(&mut self) -> &mut dyn Plot {
        self.plot.as_mut()
    }

    /// The configuration operation log.
    pub fn op_log(&self) -> &[ConfigOp] {
        &self.op_log
    }

    /// Installs a base map: coastlines contoured from a land-fraction
    /// variable (`sftlf`) at the 0.5 level, drawn at the volume floor.
    pub fn set_base_map(&mut self, land_fraction: &Variable) -> Result<()> {
        let lat = land_fraction
            .axis(AxisKind::Latitude)
            .ok_or_else(|| Dv3dError::Config("base map needs a latitude axis".into()))?;
        let lon = land_fraction
            .axis(AxisKind::Longitude)
            .ok_or_else(|| Dv3dError::Config("base map needs a longitude axis".into()))?;
        let (ny, nx) = (lat.len(), lon.len());
        let dx = if nx > 1 { (lon.values[1] - lon.values[0]).abs() } else { 1.0 };
        let dy = if ny > 1 { (lat.values[1] - lat.values[0]).abs() } else { 1.0 };
        let origin = [lon.values[0], lat.range().0.min(lat.range().1), 0.0];
        let ascending = lat.direction() >= 0;
        let mut scalars = vec![0.0f32; nx * ny];
        for j in 0..ny {
            let jj = if ascending { j } else { ny - 1 - j };
            for i in 0..nx {
                scalars[i + nx * j] =
                    land_fraction.array.get(&[jj, i]).map_err(Dv3dError::from)?;
            }
        }
        let img = ImageData::new([nx, ny, 1], [dx, dy, 1.0], origin, scalars)
            .map_err(Dv3dError::from)?;
        let mut coast = contour_lines(&img, SliceAxis::Z, 0, &[0.5])?;
        // drop slightly below the data so slice planes stay readable
        for p in &mut coast.points {
            p.z = -0.1;
        }
        self.base_map = Some(coast);
        Ok(())
    }

    /// True when a base map is installed.
    pub fn has_base_map(&self) -> bool {
        self.base_map.is_some()
    }

    /// Applies a configuration operation: camera ops are handled here, the
    /// rest go to the plot. Every op is appended to the log.
    pub fn configure(&mut self, op: &ConfigOp) -> Result<()> {
        match op {
            ConfigOp::Camera(cam_op) => {
                match cam_op {
                    CameraOp::Azimuth(d) => self.camera.azimuth(*d),
                    CameraOp::Elevation(d) => self.camera.elevation(*d),
                    CameraOp::Zoom(f) => self.camera.zoom(*f),
                    CameraOp::Pan(dx, dy) => self.camera.pan(*dx, *dy),
                    CameraOp::Roll(d) => self.camera.roll(*d),
                    CameraOp::Reset => self.camera_valid = false,
                }
            }
            other => {
                self.plot.configure(other)?;
            }
        }
        self.op_log.push(op.clone());
        Ok(())
    }

    /// Builds the scene for the current state.
    fn scene(&mut self) -> Result<Renderer> {
        let mut renderer = Renderer::new();
        renderer.background = self.background;
        self.plot.populate(&mut renderer)?;
        if let Some(map) = &self.base_map {
            let mut actor = Actor::from_poly_data(map.clone())
                .with_color(Color::rgb(0.9, 0.9, 0.5));
            actor.property.lighting = false;
            renderer.add_actor(actor);
        }
        if self.show_outline {
            let box_lines = rvtk::filters::outline(&self.plot.image().bounds());
            let mut actor = Actor::from_poly_data(box_lines)
                .with_color(Color::rgb(0.45, 0.45, 0.45));
            actor.property.lighting = false;
            renderer.add_actor(actor);
        }
        if !self.camera_valid {
            renderer.reset_camera();
            self.camera = renderer.camera.clone();
            self.camera_valid = true;
        } else {
            renderer.camera = self.camera.clone();
        }
        Ok(renderer)
    }

    /// Renders the cell at the given size, with overlays.
    pub fn render(&mut self, width: usize, height: usize) -> Result<Framebuffer> {
        let renderer = self.scene()?;
        let mut window = RenderWindow::new(width, height);
        window.stereo = self.stereo;
        window.render(&renderer);
        let fb = window.framebuffer_mut();
        if self.show_colorbar && width > 60 && height > 40 {
            let bar_h = height * 6 / 10;
            draw_colorbar(
                fb,
                width - 46,
                (height - bar_h) / 2,
                10,
                bar_h,
                &self.plot.legend(),
            );
        }
        if self.show_labels && height > 24 {
            draw_text(fb, 3, 3, &self.name, Color::WHITE, 1);
            draw_text(fb, 3, 12, &self.plot.status_line(), Color::rgb(0.8, 0.8, 0.8), 1);
            if let Some((p, v)) = self.pick_display {
                let msg = format!("pick ({:.0},{:.0},{:.0}) = {:.3}", p.x, p.y, p.z, v);
                draw_text(fb, 3, height - 11, &msg, Color::rgb(1.0, 1.0, 0.6), 1);
            }
        }
        Ok(window.framebuffer().clone())
    }

    /// Picks through a pixel: probes the plot's image along the view ray
    /// and stores the result for display.
    pub fn pick(&mut self, px: f64, py: f64, width: usize, height: usize) -> Option<(Vec3, f32)> {
        let renderer = self.scene().ok()?;
        let mut r = renderer;
        // ensure a volume exists to probe: probe the plot image directly
        r.clear_scene();
        r.add_volume(rvtk::render::Volume::from_image(self.plot.image().clone()));
        let hit = r.pick(width, height, px, py);
        self.pick_display = hit;
        hit
    }

    /// The camera (for synchronization across cells / hyperwall mirroring).
    pub fn camera(&self) -> &Camera {
        &self.camera
    }

    /// Overrides the camera (synchronized navigation).
    pub fn set_camera(&mut self, camera: Camera) {
        self.camera = camera;
        self.camera_valid = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::Axis3;
    use crate::translation::{translate_scalar, TranslationOptions};
    use cdms::synth::SynthesisSpec;

    fn cell() -> Dv3dCell {
        let ds = SynthesisSpec::new(1, 4, 16, 32).build();
        let ta = ds.variable("ta").unwrap().time_slab(0).unwrap();
        let img = translate_scalar(&ta, &TranslationOptions::default()).unwrap();
        Dv3dCell::new("ta / synth", PlotSpec::slicer(img))
    }

    #[test]
    fn renders_with_overlays() {
        let mut c = cell();
        let fb = c.render(160, 120).unwrap();
        assert!(fb.covered_pixels(Color::BLACK) > 300);
        // top-left label pixels present
        let mut label_pixels = 0;
        for y in 0..20 {
            for x in 0..100 {
                if fb.pixel(x, y).luminance() > 0.5 {
                    label_pixels += 1;
                }
            }
        }
        assert!(label_pixels > 20, "labels missing");
    }

    #[test]
    fn overlays_can_be_disabled() {
        let mut c = cell();
        c.show_colorbar = false;
        c.show_labels = false;
        let fb1 = c.render(160, 120).unwrap();
        let mut c2 = cell();
        let fb2 = c2.render(160, 120).unwrap();
        assert!(fb1.covered_pixels(Color::BLACK) < fb2.covered_pixels(Color::BLACK));
    }

    #[test]
    fn camera_ops_persist_across_renders() {
        let mut c = cell();
        c.render(64, 64).unwrap();
        let before = c.camera().position;
        c.configure(&ConfigOp::Camera(CameraOp::Azimuth(30.0))).unwrap();
        c.render(64, 64).unwrap();
        assert_ne!(c.camera().position, before);
        // reset restores the framing
        c.configure(&ConfigOp::Camera(CameraOp::Reset)).unwrap();
        c.render(64, 64).unwrap();
        let dist = (c.camera().position - before).length();
        assert!(dist < 1e-6, "reset should reframe identically: {dist}");
    }

    #[test]
    fn op_log_records_everything() {
        let mut c = cell();
        c.configure(&ConfigOp::MoveSlice { axis: Axis3::Z, delta: 1 }).unwrap();
        c.configure(&ConfigOp::NextColormap).unwrap();
        c.configure(&ConfigOp::Camera(CameraOp::Zoom(1.5))).unwrap();
        assert_eq!(c.op_log().len(), 3);
        assert!(matches!(c.op_log()[2], ConfigOp::Camera(_)));
    }

    #[test]
    fn base_map_draws_coastlines() {
        let ds = SynthesisSpec::new(1, 1, 24, 48).build();
        let mut c = cell();
        c.set_base_map(ds.variable("sftlf").unwrap()).unwrap();
        assert!(c.has_base_map());
        // hide the slice plane so the floor coastlines are unoccluded
        c.configure(&ConfigOp::TogglePlane { axis: Axis3::Z }).unwrap();
        c.show_colorbar = false;
        c.show_labels = false;
        let fb = c.render(128, 96).unwrap();
        // coastline color is yellow-ish (r ≈ g > b)
        let coast_pixels = fb
            .colors()
            .iter()
            .filter(|c| c.r > 0.7 && c.g > 0.7 && c.b > 0.3 && c.b < 0.6)
            .count();
        assert!(coast_pixels > 20, "coastlines missing ({coast_pixels} px)");
    }

    #[test]
    fn base_map_requires_horizontal_axes() {
        let ds = SynthesisSpec::new(2, 1, 8, 16).build();
        let series = cdat::averager::spatial_mean(ds.variable("pr").unwrap()).unwrap();
        let mut c = cell();
        assert!(c.set_base_map(&series).is_err());
    }

    #[test]
    fn pick_probes_the_data() {
        let mut c = cell();
        c.render(64, 64).unwrap();
        let hit = c.pick(32.0, 32.0, 64, 64);
        assert!(hit.is_some());
        let (_, v) = hit.unwrap();
        assert!((150.0..330.0).contains(&v), "picked {v}");
        assert!(c.pick_display.is_some());
    }

    #[test]
    fn raw_events_drive_the_cell() {
        // the full input path: toolkit event -> ConfigOps -> cell state
        use crate::interaction::{map_event, DragMode, Event, MouseButton};
        let mut c = cell();
        c.render(64, 64).unwrap();
        let start_cam = c.camera().position;
        let events = [
            (Event::Key { ch: 'x', shift: false }, DragMode::Navigate), // move x slice
            (Event::Key { ch: 'c', shift: false }, DragMode::Navigate), // next colormap
            (Event::Drag { button: MouseButton::Left, dx: 0.2, dy: 0.0 }, DragMode::Navigate),
            (Event::Drag { button: MouseButton::Left, dx: 0.1, dy: 0.1 }, DragMode::Leveling),
            (Event::Scroll { delta: 2.0 }, DragMode::Navigate),
        ];
        for (ev, mode) in events {
            for op in map_event(ev, mode) {
                c.configure(&op).unwrap();
            }
        }
        assert!(c.op_log().len() >= 5);
        c.render(64, 64).unwrap();
        assert_ne!(c.camera().position, start_cam);
    }

    #[test]
    fn stereo_render_works() {
        let mut c = cell();
        c.stereo = StereoMode::Anaglyph;
        let fb = c.render(96, 72).unwrap();
        assert!(fb.covered_pixels(Color::BLACK) > 100);
    }

    #[test]
    fn outline_adds_box_edges() {
        let mut c = cell();
        c.show_labels = false;
        c.show_colorbar = false;
        let without = c.render(96, 72).unwrap().covered_pixels(Color::BLACK);
        c.show_outline = true;
        let with = c.render(96, 72).unwrap().covered_pixels(Color::BLACK);
        assert!(with > without, "outline should add pixels: {with} vs {without}");
    }

    #[test]
    fn plot_error_propagates() {
        let mut c = cell();
        let err = c.configure(&ConfigOp::SetColormap("bogus".into()));
        assert!(err.is_err());
        // failed ops are not logged
        assert!(c.op_log().is_empty());
    }
}
