//! A headless model of the UV-CDAT GUI's panes (§III.E, Fig 2).
//!
//! No display server exists here, but each pane's *semantics* do: the
//! project view organizes spreadsheets into projects, the variable view
//! lists and edits the selected dataset's variables, and the plot view
//! exposes the palette of prebuilt plot workflows.

use crate::{Dv3dError, Result};
use cdms::{AttValue, Dataset};
use serde::{Deserialize, Serialize};

/// The project view: projects → named spreadsheets.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProjectView {
    projects: Vec<(String, Vec<String>)>,
}

impl ProjectView {
    /// An empty project tree.
    pub fn new() -> ProjectView {
        ProjectView::default()
    }

    /// Creates a project; errors on duplicates.
    pub fn add_project(&mut self, name: &str) -> Result<()> {
        if self.projects.iter().any(|(n, _)| n == name) {
            return Err(Dv3dError::Config(format!("project '{name}' exists")));
        }
        self.projects.push((name.to_string(), Vec::new()));
        Ok(())
    }

    /// Adds a spreadsheet to a project.
    pub fn add_sheet(&mut self, project: &str, sheet: &str) -> Result<()> {
        let p = self
            .projects
            .iter_mut()
            .find(|(n, _)| n == project)
            .ok_or_else(|| Dv3dError::Config(format!("no project '{project}'")))?;
        if p.1.iter().any(|s| s == sheet) {
            return Err(Dv3dError::Config(format!("sheet '{sheet}' exists in '{project}'")));
        }
        p.1.push(sheet.to_string());
        Ok(())
    }

    /// Project names in creation order.
    pub fn projects(&self) -> Vec<&str> {
        self.projects.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Sheets of one project.
    pub fn sheets(&self, project: &str) -> Option<Vec<&str>> {
        self.projects
            .iter()
            .find(|(n, _)| n == project)
            .map(|(_, sheets)| sheets.iter().map(|s| s.as_str()).collect())
    }

    /// Serializes the project tree (saved alongside spreadsheets).
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self)
            .map_err(|e| Dv3dError::Workflow(vistrails::WfError::Serde(e.to_string())))
    }

    /// Reloads a project tree.
    pub fn from_json(s: &str) -> Result<ProjectView> {
        serde_json::from_str(s)
            .map_err(|e| Dv3dError::Workflow(vistrails::WfError::Serde(e.to_string())))
    }
}

/// A row of the variable view.
#[derive(Debug, Clone, PartialEq)]
pub struct VariableRow {
    pub id: String,
    pub long_name: String,
    pub units: String,
    pub shape: Vec<usize>,
}

/// The variable view: lists/edits the variables of a dataset.
#[derive(Debug)]
pub struct VariableView<'a> {
    dataset: &'a mut Dataset,
    selected: Option<String>,
}

impl<'a> VariableView<'a> {
    /// A view over a dataset.
    pub fn new(dataset: &'a mut Dataset) -> VariableView<'a> {
        VariableView { dataset, selected: None }
    }

    /// The table rows.
    pub fn rows(&self) -> Vec<VariableRow> {
        self.dataset
            .variables()
            .iter()
            .map(|v| VariableRow {
                id: v.id.clone(),
                long_name: v.long_name().to_string(),
                units: v.units().unwrap_or("").to_string(),
                shape: v.shape().to_vec(),
            })
            .collect()
    }

    /// Selects a variable.
    pub fn select(&mut self, id: &str) -> Result<()> {
        if self.dataset.variable(id).is_none() {
            return Err(Dv3dError::Config(format!("no variable '{id}'")));
        }
        self.selected = Some(id.to_string());
        Ok(())
    }

    /// The selected variable id.
    pub fn selected(&self) -> Option<&str> {
        self.selected.as_deref()
    }

    /// Edits an attribute of the selected variable.
    pub fn set_attribute(&mut self, name: &str, value: impl Into<AttValue>) -> Result<()> {
        let id = self
            .selected
            .clone()
            .ok_or_else(|| Dv3dError::Config("no variable selected".into()))?;
        let mut var = self
            .dataset
            .variable(&id)
            .ok_or_else(|| Dv3dError::Config(format!("selected variable '{id}' no longer exists")))?
            .clone();
        var.attributes.insert(name.to_string(), value.into());
        self.dataset.add_variable(var);
        Ok(())
    }

    /// Runs a calculator statement against the dataset (the command-line
    /// pane), refreshing the view's table.
    pub fn execute(&mut self, statement: &str) -> Result<crate::calculator::CalcValue> {
        crate::calculator::evaluate(self.dataset, statement)
    }
}

/// One entry of the plot palette (the "plot view").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaletteEntry {
    /// Palette label ("Slicer", "Hovmoller Volume"…).
    pub name: &'static str,
    /// Which variables the plot needs (1 = scalar, 2 = overlay/color/uv).
    pub n_inputs: usize,
    /// Whether the plot needs a vector pair.
    pub needs_vectors: bool,
    /// Whether the plot expects a Hovmöller (time-as-z) volume.
    pub needs_hovmoller: bool,
}

/// The palette of prebuilt plots DV3D ships (§III.E "a palette of available
/// plots, exposing a list of prebuilt workflows").
pub fn plot_palette() -> Vec<PaletteEntry> {
    vec![
        PaletteEntry { name: "Slicer", n_inputs: 1, needs_vectors: false, needs_hovmoller: false },
        PaletteEntry {
            name: "Slicer + Contour Overlay",
            n_inputs: 2,
            needs_vectors: false,
            needs_hovmoller: false,
        },
        PaletteEntry { name: "Volume", n_inputs: 1, needs_vectors: false, needs_hovmoller: false },
        PaletteEntry {
            name: "Isosurface",
            n_inputs: 1,
            needs_vectors: false,
            needs_hovmoller: false,
        },
        PaletteEntry {
            name: "Isosurface (colored by 2nd var)",
            n_inputs: 2,
            needs_vectors: false,
            needs_hovmoller: false,
        },
        PaletteEntry {
            name: "Hovmoller Slicer",
            n_inputs: 1,
            needs_vectors: false,
            needs_hovmoller: true,
        },
        PaletteEntry {
            name: "Hovmoller Volume",
            n_inputs: 1,
            needs_vectors: false,
            needs_hovmoller: true,
        },
        PaletteEntry {
            name: "Vector Slicer",
            n_inputs: 2,
            needs_vectors: true,
            needs_hovmoller: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdms::synth::SynthesisSpec;

    #[test]
    fn project_tree_operations() {
        let mut pv = ProjectView::new();
        pv.add_project("AR6 browse").unwrap();
        pv.add_project("MJO study").unwrap();
        assert!(pv.add_project("AR6 browse").is_err());
        pv.add_sheet("AR6 browse", "main").unwrap();
        pv.add_sheet("AR6 browse", "zoom").unwrap();
        assert!(pv.add_sheet("AR6 browse", "main").is_err());
        assert!(pv.add_sheet("nope", "x").is_err());
        assert_eq!(pv.projects(), vec!["AR6 browse", "MJO study"]);
        assert_eq!(pv.sheets("AR6 browse").unwrap(), vec!["main", "zoom"]);
        assert!(pv.sheets("nope").is_none());
    }

    #[test]
    fn project_view_serializes() {
        let mut pv = ProjectView::new();
        pv.add_project("p1").unwrap();
        pv.add_sheet("p1", "main").unwrap();
        let json = pv.to_json().unwrap();
        let back = ProjectView::from_json(&json).unwrap();
        assert_eq!(back, pv);
        assert!(ProjectView::from_json("zzz").is_err());
    }

    #[test]
    fn variable_view_lists_and_edits() {
        let mut ds = SynthesisSpec::new(2, 2, 4, 8).build();
        let mut vv = VariableView::new(&mut ds);
        let rows = vv.rows();
        assert!(rows.iter().any(|r| r.id == "ta" && r.units == "K"));
        assert!(rows.iter().any(|r| r.shape == vec![2, 2, 4, 8]));
        vv.select("ta").unwrap();
        assert_eq!(vv.selected(), Some("ta"));
        assert!(vv.select("nope").is_err());
        vv.set_attribute("comment", "checked").unwrap();
        assert_eq!(
            ds.variable("ta").unwrap().attributes.get("comment").and_then(|a| a.as_text()),
            Some("checked")
        );
    }

    #[test]
    fn attribute_edit_requires_selection() {
        let mut ds = SynthesisSpec::new(1, 1, 4, 8).build();
        let mut vv = VariableView::new(&mut ds);
        assert!(vv.set_attribute("x", 1.0).is_err());
    }

    #[test]
    fn calculator_pane_updates_table() {
        let mut ds = SynthesisSpec::new(2, 1, 4, 8).build();
        let mut vv = VariableView::new(&mut ds);
        let before = vv.rows().len();
        vv.execute("pr2 = pr * 2").unwrap();
        assert_eq!(vv.rows().len(), before + 1);
    }

    #[test]
    fn palette_covers_paper_plot_types() {
        let palette = plot_palette();
        let names: Vec<&str> = palette.iter().map(|e| e.name).collect();
        for expected in
            ["Slicer", "Volume", "Isosurface", "Hovmoller Slicer", "Hovmoller Volume", "Vector Slicer"]
        {
            assert!(names.contains(&expected), "missing {expected}");
        }
        assert!(palette.iter().any(|e| e.needs_vectors));
        assert_eq!(palette.iter().filter(|e| e.needs_hovmoller).count(), 2);
    }
}
