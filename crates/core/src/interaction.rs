//! Interactive configuration operations and the key/mouse bindings that
//! produce them.
//!
//! Every spreadsheet-cell interaction — dragging a slice plane, leveling a
//! transfer function, rotating the camera — is a serializable [`ConfigOp`].
//! That single representation serves three masters: live configuration of a
//! plot, propagation to the other active cells (and to hyperwall clients),
//! and recording into the provenance trail.

use serde::{Deserialize, Serialize};

/// A 3D axis selector (serializable mirror of `rvtk`'s `SliceAxis`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Axis3 {
    X,
    Y,
    Z,
}

impl From<Axis3> for rvtk::filters::SliceAxis {
    fn from(a: Axis3) -> Self {
        match a {
            Axis3::X => rvtk::filters::SliceAxis::X,
            Axis3::Y => rvtk::filters::SliceAxis::Y,
            Axis3::Z => rvtk::filters::SliceAxis::Z,
        }
    }
}

/// Rendering mode of the vector slicer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VectorMode {
    Glyphs,
    Streamlines,
}

/// Camera navigation operations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CameraOp {
    Azimuth(f64),
    Elevation(f64),
    Zoom(f64),
    Pan(f64, f64),
    Roll(f64),
    Reset,
}

/// One interactive configuration operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ConfigOp {
    /// Drag a slice plane by whole grid steps.
    MoveSlice { axis: Axis3, delta: i64 },
    /// Jump a slice plane to an index.
    SetSlice { axis: Axis3, index: usize },
    /// Show/hide one slice plane.
    TogglePlane { axis: Axis3 },
    /// Transfer-function leveling drag (normalized cell coordinates).
    Leveling { dx: f64, dy: f64 },
    /// Cycle to the next colormap.
    NextColormap,
    /// Select a colormap by name.
    SetColormap(String),
    /// Invert the colormap.
    ToggleInvert,
    /// Set the isosurface level.
    SetIsovalue(f32),
    /// Nudge the isovalue by a fraction of the data range.
    AdjustIsovalue { delta_frac: f32 },
    /// Switch the vector slicer between glyphs and streamlines.
    SetVectorMode(VectorMode),
    /// Navigate the camera.
    Camera(CameraOp),
    /// Step the animation (±n timesteps).
    StepTime(i64),
}

/// Raw input events, as a GUI toolkit would deliver them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A key press with optional shift.
    Key { ch: char, shift: bool },
    /// A mouse drag in normalized cell coordinates, by button.
    Drag { button: MouseButton, dx: f64, dy: f64 },
    /// Scroll wheel.
    Scroll { delta: f64 },
}

/// Mouse buttons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MouseButton {
    Left,
    Middle,
    Right,
}

/// The editor mode a cell is in: determines what a left-drag means
/// (the paper's "pressing a button in a configuration panel" step).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DragMode {
    /// Left-drag rotates the camera.
    #[default]
    Navigate,
    /// Left-drag levels the transfer function.
    Leveling,
    /// Left-drag moves the active slice plane.
    SliceX,
    SliceY,
    SliceZ,
}

/// Translates a raw event into configuration operations under the given
/// drag mode — the DV3D key/mouse binding table (§III.F).
pub fn map_event(event: Event, mode: DragMode) -> Vec<ConfigOp> {
    match event {
        Event::Key { ch, shift } => match ch {
            'x' => vec![ConfigOp::MoveSlice {
                axis: Axis3::X,
                delta: if shift { -1 } else { 1 },
            }],
            'y' => vec![ConfigOp::MoveSlice {
                axis: Axis3::Y,
                delta: if shift { -1 } else { 1 },
            }],
            'z' => vec![ConfigOp::MoveSlice {
                axis: Axis3::Z,
                delta: if shift { -1 } else { 1 },
            }],
            'X' => vec![ConfigOp::TogglePlane { axis: Axis3::X }],
            'Y' => vec![ConfigOp::TogglePlane { axis: Axis3::Y }],
            'Z' => vec![ConfigOp::TogglePlane { axis: Axis3::Z }],
            'c' => vec![ConfigOp::NextColormap],
            'i' => vec![ConfigOp::ToggleInvert],
            '+' | '=' => vec![ConfigOp::AdjustIsovalue { delta_frac: 0.05 }],
            '-' => vec![ConfigOp::AdjustIsovalue { delta_frac: -0.05 }],
            'g' => vec![ConfigOp::SetVectorMode(VectorMode::Glyphs)],
            's' => vec![ConfigOp::SetVectorMode(VectorMode::Streamlines)],
            'r' => vec![ConfigOp::Camera(CameraOp::Reset)],
            '>' | '.' => vec![ConfigOp::StepTime(1)],
            '<' | ',' => vec![ConfigOp::StepTime(-1)],
            _ => vec![],
        },
        Event::Drag { button, dx, dy } => match (button, mode) {
            (MouseButton::Left, DragMode::Navigate) => vec![
                ConfigOp::Camera(CameraOp::Azimuth(-dx * 180.0)),
                ConfigOp::Camera(CameraOp::Elevation(dy * 90.0)),
            ],
            (MouseButton::Left, DragMode::Leveling) => {
                vec![ConfigOp::Leveling { dx, dy }]
            }
            (MouseButton::Left, DragMode::SliceX) => {
                vec![ConfigOp::MoveSlice { axis: Axis3::X, delta: (dx * 10.0) as i64 }]
            }
            (MouseButton::Left, DragMode::SliceY) => {
                vec![ConfigOp::MoveSlice { axis: Axis3::Y, delta: (dy * 10.0) as i64 }]
            }
            (MouseButton::Left, DragMode::SliceZ) => {
                vec![ConfigOp::MoveSlice { axis: Axis3::Z, delta: (dy * 10.0) as i64 }]
            }
            (MouseButton::Middle, _) => {
                vec![ConfigOp::Camera(CameraOp::Pan(-dx * 50.0, dy * 50.0))]
            }
            (MouseButton::Right, _) => {
                vec![ConfigOp::Camera(CameraOp::Zoom((2.0f64).powf(-dy)))]
            }
        },
        Event::Scroll { delta } => {
            vec![ConfigOp::Camera(CameraOp::Zoom((2.0f64).powf(delta / 5.0)))]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_map_to_slice_ops() {
        let ops = map_event(Event::Key { ch: 'x', shift: false }, DragMode::Navigate);
        assert_eq!(ops, vec![ConfigOp::MoveSlice { axis: Axis3::X, delta: 1 }]);
        let ops = map_event(Event::Key { ch: 'z', shift: true }, DragMode::Navigate);
        assert_eq!(ops, vec![ConfigOp::MoveSlice { axis: Axis3::Z, delta: -1 }]);
        let ops = map_event(Event::Key { ch: 'Z', shift: true }, DragMode::Navigate);
        assert_eq!(ops, vec![ConfigOp::TogglePlane { axis: Axis3::Z }]);
    }

    #[test]
    fn unknown_key_maps_to_nothing() {
        assert!(map_event(Event::Key { ch: 'q', shift: false }, DragMode::Navigate).is_empty());
    }

    #[test]
    fn drag_semantics_depend_on_mode() {
        let nav = map_event(
            Event::Drag { button: MouseButton::Left, dx: 0.1, dy: 0.0 },
            DragMode::Navigate,
        );
        assert!(matches!(nav[0], ConfigOp::Camera(CameraOp::Azimuth(_))));
        let lev = map_event(
            Event::Drag { button: MouseButton::Left, dx: 0.1, dy: 0.2 },
            DragMode::Leveling,
        );
        assert_eq!(lev, vec![ConfigOp::Leveling { dx: 0.1, dy: 0.2 }]);
        let slice = map_event(
            Event::Drag { button: MouseButton::Left, dx: 0.35, dy: 0.0 },
            DragMode::SliceX,
        );
        assert_eq!(slice, vec![ConfigOp::MoveSlice { axis: Axis3::X, delta: 3 }]);
    }

    #[test]
    fn middle_and_right_buttons_always_navigate() {
        for mode in [DragMode::Navigate, DragMode::Leveling, DragMode::SliceZ] {
            let pan = map_event(
                Event::Drag { button: MouseButton::Middle, dx: 0.1, dy: 0.1 },
                mode,
            );
            assert!(matches!(pan[0], ConfigOp::Camera(CameraOp::Pan(_, _))));
            let zoom = map_event(
                Event::Drag { button: MouseButton::Right, dx: 0.0, dy: -0.5 },
                mode,
            );
            assert!(matches!(zoom[0], ConfigOp::Camera(CameraOp::Zoom(_))));
        }
    }

    #[test]
    fn time_and_colormap_keys() {
        assert_eq!(
            map_event(Event::Key { ch: '>', shift: true }, DragMode::Navigate),
            vec![ConfigOp::StepTime(1)]
        );
        assert_eq!(
            map_event(Event::Key { ch: 'c', shift: false }, DragMode::Navigate),
            vec![ConfigOp::NextColormap]
        );
    }

    #[test]
    fn ops_serialize_for_the_wire() {
        let op = ConfigOp::MoveSlice { axis: Axis3::Y, delta: -2 };
        let s = serde_json::to_string(&op).unwrap();
        let back: ConfigOp = serde_json::from_str(&s).unwrap();
        assert_eq!(back, op);
        let op = ConfigOp::Camera(CameraOp::Pan(1.0, -2.0));
        let s = serde_json::to_string(&op).unwrap();
        assert_eq!(serde_json::from_str::<ConfigOp>(&s).unwrap(), op);
    }

    #[test]
    fn axis3_converts_to_slice_axis() {
        use rvtk::filters::SliceAxis;
        assert_eq!(SliceAxis::from(Axis3::X), SliceAxis::X);
        assert_eq!(SliceAxis::from(Axis3::Z), SliceAxis::Z);
    }
}
