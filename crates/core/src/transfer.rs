//! Interactive transfer-function editing — DV3D's *leveling* operation.
//!
//! "Pressing a button in a configuration panel and then clicking and
//! dragging in a spreadsheet cell … initiates a leveling operation that
//! controls the shape of the plot's opacity or color transfer function.
//! The volume render plot changes interactively as the user drags the mouse
//! around the cell" (§III.F). [`TransferEditor`] holds the `(window,
//! level)` state those drags adjust and produces the transfer functions
//! the renderer consumes.

use rvtk::lookup_table::ColormapName;
use rvtk::{ColorTransferFunction, LookupTable, OpacityTransferFunction};

/// Window/level state plus colormap selection.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferEditor {
    /// Scalar range of the underlying data.
    pub data_range: (f32, f32),
    /// Centre of the opacity ramp.
    pub level: f32,
    /// Width of the opacity ramp.
    pub window: f32,
    /// Peak opacity.
    pub max_opacity: f32,
    /// Colormap for both LUTs and volume color functions.
    pub colormap: ColormapName,
    /// Invert the colormap.
    pub inverted: bool,
}

impl TransferEditor {
    /// An editor initialized to show the middle half of the data range.
    pub fn new(data_range: (f32, f32)) -> TransferEditor {
        let span = (data_range.1 - data_range.0).max(1e-6);
        TransferEditor {
            data_range,
            level: (data_range.0 + data_range.1) / 2.0,
            window: span / 2.0,
            max_opacity: 0.7,
            colormap: ColormapName::Jet,
            inverted: false,
        }
    }

    /// Applies a mouse drag: horizontal motion moves the *level* across the
    /// data range, vertical motion scales the *window*. `dx`/`dy` are in
    /// normalized cell coordinates (−1 ‥ 1 spans the whole cell).
    pub fn drag(&mut self, dx: f64, dy: f64) {
        let span = (self.data_range.1 - self.data_range.0).max(1e-6);
        self.level = (self.level + dx as f32 * span / 2.0)
            .clamp(self.data_range.0, self.data_range.1);
        let factor = (2.0f32).powf(dy as f32);
        self.window = (self.window * factor).clamp(span * 0.01, span * 2.0);
    }

    /// The opacity transfer function for the current state.
    pub fn opacity_function(&self) -> OpacityTransferFunction {
        OpacityTransferFunction::leveling(self.level, self.window, self.max_opacity)
    }

    /// The color transfer function over the *windowed* sub-range, so color
    /// contrast follows the leveling operation too.
    pub fn color_function(&self) -> ColorTransferFunction {
        let lo = (self.level - self.window / 2.0).max(self.data_range.0);
        let hi = (self.level + self.window / 2.0).min(self.data_range.1);
        let range = if hi > lo { (lo, hi) } else { self.data_range };
        ColorTransferFunction::from_colormap(self.colormap, range)
    }

    /// A lookup table over the full data range (for slice/isosurface
    /// pseudocolor and colorbars).
    pub fn lookup_table(&self) -> LookupTable {
        LookupTable::with_resolution(self.colormap, self.data_range, 256, self.inverted)
    }

    /// Cycles to the next available colormap (the keypress operation).
    pub fn next_colormap(&mut self) {
        self.colormap = match self.colormap {
            ColormapName::Jet => ColormapName::Viridis,
            ColormapName::Viridis => ColormapName::CoolWarm,
            ColormapName::CoolWarm => ColormapName::Grayscale,
            ColormapName::Grayscale => ColormapName::Rainbow,
            ColormapName::Rainbow => ColormapName::Hot,
            ColormapName::Hot => ColormapName::Jet,
        };
    }

    /// Selects a colormap by name; returns false for unknown names.
    pub fn set_colormap(&mut self, name: &str) -> bool {
        match ColormapName::parse(name) {
            Some(c) => {
                self.colormap = c;
                true
            }
            None => false,
        }
    }

    /// Toggles colormap inversion.
    pub fn toggle_invert(&mut self) {
        self.inverted = !self.inverted;
    }

    /// Rescales to a new data range, preserving the *relative* window and
    /// level (used when animation steps to a timestep with a new range).
    pub fn rescale(&mut self, new_range: (f32, f32)) {
        let old_span = (self.data_range.1 - self.data_range.0).max(1e-6);
        let rel_level = (self.level - self.data_range.0) / old_span;
        let rel_window = self.window / old_span;
        let new_span = (new_range.1 - new_range.0).max(1e-6);
        self.data_range = new_range;
        self.level = new_range.0 + rel_level * new_span;
        self.window = rel_window * new_span;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_covers_middle() {
        let e = TransferEditor::new((0.0, 100.0));
        assert_eq!(e.level, 50.0);
        assert_eq!(e.window, 50.0);
        let otf = e.opacity_function();
        assert_eq!(otf.map(0.0), 0.0);
        assert!(otf.map(80.0) > 0.6);
    }

    #[test]
    fn horizontal_drag_moves_level() {
        let mut e = TransferEditor::new((0.0, 100.0));
        e.drag(0.5, 0.0);
        assert_eq!(e.level, 75.0);
        e.drag(-2.0, 0.0); // clamped at range min
        assert_eq!(e.level, 0.0);
        e.drag(5.0, 0.0);
        assert_eq!(e.level, 100.0);
    }

    #[test]
    fn vertical_drag_scales_window() {
        let mut e = TransferEditor::new((0.0, 100.0));
        let w0 = e.window;
        e.drag(0.0, 1.0);
        assert!((e.window - w0 * 2.0).abs() < 1e-4);
        e.drag(0.0, -2.0);
        assert!((e.window - w0 / 2.0).abs() < 1e-4);
        // clamped to 1% of the span
        for _ in 0..30 {
            e.drag(0.0, -1.0);
        }
        assert!(e.window >= 1.0 - 1e-6);
    }

    #[test]
    fn leveling_shapes_opacity_interactively() {
        let mut e = TransferEditor::new((0.0, 10.0));
        let before = e.opacity_function().map(3.0);
        e.drag(-0.8, 0.0); // move level down: 3.0 becomes more opaque
        let after = e.opacity_function().map(3.0);
        assert!(after > before, "{after} !> {before}");
    }

    #[test]
    fn color_function_follows_window() {
        let mut e = TransferEditor::new((0.0, 100.0));
        e.level = 20.0;
        e.window = 10.0;
        let ctf = e.color_function();
        // colors saturate at the window edges
        let lo = ctf.map(15.0);
        let below = ctf.map(0.0);
        assert_eq!(lo, below);
        let hi = ctf.map(25.0);
        let above = ctf.map(100.0);
        assert_eq!(hi, above);
    }

    #[test]
    fn colormap_cycling_returns_home() {
        let mut e = TransferEditor::new((0.0, 1.0));
        let start = e.colormap;
        for _ in 0..6 {
            e.next_colormap();
        }
        assert_eq!(e.colormap, start);
    }

    #[test]
    fn set_colormap_by_name() {
        let mut e = TransferEditor::new((0.0, 1.0));
        assert!(e.set_colormap("viridis"));
        assert_eq!(e.colormap, ColormapName::Viridis);
        assert!(!e.set_colormap("nope"));
        assert_eq!(e.colormap, ColormapName::Viridis);
    }

    #[test]
    fn invert_toggles_lut() {
        let mut e = TransferEditor::new((0.0, 1.0));
        e.set_colormap("grayscale");
        let lo_before = e.lookup_table().map(0.0).luminance();
        e.toggle_invert();
        let lo_after = e.lookup_table().map(0.0).luminance();
        assert!(lo_after > lo_before);
        e.toggle_invert();
        assert_eq!(e.lookup_table().map(0.0).luminance(), lo_before);
    }

    #[test]
    fn rescale_preserves_relative_state() {
        let mut e = TransferEditor::new((0.0, 100.0));
        e.level = 25.0; // 25% of range
        e.window = 10.0; // 10% of range
        e.rescale((200.0, 400.0));
        assert!((e.level - 250.0).abs() < 1e-4);
        assert!((e.window - 20.0).abs() < 1e-4);
    }
}
