//! VisTrails package registration: CDMS, CDAT and DV3D as workflow
//! modules, plus the prebuilt plot workflows the palette exposes.
//!
//! This is the "tightly coupled integration" of Fig 1: each library's
//! functionality becomes typed modules in the [`ModuleRegistry`], so users
//! can compose them in the workflow builder, execute them with caching, and
//! have every edit recorded as provenance. (The loosely coupled path —
//! external tools like R or MatLab — uses
//! `ModuleRegistry::register_external_tool`; see the integration tests.)

use crate::cell::Dv3dCell;
use crate::interaction::VectorMode;
use crate::plots::{HovmollerMode, PlotSpec};
use crate::translation::{translate_scalar, translate_vector, TranslationOptions};
use cdms::synth::SynthesisSpec;
use cdms::{Dataset, Variable};
use rvtk::render::Framebuffer;
use rvtk::ImageData;
use vistrails::module::{single, ModuleRegistry, PortType};
use vistrails::pipeline::ModuleId;
use vistrails::provenance::{Action, VersionId, Vistrail};
use vistrails::value::{ParamValue, Params, WfData};
use vistrails::WfError;

/// Opaque type tags used on ports.
pub mod tags {
    pub const DATASET: &str = "cdms.Dataset";
    pub const VARIABLE: &str = "cdms.Variable";
    pub const IMAGE: &str = "rvtk.ImageData";
    pub const PLOT: &str = "dv3d.PlotSpec";
    pub const FRAME: &str = "rvtk.Frame";
}

fn exec_err(msg: impl std::fmt::Display) -> WfError {
    WfError::Execution { module: 0, message: msg.to_string() }
}

fn need_var(inputs: &std::collections::BTreeMap<String, WfData>, port: &str) -> Result<Variable, WfError> {
    inputs
        .get(port)
        .and_then(|d| d.as_opaque::<Variable>())
        .map(|v| (*v).clone())
        .ok_or_else(|| exec_err(format!("missing '{port}' variable input")))
}

fn need_image(
    inputs: &std::collections::BTreeMap<String, WfData>,
    port: &str,
) -> Result<ImageData, WfError> {
    inputs
        .get(port)
        .and_then(|d| d.as_opaque::<ImageData>())
        .map(|v| (*v).clone())
        .ok_or_else(|| exec_err(format!("missing '{port}' image input")))
}

fn param_i64(params: &Params, name: &str, default: i64) -> i64 {
    params.get(name).and_then(ParamValue::as_i64).unwrap_or(default)
}

fn param_f64(params: &Params, name: &str, default: f64) -> f64 {
    params.get(name).and_then(ParamValue::as_f64).unwrap_or(default)
}

/// Registers the `cdms`, `cdat` and `dv3d` packages into a registry.
pub fn register_all(reg: &mut ModuleRegistry) {
    register_cdms(reg);
    register_cdat(reg);
    register_dv3d(reg);
}

fn register_cdms(reg: &mut ModuleRegistry) {
    // Synthetic-data source (our ESG/model-output stand-in).
    reg.register_fn(
        "cdms",
        "SynthSource",
        &[],
        &[("dataset", PortType::Opaque(tags::DATASET.into()))],
        |_inputs, params| {
            let spec = SynthesisSpec::new(
                param_i64(params, "nt", 4) as usize,
                param_i64(params, "nlev", 4) as usize,
                param_i64(params, "nlat", 16) as usize,
                param_i64(params, "nlon", 32) as usize,
            )
            .seed(param_i64(params, "seed", 42) as u64);
            Ok(single("dataset", WfData::opaque(tags::DATASET, spec.build())))
        },
    );
    // Open a .ncr file.
    reg.register_fn(
        "cdms",
        "OpenFile",
        &[],
        &[("dataset", PortType::Opaque(tags::DATASET.into()))],
        |_inputs, params| {
            let path = params
                .get("path")
                .and_then(ParamValue::as_str)
                .ok_or_else(|| exec_err("OpenFile needs a 'path' parameter"))?;
            let ds = Dataset::open(path).map_err(exec_err)?;
            Ok(single("dataset", WfData::opaque(tags::DATASET, ds)))
        },
    );
    // Select one variable (optionally one timestep) from a dataset.
    reg.register_fn(
        "cdms",
        "SelectVariable",
        &[("dataset", PortType::Opaque(tags::DATASET.into()))],
        &[("variable", PortType::Opaque(tags::VARIABLE.into()))],
        |inputs, params| {
            let ds = inputs
                .get("dataset")
                .and_then(|d| d.as_opaque::<Dataset>())
                .ok_or_else(|| exec_err("missing 'dataset' input"))?;
            let name = params
                .get("name")
                .and_then(ParamValue::as_str)
                .ok_or_else(|| exec_err("SelectVariable needs a 'name' parameter"))?;
            let mut var = ds.require(name).map_err(exec_err)?.clone();
            let t = param_i64(params, "time_index", -1);
            if t >= 0 {
                var = var.time_slab(t as usize).map_err(exec_err)?;
            }
            Ok(single("variable", WfData::opaque(tags::VARIABLE, var)))
        },
    );
}

fn register_cdat(reg: &mut ModuleRegistry) {
    let var_in = ("variable", PortType::Opaque(tags::VARIABLE.into()));
    let var_out = ("variable", PortType::Opaque(tags::VARIABLE.into()));
    reg.register_fn("cdat", "Anomaly", std::slice::from_ref(&var_in), std::slice::from_ref(&var_out), |inputs, _| {
        let v = need_var(inputs, "variable")?;
        let out = cdat::climatology::anomaly(&v).map_err(exec_err)?;
        Ok(single("variable", WfData::opaque(tags::VARIABLE, out)))
    });
    reg.register_fn("cdat", "TimeSlab", std::slice::from_ref(&var_in), std::slice::from_ref(&var_out), |inputs, params| {
        let v = need_var(inputs, "variable")?;
        let t = param_i64(params, "index", 0).max(0) as usize;
        let out = v.time_slab(t).map_err(exec_err)?;
        Ok(single("variable", WfData::opaque(tags::VARIABLE, out)))
    });
    reg.register_fn("cdat", "Regrid", std::slice::from_ref(&var_in), std::slice::from_ref(&var_out), |inputs, params| {
        let v = need_var(inputs, "variable")?;
        let grid = cdms::RectGrid::uniform(
            param_i64(params, "nlat", 16) as usize,
            param_i64(params, "nlon", 32) as usize,
        )
        .map_err(exec_err)?;
        let method = match params.get("method").and_then(ParamValue::as_str) {
            None => cdat::regrid_plan::RegridMethod::Bilinear,
            Some(name) => cdat::regrid_plan::RegridMethod::parse(name)
                .ok_or_else(|| exec_err(format!("unknown regrid method '{name}'")))?,
        };
        let out = cdat::regrid::regrid(&v, &grid, method).map_err(exec_err)?;
        Ok(single("variable", WfData::opaque(tags::VARIABLE, out)))
    });
    // Pipeline caches must not outlive the regrid engine that filled them:
    // key cached outputs on the plan engine's version.
    reg.set_cache_salt("cdat.Regrid", cdat::regrid_plan::ENGINE_VERSION);
    reg.register_fn(
        "cdat",
        "HovmollerVolume",
        std::slice::from_ref(&var_in),
        std::slice::from_ref(&var_out),
        |inputs, _| {
            let v = need_var(inputs, "variable")?;
            let out = cdat::hovmoller::hovmoller_volume(&v).map_err(exec_err)?;
            Ok(single("variable", WfData::opaque(tags::VARIABLE, out)))
        },
    );
}

fn register_dv3d(reg: &mut ModuleRegistry) {
    let image_out = ("image", PortType::Opaque(tags::IMAGE.into()));
    let image_in = ("image", PortType::Opaque(tags::IMAGE.into()));
    let plot_out = ("plot", PortType::Opaque(tags::PLOT.into()));

    reg.register_fn(
        "dv3d",
        "TranslateScalar",
        &[("variable", PortType::Opaque(tags::VARIABLE.into()))],
        std::slice::from_ref(&image_out),
        |inputs, params| {
            let v = need_var(inputs, "variable")?;
            let opts = TranslationOptions {
                vertical_scale: param_f64(params, "vertical_scale", 10.0),
                time_as_vertical: None,
            };
            let img = translate_scalar(&v, &opts).map_err(exec_err)?;
            Ok(single("image", WfData::opaque(tags::IMAGE, img)))
        },
    );
    reg.register_fn(
        "dv3d",
        "TranslateVector",
        &[
            ("u", PortType::Opaque(tags::VARIABLE.into())),
            ("v", PortType::Opaque(tags::VARIABLE.into())),
        ],
        std::slice::from_ref(&image_out),
        |inputs, params| {
            let u = need_var(inputs, "u")?;
            let v = need_var(inputs, "v")?;
            let opts = TranslationOptions {
                vertical_scale: param_f64(params, "vertical_scale", 10.0),
                time_as_vertical: None,
            };
            let img = translate_vector(&u, &v, &opts).map_err(exec_err)?;
            Ok(single("image", WfData::opaque(tags::IMAGE, img)))
        },
    );
    reg.register_fn(
        "dv3d",
        "SlicerPlot",
        &[
            image_in.clone(),
            ("overlay", PortType::Opaque(tags::IMAGE.into())),
        ],
        std::slice::from_ref(&plot_out),
        |inputs, _| {
            let img = need_image(inputs, "image")?;
            let overlay = inputs
                .get("overlay")
                .and_then(|d| d.as_opaque::<ImageData>())
                .map(|o| (*o).clone());
            let spec = match overlay {
                Some(o) => PlotSpec::slicer_with_overlay(img, o),
                None => PlotSpec::slicer(img),
            };
            Ok(single("plot", WfData::opaque(tags::PLOT, spec)))
        },
    );
    reg.register_fn("dv3d", "VolumePlot", std::slice::from_ref(&image_in), std::slice::from_ref(&plot_out), |inputs, _| {
        let img = need_image(inputs, "image")?;
        Ok(single("plot", WfData::opaque(tags::PLOT, PlotSpec::volume(img))))
    });
    reg.register_fn(
        "dv3d",
        "IsosurfacePlot",
        &[
            image_in.clone(),
            ("color", PortType::Opaque(tags::IMAGE.into())),
        ],
        std::slice::from_ref(&plot_out),
        |inputs, params| {
            let img = need_image(inputs, "image")?;
            let color = inputs
                .get("color")
                .and_then(|d| d.as_opaque::<ImageData>())
                .map(|o| (*o).clone());
            let isovalue = params.get("isovalue").and_then(ParamValue::as_f64).map(|v| v as f32);
            let spec = PlotSpec::Isosurface { image: img, color_image: color, isovalue };
            Ok(single("plot", WfData::opaque(tags::PLOT, spec)))
        },
    );
    reg.register_fn(
        "dv3d",
        "HovmollerPlot",
        std::slice::from_ref(&image_in),
        std::slice::from_ref(&plot_out),
        |inputs, params| {
            let img = need_image(inputs, "image")?;
            let mode = match params.get("mode").and_then(ParamValue::as_str) {
                Some("volume") => HovmollerMode::Volume,
                _ => HovmollerMode::Slicer,
            };
            Ok(single(
                "plot",
                WfData::opaque(tags::PLOT, PlotSpec::Hovmoller { image: img, mode }),
            ))
        },
    );
    reg.register_fn(
        "dv3d",
        "VectorSlicerPlot",
        std::slice::from_ref(&image_in),
        std::slice::from_ref(&plot_out),
        |inputs, params| {
            let img = need_image(inputs, "image")?;
            let mode = match params.get("mode").and_then(ParamValue::as_str) {
                Some("streamlines") => VectorMode::Streamlines,
                _ => VectorMode::Glyphs,
            };
            Ok(single(
                "plot",
                WfData::opaque(tags::PLOT, PlotSpec::VectorSlicer { image: img, mode }),
            ))
        },
    );
    // Fig 3's combined cell: a volume render and a slicer sharing one view.
    reg.register_fn(
        "dv3d",
        "CombinedPlot",
        std::slice::from_ref(&image_in),
        std::slice::from_ref(&plot_out),
        |inputs, _| {
            let img = need_image(inputs, "image")?;
            let spec = PlotSpec::Combined {
                members: vec![PlotSpec::volume(img.clone()), PlotSpec::slicer(img)],
            };
            Ok(single("plot", WfData::opaque(tags::PLOT, spec)))
        },
    );
    // The spreadsheet-cell sink: renders the plot to a frame.
    reg.register_fn_sink(
        "dv3d",
        "Cell",
        &[("plot", PortType::Opaque(tags::PLOT.into()))],
        &[
            ("frame", PortType::Opaque(tags::FRAME.into())),
            ("coverage", PortType::Float),
        ],
        true,
        |inputs, params| {
            let spec = inputs
                .get("plot")
                .and_then(|d| d.as_opaque::<PlotSpec>())
                .ok_or_else(|| exec_err("missing 'plot' input"))?;
            let name = params
                .get("name")
                .and_then(ParamValue::as_str)
                .unwrap_or("cell")
                .to_string();
            let mut cell =
                Dv3dCell::try_new(&name, (*spec).clone()).map_err(exec_err)?;
            let w = param_i64(params, "width", 160).max(16) as usize;
            let h = param_i64(params, "height", 120).max(16) as usize;
            let frame: Framebuffer = cell.render(w, h).map_err(exec_err)?;
            let coverage =
                frame.covered_pixels(rvtk::Color::BLACK) as f64 / (w * h) as f64;
            let mut out = single("frame", WfData::opaque(tags::FRAME, frame));
            out.insert("coverage".into(), WfData::Float(coverage));
            Ok(out)
        },
    );
}

/// Identifies one prebuilt workflow (a plot-palette entry made concrete).
#[derive(Debug, Clone)]
pub struct PrebuiltWorkflow {
    /// The provenance tree containing the workflow.
    pub vistrail: Vistrail,
    /// The version to materialize.
    pub version: VersionId,
    /// The cell (sink) module id.
    pub cell_module: ModuleId,
}

/// Builds the prebuilt "variable → translate → plot → cell" workflow for a
/// named plot type, entirely through provenance actions (so the whole
/// construction is recorded and branchable). `plot` is one of `"slicer"`,
/// `"volume"`, `"isosurface"`, `"combined"` (Fig 3's volume + slicer),
/// `"hovmoller_slicer"`, `"hovmoller_volume"`.
pub fn prebuilt_plot_workflow(
    plot: &str,
    variable: &str,
    synth: (i64, i64, i64, i64),
) -> Result<PrebuiltWorkflow, WfError> {
    let (plot_type, plot_params, needs_hovmoller): (&str, Vec<(&str, ParamValue)>, bool) =
        match plot {
            "slicer" => ("dv3d.SlicerPlot", vec![], false),
            "volume" => ("dv3d.VolumePlot", vec![], false),
            "isosurface" => ("dv3d.IsosurfacePlot", vec![], false),
            "combined" => ("dv3d.CombinedPlot", vec![], false),
            "hovmoller_slicer" => {
                ("dv3d.HovmollerPlot", vec![("mode", ParamValue::Str("slicer".into()))], true)
            }
            "hovmoller_volume" => {
                ("dv3d.HovmollerPlot", vec![("mode", ParamValue::Str("volume".into()))], true)
            }
            other => return Err(WfError::NotFound(format!("prebuilt plot '{other}'"))),
        };

    let mut vt = Vistrail::new(&format!("{plot} of {variable}"));
    let mut actions = vec![
        Action::AddModule { id: 1, type_name: "cdms.SynthSource".into() },
        Action::SetParameter { module: 1, name: "nt".into(), value: ParamValue::Int(synth.0) },
        Action::SetParameter { module: 1, name: "nlev".into(), value: ParamValue::Int(synth.1) },
        Action::SetParameter { module: 1, name: "nlat".into(), value: ParamValue::Int(synth.2) },
        Action::SetParameter { module: 1, name: "nlon".into(), value: ParamValue::Int(synth.3) },
        Action::AddModule { id: 2, type_name: "cdms.SelectVariable".into() },
        Action::SetParameter {
            module: 2,
            name: "name".into(),
            value: ParamValue::Str(variable.into()),
        },
        Action::AddConnection { from: (1, "dataset".into()), to: (2, "dataset".into()) },
    ];
    let mut src_module = 2;
    if needs_hovmoller {
        actions.push(Action::AddModule { id: 3, type_name: "cdat.HovmollerVolume".into() });
        actions.push(Action::AddConnection {
            from: (2, "variable".into()),
            to: (3, "variable".into()),
        });
        src_module = 3;
    } else {
        actions.push(Action::SetParameter {
            module: 2,
            name: "time_index".into(),
            value: ParamValue::Int(0),
        });
    }
    actions.extend([
        Action::AddModule { id: 10, type_name: "dv3d.TranslateScalar".into() },
        Action::AddConnection {
            from: (src_module, "variable".into()),
            to: (10, "variable".into()),
        },
        Action::AddModule { id: 11, type_name: plot_type.into() },
        Action::AddConnection { from: (10, "image".into()), to: (11, "image".into()) },
        Action::AddModule { id: 12, type_name: "dv3d.Cell".into() },
        Action::AddConnection { from: (11, "plot".into()), to: (12, "plot".into()) },
        Action::SetParameter {
            module: 12,
            name: "name".into(),
            value: ParamValue::Str(format!("{variable} {plot}")),
        },
    ]);
    for (name, value) in plot_params {
        actions.push(Action::SetParameter { module: 11, name: name.into(), value });
    }
    let version = vt.add_actions(Vistrail::ROOT, actions)?;
    vt.tag(version, "prebuilt")?;
    Ok(PrebuiltWorkflow { vistrail: vt, version, cell_module: 12 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vistrails::executor::Executor;

    fn registry() -> ModuleRegistry {
        let mut r = ModuleRegistry::new();
        register_all(&mut r);
        r
    }

    #[test]
    fn packages_register_expected_modules() {
        let r = registry();
        for t in [
            "cdms.SynthSource",
            "cdms.OpenFile",
            "cdms.SelectVariable",
            "cdat.Anomaly",
            "cdat.TimeSlab",
            "cdat.Regrid",
            "cdat.HovmollerVolume",
            "dv3d.TranslateScalar",
            "dv3d.TranslateVector",
            "dv3d.SlicerPlot",
            "dv3d.VolumePlot",
            "dv3d.IsosurfacePlot",
            "dv3d.HovmollerPlot",
            "dv3d.VectorSlicerPlot",
            "dv3d.CombinedPlot",
            "dv3d.Cell",
        ] {
            assert!(r.get(t).is_ok(), "missing {t}");
        }
        assert!(r.descriptor("dv3d.Cell").unwrap().is_sink);
    }

    #[test]
    fn prebuilt_slicer_executes_end_to_end() {
        let wf = prebuilt_plot_workflow("slicer", "ta", (2, 3, 12, 24)).unwrap();
        let pipeline = wf.vistrail.materialize(wf.version).unwrap();
        let mut exec = Executor::new(registry());
        let results = exec.execute(&pipeline).unwrap();
        let coverage = results
            .output(wf.cell_module, "coverage")
            .and_then(WfData::as_float)
            .unwrap();
        assert!(coverage > 0.05, "cell rendered {coverage} coverage");
        let frame = results
            .output(wf.cell_module, "frame")
            .and_then(|d| d.as_opaque::<Framebuffer>())
            .unwrap();
        assert_eq!(frame.width(), 160);
    }

    #[test]
    fn prebuilt_combined_executes() {
        let wf = prebuilt_plot_workflow("combined", "ta", (1, 3, 10, 20)).unwrap();
        let pipeline = wf.vistrail.materialize(wf.version).unwrap();
        let mut exec = Executor::new(registry());
        let results = exec.execute(&pipeline).unwrap();
        let cov = results
            .output(wf.cell_module, "coverage")
            .and_then(WfData::as_float)
            .unwrap();
        assert!(cov > 0.05, "combined cell coverage {cov}");
    }

    #[test]
    fn prebuilt_hovmoller_executes() {
        let wf = prebuilt_plot_workflow("hovmoller_volume", "wave", (6, 1, 12, 24)).unwrap();
        let pipeline = wf.vistrail.materialize(wf.version).unwrap();
        let mut exec = Executor::new(registry());
        let results = exec.execute(&pipeline).unwrap();
        assert!(results
            .output(wf.cell_module, "coverage")
            .and_then(WfData::as_float)
            .unwrap()
            > 0.01);
    }

    #[test]
    fn unknown_prebuilt_rejected() {
        assert!(prebuilt_plot_workflow("sparkles", "ta", (1, 1, 4, 8)).is_err());
    }

    #[test]
    fn select_variable_validates() {
        let r = registry();
        let m = r.get("cdms.SelectVariable").unwrap();
        // missing dataset input
        let err = m.execute(&Default::default(), &Params::new()).unwrap_err();
        assert!(matches!(err, WfError::Execution { .. }));
    }

    #[test]
    fn open_file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("dv3d_modules_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ncr");
        let ds = SynthesisSpec::new(1, 1, 4, 8).build();
        ds.save(&path).unwrap();
        let r = registry();
        let m = r.get("cdms.OpenFile").unwrap();
        let mut params = Params::new();
        params.insert("path".into(), ParamValue::Str(path.display().to_string()));
        let out = m.execute(&Default::default(), &params).unwrap();
        let opened = out["dataset"].as_opaque::<Dataset>().unwrap();
        assert!(opened.variable("ta").is_some());
        std::fs::remove_dir_all(&dir).ok();
        // missing file errors
        let mut params = Params::new();
        params.insert("path".into(), ParamValue::Str("/nonexistent.ncr".into()));
        assert!(m.execute(&Default::default(), &params).is_err());
    }

    #[test]
    fn provenance_branch_changes_plot_type() {
        // Branch the prebuilt slicer into a volume plot at the same parent —
        // the §III.F "switch back and forth between branches" workflow.
        let wf = prebuilt_plot_workflow("slicer", "ta", (1, 3, 10, 20)).unwrap();
        let mut vt = wf.vistrail.clone();
        // find the version path, branch from the head by swapping module 11
        let head = wf.version;
        let branch = vt
            .add_actions(
                head,
                vec![
                    Action::DeleteModule { id: 11 },
                    Action::AddModule { id: 21, type_name: "dv3d.VolumePlot".into() },
                    Action::AddConnection { from: (10, "image".into()), to: (21, "image".into()) },
                    Action::AddConnection { from: (21, "plot".into()), to: (12, "plot".into()) },
                ],
            )
            .unwrap();
        let mut exec = Executor::new(registry());
        // both versions still materialize and run
        let slicer_cov = exec
            .execute(&vt.materialize(head).unwrap())
            .unwrap()
            .output(12, "coverage")
            .and_then(WfData::as_float)
            .unwrap();
        let volume_cov = exec
            .execute(&vt.materialize(branch).unwrap())
            .unwrap()
            .output(12, "coverage")
            .and_then(WfData::as_float)
            .unwrap();
        assert!(slicer_cov > 0.0 && volume_cov > 0.0);
    }

    #[test]
    fn caching_skips_upstream_on_param_edit() {
        let wf = prebuilt_plot_workflow("slicer", "ta", (1, 2, 8, 16)).unwrap();
        let mut exec = Executor::new(registry());
        let p1 = wf.vistrail.materialize(wf.version).unwrap();
        exec.execute(&p1).unwrap();
        // change only the cell's size: source/translate/plot are cache hits
        let mut vt = wf.vistrail.clone();
        let v2 = vt
            .add_action(
                wf.version,
                Action::SetParameter {
                    module: 12,
                    name: "width".into(),
                    value: ParamValue::Int(64),
                },
            )
            .unwrap();
        let results = exec.execute(&vt.materialize(v2).unwrap()).unwrap();
        assert!(results.cache_hits() >= 4, "hits: {}", results.cache_hits());
    }
}
