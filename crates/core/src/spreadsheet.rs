//! The DV3D visualization spreadsheet: a grid of live cells with
//! synchronized interaction.
//!
//! "Cells in the spreadsheet can be individually activated or deactivated
//! by selection. Configuration and navigation operations are propagated to
//! all active cells" (§III.G). This is the runtime counterpart of the
//! `vistrails` spreadsheet (which binds cells to provenance versions).

use crate::cell::Dv3dCell;
use crate::interaction::ConfigOp;
use crate::{Dv3dError, Result};
use rvtk::render::Framebuffer;
use std::collections::BTreeMap;

/// A grid of live DV3D cells.
pub struct Dv3dSpreadsheet {
    rows: usize,
    cols: usize,
    cells: BTreeMap<(usize, usize), Dv3dCell>,
    active: Vec<(usize, usize)>,
}

impl std::fmt::Debug for Dv3dSpreadsheet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dv3dSpreadsheet")
            .field("size", &(self.rows, self.cols))
            .field("cells", &self.cells.len())
            .field("active", &self.active.len())
            .finish()
    }
}

impl Dv3dSpreadsheet {
    /// An empty sheet.
    pub fn new(rows: usize, cols: usize) -> Dv3dSpreadsheet {
        Dv3dSpreadsheet {
            rows: rows.max(1),
            cols: cols.max(1),
            cells: BTreeMap::new(),
            active: Vec::new(),
        }
    }

    /// Grid size `(rows, cols)`.
    pub fn size(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Places a cell; newly placed cells start active.
    pub fn place(&mut self, at: (usize, usize), cell: Dv3dCell) -> Result<()> {
        if at.0 >= self.rows || at.1 >= self.cols {
            return Err(Dv3dError::Config(format!(
                "cell {at:?} outside {}x{} sheet",
                self.rows, self.cols
            )));
        }
        self.cells.insert(at, cell);
        if !self.active.contains(&at) {
            self.active.push(at);
        }
        Ok(())
    }

    /// The cell at a position.
    pub fn cell(&self, at: (usize, usize)) -> Option<&Dv3dCell> {
        self.cells.get(&at)
    }

    /// Mutable cell access.
    pub fn cell_mut(&mut self, at: (usize, usize)) -> Option<&mut Dv3dCell> {
        self.cells.get_mut(&at)
    }

    /// Number of placed cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cell is placed.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Activates or deactivates a cell.
    pub fn set_active(&mut self, at: (usize, usize), active: bool) -> Result<()> {
        if !self.cells.contains_key(&at) {
            return Err(Dv3dError::Config(format!("no cell at {at:?}")));
        }
        self.active.retain(|&a| a != at);
        if active {
            self.active.push(at);
        }
        Ok(())
    }

    /// Positions of the active cells.
    pub fn active_cells(&self) -> &[(usize, usize)] {
        &self.active
    }

    /// Applies a configuration op to all active cells — the synchronized
    /// interaction the spreadsheet exists for. Returns how many cells
    /// accepted it (cells whose plot type ignores the op don't count as
    /// failures).
    pub fn configure_active(&mut self, op: &ConfigOp) -> Result<usize> {
        let mut applied = 0;
        for at in self.active.clone() {
            if let Some(cell) = self.cells.get_mut(&at) {
                match cell.configure(op) {
                    Ok(()) => applied += 1,
                    Err(Dv3dError::Config(_)) => {} // not meaningful for this plot
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(applied)
    }

    /// Mirrors one cell's camera into every other active cell
    /// (synchronized navigation across plots of the same domain).
    pub fn sync_cameras_from(&mut self, source: (usize, usize)) -> Result<()> {
        let camera = self
            .cells
            .get(&source)
            .ok_or_else(|| Dv3dError::Config(format!("no cell at {source:?}")))?
            .camera()
            .clone();
        for at in self.active.clone() {
            if at != source {
                if let Some(c) = self.cells.get_mut(&at) {
                    c.set_camera(camera.clone());
                }
            }
        }
        Ok(())
    }

    /// Renders every placed cell at the given per-cell size, returning
    /// frames keyed by position.
    pub fn render_all(
        &mut self,
        cell_width: usize,
        cell_height: usize,
    ) -> Result<BTreeMap<(usize, usize), Framebuffer>> {
        let mut frames = BTreeMap::new();
        let keys: Vec<(usize, usize)> = self.cells.keys().copied().collect();
        for at in keys {
            // keys were enumerated from the same map; a miss means a
            // concurrent removal, and skipping the cell is the safe answer
            let Some(cell) = self.cells.get_mut(&at) else { continue };
            let frame = cell.render(cell_width, cell_height)?;
            frames.insert(at, frame);
        }
        Ok(frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::{Axis3, CameraOp};
    use crate::plots::PlotSpec;
    use crate::translation::{translate_scalar, TranslationOptions};
    use cdms::synth::SynthesisSpec;
    use rvtk::ImageData;

    fn image() -> ImageData {
        let ds = SynthesisSpec::new(1, 3, 12, 24).build();
        let ta = ds.variable("ta").unwrap().time_slab(0).unwrap();
        translate_scalar(&ta, &TranslationOptions::default()).unwrap()
    }

    fn sheet() -> Dv3dSpreadsheet {
        let mut s = Dv3dSpreadsheet::new(2, 2);
        s.place((0, 0), Dv3dCell::new("slicer", PlotSpec::slicer(image()))).unwrap();
        s.place((0, 1), Dv3dCell::new("volume", PlotSpec::volume(image()))).unwrap();
        s.place((1, 0), Dv3dCell::new("iso", PlotSpec::isosurface(image()))).unwrap();
        s
    }

    #[test]
    fn placement_rules() {
        let mut s = sheet();
        assert_eq!(s.len(), 3);
        assert_eq!(s.size(), (2, 2));
        assert!(s
            .place((5, 0), Dv3dCell::new("x", PlotSpec::slicer(image())))
            .is_err());
        assert!(s.cell((0, 0)).is_some());
        assert!(s.cell((1, 1)).is_none());
    }

    #[test]
    fn ops_propagate_to_active_cells_only() {
        let mut s = sheet();
        // MoveSlice is meaningful for the slicer only
        let n = s.configure_active(&ConfigOp::MoveSlice { axis: Axis3::Z, delta: 1 }).unwrap();
        assert_eq!(n, 3); // all cells accept (volume/iso ignore but don't error)
        // deactivate the slicer; leveling affects the other two
        s.set_active((0, 0), false).unwrap();
        let n = s.configure_active(&ConfigOp::Leveling { dx: 0.1, dy: 0.0 }).unwrap();
        assert_eq!(n, 2);
        // slicer's log untouched by the second op
        assert_eq!(s.cell((0, 0)).unwrap().op_log().len(), 1);
    }

    #[test]
    fn camera_ops_synchronize_views() {
        // two cells of the same plot type see the same scene bounds, so the
        // same op sequence yields identical cameras
        let mut s = Dv3dSpreadsheet::new(1, 2);
        s.place((0, 0), Dv3dCell::new("a", PlotSpec::slicer(image()))).unwrap();
        s.place((0, 1), Dv3dCell::new("b", PlotSpec::slicer(image()))).unwrap();
        s.render_all(32, 32).unwrap();
        s.configure_active(&ConfigOp::Camera(CameraOp::Azimuth(45.0))).unwrap();
        s.render_all(32, 32).unwrap();
        let c0 = s.cell((0, 0)).unwrap().camera().position;
        let c1 = s.cell((0, 1)).unwrap().camera().position;
        assert!((c0 - c1).length() < 1e-9);
    }

    #[test]
    fn sync_cameras_from_source() {
        let mut s = sheet();
        s.render_all(32, 32).unwrap();
        s.cell_mut((0, 0))
            .unwrap()
            .configure(&ConfigOp::Camera(CameraOp::Zoom(2.0)))
            .unwrap();
        s.render_all(32, 32).unwrap();
        s.sync_cameras_from((0, 0)).unwrap();
        let cam0 = s.cell((0, 0)).unwrap().camera().clone();
        let cam1 = s.cell((0, 1)).unwrap().camera().clone();
        assert_eq!(cam0.view_angle_deg, cam1.view_angle_deg);
        assert!(s.sync_cameras_from((9, 9)).is_err());
    }

    #[test]
    fn render_all_produces_frames() {
        let mut s = sheet();
        let frames = s.render_all(48, 48).unwrap();
        assert_eq!(frames.len(), 3);
        for fb in frames.values() {
            assert!(fb.covered_pixels(rvtk::Color::BLACK) > 10);
        }
    }

    #[test]
    fn activation_validation() {
        let mut s = sheet();
        assert!(s.set_active((1, 1), true).is_err());
        s.set_active((0, 1), false).unwrap();
        assert_eq!(s.active_cells().len(), 2);
    }
}
