//! The caching, branch-parallel pipeline executor.
//!
//! Execution walks the pipeline in topological *wavefronts*: every module
//! whose inputs are ready runs, and modules in the same wavefront run on
//! separate threads (the paper's "parallel task execution"). Results are
//! cached by module signature (type + params + upstream signatures), so
//! re-executing after a small edit only recomputes the dirty cone — the
//! mechanism that makes VisTrails-style exploratory tweaking cheap.

use crate::module::ModuleRegistry;
use crate::pipeline::{ModuleId, Pipeline};
use crate::shared_cache::SharedModuleCache;
use crate::value::WfData;
use crate::{Result, WfError};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-module outputs of one execution.
#[derive(Debug, Clone, Default)]
pub struct ExecResults {
    outputs: BTreeMap<ModuleId, BTreeMap<String, WfData>>,
    /// Execution log entries in completion order.
    pub log: Vec<ExecLogEntry>,
}

impl ExecResults {
    /// Output of `module` on `port`.
    pub fn output(&self, module: ModuleId, port: &str) -> Option<&WfData> {
        self.outputs.get(&module)?.get(port)
    }

    /// All outputs of a module.
    pub fn module_outputs(&self, module: ModuleId) -> Option<&BTreeMap<String, WfData>> {
        self.outputs.get(&module)
    }

    /// Number of modules that executed (or were served from cache).
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// True when nothing ran.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    /// How many modules were served from cache.
    pub fn cache_hits(&self) -> usize {
        self.log.iter().filter(|e| e.cache_hit).count()
    }
}

/// One module's execution record — the execution-provenance log entry.
#[derive(Debug, Clone)]
pub struct ExecLogEntry {
    pub module: ModuleId,
    pub type_name: String,
    /// Total wall time across all attempts (ZERO for cache hits).
    pub duration: Duration,
    pub cache_hit: bool,
    /// Signature used as the cache key.
    pub signature: u64,
    /// Attempts actually run (0 for cache hits, 1 for a clean first run,
    /// more when the retry policy re-ran a failing module).
    pub attempts: u32,
    /// Wall time of each individual attempt, in order.
    pub attempt_durations: Vec<Duration>,
}

/// How execution reacts to a failing module: how many times to try, and
/// how long to back off between tries (doubling each retry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (clamped to at least 1).
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles on every further retry.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    /// Fail fast: one attempt, no backoff.
    fn default() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, backoff: Duration::ZERO }
    }
}

impl RetryPolicy {
    /// Fail fast (the default).
    pub fn none() -> RetryPolicy {
        RetryPolicy::default()
    }

    /// Up to `retries` re-runs after the first failure, with `backoff`
    /// (doubling) between attempts.
    pub fn retries(retries: u32, backoff: Duration) -> RetryPolicy {
        RetryPolicy { max_attempts: retries.saturating_add(1), backoff }
    }

    /// Runs `f` under the policy. Returns the per-attempt wall times
    /// alongside the final outcome (the last error when all attempts fail).
    pub fn run<T, E>(
        &self,
        mut f: impl FnMut() -> std::result::Result<T, E>,
    ) -> (Vec<Duration>, std::result::Result<T, E>) {
        let max = self.max_attempts.max(1);
        let mut timings = Vec::new();
        let mut backoff = self.backoff;
        loop {
            let start = Instant::now();
            let out = f();
            timings.push(start.elapsed());
            match out {
                Ok(v) => return (timings, Ok(v)),
                Err(e) => {
                    if timings.len() as u32 >= max {
                        return (timings, Err(e));
                    }
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                        backoff *= 2;
                    }
                }
            }
        }
    }
}

/// The executor: registry + cross-run result cache.
#[derive(Debug)]
pub struct Executor {
    registry: ModuleRegistry,
    cache: HashMap<u64, BTreeMap<String, WfData>>,
    /// Optional cross-session result cache (multi-tenant service): local
    /// misses fall through to it, and fresh results are published to it.
    shared: Option<Arc<SharedModuleCache>>,
    /// Disable to measure uncached performance (ablation).
    pub caching_enabled: bool,
    /// Per-module retry policy (default: fail fast). Transient module
    /// failures — a file briefly locked, a flaky remote — are retried with
    /// exponential backoff before the run is declared failed.
    pub retry: RetryPolicy,
}

impl Executor {
    /// Creates an executor over a registry.
    pub fn new(registry: ModuleRegistry) -> Executor {
        Executor {
            registry,
            cache: HashMap::new(),
            shared: None,
            caching_enabled: true,
            retry: RetryPolicy::none(),
        }
    }

    /// An executor whose local cache is backed by a cross-session shared
    /// cache: local misses consult `shared`, and fresh results are
    /// published to it — so concurrent tenants running overlapping
    /// pipelines each compute a module at most once between them.
    pub fn with_shared_cache(registry: ModuleRegistry, shared: Arc<SharedModuleCache>) -> Executor {
        let mut e = Executor::new(registry);
        e.shared = Some(shared);
        e
    }

    /// The cross-session cache, when attached.
    pub fn shared_cache(&self) -> Option<&Arc<SharedModuleCache>> {
        self.shared.as_ref()
    }

    /// The registry.
    pub fn registry(&self) -> &ModuleRegistry {
        &self.registry
    }

    /// Clears the result cache.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Number of cached module results.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Executes the full pipeline; returns per-module outputs and a log.
    pub fn execute(&mut self, pipeline: &Pipeline) -> Result<ExecResults> {
        self.execute_subset(pipeline, None)
    }

    /// Executes only what `sink` needs (or everything when `None`).
    pub fn execute_subset(
        &mut self,
        pipeline: &Pipeline,
        sink: Option<ModuleId>,
    ) -> Result<ExecResults> {
        pipeline.validate(&self.registry)?;
        let target = match sink {
            Some(s) => pipeline.upstream_subgraph(s)?,
            None => pipeline.clone(),
        };
        let order = target.topological_order()?;

        // Group into wavefronts: depth = 1 + max(depth of inputs).
        let mut depth: BTreeMap<ModuleId, usize> = BTreeMap::new();
        for &id in &order {
            let d = target
                .inputs_of(id)
                .iter()
                .map(|c| depth[&c.from_module] + 1)
                .max()
                .unwrap_or(0);
            depth.insert(id, d);
        }
        let max_depth = depth.values().copied().max().unwrap_or(0);

        let mut results = ExecResults::default();
        // Precompute signatures once, mixing in registry cache salts so an
        // engine-version bump behind a module type invalidates cached
        // outputs of it and of everything downstream.
        let signatures: BTreeMap<ModuleId, u64> = order
            .iter()
            .map(|&id| (id, target.module_signature_salted(id, self.registry.cache_salts())))
            .collect();

        for level in 0..=max_depth {
            let wave: Vec<ModuleId> =
                order.iter().copied().filter(|id| depth[id] == level).collect();
            // Collect per-module work items (inputs are ready by construction).
            let mut jobs = Vec::with_capacity(wave.len());
            for &id in &wave {
                let sig = signatures[&id];
                if self.caching_enabled {
                    // local cache first; a local miss falls through to the
                    // shared cross-session cache (and warms the local one)
                    let hit = match self.cache.get(&sig) {
                        Some(h) => Some(h.clone()),
                        None => match &self.shared {
                            Some(sc) => {
                                let h = sc.get(sig);
                                if let Some(v) = &h {
                                    self.cache.insert(sig, v.clone());
                                }
                                h
                            }
                            None => None,
                        },
                    };
                    if let Some(hit) = hit {
                        results.outputs.insert(id, hit);
                        results.log.push(ExecLogEntry {
                            module: id,
                            type_name: target.modules[&id].type_name.clone(),
                            duration: Duration::ZERO,
                            cache_hit: true,
                            signature: sig,
                            attempts: 0,
                            attempt_durations: Vec::new(),
                        });
                        continue;
                    }
                }
                let mut inputs: BTreeMap<String, WfData> = BTreeMap::new();
                for c in target.inputs_of(id) {
                    if let Some(v) = results.output(c.from_module, &c.from_port) {
                        inputs.insert(c.to_port.clone(), v.clone());
                    }
                }
                let node = &target.modules[&id];
                let module = self.registry.get(&node.type_name)?;
                jobs.push((id, sig, node.type_name.clone(), node.params.clone(), inputs, module));
            }

            // Run the wavefront in parallel; each job runs under the retry
            // policy and reports its per-attempt timings.
            type JobOutput =
                (ModuleId, u64, String, Vec<Duration>, Result<BTreeMap<String, WfData>>);
            let retry = self.retry.clone();
            let outcomes: Mutex<Vec<JobOutput>> = Mutex::new(Vec::with_capacity(jobs.len()));
            if jobs.len() <= 1 {
                for (id, sig, tn, params, inputs, module) in jobs {
                    let (timings, out) = retry
                        .run(|| module.execute(&inputs, &params).map_err(|e| wrap_exec_err(id, e)));
                    outcomes.lock().push((id, sig, tn, timings, out));
                }
            } else {
                std::thread::scope(|scope| {
                    for (id, sig, tn, params, inputs, module) in jobs {
                        let outcomes = &outcomes;
                        let retry = &retry;
                        scope.spawn(move || {
                            let (timings, out) = retry.run(|| {
                                module.execute(&inputs, &params).map_err(|e| wrap_exec_err(id, e))
                            });
                            outcomes.lock().push((id, sig, tn, timings, out));
                        });
                    }
                });
            }
            for (id, sig, type_name, attempt_durations, out) in outcomes.into_inner() {
                let out = out?;
                if self.caching_enabled {
                    self.cache.insert(sig, out.clone());
                    if let Some(sc) = &self.shared {
                        sc.insert(sig, &out);
                    }
                }
                results.outputs.insert(id, out);
                results.log.push(ExecLogEntry {
                    module: id,
                    type_name,
                    duration: attempt_durations.iter().sum(),
                    cache_hit: false,
                    signature: sig,
                    attempts: attempt_durations.len() as u32,
                    attempt_durations,
                });
            }
        }
        Ok(results)
    }
}

fn wrap_exec_err(id: ModuleId, e: WfError) -> WfError {
    match e {
        WfError::Execution { message, .. } => WfError::Execution { module: id, message },
        other => WfError::Execution { module: id, message: other.to_string() },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{single, PortType};
    use crate::value::{ParamValue, WfData};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn registry(counter: Arc<AtomicUsize>) -> ModuleRegistry {
        let mut r = ModuleRegistry::new();
        let c1 = counter.clone();
        r.register_fn("m", "src", &[], &[("out", PortType::Float)], move |_, params| {
            c1.fetch_add(1, Ordering::SeqCst);
            let v = params.get("v").and_then(ParamValue::as_f64).unwrap_or(1.0);
            Ok(single("out", WfData::Float(v)))
        });
        let c2 = counter.clone();
        r.register_fn(
            "m",
            "add",
            &[("a", PortType::Float), ("b", PortType::Float)],
            &[("out", PortType::Float)],
            move |inputs, _| {
                c2.fetch_add(1, Ordering::SeqCst);
                let a = inputs.get("a").and_then(WfData::as_float).unwrap_or(0.0);
                let b = inputs.get("b").and_then(WfData::as_float).unwrap_or(0.0);
                Ok(single("out", WfData::Float(a + b)))
            },
        );
        r.register_fn("m", "fail", &[], &[("out", PortType::Float)], |_, _| {
            Err(WfError::Execution { module: 0, message: "boom".into() })
        });
        let c3 = counter.clone();
        r.register_fn("m", "slow", &[], &[("out", PortType::Float)], move |_, _| {
            c3.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(40));
            Ok(single("out", WfData::Float(1.0)))
        });
        // fails on its first two calls, succeeds from the third on
        let c4 = counter;
        r.register_fn("m", "flaky", &[], &[("out", PortType::Float)], move |_, _| {
            if c4.fetch_add(1, Ordering::SeqCst) < 2 {
                Err(WfError::Execution { module: 0, message: "transient".into() })
            } else {
                Ok(single("out", WfData::Float(7.0)))
            }
        });
        r
    }

    fn diamond() -> Pipeline {
        let mut p = Pipeline::new();
        p.add_module(1, "m.src").unwrap();
        p.add_module(2, "m.src").unwrap();
        p.add_module(3, "m.add").unwrap();
        p.connect((1, "out"), (3, "a")).unwrap();
        p.connect((2, "out"), (3, "b")).unwrap();
        p.set_parameter(1, "v", ParamValue::Float(40.0)).unwrap();
        p.set_parameter(2, "v", ParamValue::Float(2.0)).unwrap();
        p
    }

    #[test]
    fn executes_dataflow() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut exec = Executor::new(registry(counter.clone()));
        let results = exec.execute(&diamond()).unwrap();
        assert_eq!(results.output(3, "out").and_then(WfData::as_float), Some(42.0));
        assert_eq!(results.len(), 3);
        assert_eq!(counter.load(Ordering::SeqCst), 3);
        assert_eq!(results.cache_hits(), 0);
    }

    #[test]
    fn cache_skips_repeat_work() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut exec = Executor::new(registry(counter.clone()));
        exec.execute(&diamond()).unwrap();
        let second = exec.execute(&diamond()).unwrap();
        // no new module executions
        assert_eq!(counter.load(Ordering::SeqCst), 3);
        assert_eq!(second.cache_hits(), 3);
        assert_eq!(second.output(3, "out").and_then(WfData::as_float), Some(42.0));
    }

    #[test]
    fn parameter_edit_recomputes_only_dirty_cone() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut exec = Executor::new(registry(counter.clone()));
        exec.execute(&diamond()).unwrap();
        let mut p2 = diamond();
        p2.set_parameter(1, "v", ParamValue::Float(100.0)).unwrap();
        let results = exec.execute(&p2).unwrap();
        assert_eq!(results.output(3, "out").and_then(WfData::as_float), Some(102.0));
        // module 2 was cached; modules 1 and 3 re-ran
        assert_eq!(counter.load(Ordering::SeqCst), 5);
        assert_eq!(results.cache_hits(), 1);
    }

    #[test]
    fn caching_can_be_disabled() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut exec = Executor::new(registry(counter.clone()));
        exec.caching_enabled = false;
        exec.execute(&diamond()).unwrap();
        exec.execute(&diamond()).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 6);
        assert_eq!(exec.cache_len(), 0);
    }

    #[test]
    fn cache_salt_change_invalidates_downstream() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut exec = Executor::new(registry(counter.clone()));
        exec.execute(&diamond()).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 3);
        // same engine version → everything served from cache
        exec.execute(&diamond()).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 3);
        // bump the engine version behind `m.src`: both sources AND the
        // downstream add must recompute (salts flow through the recursive
        // signature walk)
        exec.registry.set_cache_salt("m.src", 2);
        exec.execute(&diamond()).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 6);
        // stable again under the new salt
        exec.execute(&diamond()).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 6);
        // clearing the salt restores the original signatures → cache hits
        exec.registry.set_cache_salt("m.src", 0);
        exec.execute(&diamond()).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn clear_cache_forces_recompute() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut exec = Executor::new(registry(counter.clone()));
        exec.execute(&diamond()).unwrap();
        assert!(exec.cache_len() > 0);
        exec.clear_cache();
        exec.execute(&diamond()).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn failing_module_reports_id() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut exec = Executor::new(registry(counter));
        let mut p = Pipeline::new();
        p.add_module(7, "m.fail").unwrap();
        match exec.execute(&p) {
            Err(WfError::Execution { module, message }) => {
                assert_eq!(module, 7);
                assert_eq!(message, "boom");
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn retry_policy_recovers_transient_failures() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut exec = Executor::new(registry(counter.clone()));
        exec.retry = RetryPolicy::retries(2, Duration::from_millis(1));
        let mut p = Pipeline::new();
        p.add_module(1, "m.flaky").unwrap();
        let results = exec.execute(&p).unwrap();
        assert_eq!(results.output(1, "out").and_then(WfData::as_float), Some(7.0));
        assert_eq!(counter.load(Ordering::SeqCst), 3);
        // provenance shows all three attempts with their timings
        let entry = &results.log[0];
        assert_eq!(entry.attempts, 3);
        assert_eq!(entry.attempt_durations.len(), 3);
        assert!(entry.duration >= entry.attempt_durations[0]);
    }

    #[test]
    fn default_policy_fails_fast_on_flaky_module() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut exec = Executor::new(registry(counter.clone()));
        let mut p = Pipeline::new();
        p.add_module(1, "m.flaky").unwrap();
        match exec.execute(&p) {
            Err(WfError::Execution { module, message }) => {
                assert_eq!(module, 1);
                assert_eq!(message, "transient");
            }
            other => panic!("expected failure, got {other:?}"),
        }
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn retries_exhausted_reports_last_error() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut exec = Executor::new(registry(counter));
        exec.retry = RetryPolicy::retries(3, Duration::ZERO);
        let mut p = Pipeline::new();
        p.add_module(9, "m.fail").unwrap();
        match exec.execute(&p) {
            Err(WfError::Execution { module, message }) => {
                assert_eq!(module, 9);
                assert_eq!(message, "boom");
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn clean_runs_log_single_attempts() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut exec = Executor::new(registry(counter));
        exec.retry = RetryPolicy::retries(2, Duration::ZERO);
        let first = exec.execute(&diamond()).unwrap();
        assert!(first.log.iter().all(|e| e.attempts == 1));
        // cache hits record zero attempts
        let second = exec.execute(&diamond()).unwrap();
        assert!(second.log.iter().all(|e| e.cache_hit && e.attempts == 0));
    }

    #[test]
    fn execute_subset_runs_only_upstream() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut exec = Executor::new(registry(counter.clone()));
        let p = diamond();
        let results = exec.execute_subset(&p, Some(1)).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(counter.load(Ordering::SeqCst), 1);
        assert!(results.output(3, "out").is_none());
    }

    #[test]
    fn independent_branches_run_in_parallel() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut exec = Executor::new(registry(counter));
        let mut p = Pipeline::new();
        for id in 1..=4 {
            p.add_module(id, "m.slow").unwrap();
        }
        let start = Instant::now();
        exec.execute(&p).unwrap();
        let elapsed = start.elapsed();
        // serial would be ≥ 160ms; parallel should be well under
        assert!(
            elapsed < Duration::from_millis(140),
            "wavefront not parallel: {elapsed:?}"
        );
    }

    #[test]
    fn log_records_all_modules() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut exec = Executor::new(registry(counter));
        let results = exec.execute(&diamond()).unwrap();
        assert_eq!(results.log.len(), 3);
        let types: Vec<&str> = results.log.iter().map(|e| e.type_name.as_str()).collect();
        assert!(types.contains(&"m.add"));
        assert!(results.log.iter().all(|e| e.signature != 0));
    }

    #[test]
    fn shared_cache_serves_across_executors() {
        let shared = Arc::new(SharedModuleCache::new(64));
        let counter = Arc::new(AtomicUsize::new(0));
        let mut session_a =
            Executor::with_shared_cache(registry(counter.clone()), Arc::clone(&shared));
        let mut session_b =
            Executor::with_shared_cache(registry(counter.clone()), Arc::clone(&shared));

        session_a.execute(&diamond()).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 3);
        // a *different* executor (fresh local cache) runs the same
        // pipeline: everything is served from the shared layer
        let second = session_b.execute(&diamond()).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 3, "session B recomputed nothing");
        assert_eq!(second.cache_hits(), 3);
        assert_eq!(second.output(3, "out").and_then(WfData::as_float), Some(42.0));
        let stats = shared.stats();
        assert_eq!(stats.inserts, 3);
        assert!(stats.hits >= 3);
        // the shared hit warmed session B's local cache
        assert_eq!(session_b.cache_len(), 3);
    }

    #[test]
    fn shared_cache_untouched_when_caching_disabled() {
        let shared = Arc::new(SharedModuleCache::new(64));
        let counter = Arc::new(AtomicUsize::new(0));
        let mut exec = Executor::with_shared_cache(registry(counter), Arc::clone(&shared));
        exec.caching_enabled = false;
        exec.execute(&diamond()).unwrap();
        assert!(shared.is_empty());
        assert_eq!(shared.stats(), crate::shared_cache::SharedCacheStats::default());
    }

    #[test]
    fn invalid_pipeline_rejected_before_running() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut exec = Executor::new(registry(counter.clone()));
        let mut p = Pipeline::new();
        p.add_module(1, "m.unknown").unwrap();
        assert!(exec.execute(&p).is_err());
        assert_eq!(counter.load(Ordering::SeqCst), 0);
    }
}
