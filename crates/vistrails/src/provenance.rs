//! The version tree: action-based workflow provenance.
//!
//! Every edit to a workflow — adding a module, setting a parameter,
//! connecting ports — is an [`Action`] appended as a child of some existing
//! version. Nothing is ever overwritten: "users can easily back up to
//! earlier stages of the exploration and start a new branch of
//! investigation without losing the previous results" (§II.B). A pipeline
//! is *materialized* from a version by replaying the action path from the
//! root, which makes materialization a pure function of the tree — the
//! property the proptests pin down.

use crate::pipeline::{ModuleId, Pipeline};
use crate::value::ParamValue;
use crate::{Result, WfError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A version id within a vistrail (0 = the empty root).
pub type VersionId = u64;

/// One workflow edit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Action {
    AddModule { id: ModuleId, type_name: String },
    DeleteModule { id: ModuleId },
    SetParameter { module: ModuleId, name: String, value: ParamValue },
    AddConnection { from: (ModuleId, String), to: (ModuleId, String) },
    DeleteConnection { to: (ModuleId, String) },
}

impl Action {
    /// Applies this action to a pipeline.
    pub fn apply(&self, pipeline: &mut Pipeline) -> Result<()> {
        match self {
            Action::AddModule { id, type_name } => pipeline.add_module(*id, type_name),
            Action::DeleteModule { id } => pipeline.delete_module(*id),
            Action::SetParameter { module, name, value } => {
                pipeline.set_parameter(*module, name, value.clone())
            }
            Action::AddConnection { from, to } => {
                pipeline.connect((from.0, &from.1), (to.0, &to.1))
            }
            Action::DeleteConnection { to } => pipeline.disconnect((to.0, &to.1)),
        }
    }

    /// A short human-readable description (shown in the history view).
    pub fn describe(&self) -> String {
        match self {
            Action::AddModule { id, type_name } => format!("add {type_name} as #{id}"),
            Action::DeleteModule { id } => format!("delete #{id}"),
            Action::SetParameter { module, name, value } => {
                format!("set #{module}.{name} = {value:?}")
            }
            Action::AddConnection { from, to } => {
                format!("connect #{}:{} -> #{}:{}", from.0, from.1, to.0, to.1)
            }
            Action::DeleteConnection { to } => format!("disconnect #{}:{}", to.0, to.1),
        }
    }
}

/// One node of the version tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VersionNode {
    pub id: VersionId,
    /// Parent version (`None` only for the root).
    pub parent: Option<VersionId>,
    /// The edit that produced this version (`None` for the root).
    pub action: Option<Action>,
    /// Monotonic edit counter (a deterministic "timestamp").
    pub sequence: u64,
}

/// A vistrail: the complete provenance of one workflow's evolution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vistrail {
    /// Display name.
    pub name: String,
    nodes: BTreeMap<VersionId, VersionNode>,
    tags: BTreeMap<String, VersionId>,
    next_id: VersionId,
    sequence: u64,
}

impl Vistrail {
    /// The root version id (the empty pipeline).
    pub const ROOT: VersionId = 0;

    /// A new vistrail containing only the empty root version.
    pub fn new(name: &str) -> Vistrail {
        let mut nodes = BTreeMap::new();
        nodes.insert(
            Self::ROOT,
            VersionNode { id: Self::ROOT, parent: None, action: None, sequence: 0 },
        );
        Vistrail { name: name.to_string(), nodes, tags: BTreeMap::new(), next_id: 1, sequence: 1 }
    }

    /// Appends an action as a child of `parent`, returning the new version.
    /// The action is validated by replaying onto the parent's pipeline, so
    /// the tree can never hold an inapplicable action path.
    pub fn add_action(&mut self, parent: VersionId, action: Action) -> Result<VersionId> {
        if !self.nodes.contains_key(&parent) {
            return Err(WfError::NotFound(format!("version {parent}")));
        }
        let mut pipeline = self.materialize(parent)?;
        action.apply(&mut pipeline)?;
        let id = self.next_id;
        self.next_id += 1;
        let sequence = self.sequence;
        self.sequence += 1;
        self.nodes.insert(
            id,
            VersionNode { id, parent: Some(parent), action: Some(action), sequence },
        );
        Ok(id)
    }

    /// Appends a chain of actions, returning the final version.
    pub fn add_actions(&mut self, parent: VersionId, actions: Vec<Action>) -> Result<VersionId> {
        let mut v = parent;
        for a in actions {
            v = self.add_action(v, a)?;
        }
        Ok(v)
    }

    /// The path of versions from the root to `version` (inclusive).
    pub fn path_to(&self, version: VersionId) -> Result<Vec<VersionId>> {
        let mut path = Vec::new();
        let mut cur = Some(version);
        while let Some(id) = cur {
            let node = self
                .nodes
                .get(&id)
                .ok_or_else(|| WfError::NotFound(format!("version {id}")))?;
            path.push(id);
            cur = node.parent;
        }
        path.reverse();
        Ok(path)
    }

    /// Materializes the pipeline at `version` by replaying its action path.
    pub fn materialize(&self, version: VersionId) -> Result<Pipeline> {
        let mut pipeline = Pipeline::new();
        for id in self.path_to(version)? {
            if let Some(action) = &self.nodes[&id].action {
                action.apply(&mut pipeline)?;
            }
        }
        Ok(pipeline)
    }

    /// Tags a version with a name (re-tagging moves the tag).
    pub fn tag(&mut self, version: VersionId, name: &str) -> Result<()> {
        if !self.nodes.contains_key(&version) {
            return Err(WfError::NotFound(format!("version {version}")));
        }
        self.tags.insert(name.to_string(), version);
        Ok(())
    }

    /// Resolves a tag.
    pub fn tagged(&self, name: &str) -> Option<VersionId> {
        self.tags.get(name).copied()
    }

    /// All tags.
    pub fn tags(&self) -> &BTreeMap<String, VersionId> {
        &self.tags
    }

    /// Children of a version (the branches leaving it).
    pub fn children(&self, version: VersionId) -> Vec<VersionId> {
        self.nodes
            .values()
            .filter(|n| n.parent == Some(version))
            .map(|n| n.id)
            .collect()
    }

    /// All leaf versions (current heads of every branch).
    pub fn leaves(&self) -> Vec<VersionId> {
        self.nodes
            .keys()
            .copied()
            .filter(|&id| self.children(id).is_empty())
            .collect()
    }

    /// Number of versions (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Never true (the root always exists).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// A version's node.
    pub fn node(&self, version: VersionId) -> Option<&VersionNode> {
        self.nodes.get(&version)
    }

    /// Lowest common ancestor of two versions.
    pub fn common_ancestor(&self, a: VersionId, b: VersionId) -> Result<VersionId> {
        let pa = self.path_to(a)?;
        let pb = self.path_to(b)?;
        let mut lca = Self::ROOT;
        for (x, y) in pa.iter().zip(pb.iter()) {
            if x == y {
                lca = *x;
            } else {
                break;
            }
        }
        Ok(lca)
    }

    /// The actions that differ between two versions: `(only_in_a, only_in_b)`
    /// relative to their common ancestor — the "diff analyses" view.
    pub fn diff(&self, a: VersionId, b: VersionId) -> Result<(Vec<Action>, Vec<Action>)> {
        let lca = self.common_ancestor(a, b)?;
        let tail = |v: VersionId| -> Result<Vec<Action>> {
            Ok(self
                .path_to(v)?
                .into_iter()
                .skip_while(|&id| id != lca)
                .skip(1)
                .filter_map(|id| self.nodes[&id].action.clone())
                .collect())
        };
        Ok((tail(a)?, tail(b)?))
    }

    /// Serializes the whole vistrail (the `.vt` file).
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| WfError::Serde(e.to_string()))
    }

    /// Parses a vistrail from JSON.
    pub fn from_json(s: &str) -> Result<Vistrail> {
        serde_json::from_str(s).map_err(|e| WfError::Serde(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_chain(vt: &mut Vistrail) -> VersionId {
        vt.add_actions(
            Vistrail::ROOT,
            vec![
                Action::AddModule { id: 1, type_name: "m.src".into() },
                Action::SetParameter {
                    module: 1,
                    name: "v".into(),
                    value: ParamValue::Float(1.0),
                },
                Action::AddModule { id: 2, type_name: "m.sink".into() },
                Action::AddConnection { from: (1, "out".into()), to: (2, "in".into()) },
            ],
        )
        .unwrap()
    }

    #[test]
    fn materialize_replays_actions() {
        let mut vt = Vistrail::new("t");
        let head = base_chain(&mut vt);
        let p = vt.materialize(head).unwrap();
        assert_eq!(p.modules.len(), 2);
        assert_eq!(p.connections.len(), 1);
        assert_eq!(
            p.modules[&1].params.get("v"),
            Some(&ParamValue::Float(1.0))
        );
        // root is empty
        assert!(vt.materialize(Vistrail::ROOT).unwrap().modules.is_empty());
    }

    #[test]
    fn branching_preserves_both_lines() {
        let mut vt = Vistrail::new("t");
        let head = base_chain(&mut vt);
        // branch A: change the parameter
        let a = vt
            .add_action(
                head,
                Action::SetParameter {
                    module: 1,
                    name: "v".into(),
                    value: ParamValue::Float(2.0),
                },
            )
            .unwrap();
        // branch B (from the same parent): delete the connection
        let b = vt
            .add_action(head, Action::DeleteConnection { to: (2, "in".into()) })
            .unwrap();
        let pa = vt.materialize(a).unwrap();
        let pb = vt.materialize(b).unwrap();
        assert_eq!(pa.modules[&1].params.get("v"), Some(&ParamValue::Float(2.0)));
        assert_eq!(pa.connections.len(), 1);
        assert_eq!(pb.modules[&1].params.get("v"), Some(&ParamValue::Float(1.0)));
        assert!(pb.connections.is_empty());
        // the shared parent is still materializable (nothing lost)
        assert_eq!(vt.materialize(head).unwrap().connections.len(), 1);
        assert_eq!(vt.children(head).len(), 2);
        let mut leaves = vt.leaves();
        leaves.sort();
        assert_eq!(leaves, vec![a, b]);
    }

    #[test]
    fn invalid_actions_rejected_and_tree_unchanged() {
        let mut vt = Vistrail::new("t");
        let head = base_chain(&mut vt);
        let before = vt.len();
        // deleting an unknown module fails
        assert!(vt.add_action(head, Action::DeleteModule { id: 99 }).is_err());
        // duplicate module id fails
        assert!(vt
            .add_action(head, Action::AddModule { id: 1, type_name: "x".into() })
            .is_err());
        // unknown parent fails
        assert!(vt
            .add_action(12345, Action::AddModule { id: 5, type_name: "x".into() })
            .is_err());
        assert_eq!(vt.len(), before);
    }

    #[test]
    fn tags_resolve_and_move() {
        let mut vt = Vistrail::new("t");
        let head = base_chain(&mut vt);
        vt.tag(head, "baseline").unwrap();
        assert_eq!(vt.tagged("baseline"), Some(head));
        let next = vt
            .add_action(head, Action::DeleteConnection { to: (2, "in".into()) })
            .unwrap();
        vt.tag(next, "baseline").unwrap(); // retag
        assert_eq!(vt.tagged("baseline"), Some(next));
        assert_eq!(vt.tagged("missing"), None);
        assert!(vt.tag(999, "x").is_err());
    }

    #[test]
    fn path_and_ancestor_queries() {
        let mut vt = Vistrail::new("t");
        let head = base_chain(&mut vt);
        let a = vt
            .add_action(head, Action::AddModule { id: 3, type_name: "x".into() })
            .unwrap();
        let b = vt
            .add_action(head, Action::AddModule { id: 4, type_name: "y".into() })
            .unwrap();
        assert_eq!(vt.common_ancestor(a, b).unwrap(), head);
        assert_eq!(vt.common_ancestor(a, a).unwrap(), a);
        let path = vt.path_to(a).unwrap();
        assert_eq!(path[0], Vistrail::ROOT);
        assert_eq!(*path.last().unwrap(), a);
    }

    #[test]
    fn diff_reports_divergent_actions() {
        let mut vt = Vistrail::new("t");
        let head = base_chain(&mut vt);
        let a = vt
            .add_action(head, Action::AddModule { id: 3, type_name: "x".into() })
            .unwrap();
        let b = vt
            .add_actions(
                head,
                vec![
                    Action::AddModule { id: 4, type_name: "y".into() },
                    Action::AddModule { id: 5, type_name: "z".into() },
                ],
            )
            .unwrap();
        let (da, db) = vt.diff(a, b).unwrap();
        assert_eq!(da.len(), 1);
        assert_eq!(db.len(), 2);
        assert_eq!(da[0].describe(), "add x as #3");
    }

    #[test]
    fn serde_roundtrip_preserves_everything() {
        let mut vt = Vistrail::new("t");
        let head = base_chain(&mut vt);
        vt.tag(head, "v1").unwrap();
        let json = vt.to_json().unwrap();
        let back = Vistrail::from_json(&json).unwrap();
        assert_eq!(back, vt);
        assert_eq!(back.materialize(head).unwrap(), vt.materialize(head).unwrap());
        assert!(Vistrail::from_json("{").is_err());
    }

    #[test]
    fn describe_covers_all_actions() {
        let actions = [
            Action::AddModule { id: 1, type_name: "a.b".into() },
            Action::DeleteModule { id: 1 },
            Action::SetParameter { module: 1, name: "p".into(), value: ParamValue::Int(2) },
            Action::AddConnection { from: (1, "o".into()), to: (2, "i".into()) },
            Action::DeleteConnection { to: (2, "i".into()) },
        ];
        for a in &actions {
            assert!(!a.describe().is_empty());
        }
    }

    #[test]
    fn sequence_numbers_increase() {
        let mut vt = Vistrail::new("t");
        let head = base_chain(&mut vt);
        let path = vt.path_to(head).unwrap();
        let seqs: Vec<u64> = path.iter().map(|&id| vt.node(id).unwrap().sequence).collect();
        assert!(seqs.windows(2).all(|w| w[1] > w[0]));
    }
}
