//! The visualization spreadsheet: a resizable grid of cells, each bound to
//! a pipeline version + sink module (§III.E).
//!
//! Cells can be created, modified, copied, moved and compared; spreadsheets
//! serialize with their provenance so they reload exactly. Configuration
//! and navigation operations apply to all *active* cells, which is how
//! DV3D keeps multiple plots synchronized.

use crate::provenance::{Vistrail, VersionId};
use crate::Result;
use crate::WfError;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A cell position `(row, col)`.
pub type CellAddress = (usize, usize);

/// What a cell displays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellBinding {
    /// The provenance version whose pipeline this cell executes.
    pub version: VersionId,
    /// The sink module (cell module) within that pipeline.
    pub sink: u64,
    /// Display label.
    pub label: String,
}

/// A grid of visualization cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Spreadsheet {
    pub name: String,
    rows: usize,
    cols: usize,
    // JSON maps need string keys; addresses serialize as "row,col".
    cells: BTreeMap<CellAddress, CellBinding>,
    active: BTreeSet<CellAddress>,
}

impl Spreadsheet {
    /// An empty sheet of the given size.
    pub fn new(name: &str, rows: usize, cols: usize) -> Spreadsheet {
        Spreadsheet {
            name: name.to_string(),
            rows: rows.max(1),
            cols: cols.max(1),
            cells: BTreeMap::new(),
            active: BTreeSet::new(),
        }
    }

    /// Grid dimensions `(rows, cols)`.
    pub fn size(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Grows (never shrinks below occupied cells) the grid.
    pub fn resize(&mut self, rows: usize, cols: usize) -> Result<()> {
        let max_r = self.cells.keys().map(|&(r, _)| r + 1).max().unwrap_or(0);
        let max_c = self.cells.keys().map(|&(_, c)| c + 1).max().unwrap_or(0);
        if rows < max_r || cols < max_c {
            return Err(WfError::Invalid(format!(
                "cannot shrink to {rows}x{cols}: occupied to {max_r}x{max_c}"
            )));
        }
        self.rows = rows.max(1);
        self.cols = cols.max(1);
        Ok(())
    }

    fn check(&self, at: CellAddress) -> Result<()> {
        if at.0 >= self.rows || at.1 >= self.cols {
            return Err(WfError::Invalid(format!(
                "cell {at:?} outside {}x{} sheet",
                self.rows, self.cols
            )));
        }
        Ok(())
    }

    /// Binds a cell (replacing any existing binding).
    pub fn set_cell(&mut self, at: CellAddress, binding: CellBinding) -> Result<()> {
        self.check(at)?;
        self.cells.insert(at, binding);
        Ok(())
    }

    /// The binding at a cell.
    pub fn cell(&self, at: CellAddress) -> Option<&CellBinding> {
        self.cells.get(&at)
    }

    /// Clears a cell.
    pub fn clear_cell(&mut self, at: CellAddress) -> Option<CellBinding> {
        self.active.remove(&at);
        self.cells.remove(&at)
    }

    /// Copies a cell's binding to another position (drag-and-drop copy).
    pub fn copy_cell(&mut self, from: CellAddress, to: CellAddress) -> Result<()> {
        self.check(to)?;
        let binding = self
            .cells
            .get(&from)
            .cloned()
            .ok_or_else(|| WfError::NotFound(format!("cell {from:?}")))?;
        self.cells.insert(to, binding);
        Ok(())
    }

    /// Moves a cell (drag-and-drop rearrange).
    pub fn move_cell(&mut self, from: CellAddress, to: CellAddress) -> Result<()> {
        self.check(to)?;
        let binding = self
            .cells
            .remove(&from)
            .ok_or_else(|| WfError::NotFound(format!("cell {from:?}")))?;
        if self.active.remove(&from) {
            self.active.insert(to);
        }
        self.cells.insert(to, binding);
        Ok(())
    }

    /// All occupied cells in row-major order.
    pub fn occupied(&self) -> Vec<(CellAddress, &CellBinding)> {
        self.cells.iter().map(|(&a, b)| (a, b)).collect()
    }

    /// Number of bound cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cell is bound.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Activates / deactivates a cell. Interaction ops target active cells.
    pub fn set_active(&mut self, at: CellAddress, active: bool) -> Result<()> {
        if !self.cells.contains_key(&at) {
            return Err(WfError::NotFound(format!("cell {at:?}")));
        }
        if active {
            self.active.insert(at);
        } else {
            self.active.remove(&at);
        }
        Ok(())
    }

    /// The active cells in row-major order.
    pub fn active_cells(&self) -> Vec<CellAddress> {
        self.active.iter().copied().collect()
    }

    /// Activates every bound cell.
    pub fn activate_all(&mut self) {
        self.active = self.cells.keys().copied().collect();
    }

    /// Serializes the sheet together with its vistrail so it can be saved
    /// and reloaded with provenance intact.
    pub fn save_with_provenance(&self, vistrail: &Vistrail) -> Result<String> {
        #[derive(Serialize)]
        struct Saved {
            sheet: Spreadsheet,
            vistrail: Vistrail,
        }
        let saved = Saved { sheet: self.clone(), vistrail: vistrail.clone() };
        serde_json::to_string(&saved).map_err(|e| WfError::Serde(e.to_string()))
    }

    /// Reloads a sheet + vistrail pair.
    pub fn load_with_provenance(s: &str) -> Result<(Spreadsheet, Vistrail)> {
        #[derive(Deserialize)]
        struct Saved {
            sheet: Spreadsheet,
            vistrail: Vistrail,
        }
        let saved: Saved =
            serde_json::from_str(s).map_err(|e| WfError::Serde(e.to_string()))?;
        Ok((saved.sheet, saved.vistrail))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance::Action;

    fn binding(v: VersionId) -> CellBinding {
        CellBinding { version: v, sink: 1, label: format!("cell v{v}") }
    }

    #[test]
    fn set_get_clear() {
        let mut s = Spreadsheet::new("main", 2, 3);
        assert_eq!(s.size(), (2, 3));
        s.set_cell((0, 0), binding(1)).unwrap();
        s.set_cell((1, 2), binding(2)).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.cell((0, 0)).unwrap().version, 1);
        assert!(s.cell((0, 1)).is_none());
        assert!(s.set_cell((5, 0), binding(1)).is_err());
        let removed = s.clear_cell((0, 0)).unwrap();
        assert_eq!(removed.version, 1);
        assert!(s.clear_cell((0, 0)).is_none());
    }

    #[test]
    fn copy_and_move() {
        let mut s = Spreadsheet::new("main", 2, 2);
        s.set_cell((0, 0), binding(7)).unwrap();
        s.copy_cell((0, 0), (0, 1)).unwrap();
        assert_eq!(s.cell((0, 1)).unwrap().version, 7);
        assert_eq!(s.len(), 2);
        s.move_cell((0, 1), (1, 1)).unwrap();
        assert!(s.cell((0, 1)).is_none());
        assert_eq!(s.cell((1, 1)).unwrap().version, 7);
        assert!(s.copy_cell((9, 9), (0, 0)).is_err());
        assert!(s.move_cell((0, 0), (9, 9)).is_err());
    }

    #[test]
    fn activation_rules() {
        let mut s = Spreadsheet::new("main", 2, 2);
        s.set_cell((0, 0), binding(1)).unwrap();
        s.set_cell((0, 1), binding(2)).unwrap();
        assert!(s.set_active((1, 1), true).is_err()); // unbound
        s.set_active((0, 0), true).unwrap();
        assert_eq!(s.active_cells(), vec![(0, 0)]);
        s.activate_all();
        assert_eq!(s.active_cells().len(), 2);
        s.set_active((0, 0), false).unwrap();
        assert_eq!(s.active_cells(), vec![(0, 1)]);
    }

    #[test]
    fn move_keeps_activation() {
        let mut s = Spreadsheet::new("main", 2, 2);
        s.set_cell((0, 0), binding(1)).unwrap();
        s.set_active((0, 0), true).unwrap();
        s.move_cell((0, 0), (1, 0)).unwrap();
        assert_eq!(s.active_cells(), vec![(1, 0)]);
    }

    #[test]
    fn clear_removes_activation() {
        let mut s = Spreadsheet::new("main", 1, 1);
        s.set_cell((0, 0), binding(1)).unwrap();
        s.set_active((0, 0), true).unwrap();
        s.clear_cell((0, 0));
        assert!(s.active_cells().is_empty());
    }

    #[test]
    fn resize_protects_occupied_cells() {
        let mut s = Spreadsheet::new("main", 3, 3);
        s.set_cell((2, 2), binding(1)).unwrap();
        assert!(s.resize(2, 2).is_err());
        s.resize(5, 3).unwrap();
        assert_eq!(s.size(), (5, 3));
    }

    #[test]
    fn save_and_reload_with_provenance() {
        let mut vt = Vistrail::new("wf");
        let v = vt
            .add_action(
                Vistrail::ROOT,
                Action::AddModule { id: 1, type_name: "m.cell".into() },
            )
            .unwrap();
        let mut s = Spreadsheet::new("sheet1", 1, 2);
        s.set_cell((0, 0), CellBinding { version: v, sink: 1, label: "plot".into() })
            .unwrap();
        s.set_active((0, 0), true).unwrap();
        let saved = s.save_with_provenance(&vt).unwrap();
        let (s2, vt2) = Spreadsheet::load_with_provenance(&saved).unwrap();
        assert_eq!(s2, s);
        assert_eq!(vt2, vt);
        // the reloaded pipeline still materializes
        assert_eq!(vt2.materialize(v).unwrap().modules.len(), 1);
        assert!(Spreadsheet::load_with_provenance("garbage").is_err());
    }
}
