//! Dataflow pipelines: module instances + typed connections.

use crate::module::ModuleRegistry;
use crate::value::{Fnv, ParamValue, Params};
use crate::{Result, WfError};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A module instance's id within a pipeline.
pub type ModuleId = u64;

/// One module instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleNode {
    /// Fully qualified type name (`package.type`).
    pub type_name: String,
    /// Parameter values.
    pub params: Params,
}

/// A directed dataflow connection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Connection {
    pub from_module: ModuleId,
    pub from_port: String,
    pub to_module: ModuleId,
    pub to_port: String,
}

/// A dataflow graph.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Pipeline {
    /// Module instances by id.
    pub modules: BTreeMap<ModuleId, ModuleNode>,
    /// Dataflow edges.
    pub connections: Vec<Connection>,
}

impl Pipeline {
    /// An empty pipeline.
    pub fn new() -> Pipeline {
        Pipeline::default()
    }

    /// Adds a module instance.
    pub fn add_module(&mut self, id: ModuleId, type_name: &str) -> Result<()> {
        if self.modules.contains_key(&id) {
            return Err(WfError::Invalid(format!("module id {id} already exists")));
        }
        self.modules
            .insert(id, ModuleNode { type_name: type_name.to_string(), params: Params::new() });
        Ok(())
    }

    /// Removes a module and all its connections.
    pub fn delete_module(&mut self, id: ModuleId) -> Result<()> {
        if self.modules.remove(&id).is_none() {
            return Err(WfError::NotFound(format!("module {id}")));
        }
        self.connections.retain(|c| c.from_module != id && c.to_module != id);
        Ok(())
    }

    /// Sets a parameter on a module.
    pub fn set_parameter(&mut self, id: ModuleId, name: &str, value: ParamValue) -> Result<()> {
        let node = self
            .modules
            .get_mut(&id)
            .ok_or_else(|| WfError::NotFound(format!("module {id}")))?;
        node.params.insert(name.to_string(), value);
        Ok(())
    }

    /// Adds a connection. Each input port accepts at most one incoming edge.
    pub fn connect(
        &mut self,
        from: (ModuleId, &str),
        to: (ModuleId, &str),
    ) -> Result<()> {
        if !self.modules.contains_key(&from.0) {
            return Err(WfError::NotFound(format!("module {}", from.0)));
        }
        if !self.modules.contains_key(&to.0) {
            return Err(WfError::NotFound(format!("module {}", to.0)));
        }
        if self
            .connections
            .iter()
            .any(|c| c.to_module == to.0 && c.to_port == to.1)
        {
            return Err(WfError::Invalid(format!(
                "input port {}:{} already connected",
                to.0, to.1
            )));
        }
        self.connections.push(Connection {
            from_module: from.0,
            from_port: from.1.to_string(),
            to_module: to.0,
            to_port: to.1.to_string(),
        });
        Ok(())
    }

    /// Removes a connection.
    pub fn disconnect(&mut self, to: (ModuleId, &str)) -> Result<()> {
        let before = self.connections.len();
        self.connections
            .retain(|c| !(c.to_module == to.0 && c.to_port == to.1));
        if self.connections.len() == before {
            return Err(WfError::NotFound(format!("connection into {}:{}", to.0, to.1)));
        }
        Ok(())
    }

    /// Incoming connections of a module.
    pub fn inputs_of(&self, id: ModuleId) -> Vec<&Connection> {
        self.connections.iter().filter(|c| c.to_module == id).collect()
    }

    /// Modules with no outgoing connections (candidate sinks).
    pub fn sinks(&self) -> Vec<ModuleId> {
        self.modules
            .keys()
            .copied()
            .filter(|id| !self.connections.iter().any(|c| c.from_module == *id))
            .collect()
    }

    /// Topological order; errors with the offending ids on a cycle, and on
    /// connections referencing unknown modules (possible after
    /// deserializing an untrusted pipeline).
    pub fn topological_order(&self) -> Result<Vec<ModuleId>> {
        let mut in_deg: BTreeMap<ModuleId, usize> =
            self.modules.keys().map(|&id| (id, 0)).collect();
        for c in &self.connections {
            if !self.modules.contains_key(&c.from_module) {
                return Err(WfError::NotFound(format!(
                    "connection from unknown module {}",
                    c.from_module
                )));
            }
            *in_deg.get_mut(&c.to_module).ok_or_else(|| {
                WfError::NotFound(format!("connection into unknown module {}", c.to_module))
            })? += 1;
        }
        let mut queue: VecDeque<ModuleId> = in_deg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&id, _)| id)
            .collect();
        let mut order = Vec::with_capacity(self.modules.len());
        while let Some(id) = queue.pop_front() {
            order.push(id);
            for c in self.connections.iter().filter(|c| c.from_module == id) {
                // a connection to an unknown module is skipped; the length
                // check below then reports the pipeline as cyclic/invalid
                let Some(d) = in_deg.get_mut(&c.to_module) else { continue };
                *d -= 1;
                if *d == 0 {
                    queue.push_back(c.to_module);
                }
            }
        }
        if order.len() != self.modules.len() {
            let stuck: Vec<ModuleId> = in_deg
                .iter()
                .filter(|(_, &d)| d > 0)
                .map(|(&id, _)| id)
                .collect();
            return Err(WfError::Cycle(stuck));
        }
        Ok(order)
    }

    /// Validates the pipeline against a registry: module types exist,
    /// connected ports exist with compatible types, no cycles.
    pub fn validate(&self, registry: &ModuleRegistry) -> Result<()> {
        for (id, node) in &self.modules {
            registry
                .descriptor(&node.type_name)
                .map_err(|_| WfError::NotFound(format!("module {id}: type '{}'", node.type_name)))?;
        }
        for c in &self.connections {
            let from_node = self.modules.get(&c.from_module).ok_or_else(|| {
                WfError::NotFound(format!("connection from unknown module {}", c.from_module))
            })?;
            let to_node = self.modules.get(&c.to_module).ok_or_else(|| {
                WfError::NotFound(format!("connection into unknown module {}", c.to_module))
            })?;
            let from_desc = registry.descriptor(&from_node.type_name)?;
            let to_desc = registry.descriptor(&to_node.type_name)?;
            let out = from_desc.output(&c.from_port).ok_or_else(|| {
                WfError::NotFound(format!(
                    "output port '{}' on {}",
                    c.from_port, from_desc.type_name
                ))
            })?;
            let inp = to_desc.input(&c.to_port).ok_or_else(|| {
                WfError::NotFound(format!("input port '{}' on {}", c.to_port, to_desc.type_name))
            })?;
            if !inp.port_type.compatible(&out.port_type) {
                return Err(WfError::TypeMismatch {
                    expected: format!("{:?}", inp.port_type),
                    got: format!("{:?}", out.port_type),
                });
            }
        }
        self.topological_order()?;
        Ok(())
    }

    /// The sub-pipeline consisting of `sink` plus everything upstream of it —
    /// exactly the per-client workflow the hyperwall server ships (§III.H).
    pub fn upstream_subgraph(&self, sink: ModuleId) -> Result<Pipeline> {
        if !self.modules.contains_key(&sink) {
            return Err(WfError::NotFound(format!("module {sink}")));
        }
        let mut keep: BTreeSet<ModuleId> = BTreeSet::new();
        let mut stack = vec![sink];
        while let Some(id) = stack.pop() {
            if !keep.insert(id) {
                continue;
            }
            for c in self.connections.iter().filter(|c| c.to_module == id) {
                stack.push(c.from_module);
            }
        }
        Ok(Pipeline {
            modules: self
                .modules
                .iter()
                .filter(|(id, _)| keep.contains(id))
                .map(|(&id, n)| (id, n.clone()))
                .collect(),
            connections: self
                .connections
                .iter()
                .filter(|c| keep.contains(&c.from_module) && keep.contains(&c.to_module))
                .cloned()
                .collect(),
        })
    }

    /// A stable signature of one module's identity for caching: its type,
    /// parameters, and (recursively) the signatures of its inputs.
    pub fn module_signature(&self, id: ModuleId) -> u64 {
        static NO_SALTS: BTreeMap<String, u64> = BTreeMap::new();
        self.module_signature_salted(id, &NO_SALTS)
    }

    /// [`Pipeline::module_signature`] with per-module-type cache salts
    /// mixed in: a nonzero salt for a type changes the signature of every
    /// module of that type *and*, through the recursive walk, of every
    /// module downstream of one — so bumping an engine version (e.g. the
    /// regrid weight math behind `cdat.Regrid`) invalidates all cached
    /// pipeline outputs that depend on it. An empty map (or all-zero
    /// salts) reproduces the unsalted signature exactly.
    pub fn module_signature_salted(&self, id: ModuleId, salts: &BTreeMap<String, u64>) -> u64 {
        fn walk(p: &Pipeline, id: ModuleId, salts: &BTreeMap<String, u64>, depth: usize) -> u64 {
            let mut h = Fnv::new();
            if depth > 10_000 {
                return h.finish(); // cycle guard; validate() rejects cycles anyway
            }
            if let Some(node) = p.modules.get(&id) {
                h.write(node.type_name.as_bytes());
                match salts.get(&node.type_name) {
                    Some(&salt) if salt != 0 => h.write(&salt.to_le_bytes()),
                    _ => {}
                }
                for (k, v) in &node.params {
                    h.write(k.as_bytes());
                    v.signature(&mut h);
                }
                let mut ins: Vec<&Connection> =
                    p.connections.iter().filter(|c| c.to_module == id).collect();
                ins.sort_by(|a, b| a.to_port.cmp(&b.to_port));
                for c in ins {
                    h.write(c.to_port.as_bytes());
                    h.write(c.from_port.as_bytes());
                    h.write(&walk(p, c.from_module, salts, depth + 1).to_le_bytes());
                }
            }
            h.finish()
        }
        walk(self, id, salts, 0)
    }

    /// Serializes to JSON (the `.vt` file stand-in).
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| WfError::Serde(e.to_string()))
    }

    /// Parses from JSON.
    pub fn from_json(s: &str) -> Result<Pipeline> {
        serde_json::from_str(s).map_err(|e| WfError::Serde(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{single, PortType};
    use crate::value::WfData;

    fn registry() -> ModuleRegistry {
        let mut r = ModuleRegistry::new();
        r.register_fn("m", "src", &[], &[("out", PortType::Float)], |_, params| {
            let v = params.get("v").and_then(ParamValue::as_f64).unwrap_or(0.0);
            Ok(single("out", WfData::Float(v)))
        });
        r.register_fn(
            "m",
            "add",
            &[("a", PortType::Float), ("b", PortType::Float)],
            &[("out", PortType::Float)],
            |inputs, _| {
                let a = inputs.get("a").and_then(WfData::as_float).unwrap_or(0.0);
                let b = inputs.get("b").and_then(WfData::as_float).unwrap_or(0.0);
                Ok(single("out", WfData::Float(a + b)))
            },
        );
        r.register_fn("m", "txt", &[], &[("out", PortType::Str)], |_, _| {
            Ok(single("out", WfData::Str("x".into())))
        });
        r
    }

    fn diamond() -> Pipeline {
        // 1 → 2, 1 → 3, (2,3) → 4
        let mut p = Pipeline::new();
        for id in 1..=2 {
            p.add_module(id, "m.src").unwrap();
        }
        p.add_module(3, "m.add").unwrap();
        p.add_module(4, "m.add").unwrap();
        p.connect((1, "out"), (3, "a")).unwrap();
        p.connect((2, "out"), (3, "b")).unwrap();
        p.connect((3, "out"), (4, "a")).unwrap();
        p.connect((1, "out"), (4, "b")).unwrap();
        p
    }

    #[test]
    fn build_and_validate() {
        let p = diamond();
        assert!(p.validate(&registry()).is_ok());
        assert_eq!(p.sinks(), vec![4]);
    }

    #[test]
    fn duplicate_module_id_rejected() {
        let mut p = Pipeline::new();
        p.add_module(1, "m.src").unwrap();
        assert!(p.add_module(1, "m.src").is_err());
    }

    #[test]
    fn double_connection_to_input_rejected() {
        let mut p = Pipeline::new();
        p.add_module(1, "m.src").unwrap();
        p.add_module(2, "m.src").unwrap();
        p.add_module(3, "m.add").unwrap();
        p.connect((1, "out"), (3, "a")).unwrap();
        assert!(p.connect((2, "out"), (3, "a")).is_err());
    }

    #[test]
    fn connect_unknown_modules_rejected() {
        let mut p = Pipeline::new();
        p.add_module(1, "m.src").unwrap();
        assert!(p.connect((1, "out"), (9, "a")).is_err());
        assert!(p.connect((9, "out"), (1, "a")).is_err());
    }

    #[test]
    fn delete_module_cleans_connections() {
        let mut p = diamond();
        p.delete_module(3).unwrap();
        assert!(!p.modules.contains_key(&3));
        assert!(p.connections.iter().all(|c| c.from_module != 3 && c.to_module != 3));
        assert!(p.delete_module(3).is_err());
    }

    #[test]
    fn disconnect_works() {
        let mut p = diamond();
        p.disconnect((4, "b")).unwrap();
        assert_eq!(p.inputs_of(4).len(), 1);
        assert!(p.disconnect((4, "b")).is_err());
    }

    #[test]
    fn topological_order_respects_edges() {
        let p = diamond();
        let order = p.topological_order().unwrap();
        let pos = |id: ModuleId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(3));
        assert!(pos(3) < pos(4));
    }

    #[test]
    fn cycle_detected() {
        let mut p = Pipeline::new();
        p.add_module(1, "m.add").unwrap();
        p.add_module(2, "m.add").unwrap();
        p.connect((1, "out"), (2, "a")).unwrap();
        p.connect((2, "out"), (1, "a")).unwrap();
        match p.topological_order() {
            Err(WfError::Cycle(ids)) => {
                assert!(ids.contains(&1) && ids.contains(&2));
            }
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn validation_catches_bad_types_and_ports() {
        let r = registry();
        // unknown type
        let mut p = Pipeline::new();
        p.add_module(1, "m.nope").unwrap();
        assert!(matches!(p.validate(&r), Err(WfError::NotFound(_))));
        // bad port
        let mut p = Pipeline::new();
        p.add_module(1, "m.src").unwrap();
        p.add_module(2, "m.add").unwrap();
        p.connect((1, "bogus"), (2, "a")).unwrap();
        assert!(matches!(p.validate(&r), Err(WfError::NotFound(_))));
        // type mismatch: Str → Float
        let mut p = Pipeline::new();
        p.add_module(1, "m.txt").unwrap();
        p.add_module(2, "m.add").unwrap();
        p.connect((1, "out"), (2, "a")).unwrap();
        assert!(matches!(p.validate(&r), Err(WfError::TypeMismatch { .. })));
    }

    #[test]
    fn upstream_subgraph_extracts_cell_workflow() {
        let p = diamond();
        let sub = p.upstream_subgraph(3).unwrap();
        assert_eq!(sub.modules.len(), 3); // 1, 2, 3
        assert!(!sub.modules.contains_key(&4));
        assert_eq!(sub.connections.len(), 2);
        assert!(sub.validate(&registry()).is_ok());
        // subgraph of a source is itself
        let sub1 = p.upstream_subgraph(1).unwrap();
        assert_eq!(sub1.modules.len(), 1);
        assert!(p.upstream_subgraph(99).is_err());
    }

    #[test]
    fn signature_changes_with_params_and_structure() {
        let p = diamond();
        let s0 = p.module_signature(4);
        // same pipeline, same signature
        assert_eq!(diamond().module_signature(4), s0);
        // parameter change upstream propagates
        let mut p2 = diamond();
        p2.set_parameter(1, "v", ParamValue::Float(9.0)).unwrap();
        assert_ne!(p2.module_signature(4), s0);
        // but the signature of the untouched branch (module 2) is unchanged
        assert_eq!(p2.module_signature(2), p.module_signature(2));
        // structural change propagates
        let mut p3 = diamond();
        p3.disconnect((4, "b")).unwrap();
        assert_ne!(p3.module_signature(4), s0);
    }

    #[test]
    fn dangling_connections_error_instead_of_panicking() {
        // simulate a corrupt/untrusted deserialized pipeline
        let json = r#"{"modules":{"1":{"type_name":"m.src","params":{}}},
            "connections":[{"from_module":9,"from_port":"out",
                            "to_module":1,"to_port":"a"}]}"#;
        let p = Pipeline::from_json(json).unwrap();
        assert!(matches!(p.topological_order(), Err(WfError::NotFound(_))));
        assert!(matches!(p.validate(&registry()), Err(WfError::NotFound(_))));
        let json2 = r#"{"modules":{"1":{"type_name":"m.src","params":{}}},
            "connections":[{"from_module":1,"from_port":"out",
                            "to_module":9,"to_port":"a"}]}"#;
        let p2 = Pipeline::from_json(json2).unwrap();
        assert!(matches!(p2.topological_order(), Err(WfError::NotFound(_))));
    }

    #[test]
    fn json_roundtrip() {
        let mut p = diamond();
        p.set_parameter(1, "v", ParamValue::Float(3.5)).unwrap();
        let s = p.to_json().unwrap();
        let back = Pipeline::from_json(&s).unwrap();
        assert_eq!(back, p);
        assert!(Pipeline::from_json("not json").is_err());
    }
}
