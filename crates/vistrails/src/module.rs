//! Modules and the package registry.
//!
//! VisTrails' package mechanism lets any library expose its functionality as
//! workflow modules through a thin interface (§III.A). Here a package is a
//! namespace of [`WfModule`] implementations in a [`ModuleRegistry`]. Two
//! integration styles are supported, mirroring Fig 1:
//!
//! * **Tightly coupled** — implement [`WfModule`] (or use
//!   [`ModuleRegistry::register_fn`]) so the module runs in-process with
//!   typed ports.
//! * **Loosely coupled** — wrap an external tool behind
//!   [`ModuleRegistry::register_external_tool`]: the adapter receives the
//!   whole input map and returns text, like shelling out to R or MatLab.

use crate::value::{Params, WfData};
use crate::{Result, WfError};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Port data types (checked when connections are validated).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PortType {
    Bool,
    Int,
    Float,
    Str,
    FloatVec,
    /// An opaque package type, matched by tag (e.g. `"cdms.Variable"`).
    Opaque(String),
    /// Accepts anything.
    Any,
}

impl PortType {
    /// Whether a runtime value is acceptable on this port.
    pub fn accepts(&self, data: &WfData) -> bool {
        match (self, data) {
            (PortType::Any, _) => true,
            (PortType::Bool, WfData::Bool(_)) => true,
            (PortType::Int, WfData::Int(_)) => true,
            (PortType::Float, WfData::Float(_) | WfData::Int(_)) => true,
            (PortType::Str, WfData::Str(_)) => true,
            (PortType::FloatVec, WfData::FloatVec(_)) => true,
            (PortType::Opaque(tag), WfData::Opaque { type_name, .. }) => tag == type_name,
            _ => false,
        }
    }

    /// Whether data of type `other` can flow into this port (static check).
    pub fn compatible(&self, other: &PortType) -> bool {
        self == other
            || *self == PortType::Any
            || *other == PortType::Any
            || (*self == PortType::Float && *other == PortType::Int)
    }
}

/// A port description.
#[derive(Debug, Clone, PartialEq)]
pub struct PortSpec {
    pub name: String,
    pub port_type: PortType,
    /// Inputs marked optional may be unconnected.
    pub optional: bool,
}

/// A module type's interface description.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleDescriptor {
    /// Fully qualified name `package.type`.
    pub type_name: String,
    pub inputs: Vec<PortSpec>,
    pub outputs: Vec<PortSpec>,
    /// Sinks anchor execution (spreadsheet cells are sinks).
    pub is_sink: bool,
}

impl ModuleDescriptor {
    /// Finds an input port spec by name.
    pub fn input(&self, name: &str) -> Option<&PortSpec> {
        self.inputs.iter().find(|p| p.name == name)
    }

    /// Finds an output port spec by name.
    pub fn output(&self, name: &str) -> Option<&PortSpec> {
        self.outputs.iter().find(|p| p.name == name)
    }
}

/// A workflow module implementation. Implementations are stateless; all
/// per-instance state lives in the pipeline's parameters.
pub trait WfModule: Send + Sync {
    /// The module's interface.
    fn descriptor(&self) -> ModuleDescriptor;

    /// Runs the module.
    fn execute(
        &self,
        inputs: &BTreeMap<String, WfData>,
        params: &Params,
    ) -> Result<BTreeMap<String, WfData>>;
}

/// Convenience: a single-entry output map.
pub fn single(port: &str, data: WfData) -> BTreeMap<String, WfData> {
    let mut m = BTreeMap::new();
    m.insert(port.to_string(), data);
    m
}

type ExecuteFn = dyn Fn(&BTreeMap<String, WfData>, &Params) -> Result<BTreeMap<String, WfData>>
    + Send
    + Sync;

/// A module built from a closure (the `register_fn` path).
struct FnModule {
    descriptor: ModuleDescriptor,
    f: Box<ExecuteFn>,
}

impl WfModule for FnModule {
    fn descriptor(&self) -> ModuleDescriptor {
        self.descriptor.clone()
    }

    fn execute(
        &self,
        inputs: &BTreeMap<String, WfData>,
        params: &Params,
    ) -> Result<BTreeMap<String, WfData>> {
        (self.f)(inputs, params)
    }
}

/// The registry of all known module types, namespaced by package.
#[derive(Clone, Default)]
pub struct ModuleRegistry {
    modules: BTreeMap<String, Arc<dyn WfModule>>,
    cache_salts: BTreeMap<String, u64>,
}

impl ModuleRegistry {
    /// An empty registry.
    pub fn new() -> ModuleRegistry {
        ModuleRegistry::default()
    }

    /// Registers a module implementation under `package.type`.
    pub fn register(&mut self, module: Arc<dyn WfModule>) {
        self.modules.insert(module.descriptor().type_name.clone(), module);
    }

    /// Declares a cache salt for a module type: a version of the engine
    /// behind the module that is mixed into pipeline cache signatures
    /// (recursively, so downstream modules are invalidated too). A salt of
    /// 0 is the default and leaves signatures untouched — e.g.
    /// `cdat.Regrid` registers its regrid-engine version here so cached
    /// pipeline outputs can never survive a weight-math change.
    pub fn set_cache_salt(&mut self, type_name: &str, salt: u64) {
        if salt == 0 {
            self.cache_salts.remove(type_name);
        } else {
            self.cache_salts.insert(type_name.to_string(), salt);
        }
    }

    /// The cache salt for `type_name` (0 when none is registered).
    pub fn cache_salt(&self, type_name: &str) -> u64 {
        self.cache_salts.get(type_name).copied().unwrap_or(0)
    }

    /// All registered cache salts, for signature computation.
    pub fn cache_salts(&self) -> &BTreeMap<String, u64> {
        &self.cache_salts
    }

    /// Registers a closure-backed module with the given ports.
    pub fn register_fn(
        &mut self,
        package: &str,
        type_name: &str,
        inputs: &[(&str, PortType)],
        outputs: &[(&str, PortType)],
        f: impl Fn(&BTreeMap<String, WfData>, &Params) -> Result<BTreeMap<String, WfData>>
            + Send
            + Sync
            + 'static,
    ) {
        self.register_fn_sink(package, type_name, inputs, outputs, false, f)
    }

    /// Like [`ModuleRegistry::register_fn`] with an explicit sink flag.
    pub fn register_fn_sink(
        &mut self,
        package: &str,
        type_name: &str,
        inputs: &[(&str, PortType)],
        outputs: &[(&str, PortType)],
        is_sink: bool,
        f: impl Fn(&BTreeMap<String, WfData>, &Params) -> Result<BTreeMap<String, WfData>>
            + Send
            + Sync
            + 'static,
    ) {
        let descriptor = ModuleDescriptor {
            type_name: format!("{package}.{type_name}"),
            inputs: inputs
                .iter()
                .map(|(n, t)| PortSpec {
                    name: n.to_string(),
                    port_type: t.clone(),
                    optional: true,
                })
                .collect(),
            outputs: outputs
                .iter()
                .map(|(n, t)| PortSpec {
                    name: n.to_string(),
                    port_type: t.clone(),
                    optional: false,
                })
                .collect(),
            is_sink,
        };
        self.register(Arc::new(FnModule { descriptor, f: Box::new(f) }));
    }

    /// Registers a *loosely coupled* external tool: the adapter takes the
    /// whole input map plus params and returns text on the `result` port —
    /// the shape of shelling out to R / MatLab / VisIt (paper Fig 1).
    pub fn register_external_tool(
        &mut self,
        package: &str,
        tool: &str,
        adapter: impl Fn(&BTreeMap<String, WfData>, &Params) -> std::result::Result<String, String>
            + Send
            + Sync
            + 'static,
    ) {
        self.register_fn(
            package,
            tool,
            &[("input", PortType::Any)],
            &[("result", PortType::Str)],
            move |inputs, params| match adapter(inputs, params) {
                Ok(text) => Ok(single("result", WfData::Str(text))),
                Err(msg) => Err(WfError::Execution { module: 0, message: msg }),
            },
        );
    }

    /// Looks up a module by fully qualified type name.
    pub fn get(&self, type_name: &str) -> Result<Arc<dyn WfModule>> {
        self.modules
            .get(type_name)
            .cloned()
            .ok_or_else(|| WfError::NotFound(format!("module type '{type_name}'")))
    }

    /// Descriptor lookup.
    pub fn descriptor(&self, type_name: &str) -> Result<ModuleDescriptor> {
        Ok(self.get(type_name)?.descriptor())
    }

    /// All registered type names (the plot-palette listing).
    pub fn type_names(&self) -> Vec<String> {
        self.modules.keys().cloned().collect()
    }

    /// Type names belonging to one package.
    pub fn package_types(&self, package: &str) -> Vec<String> {
        let prefix = format!("{package}.");
        self.modules.keys().filter(|k| k.starts_with(&prefix)).cloned().collect()
    }
}

impl std::fmt::Debug for ModuleRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModuleRegistry")
            .field("types", &self.type_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry_with_neg() -> ModuleRegistry {
        let mut r = ModuleRegistry::new();
        r.register_fn(
            "m",
            "neg",
            &[("x", PortType::Float)],
            &[("y", PortType::Float)],
            |inputs, _| {
                let x = inputs.get("x").and_then(WfData::as_float).unwrap_or(0.0);
                Ok(single("y", WfData::Float(-x)))
            },
        );
        r
    }

    #[test]
    fn register_and_execute() {
        let r = registry_with_neg();
        let m = r.get("m.neg").unwrap();
        let mut inputs = BTreeMap::new();
        inputs.insert("x".to_string(), WfData::Float(3.0));
        let out = m.execute(&inputs, &Params::new()).unwrap();
        assert_eq!(out["y"].as_float(), Some(-3.0));
        assert!(r.get("m.missing").is_err());
    }

    #[test]
    fn descriptor_queries() {
        let r = registry_with_neg();
        let d = r.descriptor("m.neg").unwrap();
        assert_eq!(d.type_name, "m.neg");
        assert!(d.input("x").is_some());
        assert!(d.input("nope").is_none());
        assert!(d.output("y").is_some());
        assert!(!d.is_sink);
    }

    #[test]
    fn package_listing() {
        let mut r = registry_with_neg();
        r.register_fn("other", "id", &[], &[], |_, _| Ok(BTreeMap::new()));
        assert_eq!(r.package_types("m"), vec!["m.neg"]);
        assert_eq!(r.type_names().len(), 2);
        assert!(r.package_types("zzz").is_empty());
    }

    #[test]
    fn port_type_accepts() {
        assert!(PortType::Float.accepts(&WfData::Float(1.0)));
        assert!(PortType::Float.accepts(&WfData::Int(1))); // int promotes
        assert!(!PortType::Int.accepts(&WfData::Float(1.0)));
        assert!(PortType::Any.accepts(&WfData::None));
        assert!(PortType::Opaque("a.B".into()).accepts(&WfData::opaque("a.B", 1u8)));
        assert!(!PortType::Opaque("a.B".into()).accepts(&WfData::opaque("a.C", 1u8)));
    }

    #[test]
    fn port_type_compatibility() {
        assert!(PortType::Float.compatible(&PortType::Int));
        assert!(!PortType::Int.compatible(&PortType::Float));
        assert!(PortType::Any.compatible(&PortType::Str));
        assert!(PortType::Str.compatible(&PortType::Any));
        assert!(PortType::Opaque("x".into()).compatible(&PortType::Opaque("x".into())));
        assert!(!PortType::Opaque("x".into()).compatible(&PortType::Opaque("y".into())));
    }

    #[test]
    fn external_tool_adapter() {
        let mut r = ModuleRegistry::new();
        r.register_external_tool("loose", "rstats", |inputs, _| {
            let x = inputs
                .get("input")
                .and_then(WfData::as_float)
                .ok_or("missing input")?;
            Ok(format!("mean={x:.1}"))
        });
        let m = r.get("loose.rstats").unwrap();
        let mut inputs = BTreeMap::new();
        inputs.insert("input".to_string(), WfData::Float(5.0));
        let out = m.execute(&inputs, &Params::new()).unwrap();
        assert_eq!(out["result"].as_str(), Some("mean=5.0"));
        // failure path
        let err = m.execute(&BTreeMap::new(), &Params::new()).unwrap_err();
        assert!(matches!(err, WfError::Execution { .. }));
    }

    #[test]
    fn sink_flag_carried() {
        let mut r = ModuleRegistry::new();
        r.register_fn_sink("ui", "cell", &[("in", PortType::Any)], &[], true, |_, _| {
            Ok(BTreeMap::new())
        });
        assert!(r.descriptor("ui.cell").unwrap().is_sink);
    }
}
