//! Shared, bounded, content-addressed module-result cache.
//!
//! One multi-tenant service process runs many sessions, and sessions
//! overwhelmingly ask for overlapping work (the same source modules, the
//! same mid-pipeline analyses). The per-[`crate::executor::Executor`]
//! cache cannot see across sessions, so every tenant used to pay the full
//! cold-start cost. `SharedModuleCache` is the cross-session layer: keyed
//! by the same salted module signatures (type + params + upstream
//! signatures + engine salts) that the executor already computes — a
//! content address, so two sessions that build identical sub-pipelines
//! share results with no coordination.
//!
//! Properties the contention tests pin down:
//!
//! * **bounded** — LRU eviction keeps at most `capacity` results resident;
//! * **counted** — [`SharedCacheStats`] tracks hits, misses, inserts,
//!   evictions, and *dedups* (a duplicate insert of a signature another
//!   session computed concurrently: wasted work detected and merged);
//! * **concurrent** — a single short mutex guards the map; results are
//!   cloned out, never borrowed, so the lock is never held across module
//!   execution.

use crate::value::WfData;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};

/// The outputs of one module execution, as cached.
pub type ModuleOutputs = BTreeMap<String, WfData>;

/// Cumulative counters of a [`SharedModuleCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Fresh results stored.
    pub inserts: u64,
    /// Duplicate inserts: the signature was already resident because
    /// another session computed the same work concurrently.
    pub dedups: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
}

#[derive(Debug)]
struct Entry {
    outputs: ModuleOutputs,
    last_used: u64,
}

#[derive(Debug)]
struct Inner {
    capacity: usize,
    tick: u64,
    entries: HashMap<u64, Entry>,
    stats: SharedCacheStats,
}

impl Inner {
    fn evict_to_capacity(&mut self) {
        while self.entries.len() > self.capacity {
            if let Some((&victim, _)) =
                self.entries.iter().min_by_key(|(_, e)| e.last_used)
            {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            } else {
                break;
            }
        }
    }
}

/// A module-result cache safe to share across session executors.
#[derive(Debug)]
pub struct SharedModuleCache {
    inner: Mutex<Inner>,
}

impl SharedModuleCache {
    /// A cache holding at most `capacity` module results (minimum 1).
    pub fn new(capacity: usize) -> SharedModuleCache {
        SharedModuleCache {
            inner: Mutex::new(Inner {
                capacity: capacity.max(1),
                tick: 0,
                entries: HashMap::new(),
                stats: SharedCacheStats::default(),
            }),
        }
    }

    /// The cached outputs for `signature`, bumping recency. Counts a hit
    /// or a miss.
    pub fn get(&self, signature: u64) -> Option<ModuleOutputs> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(&signature) {
            Some(e) => {
                e.last_used = tick;
                let out = e.outputs.clone();
                inner.stats.hits += 1;
                Some(out)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Stores `outputs` under `signature`. Returns `true` when the entry
    /// is fresh; `false` (counting a dedup, keeping the resident copy)
    /// when another session already inserted the same signature.
    pub fn insert(&self, signature: u64, outputs: &ModuleOutputs) -> bool {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(e) = inner.entries.get_mut(&signature) {
            e.last_used = tick;
            inner.stats.dedups += 1;
            return false;
        }
        inner
            .entries
            .insert(signature, Entry { outputs: outputs.clone(), last_used: tick });
        inner.stats.inserts += 1;
        inner.evict_to_capacity();
        true
    }

    /// Cumulative counters.
    pub fn stats(&self) -> SharedCacheStats {
        self.inner.lock().stats
    }

    /// Number of resident results.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().entries.is_empty()
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }

    /// Changes the capacity (minimum 1), evicting LRU entries if it shrank.
    pub fn set_capacity(&self, capacity: usize) {
        let mut inner = self.inner.lock();
        inner.capacity = capacity.max(1);
        inner.evict_to_capacity();
    }

    /// Empties the cache (counters are kept).
    pub fn clear(&self) {
        self.inner.lock().entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Barrier};

    fn outputs(v: f64) -> ModuleOutputs {
        let mut m = ModuleOutputs::new();
        m.insert("out".into(), WfData::Float(v));
        m
    }

    fn value_of(m: &ModuleOutputs) -> Option<f64> {
        m.get("out").and_then(WfData::as_float)
    }

    #[test]
    fn hit_miss_insert_counters() {
        let c = SharedModuleCache::new(4);
        assert!(c.get(1).is_none());
        assert!(c.insert(1, &outputs(1.0)));
        assert_eq!(c.get(1).as_ref().and_then(value_of), Some(1.0));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
    }

    #[test]
    fn duplicate_insert_counts_dedup_and_keeps_resident_copy() {
        let c = SharedModuleCache::new(4);
        assert!(c.insert(9, &outputs(1.0)));
        assert!(!c.insert(9, &outputs(2.0)), "second insert is a dedup");
        assert_eq!(c.get(9).as_ref().and_then(value_of), Some(1.0), "first writer wins");
        assert_eq!(c.stats().dedups, 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_respects_capacity_and_recency() {
        let c = SharedModuleCache::new(2);
        c.insert(1, &outputs(1.0));
        c.insert(2, &outputs(2.0));
        c.get(1); // 1 is now more recent than 2
        c.insert(3, &outputs(3.0)); // evicts 2
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
    }

    #[test]
    fn shrinking_capacity_evicts() {
        let c = SharedModuleCache::new(8);
        for k in 0..8 {
            c.insert(k, &outputs(k as f64));
        }
        c.set_capacity(3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().evictions, 5);
    }

    #[test]
    fn concurrent_sessions_share_and_counters_stay_consistent() {
        const THREADS: usize = 8;
        const KEYS: u64 = 5;
        const ROUNDS: usize = 20;
        let cache = Arc::new(SharedModuleCache::new(16));
        let computed = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new(Barrier::new(THREADS));
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let cache = Arc::clone(&cache);
                let computed = Arc::clone(&computed);
                let gate = Arc::clone(&gate);
                s.spawn(move || {
                    gate.wait();
                    for r in 0..ROUNDS {
                        let key = ((t + r) as u64) % KEYS;
                        if cache.get(key).is_none() {
                            computed.fetch_add(1, Ordering::SeqCst);
                            cache.insert(key, &outputs(key as f64));
                        }
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(cache.len(), KEYS as usize);
        // every miss led to an insert attempt; duplicate computes show up
        // as dedups, and inserts + dedups account for all of them
        assert_eq!(s.inserts + s.dedups, computed.load(Ordering::SeqCst) as u64);
        assert_eq!(s.inserts, KEYS, "one resident copy per distinct signature");
        assert_eq!(s.hits + s.misses, (THREADS * ROUNDS) as u64);
    }
}
