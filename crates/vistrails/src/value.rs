//! Workflow values: serializable module *parameters* and the runtime *data*
//! flowing between modules.

use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A module parameter — part of the pipeline definition, recorded in
/// provenance, serializable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamValue {
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    FloatList(Vec<f64>),
}

impl ParamValue {
    /// Numeric coercion.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ParamValue::Float(v) => Some(*v),
            ParamValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Integer coercion.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            ParamValue::Int(v) => Some(*v),
            ParamValue::Float(v) if v.fract() == 0.0 => Some(*v as i64),
            _ => None,
        }
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ParamValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ParamValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Float-list payload.
    pub fn as_float_list(&self) -> Option<&[f64]> {
        match self {
            ParamValue::FloatList(v) => Some(v),
            _ => None,
        }
    }

    /// A stable content signature for caching.
    pub(crate) fn signature(&self, h: &mut Fnv) {
        match self {
            ParamValue::Bool(b) => {
                h.write(&[1, *b as u8]);
            }
            ParamValue::Int(v) => {
                h.write(&[2]);
                h.write(&v.to_le_bytes());
            }
            ParamValue::Float(v) => {
                h.write(&[3]);
                h.write(&v.to_le_bytes());
            }
            ParamValue::Str(s) => {
                h.write(&[4]);
                h.write(s.as_bytes());
            }
            ParamValue::FloatList(v) => {
                h.write(&[5]);
                for x in v {
                    h.write(&x.to_le_bytes());
                }
            }
        }
    }
}

impl From<f64> for ParamValue {
    fn from(v: f64) -> Self {
        ParamValue::Float(v)
    }
}
impl From<i64> for ParamValue {
    fn from(v: i64) -> Self {
        ParamValue::Int(v)
    }
}
impl From<&str> for ParamValue {
    fn from(v: &str) -> Self {
        ParamValue::Str(v.to_string())
    }
}
impl From<String> for ParamValue {
    fn from(v: String) -> Self {
        ParamValue::Str(v)
    }
}
impl From<bool> for ParamValue {
    fn from(v: bool) -> Self {
        ParamValue::Bool(v)
    }
}

/// A module's parameter set.
pub type Params = BTreeMap<String, ParamValue>;

/// Runtime data on a connection. Opaque payloads let packages flow their
/// own types (CDMS variables, VTK image data, rendered frames…) through the
/// engine without the engine depending on them.
#[derive(Clone)]
pub enum WfData {
    /// Absence of data.
    None,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    FloatVec(Vec<f64>),
    /// A shared, typed payload owned by some package.
    Opaque {
        /// Human-readable type tag, e.g. `"cdms.Variable"`.
        type_name: String,
        /// The payload.
        value: Arc<dyn Any + Send + Sync>,
    },
}

impl std::fmt::Debug for WfData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WfData::None => write!(f, "None"),
            WfData::Bool(v) => write!(f, "Bool({v})"),
            WfData::Int(v) => write!(f, "Int({v})"),
            WfData::Float(v) => write!(f, "Float({v})"),
            WfData::Str(v) => write!(f, "Str({v:?})"),
            WfData::FloatVec(v) => write!(f, "FloatVec(len={})", v.len()),
            WfData::Opaque { type_name, .. } => write!(f, "Opaque({type_name})"),
        }
    }
}

impl WfData {
    /// Wraps a payload as opaque data with an explicit type tag.
    pub fn opaque<T: Any + Send + Sync>(type_name: &str, value: T) -> WfData {
        WfData::Opaque { type_name: type_name.to_string(), value: Arc::new(value) }
    }

    /// Downcasts an opaque payload.
    pub fn as_opaque<T: Any + Send + Sync>(&self) -> Option<Arc<T>> {
        match self {
            WfData::Opaque { value, .. } => value.clone().downcast::<T>().ok(),
            _ => None,
        }
    }

    /// The type tag of this value (variant name, or the opaque tag).
    pub fn type_tag(&self) -> &str {
        match self {
            WfData::None => "None",
            WfData::Bool(_) => "Bool",
            WfData::Int(_) => "Int",
            WfData::Float(_) => "Float",
            WfData::Str(_) => "Str",
            WfData::FloatVec(_) => "FloatVec",
            WfData::Opaque { type_name, .. } => type_name,
        }
    }

    /// Numeric coercion.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            WfData::Float(v) => Some(*v),
            WfData::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Integer coercion.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            WfData::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            WfData::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            WfData::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A tiny FNV-1a hasher used for cache signatures (stable across runs,
/// unlike `DefaultHasher`).
#[derive(Debug, Clone)]
pub(crate) struct Fnv(pub u64);

impl Fnv {
    pub fn new() -> Fnv {
        Fnv(0xcbf29ce484222325)
    }

    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_coercions() {
        assert_eq!(ParamValue::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(ParamValue::Int(3).as_f64(), Some(3.0));
        assert_eq!(ParamValue::Float(3.0).as_i64(), Some(3));
        assert_eq!(ParamValue::Float(3.5).as_i64(), None);
        assert_eq!(ParamValue::from("x").as_str(), Some("x"));
        assert_eq!(ParamValue::from(true).as_bool(), Some(true));
        assert_eq!(
            ParamValue::FloatList(vec![1.0]).as_float_list(),
            Some(&[1.0][..])
        );
        assert_eq!(ParamValue::from("x").as_f64(), None);
    }

    #[test]
    fn param_serde_roundtrip() {
        let p = ParamValue::FloatList(vec![1.0, 2.0]);
        let s = serde_json::to_string(&p).unwrap();
        let back: ParamValue = serde_json::from_str(&s).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn opaque_downcast() {
        #[derive(Debug, PartialEq)]
        struct Payload(Vec<u8>);
        let d = WfData::opaque("test.Payload", Payload(vec![1, 2, 3]));
        assert_eq!(d.type_tag(), "test.Payload");
        let p = d.as_opaque::<Payload>().unwrap();
        assert_eq!(*p, Payload(vec![1, 2, 3]));
        // wrong type fails
        assert!(d.as_opaque::<String>().is_none());
        // non-opaque fails
        assert!(WfData::Float(1.0).as_opaque::<Payload>().is_none());
    }

    #[test]
    fn data_coercions_and_tags() {
        assert_eq!(WfData::Float(1.5).as_float(), Some(1.5));
        assert_eq!(WfData::Int(2).as_float(), Some(2.0));
        assert_eq!(WfData::Int(2).as_int(), Some(2));
        assert_eq!(WfData::Str("hi".into()).as_str(), Some("hi"));
        assert_eq!(WfData::Bool(true).as_bool(), Some(true));
        assert_eq!(WfData::None.type_tag(), "None");
        assert_eq!(WfData::FloatVec(vec![]).type_tag(), "FloatVec");
    }

    #[test]
    fn fnv_is_stable_and_sensitive() {
        let mut a = Fnv::new();
        ParamValue::Float(1.0).signature(&mut a);
        let mut b = Fnv::new();
        ParamValue::Float(1.0).signature(&mut b);
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv::new();
        ParamValue::Float(1.0000001).signature(&mut c);
        assert_ne!(a.finish(), c.finish());
        // Int(1) and Float(1.0) differ
        let mut d = Fnv::new();
        ParamValue::Int(1).signature(&mut d);
        assert_ne!(a.finish(), d.finish());
    }

    #[test]
    fn debug_format_hides_opaque_payload() {
        let d = WfData::opaque("big.Thing", vec![0u8; 1000]);
        assert_eq!(format!("{d:?}"), "Opaque(big.Thing)");
    }
}
