#![forbid(unsafe_code)]

//! # vistrails — workflow + provenance engine
//!
//! A Rust reproduction of the VisTrails infrastructure UV-CDAT is built on
//! (paper §II.B, §III.A, §III.F):
//!
//! * [`module`] — the *package mechanism*: libraries expose their
//!   functionality as typed workflow modules registered under a package
//!   name ("tightly coupled integration"), or as external-tool adapters
//!   ("loosely coupled integration").
//! * [`pipeline`] — dataflow graphs of module instances and typed
//!   connections, with validation (ports, types, cycles) and
//!   upstream-subgraph extraction (the hyperwall workflow split uses this).
//! * [`executor`] — topological execution with result caching and
//!   parallel execution of independent branches.
//! * [`provenance`] — the VisTrails *version tree*: every edit to a
//!   workflow is an action appended to a tree of versions; any version can
//!   be materialized by replaying its action path, tagged, branched from,
//!   or diffed against another. Workflow evolution is never lost.
//! * [`spreadsheet`] — a grid of cells, each bound to a pipeline version
//!   and sink module, with active-cell selection and synchronized
//!   configuration (the UV-CDAT spreadsheet of §III.E).
//!
//! ## Quickstart
//!
//! ```
//! use vistrails::prelude::*;
//!
//! // Register a tiny package.
//! let mut registry = ModuleRegistry::new();
//! registry.register_fn("math", "add", &[("a", PortType::Float), ("b", PortType::Float)],
//!     &[("sum", PortType::Float)], |inputs, _params| {
//!         let a = inputs.get("a").and_then(WfData::as_float).unwrap_or(0.0);
//!         let b = inputs.get("b").and_then(WfData::as_float).unwrap_or(0.0);
//!         Ok(single("sum", WfData::Float(a + b)))
//!     });
//! registry.register_fn("math", "const", &[], &[("value", PortType::Float)],
//!     |_inputs, params| {
//!         let v = params.get("value").and_then(ParamValue::as_f64).unwrap_or(0.0);
//!         Ok(single("value", WfData::Float(v)))
//!     });
//!
//! // Build a pipeline through the provenance tree.
//! let mut vt = Vistrail::new("example");
//! let root = Vistrail::ROOT;
//! let v1 = vt.add_action(root, Action::AddModule { id: 1, type_name: "math.const".into() }).unwrap();
//! let v2 = vt.add_action(v1, Action::SetParameter { module: 1, name: "value".into(),
//!     value: ParamValue::Float(40.0) }).unwrap();
//! let v3 = vt.add_action(v2, Action::AddModule { id: 2, type_name: "math.const".into() }).unwrap();
//! let v4 = vt.add_action(v3, Action::SetParameter { module: 2, name: "value".into(),
//!     value: ParamValue::Float(2.0) }).unwrap();
//! let v5 = vt.add_action(v4, Action::AddModule { id: 3, type_name: "math.add".into() }).unwrap();
//! let v6 = vt.add_action(v5, Action::AddConnection {
//!     from: (1, "value".into()), to: (3, "a".into()) }).unwrap();
//! let v7 = vt.add_action(v6, Action::AddConnection {
//!     from: (2, "value".into()), to: (3, "b".into()) }).unwrap();
//!
//! let pipeline = vt.materialize(v7).unwrap();
//! let mut exec = Executor::new(registry);
//! let results = exec.execute(&pipeline).unwrap();
//! assert_eq!(results.output(3, "sum").and_then(WfData::as_float), Some(42.0));
//! ```

pub mod execlog;
pub mod executor;
pub mod module;
pub mod pipeline;
pub mod provenance;
pub mod shared_cache;
pub mod spreadsheet;
pub mod value;

/// Errors raised by workflow operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WfError {
    /// Unknown module type, port, version, …
    NotFound(String),
    /// The pipeline or action is structurally invalid.
    Invalid(String),
    /// A cycle was detected in the dataflow graph.
    Cycle(Vec<u64>),
    /// A module's execute failed.
    Execution { module: u64, message: String },
    /// Type mismatch on a connection or port.
    TypeMismatch { expected: String, got: String },
    /// (De)serialization failure.
    Serde(String),
}

impl std::fmt::Display for WfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WfError::NotFound(m) => write!(f, "not found: {m}"),
            WfError::Invalid(m) => write!(f, "invalid: {m}"),
            WfError::Cycle(ids) => write!(f, "cycle through modules {ids:?}"),
            WfError::Execution { module, message } => {
                write!(f, "module {module} failed: {message}")
            }
            WfError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            WfError::Serde(m) => write!(f, "serialization: {m}"),
        }
    }
}

impl std::error::Error for WfError {
    /// All variants carry their cause as data (strings, module ids); there
    /// is no deeper error object to expose.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        None
    }
}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, WfError>;

/// The common imports.
pub mod prelude {
    pub use crate::execlog::ExecutionLog;
    pub use crate::executor::{ExecResults, Executor};
    pub use crate::module::{single, ModuleDescriptor, ModuleRegistry, PortType, WfModule};
    pub use crate::pipeline::{Connection, Pipeline};
    pub use crate::provenance::{Action, Vistrail};
    pub use crate::spreadsheet::{CellAddress, CellBinding, Spreadsheet};
    pub use crate::value::{ParamValue, Params, WfData};
    pub use crate::{Result, WfError};
}
