//! Execution provenance: the persistent record of *runs*.
//!
//! The version tree records how workflows were *built*; the execution log
//! records every time one was *run* — which version, which modules, with
//! what signatures, how long, cache hit or not. "It maintains a record of
//! … the datasets and parameters used in each workflow execution" (§II.B).

use crate::executor::ExecResults;
use crate::provenance::VersionId;
use crate::{Result, WfError};
use serde::{Deserialize, Serialize};

/// One module's record within a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleRun {
    pub module: u64,
    pub type_name: String,
    pub duration_us: u64,
    pub cache_hit: bool,
    /// The cache signature — identifies the exact (type, params, upstream)
    /// combination, so identical signatures across runs mean identical
    /// results.
    pub signature: u64,
}

/// One workflow execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Monotonic run counter within this log.
    pub run_id: u64,
    /// The provenance version that was materialized (if known).
    pub version: Option<VersionId>,
    /// Per-module records, completion order.
    pub modules: Vec<ModuleRun>,
}

impl RunRecord {
    /// Total module wall time (µs), cache hits counting as zero.
    pub fn total_us(&self) -> u64 {
        self.modules.iter().map(|m| m.duration_us).sum()
    }

    /// Number of cache hits in this run.
    pub fn cache_hits(&self) -> usize {
        self.modules.iter().filter(|m| m.cache_hit).count()
    }
}

/// The append-only execution log.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionLog {
    runs: Vec<RunRecord>,
}

impl ExecutionLog {
    /// An empty log.
    pub fn new() -> ExecutionLog {
        ExecutionLog::default()
    }

    /// Records one execution's results; returns the run id.
    pub fn record(&mut self, version: Option<VersionId>, results: &ExecResults) -> u64 {
        let run_id = self.runs.len() as u64;
        self.runs.push(RunRecord {
            run_id,
            version,
            modules: results
                .log
                .iter()
                .map(|e| ModuleRun {
                    module: e.module,
                    type_name: e.type_name.clone(),
                    duration_us: e.duration.as_micros() as u64,
                    cache_hit: e.cache_hit,
                    signature: e.signature,
                })
                .collect(),
        });
        run_id
    }

    /// All runs, oldest first.
    pub fn runs(&self) -> &[RunRecord] {
        &self.runs
    }

    /// Number of recorded runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Runs that executed a given provenance version.
    pub fn runs_of_version(&self, version: VersionId) -> Vec<&RunRecord> {
        self.runs.iter().filter(|r| r.version == Some(version)).collect()
    }

    /// Whether two runs produced identical results for a module, judged by
    /// signature equality (the reproducibility query: "can I regenerate
    /// this product?").
    pub fn same_result(&self, run_a: u64, run_b: u64, module: u64) -> Option<bool> {
        let find = |run: u64| {
            self.runs
                .get(run as usize)?
                .modules
                .iter()
                .find(|m| m.module == module)
                .map(|m| m.signature)
        };
        Some(find(run_a)? == find(run_b)?)
    }

    /// Serializes the log.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| WfError::Serde(e.to_string()))
    }

    /// Parses a log.
    pub fn from_json(s: &str) -> Result<ExecutionLog> {
        serde_json::from_str(s).map_err(|e| WfError::Serde(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::module::{single, ModuleRegistry, PortType};
    use crate::pipeline::Pipeline;
    use crate::value::{ParamValue, WfData};

    fn registry() -> ModuleRegistry {
        let mut r = ModuleRegistry::new();
        r.register_fn("m", "src", &[], &[("out", PortType::Float)], |_, params| {
            let v = params.get("v").and_then(ParamValue::as_f64).unwrap_or(0.0);
            Ok(single("out", WfData::Float(v)))
        });
        r
    }

    fn pipeline(v: f64) -> Pipeline {
        let mut p = Pipeline::new();
        p.add_module(1, "m.src").unwrap();
        p.set_parameter(1, "v", ParamValue::Float(v)).unwrap();
        p
    }

    #[test]
    fn records_runs_with_ids() {
        let mut exec = Executor::new(registry());
        let mut log = ExecutionLog::new();
        let r0 = log.record(Some(5), &exec.execute(&pipeline(1.0)).unwrap());
        let r1 = log.record(Some(5), &exec.execute(&pipeline(1.0)).unwrap());
        let r2 = log.record(Some(9), &exec.execute(&pipeline(2.0)).unwrap());
        assert_eq!((r0, r1, r2), (0, 1, 2));
        assert_eq!(log.len(), 3);
        assert_eq!(log.runs_of_version(5).len(), 2);
        assert_eq!(log.runs_of_version(9).len(), 1);
        // second run of the same version was served from cache
        assert_eq!(log.runs()[1].cache_hits(), 1);
        assert_eq!(log.runs()[0].cache_hits(), 0);
    }

    #[test]
    fn signature_equality_answers_reproducibility() {
        let mut exec = Executor::new(registry());
        let mut log = ExecutionLog::new();
        log.record(None, &exec.execute(&pipeline(1.0)).unwrap());
        log.record(None, &exec.execute(&pipeline(1.0)).unwrap());
        log.record(None, &exec.execute(&pipeline(3.0)).unwrap());
        assert_eq!(log.same_result(0, 1, 1), Some(true));
        assert_eq!(log.same_result(0, 2, 1), Some(false));
        assert_eq!(log.same_result(0, 9, 1), None);
        assert_eq!(log.same_result(0, 1, 99), None);
    }

    #[test]
    fn json_roundtrip() {
        let mut exec = Executor::new(registry());
        let mut log = ExecutionLog::new();
        log.record(Some(1), &exec.execute(&pipeline(1.0)).unwrap());
        let s = log.to_json().unwrap();
        let back = ExecutionLog::from_json(&s).unwrap();
        assert_eq!(back, log);
        assert!(ExecutionLog::from_json("nope").is_err());
    }

    #[test]
    fn total_time_sums_modules() {
        let mut exec = Executor::new(registry());
        let mut log = ExecutionLog::new();
        log.record(None, &exec.execute(&pipeline(1.0)).unwrap());
        let run = &log.runs()[0];
        assert_eq!(run.total_us(), run.modules.iter().map(|m| m.duration_us).sum::<u64>());
    }
}
