//! Weighted averagers: reduce variables over named axes with the correct
//! weights (sphere-area weights for latitude, cell widths elsewhere) —
//! CDAT's `averager` / `cdutil` functionality.
//!
//! Axis means route through [`crate::reduce::weighted_mean_axis`]: output
//! cells are distributed over the rayon pool while each cell accumulates
//! serially in ascending axis order, so results are bit-identical to the
//! eager serial kernel and invariant under `RAYON_NUM_THREADS`. The
//! running mean uses masked-count-aware prefix sums — O(n) total instead
//! of the old O(n·window) sliding recompute (see
//! [`crate::eager_ref::running_mean_time`]).

use cdms::axis::AxisKind;
use cdms::{CdmsError, Result, Variable};
use rayon::prelude::*;

/// Averages over the first axis of the given kind, weighting by the axis's
/// natural weights ([`cdms::Axis::weights`]). The axis is removed.
pub fn average_over(var: &Variable, kind: AxisKind) -> Result<Variable> {
    let idx = var
        .axis_index(kind)
        .ok_or_else(|| CdmsError::NotFound(format!("{kind:?} axis on '{}'", var.id)))?;
    let weights = var.axes[idx].weights();
    let array = crate::reduce::weighted_mean_axis(&var.array, idx, &weights)?;
    let mut axes = var.axes.clone();
    axes.remove(idx);
    if axes.is_empty() {
        axes.push(cdms::Axis::new("scalar", vec![0.0], "", AxisKind::Generic)?);
    }
    let mut v = Variable::new(&var.id, array, axes)?;
    v.attributes = var.attributes.clone();
    Ok(v)
}

/// Averages over several axis kinds in sequence.
pub fn average_over_kinds(var: &Variable, kinds: &[AxisKind]) -> Result<Variable> {
    let mut v = var.clone();
    for &k in kinds {
        v = average_over(&v, k)?;
    }
    Ok(v)
}

/// Area-weighted spatial mean over latitude and longitude, leaving the
/// remaining axes (e.g. a global-mean time series).
pub fn spatial_mean(var: &Variable) -> Result<Variable> {
    average_over_kinds(var, &[AxisKind::Latitude, AxisKind::Longitude])
}

/// Zonal mean: average over longitude only.
pub fn zonal_mean(var: &Variable) -> Result<Variable> {
    average_over(var, AxisKind::Longitude)
}

/// Meridional mean: area-weighted average over latitude only.
pub fn meridional_mean(var: &Variable) -> Result<Variable> {
    average_over(var, AxisKind::Latitude)
}

/// Time mean.
pub fn time_mean(var: &Variable) -> Result<Variable> {
    average_over(var, AxisKind::Time)
}

/// Running mean along the time axis with an odd window; endpoints use the
/// available part of the window. Masked points are skipped.
pub fn running_mean_time(var: &Variable, window: usize) -> Result<Variable> {
    if window == 0 || window.is_multiple_of(2) {
        return Err(CdmsError::Invalid(format!("window {window} must be odd and > 0")));
    }
    let t_idx = var
        .axis_index(AxisKind::Time)
        .ok_or_else(|| CdmsError::NotFound(format!("time axis on '{}'", var.id)))?;
    let nt = var.axes[t_idx].len();
    let half = window / 2;
    let shape = var.shape();
    let outer: usize = shape.iter().take(t_idx).product();
    let inner: usize = shape.iter().skip(t_idx + 1).product::<usize>().max(1);

    // Masked-count-aware prefix sums along time: psum[o][t'][i] holds the
    // running Σ of valid values (and pcnt the valid count) over t < t', so
    // any window reduces to two lookups. One O(n) build pass replaces the
    // old O(n·window) per-element window recompute.
    let (src_d, src_m) = (var.array.data(), var.array.mask());
    let plane = (nt + 1) * inner;
    let mut psum = vec![0.0f64; outer * plane];
    let mut pcnt = vec![0u32; outer * plane];
    for o in 0..outer {
        for t in 0..nt {
            let src = (o * nt + t) * inner;
            let dst = o * plane + (t + 1) * inner;
            let drow = src_d.get(src..src + inner).unwrap_or_default();
            let mrow = src_m.get(src..src + inner).unwrap_or_default();
            for i in 0..inner {
                let prev_s = psum[dst - inner + i];
                let prev_c = pcnt[dst - inner + i];
                if mrow[i] {
                    psum[dst + i] = prev_s;
                    pcnt[dst + i] = prev_c;
                } else {
                    psum[dst + i] = prev_s + drow[i] as f64;
                    pcnt[dst + i] = prev_c + 1;
                }
            }
        }
    }

    // Each output row (o, t) reads two prefix rows — independent, so the
    // rows distribute over the pool; results don't depend on the split.
    let mut out = var.array.clone();
    let (out_d, out_m) = out.parts_mut();
    out_d
        .par_chunks_mut(inner)
        .zip(out_m.par_chunks_mut(inner))
        .enumerate()
        .for_each(|(row, (dd, mm))| {
            let (o, t) = (row / nt, row % nt);
            let lo = t.saturating_sub(half);
            let hi = (t + half).min(nt - 1);
            let base = o * plane;
            let s_lo = &psum[base + lo * inner..base + (lo + 1) * inner];
            let s_hi = &psum[base + (hi + 1) * inner..base + (hi + 2) * inner];
            let c_lo = &pcnt[base + lo * inner..base + (lo + 1) * inner];
            let c_hi = &pcnt[base + (hi + 1) * inner..base + (hi + 2) * inner];
            for i in 0..inner {
                let cnt = c_hi[i] - c_lo[i];
                if cnt > 0 {
                    dd[i] = ((s_hi[i] - s_lo[i]) / cnt as f64) as f32;
                    mm[i] = false;
                } else {
                    mm[i] = true;
                }
            }
        });
    let mut v = Variable::new(&var.id, out, var.axes.clone())?;
    v.attributes = var.attributes.clone();
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdms::calendar::Calendar;
    use cdms::synth::SynthesisSpec;
    use cdms::{Axis, MaskedArray};

    #[test]
    fn spatial_mean_drops_horizontal_axes() {
        let ds = SynthesisSpec::new(3, 2, 8, 16).build();
        let ta = ds.variable("ta").unwrap();
        let m = spatial_mean(ta).unwrap();
        assert_eq!(m.shape(), &[3, 2]);
        assert!(m.axis(AxisKind::Latitude).is_none());
        // global mean temperature is physical
        let v = m.array.mean().unwrap();
        assert!((200.0..300.0).contains(&v), "{v}");
    }

    #[test]
    fn area_weighting_differs_from_flat_mean() {
        // A field equal to |latitude| has a flat mean of 45 on a uniform
        // axis, but an area-weighted mean lower than that (poles shrink).
        let lat = Axis::linspace("lat", -87.5, 87.5, 36, "degrees_north").unwrap();
        let lon = Axis::longitude(vec![0.0, 180.0]).unwrap();
        let arr = MaskedArray::from_fn(&[36, 2], |ix| {
            (lat.values[ix[0]].abs()) as f32
        });
        let v = Variable::new("абс", arr, vec![lat, lon]).unwrap();
        let weighted = spatial_mean(&v).unwrap().array.data()[0];
        let flat = v.array.mean().unwrap();
        assert!(weighted < flat - 5.0, "weighted {weighted} flat {flat}");
        // analytic: ∫|φ|cosφ dφ / ∫cosφ dφ = (π/2 − 1) rad ≈ 32.7°
        assert!((weighted - 32.7).abs() < 1.0, "{weighted}");
    }

    #[test]
    fn zonal_mean_keeps_latitude() {
        let ds = SynthesisSpec::new(2, 2, 8, 16).build();
        let ta = ds.variable("ta").unwrap();
        let z = zonal_mean(ta).unwrap();
        assert_eq!(z.shape(), &[2, 2, 8]);
        assert!(z.axis(AxisKind::Latitude).is_some());
        assert!(z.axis(AxisKind::Longitude).is_none());
    }

    #[test]
    fn time_mean_and_full_collapse() {
        let ds = SynthesisSpec::new(4, 2, 6, 12).build();
        let ta = ds.variable("ta").unwrap();
        let tm = time_mean(ta).unwrap();
        assert_eq!(tm.shape(), &[2, 6, 12]);
        let scalar = average_over_kinds(
            ta,
            &[AxisKind::Time, AxisKind::Level, AxisKind::Latitude, AxisKind::Longitude],
        )
        .unwrap();
        assert_eq!(scalar.array.len(), 1);
    }

    #[test]
    fn missing_axis_errors() {
        let ds = SynthesisSpec::new(2, 1, 4, 8).build();
        let lf = ds.variable("sftlf").unwrap(); // (lat, lon) only
        assert!(average_over(lf, AxisKind::Time).is_err());
    }

    #[test]
    fn masked_cells_excluded_from_average() {
        let ds = SynthesisSpec::new(1, 1, 8, 16).build();
        let tos = ds.variable("tos").unwrap(); // masked over land
        let m = spatial_mean(tos).unwrap();
        let v = m.array.get_valid(&[0]).unwrap().unwrap();
        assert!((250.0..305.0).contains(&v), "{v}");
    }

    #[test]
    fn running_mean_smooths() {
        let time = Axis::time(
            (0..10).map(|t| t as f64).collect(),
            "days since 2000-01-01",
            Calendar::NoLeap365,
        )
        .unwrap();
        // alternating series
        let arr = MaskedArray::from_fn(&[10], |ix| if ix[0] % 2 == 0 { 0.0 } else { 2.0 });
        let v = Variable::new("x", arr, vec![time]).unwrap();
        let sm = running_mean_time(&v, 3).unwrap();
        // interior points average to ~(0+2+0)/3 or (2+0+2)/3
        for t in 1..9 {
            let val = sm.array.get(&[t]).unwrap();
            assert!((val - if t % 2 == 0 { 4.0 / 3.0 } else { 2.0 / 3.0 }).abs() < 1e-5);
        }
        // window validation
        assert!(running_mean_time(&v, 2).is_err());
        assert!(running_mean_time(&v, 0).is_err());
    }

    #[test]
    fn running_mean_on_multidim() {
        let ds = SynthesisSpec::new(6, 1, 4, 8).build();
        let w = ds.variable("wave").unwrap();
        let sm = running_mean_time(w, 3).unwrap();
        assert_eq!(sm.shape(), w.shape());
        // smoothing reduces variance of the propagating wave
        let var_raw = w.array.reduce_all(cdms::array::Reduction::Var).unwrap();
        let var_sm = sm.array.reduce_all(cdms::array::Reduction::Var).unwrap();
        assert!(var_sm < var_raw);
    }
}
