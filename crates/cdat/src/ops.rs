//! Variable-level arithmetic: binary ops that check domains and propagate
//! masks, and unary transforms that keep metadata intact.
//!
//! These public functions are thin eager wrappers over the fused
//! expression engine ([`crate::expr`]): each call compiles its op chain
//! (a single op here, but `magnitude` fuses four) into one chunked pass
//! with bit-packed mask words, evaluated in parallel. Results are
//! bit-identical to the pre-fusion `cdms` eager ops.

use crate::expr::Expr;
use cdms::array::BinOp;
use cdms::{CdmsError, Result, Variable};

/// Checks two variables share compatible domains (same shape; axis values
/// equal within tolerance for same-length axes).
pub fn check_domains(a: &Variable, b: &Variable) -> Result<()> {
    if a.shape() != b.shape() {
        return Err(CdmsError::ShapeMismatch {
            expected: a.shape().to_vec(),
            got: b.shape().to_vec(),
        });
    }
    for (ax_a, ax_b) in a.axes.iter().zip(&b.axes) {
        if ax_a.len() == ax_b.len() {
            let mismatch = ax_a
                .values
                .iter()
                .zip(&ax_b.values)
                .any(|(x, y)| (x - y).abs() > 1e-6);
            if mismatch {
                return Err(CdmsError::Invalid(format!(
                    "axes '{}' and '{}' have different coordinates",
                    ax_a.id, ax_b.id
                )));
            }
        }
    }
    Ok(())
}

fn binary(a: &Variable, b: &Variable, op: BinOp, id: &str) -> Result<Variable> {
    check_domains(a, b)?;
    let array = Expr::leaf(&a.array).binop(op, Expr::leaf(&b.array)).eval()?;
    let mut v = Variable::new(id, array, a.axes.clone())?;
    v.attributes = a.attributes.clone();
    Ok(v)
}

/// `a + b`.
pub fn add(a: &Variable, b: &Variable) -> Result<Variable> {
    binary(a, b, BinOp::Add, &format!("{}_plus_{}", a.id, b.id))
}

/// `a - b`.
pub fn sub(a: &Variable, b: &Variable) -> Result<Variable> {
    binary(a, b, BinOp::Sub, &format!("{}_minus_{}", a.id, b.id))
}

/// `a * b`.
pub fn mul(a: &Variable, b: &Variable) -> Result<Variable> {
    binary(a, b, BinOp::Mul, &format!("{}_times_{}", a.id, b.id))
}

/// `a / b` (division by zero masks).
pub fn div(a: &Variable, b: &Variable) -> Result<Variable> {
    binary(a, b, BinOp::Div, &format!("{}_over_{}", a.id, b.id))
}

/// Adds a scalar.
pub fn add_scalar(a: &Variable, s: f32) -> Result<Variable> {
    let array = Expr::leaf(&a.array).add_scalar(s).eval()?;
    let mut v = Variable::new(&a.id, array, a.axes.clone())?;
    v.attributes = a.attributes.clone();
    Ok(v)
}

/// Multiplies by a scalar.
pub fn mul_scalar(a: &Variable, s: f32) -> Result<Variable> {
    let array = Expr::leaf(&a.array).mul_scalar(s).eval()?;
    let mut v = Variable::new(&a.id, array, a.axes.clone())?;
    v.attributes = a.attributes.clone();
    Ok(v)
}

/// Applies a unary function element-wise (non-finite results mask).
///
/// The closure is not required to be `Send + Sync`, so this runs the fused
/// single-pass kernel serially; use [`apply_sync`] for a parallel map.
pub fn apply(a: &Variable, id: &str, f: impl Fn(f32) -> f32) -> Result<Variable> {
    let mut v = Variable::new(id, crate::expr::map_local(&a.array, f)?, a.axes.clone())?;
    v.attributes = a.attributes.clone();
    Ok(v)
}

/// [`apply`] for thread-safe closures: the fused map runs chunked in
/// parallel. Same semantics (non-finite results mask).
pub fn apply_sync(
    a: &Variable,
    id: &str,
    f: impl Fn(f32) -> f32 + Send + Sync,
) -> Result<Variable> {
    let array = Expr::leaf(&a.array).apply(f).eval()?;
    let mut v = Variable::new(id, array, a.axes.clone())?;
    v.attributes = a.attributes.clone();
    Ok(v)
}

/// Wind speed `sqrt(u² + v²)` from two components — one fused pass, no
/// materialized `u²`/`v²`/`u²+v²` intermediates.
pub fn magnitude(u: &Variable, v: &Variable) -> Result<Variable> {
    check_domains(u, v)?;
    let speed = (Expr::leaf(&u.array) * Expr::leaf(&u.array)
        + Expr::leaf(&v.array) * Expr::leaf(&v.array))
    .sqrt()
    .eval()?;
    let mut out = Variable::new("speed", speed, u.axes.clone())?;
    out.attributes = u.attributes.clone();
    out.attributes.insert("long_name".into(), "wind speed".into());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdms::synth::SynthesisSpec;
    use cdms::{Axis, MaskedArray};

    fn two_vars() -> (Variable, Variable) {
        let ds = SynthesisSpec::new(2, 2, 4, 8).build();
        (ds.variable("ta").unwrap().clone(), ds.variable("zg").unwrap().clone())
    }

    #[test]
    fn add_sub_roundtrip() {
        let (a, b) = two_vars();
        let sum = add(&a, &b).unwrap();
        let back = sub(&sum, &b).unwrap();
        for (x, y) in back.array.data().iter().zip(a.array.data()) {
            assert!((x - y).abs() < 1.0, "{x} vs {y}"); // zg is large; f32 rounding
        }
        assert_eq!(sum.shape(), a.shape());
        assert_eq!(sum.axes, a.axes);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let (a, _) = two_vars();
        let other = SynthesisSpec::new(2, 2, 5, 8).build();
        let b = other.variable("ta").unwrap();
        assert!(add(&a, b).is_err());
    }

    #[test]
    fn coordinate_mismatch_rejected() {
        let (a, _) = two_vars();
        let mut b = a.clone();
        // shift the latitude axis
        let new_lat = Axis::latitude(b.axes[2].values.iter().map(|v| v + 1.0).collect()).unwrap();
        b.axes[2] = new_lat;
        assert!(add(&a, &b).is_err());
    }

    #[test]
    fn scalar_ops_preserve_metadata() {
        let (a, _) = two_vars();
        let c = add_scalar(&a, -273.15).unwrap();
        assert_eq!(c.units(), a.units());
        assert!((c.array.mean().unwrap() - (a.array.mean().unwrap() - 273.15)).abs() < 1e-3);
        let k = mul_scalar(&a, 2.0).unwrap();
        assert!((k.array.mean().unwrap() - 2.0 * a.array.mean().unwrap()).abs() < 1e-2);
    }

    #[test]
    fn apply_masks_nonfinite() {
        let lat = Axis::latitude(vec![0.0, 10.0]).unwrap();
        let v = Variable::new(
            "x",
            MaskedArray::from_vec(vec![-4.0, 9.0], &[2]).unwrap(),
            vec![lat],
        )
        .unwrap();
        let r = apply(&v, "sqrt_x", |x| x.sqrt()).unwrap();
        assert_eq!(r.array.get_valid(&[0]).unwrap(), None);
        assert_eq!(r.array.get_valid(&[1]).unwrap(), Some(3.0));
        assert_eq!(r.id, "sqrt_x");
    }

    #[test]
    fn division_by_zero_masks() {
        let lat = Axis::latitude(vec![0.0, 10.0]).unwrap();
        let a = Variable::new(
            "a",
            MaskedArray::from_vec(vec![1.0, 2.0], &[2]).unwrap(),
            vec![lat.clone()],
        )
        .unwrap();
        let b = Variable::new(
            "b",
            MaskedArray::from_vec(vec![0.0, 2.0], &[2]).unwrap(),
            vec![lat],
        )
        .unwrap();
        let q = div(&a, &b).unwrap();
        assert_eq!(q.array.valid_count(), 1);
    }

    #[test]
    fn wind_speed_magnitude() {
        let ds = SynthesisSpec::new(1, 2, 8, 16).build();
        let u = ds.variable("ua").unwrap();
        let v = ds.variable("va").unwrap();
        let s = magnitude(u, v).unwrap();
        let (lo, _) = s.array.min_max().unwrap();
        assert!(lo >= 0.0);
        // |speed| >= |u| pointwise
        for i in 0..20 {
            assert!(s.array.data()[i] + 1e-4 >= u.array.data()[i].abs());
        }
    }

    #[test]
    fn mul_propagates_masks() {
        let ds = SynthesisSpec::new(1, 1, 8, 16).build();
        let tos = ds.variable("tos").unwrap();
        let prod = mul(tos, tos).unwrap();
        assert_eq!(prod.array.valid_count(), tos.array.valid_count());
    }
}
