//! Fused lazy expression engine for masked-array arithmetic.
//!
//! The paper's calculator chains elementwise analysis ops interactively
//! (PAPER.md §III.G): `(u*u + v*v).sqrt()`, `masked_greater(ta - clim, 2)`,
//! and so on. Evaluated eagerly (as `cdms::MaskedArray::binop`/`map` do),
//! every operator materializes a full intermediate — data *and* a
//! `Vec<bool>` mask — so a three-op chain walks memory ~8× more than the
//! arithmetic needs. [`Expr`] instead records the chain as a small tree of
//! borrowed leaves and compiles it into **one chunked pass**: a single
//! output allocation, mask logic folded into the kernel as bit-packed
//! `u64` words (see [`cdms::array::mask`]), and chunks evaluated in
//! parallel via the vendored rayon.
//!
//! ## Semantics: bit-identical to the eager reference
//!
//! Each node replicates the corresponding `cdms` eager op *exactly* — same
//! per-lane branches, same NaN/inf policy, same data values left behind on
//! masked lanes — so a fused evaluation is bit-identical (data and mask) to
//! the materialized chain it replaces. `crates/cdat/tests/expr_fusion.rs`
//! proves this against the frozen pre-fusion reference in
//! [`crate::eager_ref`] over random shapes, masks, and op chains. The rules
//! inherited from `cdms::array::ops`:
//!
//! - binary ops: output lane masked where either input is; masked lanes
//!   carry data `0.0`; a NaN result (e.g. `x/0`) masks and zeroes the lane;
//! - unary maps: masked lanes keep their incoming data; a NaN/inf result
//!   masks the lane but keeps the *pre-op* value;
//! - `mask_where*`: data untouched, mask only grows.
//!
//! ## Determinism
//!
//! Chunk boundaries are a fixed function of the array length
//! ([`CHUNK`] elements, a multiple of the 64-lane mask words), never of the
//! worker count, and chunks are written to disjoint output windows — so
//! serial and parallel evaluation produce identical bytes, for any
//! `RAYON_NUM_THREADS`.
//!
//! Closures that are not `Send + Sync` (the public `ops::apply` /
//! `conditioned::masked_where` signatures accept plain `Fn`) cannot cross
//! the parallel dispatch; [`map_local`], [`mask_where_local`] and
//! [`mask_where_other_local`] run the same fused single-pass kernels
//! serially for those entry points.

use cdms::array::mask::{self, LANES};
use cdms::array::BinOp;
use cdms::{CdmsError, MaskedArray, Result};
use rayon::prelude::*;

/// Elements per evaluation chunk: a multiple of the 64-lane mask word so
/// chunk edges never split a word, small enough that a leaf window, a
/// scratch operand and the output stay cache-resident.
pub const CHUNK: usize = 4096;

/// Minimum element count before parallel dispatch is worth a thread scope.
const PARALLEL_CUTOFF: usize = 2 * CHUNK;

/// A unary transform applied to every valid lane, NaN/inf results masking.
///
/// The closed set of named variants lets internal callers (scalar ops,
/// standardize, magnitude) stay `Sync` and monomorphic in the kernel; the
/// `Func` escape hatch carries any `Send + Sync` closure.
pub enum UnaryFn<'a> {
    /// `v + s` — matches `MaskedArray::add_scalar`.
    AddScalar(f32),
    /// `v * s` — matches `MaskedArray::mul_scalar`.
    MulScalar(f32),
    /// `(v - sub) / div` — the standardize transform.
    SubDiv { sub: f32, div: f32 },
    /// `v.sqrt()` — the magnitude finisher.
    Sqrt,
    /// Arbitrary thread-safe closure.
    Func(Box<dyn Fn(f32) -> f32 + Send + Sync + 'a>),
}

impl std::fmt::Debug for UnaryFn<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnaryFn::AddScalar(s) => write!(f, "AddScalar({s})"),
            UnaryFn::MulScalar(s) => write!(f, "MulScalar({s})"),
            UnaryFn::SubDiv { sub, div } => write!(f, "SubDiv({sub}, {div})"),
            UnaryFn::Sqrt => write!(f, "Sqrt"),
            UnaryFn::Func(_) => write!(f, "Func(..)"),
        }
    }
}

/// A lane predicate for conditioned masking (`true` ⇒ mask the lane).
pub enum PredFn<'a> {
    /// `v > t` — `masked_greater`.
    Greater(f32),
    /// `v < t` — `masked_less`.
    Less(f32),
    /// `lo <= v <= hi` — `masked_inside`.
    Inside(f32, f32),
    /// `!(lo <= v <= hi)` — `masked_outside`.
    Outside(f32, f32),
    /// Arbitrary thread-safe predicate.
    Func(Box<dyn Fn(f32) -> bool + Send + Sync + 'a>),
}

impl PredFn<'_> {
    #[inline]
    fn test(&self, v: f32) -> bool {
        match self {
            PredFn::Greater(t) => v > *t,
            PredFn::Less(t) => v < *t,
            PredFn::Inside(lo, hi) => (*lo..=*hi).contains(&v),
            PredFn::Outside(lo, hi) => !(*lo..=*hi).contains(&v),
            PredFn::Func(p) => p(v),
        }
    }
}

impl std::fmt::Debug for PredFn<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredFn::Greater(t) => write!(f, "Greater({t})"),
            PredFn::Less(t) => write!(f, "Less({t})"),
            PredFn::Inside(lo, hi) => write!(f, "Inside({lo}, {hi})"),
            PredFn::Outside(lo, hi) => write!(f, "Outside({lo}, {hi})"),
            PredFn::Func(_) => write!(f, "Func(..)"),
        }
    }
}

#[derive(Debug)]
enum Node<'a> {
    Leaf(&'a MaskedArray),
    Bin { op: BinOp, a: Box<Node<'a>>, b: Box<Node<'a>> },
    Map { a: Box<Node<'a>>, f: UnaryFn<'a> },
    MaskWhere { a: Box<Node<'a>>, pred: PredFn<'a> },
    MaskWhereOther { a: Box<Node<'a>>, cond: Box<Node<'a>>, pred: PredFn<'a> },
}

/// A lazy masked-array expression over borrowed operands.
///
/// Build with [`Expr::leaf`] and the chaining combinators, then [`eval`]
/// once: the whole tree runs as a single fused pass per chunk.
///
/// ```
/// use cdat::expr::Expr;
/// use cdms::MaskedArray;
///
/// let u = MaskedArray::from_vec(vec![3.0, 0.0], &[2]).unwrap();
/// let v = MaskedArray::from_vec(vec![4.0, 1.0], &[2]).unwrap();
/// let speed = (Expr::leaf(&u) * Expr::leaf(&u) + Expr::leaf(&v) * Expr::leaf(&v))
///     .sqrt()
///     .eval()
///     .unwrap();
/// assert_eq!(speed.data(), &[5.0, 1.0]);
/// ```
///
/// [`eval`]: Expr::eval
#[derive(Debug)]
pub struct Expr<'a> {
    node: Node<'a>,
}

// The arithmetic builders are the std::ops traits, so expression trees
// read as plain arithmetic: `Expr::leaf(a) + Expr::leaf(b) * Expr::leaf(c)`.

/// `self + other`.
impl<'a> std::ops::Add for Expr<'a> {
    type Output = Expr<'a>;
    fn add(self, other: Expr<'a>) -> Expr<'a> {
        self.binop(BinOp::Add, other)
    }
}

/// `self - other`.
impl<'a> std::ops::Sub for Expr<'a> {
    type Output = Expr<'a>;
    fn sub(self, other: Expr<'a>) -> Expr<'a> {
        self.binop(BinOp::Sub, other)
    }
}

/// `self * other`.
impl<'a> std::ops::Mul for Expr<'a> {
    type Output = Expr<'a>;
    fn mul(self, other: Expr<'a>) -> Expr<'a> {
        self.binop(BinOp::Mul, other)
    }
}

/// `self / other`; division by zero masks the lane.
impl<'a> std::ops::Div for Expr<'a> {
    type Output = Expr<'a>;
    fn div(self, other: Expr<'a>) -> Expr<'a> {
        self.binop(BinOp::Div, other)
    }
}

impl<'a> Expr<'a> {
    /// An expression that reads `a` directly (no copy).
    pub fn leaf(a: &'a MaskedArray) -> Self {
        Expr { node: Node::Leaf(a) }
    }

    /// Element-wise binary op with mask union; same shapes only (the
    /// `cdat` layer guarantees this via `check_domains`).
    pub fn binop(self, op: BinOp, other: Expr<'a>) -> Self {
        Expr { node: Node::Bin { op, a: Box::new(self.node), b: Box::new(other.node) } }
    }

    /// Unary transform over valid lanes; NaN/inf results mask.
    pub fn map(self, f: UnaryFn<'a>) -> Self {
        Expr { node: Node::Map { a: Box::new(self.node), f } }
    }

    /// `v + s` per lane.
    pub fn add_scalar(self, s: f32) -> Self {
        self.map(UnaryFn::AddScalar(s))
    }

    /// `v * s` per lane.
    pub fn mul_scalar(self, s: f32) -> Self {
        self.map(UnaryFn::MulScalar(s))
    }

    /// `(v - sub) / div` per lane — the standardize transform.
    pub fn sub_div(self, sub: f32, div: f32) -> Self {
        self.map(UnaryFn::SubDiv { sub, div })
    }

    /// `v.sqrt()` per lane (negative inputs mask via the NaN rule).
    pub fn sqrt(self) -> Self {
        self.map(UnaryFn::Sqrt)
    }

    /// Arbitrary `Send + Sync` transform per lane.
    pub fn apply(self, f: impl Fn(f32) -> f32 + Send + Sync + 'a) -> Self {
        self.map(UnaryFn::Func(Box::new(f)))
    }

    /// Grows the mask where `pred` holds on a valid lane; data untouched.
    pub fn mask_where(self, pred: PredFn<'a>) -> Self {
        Expr { node: Node::MaskWhere { a: Box::new(self.node), pred } }
    }

    /// Grows the mask where `cond`'s lane is masked or its value satisfies
    /// `pred` — the conditioned comparison (`masked_where_other`).
    pub fn mask_where_other(self, cond: Expr<'a>, pred: PredFn<'a>) -> Self {
        Expr {
            node: Node::MaskWhereOther {
                a: Box::new(self.node),
                cond: Box::new(cond.node),
                pred,
            },
        }
    }

    /// Evaluates the whole tree in one fused chunked pass.
    ///
    /// One output allocation; chunks run in parallel when the pool has more
    /// than one thread and the array clears `PARALLEL_CUTOFF`. Output is
    /// identical either way (see the module docs on determinism).
    pub fn eval(&self) -> Result<MaskedArray> {
        let shape = shape_of(&self.node)?.to_vec();
        let n: usize = shape.iter().product();
        let mut data = vec![0.0f32; n];
        let mut maskb = vec![false; n];
        let parallel = n >= PARALLEL_CUTOFF && rayon::current_num_threads() > 1;
        if parallel {
            data.par_chunks_mut(CHUNK)
                .zip(maskb.par_chunks_mut(CHUNK))
                .enumerate()
                .for_each(|(c, (dd, mb))| eval_chunk_into(&self.node, c * CHUNK, dd, mb));
        } else {
            for (c, (dd, mb)) in data.chunks_mut(CHUNK).zip(maskb.chunks_mut(CHUNK)).enumerate() {
                eval_chunk_into(&self.node, c * CHUNK, dd, mb);
            }
        }
        MaskedArray::with_mask(data, maskb, &shape)
    }
}

/// The common shape of every leaf, or `ShapeMismatch` if they disagree.
fn shape_of<'s>(node: &'s Node<'_>) -> Result<&'s [usize]> {
    match node {
        Node::Leaf(a) => Ok(a.shape()),
        Node::Bin { a, b, .. } => {
            let (sa, sb) = (shape_of(a)?, shape_of(b)?);
            if sa == sb {
                Ok(sa)
            } else {
                Err(CdmsError::ShapeMismatch { expected: sa.to_vec(), got: sb.to_vec() })
            }
        }
        Node::Map { a, .. } | Node::MaskWhere { a, .. } => shape_of(a),
        Node::MaskWhereOther { a, cond, .. } => {
            let (sa, sc) = (shape_of(a)?, shape_of(cond)?);
            if sa == sc {
                Ok(sa)
            } else {
                Err(CdmsError::ShapeMismatch { expected: sa.to_vec(), got: sc.to_vec() })
            }
        }
    }
}

/// Evaluates one chunk into its output windows, converting the packed mask
/// words back to the `Vec<bool>` representation at the very end.
fn eval_chunk_into(node: &Node<'_>, lo: usize, dd: &mut [f32], mb: &mut [bool]) {
    let mut words = vec![0u64; dd.len().div_ceil(LANES)];
    eval_chunk(node, lo, dd, &mut words);
    mask::unpack_into(&words, mb);
}

/// Recursive fused kernel: evaluates `node`'s window `[lo, lo + dd.len())`
/// into `dd` (data) and `mw` (bit-packed mask words).
fn eval_chunk(node: &Node<'_>, lo: usize, dd: &mut [f32], mw: &mut [u64]) {
    match node {
        Node::Leaf(a) => load_leaf(a, lo, dd, mw),
        Node::Bin { op, a, b } => {
            eval_chunk(a, lo, dd, mw);
            let mut bd = vec![0.0f32; dd.len()];
            let mut bw = vec![0u64; mw.len()];
            eval_chunk(b, lo, &mut bd, &mut bw);
            bin_kernel(*op, dd, mw, &bd, &bw);
        }
        Node::Map { a, f } => {
            eval_chunk(a, lo, dd, mw);
            map_kernel(dd, mw, f);
        }
        Node::MaskWhere { a, pred } => {
            eval_chunk(a, lo, dd, mw);
            pred_lanes(dd, mw, |v| pred.test(v));
        }
        Node::MaskWhereOther { a, cond, pred } => {
            eval_chunk(a, lo, dd, mw);
            let mut cd = vec![0.0f32; dd.len()];
            let mut cw = vec![0u64; mw.len()];
            eval_chunk(cond, lo, &mut cd, &mut cw);
            other_lanes(mw, &cd, &cw, |v| pred.test(v));
        }
    }
}

/// Copies a leaf's data window and packs its mask window into words.
fn load_leaf(a: &MaskedArray, lo: usize, dd: &mut [f32], mw: &mut [u64]) {
    let hi = lo + dd.len();
    let dwin = a.data().get(lo..hi).unwrap_or_default();
    for (d, &s) in dd.iter_mut().zip(dwin) {
        *d = s;
    }
    let mwin = a.mask().get(lo..hi).unwrap_or_default();
    mask::pack_into(mwin, mw);
}

/// Dispatches a binary op to a monomorphic lane loop.
fn bin_kernel(op: BinOp, dd: &mut [f32], mw: &mut [u64], bd: &[f32], bw: &[u64]) {
    match op {
        BinOp::Add => bin_lanes(dd, mw, bd, bw, |a, b| a + b),
        BinOp::Sub => bin_lanes(dd, mw, bd, bw, |a, b| a - b),
        BinOp::Mul => bin_lanes(dd, mw, bd, bw, |a, b| a * b),
        // Division by zero yields NaN so the lane masks — same contract as
        // `cdms::array::BinOp::apply`.
        BinOp::Div => bin_lanes(dd, mw, bd, bw, |a, b| if b == 0.0 { f32::NAN } else { a / b }),
        BinOp::Pow => bin_lanes(dd, mw, bd, bw, |a, b| a.powf(b)),
        BinOp::Min => bin_lanes(dd, mw, bd, bw, |a, b| a.min(b)),
        BinOp::Max => bin_lanes(dd, mw, bd, bw, |a, b| a.max(b)),
    }
}

/// Binary lane loop, 64 lanes per mask word. A zero combined word proves
/// every lane valid, so the hot loop runs without per-lane mask branches;
/// NaN results still mask and zero their lane, exactly like the eager op.
#[inline]
fn bin_lanes(
    dd: &mut [f32],
    mw: &mut [u64],
    bd: &[f32],
    bw: &[u64],
    op: impl Fn(f32, f32) -> f32,
) {
    let groups = dd.chunks_mut(LANES).zip(bd.chunks(LANES));
    for ((w, &ow), (da, db)) in mw.iter_mut().zip(bw).zip(groups) {
        let merged = *w | ow;
        let mut m = merged;
        if merged == 0 {
            for (lane, (d, &b)) in da.iter_mut().zip(db).enumerate() {
                let v = op(*d, b);
                let nan = v.is_nan();
                m |= (nan as u64) << lane;
                *d = if nan { 0.0 } else { v };
            }
        } else {
            for (lane, (d, &b)) in da.iter_mut().zip(db).enumerate() {
                if (merged >> lane) & 1 == 1 {
                    // masked input lane: data zeroed, like the eager path
                    *d = 0.0;
                } else {
                    let v = op(*d, b);
                    let nan = v.is_nan();
                    m |= (nan as u64) << lane;
                    *d = if nan { 0.0 } else { v };
                }
            }
        }
        *w = m;
    }
}

/// Dispatches a unary transform to a monomorphic lane loop.
fn map_kernel(dd: &mut [f32], mw: &mut [u64], f: &UnaryFn<'_>) {
    match f {
        UnaryFn::AddScalar(s) => map_lanes(dd, mw, |v| v + s),
        UnaryFn::MulScalar(s) => map_lanes(dd, mw, |v| v * s),
        UnaryFn::SubDiv { sub, div } => map_lanes(dd, mw, |v| (v - sub) / div),
        UnaryFn::Sqrt => map_lanes(dd, mw, |v| v.sqrt()),
        UnaryFn::Func(g) => map_lanes(dd, mw, g),
    }
}

/// Unary lane loop: valid lanes transform; NaN/inf results mask the lane
/// and keep the pre-op value, masked lanes pass through untouched — the
/// `MaskedArray::map` contract.
#[inline]
fn map_lanes(dd: &mut [f32], mw: &mut [u64], f: impl Fn(f32) -> f32) {
    for (w, da) in mw.iter_mut().zip(dd.chunks_mut(LANES)) {
        let before = *w;
        let mut m = before;
        if before == 0 {
            for (lane, d) in da.iter_mut().enumerate() {
                let v = f(*d);
                if v.is_nan() || v.is_infinite() {
                    m |= 1u64 << lane;
                } else {
                    *d = v;
                }
            }
        } else {
            for (lane, d) in da.iter_mut().enumerate() {
                if (before >> lane) & 1 == 0 {
                    let v = f(*d);
                    if v.is_nan() || v.is_infinite() {
                        m |= 1u64 << lane;
                    } else {
                        *d = v;
                    }
                }
            }
        }
        *w = m;
    }
}

/// Predicate lane loop: grows the mask where `p` holds on a valid lane.
#[inline]
fn pred_lanes(dd: &[f32], mw: &mut [u64], p: impl Fn(f32) -> bool) {
    for (w, da) in mw.iter_mut().zip(dd.chunks(LANES)) {
        let before = *w;
        let mut m = before;
        for (lane, &d) in da.iter().enumerate() {
            if (before >> lane) & 1 == 0 && p(d) {
                m |= 1u64 << lane;
            }
        }
        *w = m;
    }
}

/// Conditioned-mask lane loop: masks where the condition lane is itself
/// masked, or where `p` holds on its (valid) value.
#[inline]
fn other_lanes(mw: &mut [u64], cd: &[f32], cw: &[u64], p: impl Fn(f32) -> bool) {
    for ((w, &cmw), da) in mw.iter_mut().zip(cw).zip(cd.chunks(LANES)) {
        let mut m = *w | cmw;
        for (lane, &c) in da.iter().enumerate() {
            if (cmw >> lane) & 1 == 0 && p(c) {
                m |= 1u64 << lane;
            }
        }
        *w = m;
    }
}

/// Fused single-pass `map` for closures without `Send + Sync` (the public
/// `ops::apply` signature). Serial, but still one output allocation and
/// word-packed mask logic instead of clone-then-rewrite.
pub fn map_local(a: &MaskedArray, f: impl Fn(f32) -> f32) -> Result<MaskedArray> {
    let n = a.len();
    let mut data = vec![0.0f32; n];
    let mut maskb = vec![false; n];
    for (c, (dd, mb)) in data.chunks_mut(CHUNK).zip(maskb.chunks_mut(CHUNK)).enumerate() {
        let mut words = vec![0u64; dd.len().div_ceil(LANES)];
        load_leaf(a, c * CHUNK, dd, &mut words);
        map_lanes(dd, &mut words, &f);
        mask::unpack_into(&words, mb);
    }
    MaskedArray::with_mask(data, maskb, a.shape())
}

/// Fused single-pass `mask_where` for non-`Sync` predicates.
pub fn mask_where_local(a: &MaskedArray, pred: impl Fn(f32) -> bool) -> Result<MaskedArray> {
    let n = a.len();
    let mut data = vec![0.0f32; n];
    let mut maskb = vec![false; n];
    for (c, (dd, mb)) in data.chunks_mut(CHUNK).zip(maskb.chunks_mut(CHUNK)).enumerate() {
        let mut words = vec![0u64; dd.len().div_ceil(LANES)];
        load_leaf(a, c * CHUNK, dd, &mut words);
        pred_lanes(dd, &mut words, &pred);
        mask::unpack_into(&words, mb);
    }
    MaskedArray::with_mask(data, maskb, a.shape())
}

/// Fused single-pass conditioned mask for non-`Sync` predicates: masks `a`
/// wherever `cond`'s lane is masked or satisfies `pred`. Shapes must match
/// (callers run `check_domains` first).
pub fn mask_where_other_local(
    a: &MaskedArray,
    cond: &MaskedArray,
    pred: impl Fn(f32) -> bool,
) -> Result<MaskedArray> {
    if a.shape() != cond.shape() {
        return Err(CdmsError::ShapeMismatch {
            expected: a.shape().to_vec(),
            got: cond.shape().to_vec(),
        });
    }
    let n = a.len();
    let mut data = vec![0.0f32; n];
    let mut maskb = vec![false; n];
    for (c, (dd, mb)) in data.chunks_mut(CHUNK).zip(maskb.chunks_mut(CHUNK)).enumerate() {
        let lo = c * CHUNK;
        let mut words = vec![0u64; dd.len().div_ceil(LANES)];
        load_leaf(a, lo, dd, &mut words);
        let mut cd = vec![0.0f32; dd.len()];
        let mut cw = vec![0u64; words.len()];
        let cond_node = Node::Leaf(cond);
        eval_chunk(&cond_node, lo, &mut cd, &mut cw);
        other_lanes(&mut words, &cd, &cw, &pred);
        mask::unpack_into(&words, mb);
    }
    MaskedArray::with_mask(data, maskb, a.shape())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr(data: Vec<f32>, mask: Vec<bool>) -> MaskedArray {
        let n = data.len();
        MaskedArray::with_mask(data, mask, &[n]).unwrap()
    }

    #[test]
    fn fused_binop_matches_eager_bits() {
        let a = arr(vec![1.0, -0.0, 3.0, f32::NAN], vec![false, false, true, false]);
        let b = arr(vec![0.5, 0.0, 1.0, 2.0], vec![false, false, false, true]);
        for op in [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div, BinOp::Pow] {
            let eager = a.binop(&b, op).unwrap();
            let fused = Expr::leaf(&a).binop(op, Expr::leaf(&b)).eval().unwrap();
            assert_eq!(fused.mask(), eager.mask(), "{op:?}");
            let fb: Vec<u32> = fused.data().iter().map(|v| v.to_bits()).collect();
            let eb: Vec<u32> = eager.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(fb, eb, "{op:?}");
        }
    }

    #[test]
    fn fused_chain_matches_eager_chain() {
        let a = arr(vec![1.0, 4.0, 9.0, -1.0], vec![false, true, false, false]);
        let b = arr(vec![1.0, 1.0, 0.0, 1.0], vec![false, false, false, false]);
        let eager = a.div(&b).unwrap().map(|v| v.sqrt()).add_scalar(1.0);
        let fused =
            (Expr::leaf(&a) / Expr::leaf(&b)).sqrt().add_scalar(1.0).eval().unwrap();
        assert_eq!(fused.mask(), eager.mask());
        assert_eq!(fused.data(), eager.data());
    }

    #[test]
    fn mask_where_other_keeps_data() {
        let a = arr(vec![1.0, 2.0, 3.0], vec![false, false, false]);
        let cond = arr(vec![0.0, 5.0, 0.0], vec![true, false, false]);
        let fused = Expr::leaf(&a)
            .mask_where_other(Expr::leaf(&cond), PredFn::Greater(1.0))
            .eval()
            .unwrap();
        assert_eq!(fused.mask(), &[true, true, false]);
        assert_eq!(fused.data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let a = MaskedArray::zeros(&[4]);
        let b = MaskedArray::zeros(&[5]);
        assert!((Expr::leaf(&a) + Expr::leaf(&b)).eval().is_err());
    }

    #[test]
    fn local_helpers_match_eager() {
        let a = arr(vec![-1.0, 4.0, 2.0], vec![false, false, true]);
        let m = map_local(&a, |v| v.sqrt()).unwrap();
        let e = a.map(|v| v.sqrt());
        assert_eq!(m.mask(), e.mask());
        assert_eq!(m.data(), e.data());
        let w = mask_where_local(&a, |v| v > 3.0).unwrap();
        let ew = a.mask_where(|v| v > 3.0);
        assert_eq!(w.mask(), ew.mask());
        assert_eq!(w.data(), ew.data());
    }

    #[test]
    fn spans_multiple_chunks() {
        let n = CHUNK * 3 + 17;
        let data: Vec<f32> = (0..n).map(|i| (i % 97) as f32 - 48.0).collect();
        let mask: Vec<bool> = (0..n).map(|i| i % 13 == 0).collect();
        let a = MaskedArray::with_mask(data.clone(), mask.clone(), &[n]).unwrap();
        let b = MaskedArray::with_mask(
            data.iter().map(|v| v + 0.5).collect(),
            vec![false; n],
            &[n],
        )
        .unwrap();
        let eager = a.mul(&b).unwrap().add_scalar(2.0);
        let fused = (Expr::leaf(&a) * Expr::leaf(&b)).add_scalar(2.0).eval().unwrap();
        assert_eq!(fused.mask(), eager.mask());
        assert_eq!(fused.data(), eager.data());
    }
}
