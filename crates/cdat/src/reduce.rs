//! Deterministic parallel reductions shared by averager / statistics /
//! climatology.
//!
//! Floating-point addition is not associative, so a naive parallel sum
//! changes value with the worker count — poison for regression tests, for
//! cached pipeline results, and for the hyperwall protocol where every
//! panel must derive the same color scale. Every reduction here is instead
//! computed as **fixed-size block partials merged in a fixed pairwise tree
//! order**: block boundaries are a function of the array length only
//! ([`BLOCK`] lanes), each block's partial is accumulated serially with
//! Neumaier-compensated summation ([`Neumaier`]), and the merge tree
//! depends only on the block count. Threads race to *fill* slots of a
//! pre-sized partial vector, never to accumulate into shared state, so the
//! result is bit-identical for any `RAYON_NUM_THREADS` — proven across
//! {1, 2, 8}-thread pools in `crates/cdat/tests/expr_fusion.rs`.
//!
//! Axis reductions ([`weighted_mean_axis`], [`mean_axis`],
//! [`selected_mean_axis`]) take the other route to the same guarantee:
//! each output cell's accumulation runs serially in ascending axis order —
//! the exact order (and precision) the pre-fusion eager code used, so
//! results are additionally *bit-identical to the seed implementation* —
//! and parallelism comes from distributing independent output cells.

use cdms::{CdmsError, MaskedArray, Result};
use rayon::prelude::*;

/// Lanes per partial-sum block. Fixed — never derived from the worker
/// count — so the partial layout (and thus the merged result) is a
/// function of the data alone.
pub const BLOCK: usize = 4096;

/// Neumaier-compensated accumulator: tracks a running compensation term so
/// adding many small values to a large sum does not lose them. Unlike
/// plain Kahan, the compensation also survives when the addend exceeds the
/// running sum.
#[derive(Debug, Clone, Copy, Default)]
pub struct Neumaier {
    sum: f64,
    comp: f64,
}

impl Neumaier {
    /// Adds one value.
    #[inline]
    pub fn add(&mut self, v: f64) {
        let t = self.sum + v;
        if self.sum.abs() >= v.abs() {
            self.comp += (self.sum - t) + v;
        } else {
            self.comp += (v - t) + self.sum;
        }
        self.sum = t;
    }

    /// Merges another accumulator into this one. Always called in the same
    /// tree order by `blocked`, so the operation need not be associative.
    #[inline]
    pub fn merge(&mut self, o: &Neumaier) {
        self.add(o.sum);
        self.comp += o.comp;
    }

    /// The compensated total.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.comp
    }
}

/// Count + compensated Σv + Σv² over valid lanes: everything a mean /
/// population-variance / standardize needs from one pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct MomentSums {
    /// Number of valid lanes.
    pub n: u64,
    sum: Neumaier,
    sum_sq: Neumaier,
}

impl MomentSums {
    #[inline]
    pub(crate) fn push(&mut self, v: f64) {
        self.n += 1;
        self.sum.add(v);
        self.sum_sq.add(v * v);
    }

    pub(crate) fn merged(mut self, o: MomentSums) -> MomentSums {
        self.n += o.n;
        self.sum.merge(&o.sum);
        self.sum_sq.merge(&o.sum_sq);
        self
    }

    /// Mean of valid lanes, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.n == 0 {
            return None;
        }
        Some(self.sum.value() / self.n as f64)
    }

    /// Population variance of valid lanes (clamped at 0), `None` when empty.
    pub fn variance(&self) -> Option<f64> {
        let n = self.n as f64;
        let mean = self.mean()?;
        Some((self.sum_sq.value() / n - mean * mean).max(0.0))
    }

    /// Population standard deviation, `None` when empty.
    pub fn std(&self) -> Option<f64> {
        Some(self.variance()?.sqrt())
    }
}

/// All the pairwise sums correlation and RMSE need, gathered over mutually
/// valid lanes in one shared pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct PairSums {
    /// Number of mutually valid pairs.
    pub n: u64,
    sx: Neumaier,
    sy: Neumaier,
    sxx: Neumaier,
    syy: Neumaier,
    sxy: Neumaier,
    /// Σ(x−y)² — the RMSE numerator.
    sdd: Neumaier,
}

impl PairSums {
    #[inline]
    fn push(&mut self, x: f64, y: f64) {
        self.n += 1;
        self.sx.add(x);
        self.sy.add(y);
        self.sxx.add(x * x);
        self.syy.add(y * y);
        self.sxy.add(x * y);
        let d = x - y;
        self.sdd.add(d * d);
    }

    fn merged(mut self, o: PairSums) -> PairSums {
        self.n += o.n;
        self.sx.merge(&o.sx);
        self.sy.merge(&o.sy);
        self.sxx.merge(&o.sxx);
        self.syy.merge(&o.syy);
        self.sxy.merge(&o.sxy);
        self.sdd.merge(&o.sdd);
        self
    }

    /// Pearson correlation over the pairs; `None` when `n < 2` or either
    /// variance is zero.
    pub fn correlation(&self) -> Option<f64> {
        if self.n < 2 {
            return None;
        }
        let nf = self.n as f64;
        let (sx, sy) = (self.sx.value(), self.sy.value());
        let cov = self.sxy.value() / nf - (sx / nf) * (sy / nf);
        let vx = (self.sxx.value() / nf - (sx / nf).powi(2)).max(0.0);
        let vy = (self.syy.value() / nf - (sy / nf).powi(2)).max(0.0);
        if vx <= 0.0 || vy <= 0.0 {
            return None;
        }
        Some(cov / (vx.sqrt() * vy.sqrt()))
    }

    /// Root-mean-square difference over the pairs; `None` when empty.
    pub fn rmse(&self) -> Option<f64> {
        if self.n == 0 {
            return None;
        }
        Some((self.sdd.value() / self.n as f64).sqrt())
    }
}

/// The lane range of block `b` over `n` lanes.
#[inline]
fn block_range(b: usize, n: usize) -> std::ops::Range<usize> {
    let lo = b * BLOCK;
    lo..(lo + BLOCK).min(n)
}

/// Blocked deterministic reduction driver: computes one partial per fixed
/// [`BLOCK`]-lane range (in parallel when the pool allows), then folds the
/// partials in a fixed pairwise tree. Returns `None` for zero lanes.
pub(crate) fn blocked<P: Send + Default>(
    n: usize,
    per_block: impl Fn(std::ops::Range<usize>) -> P + Sync,
    merge: impl Fn(P, P) -> P,
) -> Option<P> {
    let nb = n.div_ceil(BLOCK);
    if nb == 0 {
        return None;
    }
    let mut parts: Vec<P> = Vec::with_capacity(nb);
    parts.resize_with(nb, P::default);
    if nb > 1 && rayon::current_num_threads() > 1 {
        // Slots are pre-sized and disjoint: threads fill, never accumulate.
        parts
            .par_iter_mut()
            .enumerate()
            .for_each(|(b, slot)| *slot = per_block(block_range(b, n)));
    } else {
        for (b, slot) in parts.iter_mut().enumerate() {
            *slot = per_block(block_range(b, n));
        }
    }
    // Pairwise merge in fixed order: (0,1)(2,3)… then again, until one.
    while parts.len() > 1 {
        let mut next = Vec::with_capacity(parts.len().div_ceil(2));
        let mut it = parts.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(merge(a, b)),
                None => next.push(a),
            }
        }
        parts = next;
    }
    parts.pop()
}

/// Global moment sums (n, Σv, Σv²) over valid lanes — one deterministic
/// pass serving mean, variance and standardize.
pub fn moments(arr: &MaskedArray) -> MomentSums {
    let (data, mask) = (arr.data(), arr.mask());
    blocked(
        arr.len(),
        |r| {
            let mut p = MomentSums::default();
            let d = data.get(r.clone()).unwrap_or_default();
            let m = mask.get(r).unwrap_or_default();
            for (&v, &mk) in d.iter().zip(m) {
                if !mk {
                    p.push(v as f64);
                }
            }
            p
        },
        MomentSums::merged,
    )
    .unwrap_or_default()
}

/// Global pair sums over mutually valid lanes of two equal-shape arrays —
/// the shared kernel behind correlation and RMSE.
pub fn pair_sums(a: &MaskedArray, b: &MaskedArray) -> PairSums {
    let n = a.len().min(b.len());
    let (ad, am) = (a.data(), a.mask());
    let (bd, bm) = (b.data(), b.mask());
    blocked(
        n,
        |r| {
            let mut p = PairSums::default();
            let xd = ad.get(r.clone()).unwrap_or_default();
            let xm = am.get(r.clone()).unwrap_or_default();
            let yd = bd.get(r.clone()).unwrap_or_default();
            let ym = bm.get(r).unwrap_or_default();
            for (((&x, &mx), &y), &my) in xd.iter().zip(xm).zip(yd).zip(ym) {
                if !mx && !my {
                    p.push(x as f64, y as f64);
                }
            }
            p
        },
        PairSums::merged,
    )
    .unwrap_or_default()
}

/// Splits `shape` at `axis` into `(outer, k, inner)` and the reduced output
/// shape, validating the axis.
fn axis_split(arr: &MaskedArray, axis: usize) -> Result<(usize, usize, usize, Vec<usize>)> {
    let shape = arr.shape();
    if axis >= shape.len() {
        return Err(CdmsError::AxisOutOfRange { axis, rank: shape.len() });
    }
    let outer: usize = shape.iter().take(axis).product();
    let k = shape.get(axis).copied().unwrap_or(1);
    let inner: usize = shape.iter().skip(axis + 1).product();
    let mut out_shape: Vec<usize> = shape.to_vec();
    out_shape.remove(axis);
    if out_shape.is_empty() {
        out_shape.push(1);
    }
    Ok((outer, k, inner, out_shape))
}

/// Weighted mean along `axis` (one weight per axis index), masked lanes
/// excluded from the normalization — `cdms`'s `weighted_mean_axis`, but
/// parallel over the outer slabs. Each output cell accumulates serially in
/// ascending axis order with plain `f64` sums: the identical order and
/// precision of the eager kernel, so results are bit-identical to it *and*
/// invariant under thread count.
pub fn weighted_mean_axis(arr: &MaskedArray, axis: usize, weights: &[f64]) -> Result<MaskedArray> {
    let (outer, k, inner, out_shape) = axis_split(arr, axis)?;
    if weights.len() != k {
        return Err(CdmsError::ShapeMismatch { expected: vec![k], got: vec![weights.len()] });
    }
    let (src_d, src_m) = (arr.data(), arr.mask());
    let mut data = vec![0.0f32; outer * inner];
    let mut mask = vec![false; outer * inner];
    data.par_chunks_mut(inner.max(1))
        .zip(mask.par_chunks_mut(inner.max(1)))
        .enumerate()
        .for_each(|(o, (dd, mm))| {
            let mut wsum = vec![0.0f64; dd.len()];
            let mut vsum = vec![0.0f64; dd.len()];
            for (j, &w) in weights.iter().enumerate() {
                let base = (o * k + j) * inner;
                let drow = src_d.get(base..base + inner).unwrap_or_default();
                let mrow = src_m.get(base..base + inner).unwrap_or_default();
                for (((ws, vs), &v), &m) in
                    wsum.iter_mut().zip(vsum.iter_mut()).zip(drow).zip(mrow)
                {
                    if !m {
                        *ws += w;
                        *vs += w * v as f64;
                    }
                }
            }
            for (((d, mk), &ws), &vs) in
                dd.iter_mut().zip(mm.iter_mut()).zip(&wsum).zip(&vsum)
            {
                if ws > 0.0 {
                    *d = (vs / ws) as f32;
                } else {
                    *mk = true;
                }
            }
        });
    MaskedArray::with_mask(data, mask, &out_shape)
}

/// Unweighted mean along `axis` — the `reduce_axis(Mean)` replacement used
/// by `climatology::anomaly`. Same per-cell ascending-order `f64` sums as
/// the eager kernel (bit-identical), outer slabs in parallel.
pub fn mean_axis(arr: &MaskedArray, axis: usize) -> Result<MaskedArray> {
    let (outer, k, inner, out_shape) = axis_split(arr, axis)?;
    let (src_d, src_m) = (arr.data(), arr.mask());
    let mut data = vec![0.0f32; outer * inner];
    let mut mask = vec![false; outer * inner];
    data.par_chunks_mut(inner.max(1))
        .zip(mask.par_chunks_mut(inner.max(1)))
        .enumerate()
        .for_each(|(o, (dd, mm))| {
            let mut sum = vec![0.0f64; dd.len()];
            let mut cnt = vec![0u32; dd.len()];
            for j in 0..k {
                let base = (o * k + j) * inner;
                let drow = src_d.get(base..base + inner).unwrap_or_default();
                let mrow = src_m.get(base..base + inner).unwrap_or_default();
                for (((s, c), &v), &m) in sum.iter_mut().zip(cnt.iter_mut()).zip(drow).zip(mrow)
                {
                    if !m {
                        *s += v as f64;
                        *c += 1;
                    }
                }
            }
            for (((d, mk), &s), &c) in dd.iter_mut().zip(mm.iter_mut()).zip(&sum).zip(&cnt) {
                if c > 0 {
                    *d = (s / c as f64) as f32;
                } else {
                    *mk = true;
                }
            }
        });
    MaskedArray::with_mask(data, mask, &out_shape)
}

/// Mean over a *subset* of indices along `axis` (e.g. the timesteps of one
/// calendar month), the kernel behind `climatology::mean_over_months`.
///
/// Accumulation is `f32` in the given `selected` order — the exact
/// arithmetic of the pre-fusion eager loop (first contribution assigns,
/// later ones add), so results are bit-identical to it — with output cells
/// distributed over the pool.
pub fn selected_mean_axis(
    arr: &MaskedArray,
    axis: usize,
    selected: &[usize],
) -> Result<MaskedArray> {
    let (outer, k, inner, out_shape) = axis_split(arr, axis)?;
    if selected.is_empty() {
        return Err(CdmsError::EmptySelection("no indices selected".into()));
    }
    if let Some(&bad) = selected.iter().find(|&&j| j >= k) {
        return Err(CdmsError::AxisOutOfRange { axis: bad, rank: k });
    }
    let (src_d, src_m) = (arr.data(), arr.mask());
    let mut data = vec![0.0f32; outer * inner];
    let mut mask = vec![false; outer * inner];
    data.par_chunks_mut(inner.max(1))
        .zip(mask.par_chunks_mut(inner.max(1)))
        .enumerate()
        .for_each(|(o, (dd, mm))| {
            let mut cnt = vec![0u32; dd.len()];
            for &j in selected {
                let base = (o * k + j) * inner;
                let drow = src_d.get(base..base + inner).unwrap_or_default();
                let mrow = src_m.get(base..base + inner).unwrap_or_default();
                for (((d, c), &v), &m) in dd.iter_mut().zip(cnt.iter_mut()).zip(drow).zip(mrow)
                {
                    if !m {
                        // first valid contribution assigns (not adds):
                        // preserves the eager loop's bit pattern for -0.0
                        if *c == 0 {
                            *d = v;
                        } else {
                            *d += v;
                        }
                        *c += 1;
                    }
                }
            }
            for ((d, mk), &c) in dd.iter_mut().zip(mm.iter_mut()).zip(&cnt) {
                if c > 0 {
                    *d /= c as f32;
                } else {
                    *d = 0.0;
                    *mk = true;
                }
            }
        });
    MaskedArray::with_mask(data, mask, &out_shape)
}

/// Minimum along `axis`, masked lanes skipped, empty cells masked — the
/// deterministic-parallel `reduce_axis(Min)`: same strict-compare
/// accumulation (from `+∞`, ascending axis order) as the eager kernel, so
/// results are bit-identical to it, with outer slabs distributed over the
/// pool. Order-insensitive anyway for NaN-free data, so thread-count
/// invariance is immediate.
pub fn min_axis(arr: &MaskedArray, axis: usize) -> Result<MaskedArray> {
    extreme_axis(arr, axis, true)
}

/// Maximum along `axis` — [`min_axis`]'s mirror (from `−∞`).
pub fn max_axis(arr: &MaskedArray, axis: usize) -> Result<MaskedArray> {
    extreme_axis(arr, axis, false)
}

fn extreme_axis(arr: &MaskedArray, axis: usize, want_min: bool) -> Result<MaskedArray> {
    let (outer, k, inner, out_shape) = axis_split(arr, axis)?;
    let (src_d, src_m) = (arr.data(), arr.mask());
    let init = if want_min { f32::INFINITY } else { f32::NEG_INFINITY };
    let mut data = vec![init; outer * inner];
    let mut mask = vec![false; outer * inner];
    data.par_chunks_mut(inner.max(1))
        .zip(mask.par_chunks_mut(inner.max(1)))
        .enumerate()
        .for_each(|(o, (dd, mm))| {
            let mut cnt = vec![0u32; dd.len()];
            for j in 0..k {
                let base = (o * k + j) * inner;
                let drow = src_d.get(base..base + inner).unwrap_or_default();
                let mrow = src_m.get(base..base + inner).unwrap_or_default();
                for (((d, c), &v), &m) in dd.iter_mut().zip(cnt.iter_mut()).zip(drow).zip(mrow)
                {
                    if !m {
                        // strict compare, exactly the eager Acc::push
                        if (want_min && v < *d) || (!want_min && v > *d) {
                            *d = v;
                        }
                        *c += 1;
                    }
                }
            }
            for ((d, mk), &c) in dd.iter_mut().zip(mm.iter_mut()).zip(&cnt) {
                if c == 0 {
                    *d = 0.0;
                    *mk = true;
                }
            }
        });
    MaskedArray::with_mask(data, mask, &out_shape)
}

/// The `q`-th percentile (0–100) along `axis`: per output cell, the valid
/// values are collected, sorted with `total_cmp` (a total order, so the
/// result is deterministic), and linearly interpolated at rank
/// `q/100 × (n−1)` in `f64`. Masked lanes are skipped; cells with no valid
/// input are masked. Output cells are independent, so parallelism over the
/// outer slabs cannot change any cell's value.
pub fn percentile_axis(arr: &MaskedArray, axis: usize, q: f64) -> Result<MaskedArray> {
    if !(0.0..=100.0).contains(&q) {
        return Err(CdmsError::Invalid(format!("percentile {q} outside [0, 100]")));
    }
    let (outer, k, inner, out_shape) = axis_split(arr, axis)?;
    let (src_d, src_m) = (arr.data(), arr.mask());
    let mut data = vec![0.0f32; outer * inner];
    let mut mask = vec![false; outer * inner];
    data.par_chunks_mut(inner.max(1))
        .zip(mask.par_chunks_mut(inner.max(1)))
        .enumerate()
        .for_each(|(o, (dd, mm))| {
            // per-slab scratch, reused across the slab's cells (cap = k)
            let mut vals: Vec<f32> = Vec::with_capacity(k);
            for (i, (d, mk)) in dd.iter_mut().zip(mm.iter_mut()).enumerate() {
                vals.clear();
                for j in 0..k {
                    let idx = (o * k + j) * inner + i;
                    if !src_m.get(idx).copied().unwrap_or(true) {
                        vals.push(src_d.get(idx).copied().unwrap_or(0.0));
                    }
                }
                if vals.is_empty() {
                    *mk = true;
                    continue;
                }
                vals.sort_by(f32::total_cmp);
                let rank = q / 100.0 * (vals.len() - 1) as f64;
                let lo = rank.floor() as usize;
                let hi = rank.ceil() as usize;
                let f = rank - lo as f64;
                let a = f64::from(vals.get(lo).copied().unwrap_or(0.0));
                let b = f64::from(vals.get(hi).copied().unwrap_or(0.0));
                *d = (a + (b - a) * f) as f32;
            }
        });
    MaskedArray::with_mask(data, mask, &out_shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_max_axis_match_eager_bits() {
        let data: Vec<f32> = (0..120).map(|i| (i as f32).sin() * 10.0).collect();
        let mask: Vec<bool> = (0..120).map(|i| i % 7 == 3).collect();
        let a = MaskedArray::with_mask(data, mask, &[5, 4, 6]).unwrap();
        for axis in 0..3 {
            let mins = min_axis(&a, axis).unwrap();
            let maxs = max_axis(&a, axis).unwrap();
            let emin = a.reduce_axis(axis, cdms::array::Reduction::Min).unwrap();
            let emax = a.reduce_axis(axis, cdms::array::Reduction::Max).unwrap();
            assert_eq!(mins.mask(), emin.mask(), "axis {axis}");
            assert_eq!(maxs.mask(), emax.mask(), "axis {axis}");
            let b = |m: &MaskedArray| -> Vec<u32> { m.data().iter().map(|v| v.to_bits()).collect() };
            assert_eq!(b(&mins), b(&emin), "axis {axis}");
            assert_eq!(b(&maxs), b(&emax), "axis {axis}");
        }
    }

    #[test]
    fn percentile_axis_interpolates_and_masks() {
        // column [1, 2, 3, 100(masked)] → median 2, p0 1, p100 3
        let a = MaskedArray::with_mask(
            vec![1.0, 2.0, 3.0, 100.0],
            vec![false, false, false, true],
            &[4, 1],
        )
        .unwrap();
        assert_eq!(percentile_axis(&a, 0, 50.0).unwrap().data(), &[2.0]);
        assert_eq!(percentile_axis(&a, 0, 0.0).unwrap().data(), &[1.0]);
        assert_eq!(percentile_axis(&a, 0, 100.0).unwrap().data(), &[3.0]);
        // p25 of [1,2,3] = 1.5 (linear interpolation)
        assert_eq!(percentile_axis(&a, 0, 25.0).unwrap().data(), &[1.5]);
        // all-masked column masks the output
        let all = MaskedArray::with_mask(vec![1.0, 2.0], vec![true, true], &[2, 1]).unwrap();
        assert!(percentile_axis(&all, 0, 50.0).unwrap().mask()[0]);
        assert!(percentile_axis(&a, 0, 101.0).is_err());
        assert!(percentile_axis(&a, 2, 50.0).is_err());
    }

    #[test]
    fn neumaier_recovers_lost_low_bits() {
        // 1.0 + 1e16 + (-1e16) == 0 in plain f64 summation order 1e16 first
        let mut acc = Neumaier::default();
        for v in [1.0, 1e16, -1e16] {
            acc.add(v);
        }
        assert_eq!(acc.value(), 1.0);
    }

    #[test]
    fn moments_match_naive_on_small_input() {
        let a = MaskedArray::with_mask(
            vec![1.0, 2.0, 3.0, 100.0],
            vec![false, false, false, true],
            &[4],
        )
        .unwrap();
        let m = moments(&a);
        assert_eq!(m.n, 3);
        assert!((m.mean().unwrap() - 2.0).abs() < 1e-12);
        assert!((m.variance().unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn pair_sums_correlation_and_rmse() {
        let x = MaskedArray::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap();
        let y = MaskedArray::from_vec(vec![2.0, 4.0, 6.0, 8.0], &[4]).unwrap();
        let p = pair_sums(&x, &y);
        assert_eq!(p.n, 4);
        assert!((p.correlation().unwrap() - 1.0).abs() < 1e-12);
        // rmse of (1,2,3,4) vs itself is 0
        assert!(pair_sums(&x, &x).rmse().unwrap() < 1e-12);
    }

    #[test]
    fn weighted_mean_axis_matches_eager_bits() {
        let n = BLOCK + 77;
        let data: Vec<f32> = (0..n * 3).map(|i| ((i * 37) % 101) as f32 - 50.0).collect();
        let mask: Vec<bool> = (0..n * 3).map(|i| i % 11 == 0).collect();
        let a = MaskedArray::with_mask(data, mask, &[n, 3]).unwrap();
        let w = [0.2f64, 0.5, 0.3];
        let ours = weighted_mean_axis(&a, 1, &w).unwrap();
        let eager = a.weighted_mean_axis(1, &w).unwrap();
        assert_eq!(ours.mask(), eager.mask());
        let ob: Vec<u32> = ours.data().iter().map(|v| v.to_bits()).collect();
        let eb: Vec<u32> = eager.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(ob, eb);
    }

    #[test]
    fn mean_axis_matches_eager_bits() {
        let data: Vec<f32> = (0..120).map(|i| (i as f32).sin() * 10.0).collect();
        let mask: Vec<bool> = (0..120).map(|i| i % 7 == 3).collect();
        let a = MaskedArray::with_mask(data, mask, &[5, 4, 6]).unwrap();
        for axis in 0..3 {
            let ours = mean_axis(&a, axis).unwrap();
            let eager = a.reduce_axis(axis, cdms::array::Reduction::Mean).unwrap();
            assert_eq!(ours.shape(), eager.shape());
            assert_eq!(ours.mask(), eager.mask(), "axis {axis}");
            let ob: Vec<u32> = ours.data().iter().map(|v| v.to_bits()).collect();
            let eb: Vec<u32> = eager.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(ob, eb, "axis {axis}");
        }
    }

    #[test]
    fn selected_mean_validates() {
        let a = MaskedArray::zeros(&[4, 2]);
        assert!(selected_mean_axis(&a, 0, &[]).is_err());
        assert!(selected_mean_axis(&a, 0, &[4]).is_err());
        assert!(selected_mean_axis(&a, 5, &[0]).is_err());
        let m = selected_mean_axis(&a, 0, &[1, 3]).unwrap();
        assert_eq!(m.shape(), &[2]);
    }
}
