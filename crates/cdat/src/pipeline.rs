//! Cross-step pipeline fusion: run a whole analysis recipe
//! (e.g. anomaly → standardize → spatial mean) in a handful of streaming
//! passes instead of materializing every intermediate variable.
//!
//! The single-step fused functions (`climatology::anomaly`,
//! `statistics::standardize`, `averager::spatial_mean`) each make at least
//! one full-size allocation and one or two full-size read passes; chaining
//! them touches the big array ~10 times. This module keeps the field
//! *virtual* — the base data plus a chain of per-lane transforms
//! (`LaneOp`) — and only touches the full array when a reduction needs
//! its values:
//!
//! * elementwise steps (`AddScalar`, the anomaly subtract, the standardize
//!   transform, threshold masks) just extend the chain — zero passes;
//! * `Anomaly` reads the field once for the time mean (a small slab);
//! * `Standardize` reads it once through the chain for the global moments;
//! * `SpatialMean` reads it once through the chain while reducing over
//!   latitude (the longitude reduction then runs on the tiny remainder).
//!
//! Every reduction uses the deterministic kernels of [`crate::reduce`]
//! (fixed blocks / per-cell eager order), and each lane op applies the
//! exact `f32` arithmetic of its single-step counterpart, so a pipeline's
//! output is **bit-identical** to running the fused steps one at a time —
//! just with ~3 full-size passes instead of ~10.

use crate::reduce::{self, MomentSums};
use cdms::axis::AxisKind;
use cdms::{CdmsError, MaskedArray, Result, Variable};
use rayon::prelude::*;

/// One step of an analysis recipe.
#[derive(Debug, Clone)]
pub enum AnalysisStep {
    /// Departure from the time mean — `climatology::anomaly`.
    Anomaly,
    /// `(x - mean) / std` over valid lanes — `statistics::standardize`.
    Standardize,
    /// Area-weighted mean over latitude then longitude —
    /// `averager::spatial_mean`.
    SpatialMean,
    /// `x + s` — `ops::add_scalar`.
    AddScalar(f32),
    /// `x * s` — `ops::mul_scalar`.
    MulScalar(f32),
    /// Mask lanes where `x > s` — `conditioned::masked_greater`.
    MaskGreater(f32),
    /// Mask lanes where `x < s` — `conditioned::masked_less`.
    MaskLess(f32),
}

/// A deferred per-lane transform. Each variant reproduces the lane
/// arithmetic of its eager counterpart exactly (`f32` rounding at every
/// step), so deferring is invisible in the result bits.
enum LaneOp {
    /// `v + s`; non-finite result masks and keeps the pre-op value.
    AddScalar(f32),
    /// `v * s`; same masking rule.
    MulScalar(f32),
    /// `(v - sub) / div`; same masking rule (the standardize transform).
    SubDiv { sub: f32, div: f32 },
    /// Subtract a broadcast time-mean slab (the anomaly transform): lane
    /// `(o, t, i)` reads slab cell `(o, i)`. Masked slab cells mask the
    /// lane and leave its value untouched.
    SubSlab { slab_d: Vec<f32>, slab_m: Vec<bool>, nt: usize, inner: usize },
    /// Mask lanes whose value exceeds the threshold; data untouched.
    MaskGreater(f32),
    /// Mask lanes below the threshold; data untouched.
    MaskLess(f32),
}

/// Working-buffer size for streaming the chain: matches the fused
/// expression engine's chunk so both stay L1/L2-resident.
const CHUNK: usize = 4096;

impl LaneOp {
    /// Applies the op to a contiguous run of lanes starting at flat index
    /// `start`. For `SubSlab` the caller guarantees the run stays inside
    /// one slab row (see [`apply_chain_run`]), so the referenced slab
    /// cells are contiguous and the op is a straight slice loop — no
    /// per-lane index arithmetic anywhere on the hot path.
    fn apply_run(&self, start: usize, d: &mut [f32], m: &mut [bool]) {
        match self {
            LaneOp::AddScalar(s) => {
                for (v, m) in d.iter_mut().zip(m.iter_mut()) {
                    map_lane(v, m, *v + s);
                }
            }
            LaneOp::MulScalar(s) => {
                for (v, m) in d.iter_mut().zip(m.iter_mut()) {
                    map_lane(v, m, *v * s);
                }
            }
            LaneOp::SubDiv { sub, div } => {
                for (v, m) in d.iter_mut().zip(m.iter_mut()) {
                    map_lane(v, m, (*v - sub) / div);
                }
            }
            LaneOp::SubSlab { slab_d, slab_m, nt, inner } => {
                let c0 = (start / (nt * inner)) * inner + start % inner;
                let sd = slab_d.get(c0..c0 + d.len()).unwrap_or_default();
                let sm = slab_m.get(c0..c0 + d.len()).unwrap_or_default();
                for (((v, m), &sv), &s_m) in
                    d.iter_mut().zip(m.iter_mut()).zip(sd).zip(sm)
                {
                    if s_m || *m {
                        *m = true;
                    } else {
                        *v -= sv;
                    }
                }
            }
            LaneOp::MaskGreater(s) => {
                for (v, m) in d.iter().zip(m.iter_mut()) {
                    if !*m && *v > *s {
                        *m = true;
                    }
                }
            }
            LaneOp::MaskLess(s) => {
                for (v, m) in d.iter().zip(m.iter_mut()) {
                    if !*m && *v < *s {
                        *m = true;
                    }
                }
            }
        }
    }
}

/// Streams the whole chain, op-major, over a contiguous span of lanes
/// starting at flat index `start`. The span is cut so each piece stays
/// inside a single slab row of every `SubSlab` (lane
/// `flat = (o*nt + t)*inner + i` reads slab cell `o*inner + i`, contiguous
/// only while `i` doesn't wrap), paying the div/mod once per piece instead
/// of once per lane.
fn apply_chain_run(chain: &[LaneOp], start: usize, d: &mut [f32], m: &mut [bool]) {
    let total = d.len().min(m.len());
    let (mut off, mut flat) = (0, start);
    while off < total {
        let mut len = total - off;
        for op in chain {
            if let LaneOp::SubSlab { inner, .. } = op {
                len = len.min(inner - flat % inner);
            }
        }
        let dd = d.get_mut(off..off + len).unwrap_or_default();
        let mm = m.get_mut(off..off + len).unwrap_or_default();
        for op in chain {
            op.apply_run(flat, dd, mm);
        }
        off += len;
        flat += len;
    }
}

/// The `MaskedArray::map` lane contract: masked lanes pass through, a
/// non-finite result masks and keeps the pre-op value.
#[inline]
fn map_lane(v: &mut f32, m: &mut bool, r: f32) {
    if !*m {
        if r.is_nan() || r.is_infinite() {
            *m = true;
        } else {
            *v = r;
        }
    }
}

/// Global moments of the virtual field — `reduce::moments` arithmetic
/// (same blocks, same merge tree) over chained lanes.
fn virtual_moments(base: &MaskedArray, chain: &[LaneOp]) -> MomentSums {
    let (data, mask) = (base.data(), base.mask());
    reduce::blocked(
        base.len(),
        |r| {
            let mut p = MomentSums::default();
            let mut vb = [0.0f32; CHUNK];
            let mut mb = [false; CHUNK];
            let mut flat = r.start;
            let d = data.get(r.clone()).unwrap_or_default();
            let mk = mask.get(r).unwrap_or_default();
            for (dc, mc) in d.chunks(CHUNK).zip(mk.chunks(CHUNK)) {
                let vb = vb.get_mut(..dc.len()).unwrap_or_default();
                let mb = mb.get_mut(..mc.len()).unwrap_or_default();
                vb.copy_from_slice(dc);
                mb.copy_from_slice(mc);
                apply_chain_run(chain, flat, vb, mb);
                for (&v, &m) in vb.iter().zip(mb.iter()) {
                    if !m {
                        p.push(v as f64);
                    }
                }
                flat += dc.len();
            }
            p
        },
        MomentSums::merged,
    )
    .unwrap_or_default()
}

/// Weighted mean of the virtual field along `axis` —
/// `reduce::weighted_mean_axis` arithmetic (per-cell ascending order, outer
/// slabs in parallel) over chained lanes. Consumes the chain: the result is
/// materialized.
fn virtual_weighted_mean_axis(
    base: &MaskedArray,
    chain: &[LaneOp],
    axis: usize,
    weights: &[f64],
) -> Result<MaskedArray> {
    let shape = base.shape();
    if axis >= shape.len() {
        return Err(CdmsError::AxisOutOfRange { axis, rank: shape.len() });
    }
    let k = shape.get(axis).copied().unwrap_or(1);
    if weights.len() != k {
        return Err(CdmsError::ShapeMismatch { expected: vec![k], got: vec![weights.len()] });
    }
    let inner: usize = shape.iter().skip(axis + 1).product();
    let (src_d, src_m) = (base.data(), base.mask());
    let mut out_shape: Vec<usize> = shape.to_vec();
    out_shape.remove(axis);
    if out_shape.is_empty() {
        out_shape.push(1);
    }
    let cells: usize = out_shape.iter().product();
    let mut data = vec![0.0f32; cells];
    let mut mask = vec![false; cells];
    data.par_chunks_mut(inner.max(1))
        .zip(mask.par_chunks_mut(inner.max(1)))
        .enumerate()
        .for_each(|(o, (dd, mm))| {
            let mut wsum = vec![0.0f64; dd.len()];
            let mut vsum = vec![0.0f64; dd.len()];
            let mut vb = [0.0f32; CHUNK];
            let mut mb = [false; CHUNK];
            for (j, &w) in weights.iter().enumerate() {
                let base_flat = (o * k + j) * inner;
                let drow = src_d.get(base_flat..base_flat + inner).unwrap_or_default();
                let mrow = src_m.get(base_flat..base_flat + inner).unwrap_or_default();
                let mut flat = base_flat;
                let mut col = 0;
                for (dc, mc) in drow.chunks(CHUNK).zip(mrow.chunks(CHUNK)) {
                    let vb = vb.get_mut(..dc.len()).unwrap_or_default();
                    let mb = mb.get_mut(..mc.len()).unwrap_or_default();
                    vb.copy_from_slice(dc);
                    mb.copy_from_slice(mc);
                    apply_chain_run(chain, flat, vb, mb);
                    for (((ws, vs), &v), &m) in wsum
                        .iter_mut()
                        .skip(col)
                        .zip(vsum.iter_mut().skip(col))
                        .zip(vb.iter())
                        .zip(mb.iter())
                    {
                        if !m {
                            *ws += w;
                            *vs += w * v as f64;
                        }
                    }
                    flat += dc.len();
                    col += dc.len();
                }
            }
            for (((d, mk), &ws), &vs) in dd.iter_mut().zip(mm.iter_mut()).zip(&wsum).zip(&vsum)
            {
                if ws > 0.0 {
                    *d = (vs / ws) as f32;
                } else {
                    *mk = true;
                }
            }
        });
    MaskedArray::with_mask(data, mask, &out_shape)
}

/// Materializes the virtual field: one parallel pass applying the whole
/// chain to every lane.
fn materialize(base: &MaskedArray, chain: &[LaneOp]) -> MaskedArray {
    let mut out = base.clone();
    if chain.is_empty() {
        return out;
    }
    let (out_d, out_m) = out.parts_mut();
    const ROW: usize = 4096;
    out_d
        .par_chunks_mut(ROW)
        .zip(out_m.par_chunks_mut(ROW))
        .enumerate()
        .for_each(|(c, (dd, mm))| {
            apply_chain_run(chain, c * ROW, dd, mm);
        });
    out
}

/// Runs `steps` over `var` with cross-step fusion. Output (data, mask and
/// axes) is bit-identical to applying the corresponding single-step fused
/// functions in sequence — see the module docs for the pass-count argument.
pub fn run(var: &Variable, steps: &[AnalysisStep]) -> Result<Variable> {
    let mut cur = var.clone();
    let mut chain: Vec<LaneOp> = Vec::new();
    for step in steps {
        match step {
            AnalysisStep::AddScalar(s) => chain.push(LaneOp::AddScalar(*s)),
            AnalysisStep::MulScalar(s) => chain.push(LaneOp::MulScalar(*s)),
            AnalysisStep::MaskGreater(s) => chain.push(LaneOp::MaskGreater(*s)),
            AnalysisStep::MaskLess(s) => chain.push(LaneOp::MaskLess(*s)),
            AnalysisStep::Anomaly => {
                let t_idx = cur.axis_index(AxisKind::Time).ok_or_else(|| {
                    CdmsError::NotFound(format!("time axis on '{}'", cur.id))
                })?;
                // the time mean wants concrete lanes: flush pending ops
                // (one fused pass), then read the slab
                if !chain.is_empty() {
                    cur.array = materialize(&cur.array, &chain);
                    chain.clear();
                }
                let mean = reduce::mean_axis(&cur.array, t_idx)?;
                let nt = cur.shape().get(t_idx).copied().unwrap_or(1);
                let inner: usize =
                    cur.shape().iter().skip(t_idx + 1).product::<usize>().max(1);
                let (slab_d, slab_m) = (mean.data().to_vec(), mean.mask().to_vec());
                chain.push(LaneOp::SubSlab { slab_d, slab_m, nt, inner });
                cur.id = format!("{}_anom", cur.id);
            }
            AnalysisStep::Standardize => {
                let m = virtual_moments(&cur.array, &chain);
                let mean = m
                    .mean()
                    .ok_or_else(|| CdmsError::EmptySelection("all masked".into()))?
                    as f32;
                let std = m.std().unwrap_or(0.0) as f32;
                if std <= 0.0 {
                    return Err(CdmsError::Invalid("zero variance".into()));
                }
                chain.push(LaneOp::SubDiv { sub: mean, div: std });
                cur.id = format!("{}_std", cur.id);
            }
            AnalysisStep::SpatialMean => {
                // latitude reduction streams through the chain; what's
                // left is small, so the longitude step runs materialized
                let lat_idx = cur.axis_index(AxisKind::Latitude).ok_or_else(|| {
                    CdmsError::NotFound(format!("Latitude axis on '{}'", cur.id))
                })?;
                let weights = cur.axes[lat_idx].weights();
                cur.array =
                    virtual_weighted_mean_axis(&cur.array, &chain, lat_idx, &weights)?;
                chain.clear();
                cur.axes.remove(lat_idx);
                if cur.axes.is_empty() {
                    cur.axes.push(cdms::Axis::new("scalar", vec![0.0], "", AxisKind::Generic)?);
                }
                cur = crate::averager::average_over(&cur, AxisKind::Longitude)?;
            }
        }
    }
    if !chain.is_empty() {
        cur.array = materialize(&cur.array, &chain);
    }
    Variable::new(&cur.id, cur.array, cur.axes).map(|mut v| {
        v.attributes = var.attributes.clone();
        v
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{averager, climatology, conditioned, ops, statistics};
    use cdms::synth::SynthesisSpec;

    fn bits(a: &MaskedArray) -> (Vec<u32>, Vec<bool>) {
        (a.data().iter().map(|v| v.to_bits()).collect(), a.mask().to_vec())
    }

    #[test]
    fn canonical_chain_matches_stepwise_bits() {
        let ds = SynthesisSpec::new(12, 3, 16, 32).build();
        let ta = ds.variable("ta").unwrap();
        let fused = run(
            ta,
            &[AnalysisStep::Anomaly, AnalysisStep::Standardize, AnalysisStep::SpatialMean],
        )
        .unwrap();
        let step = climatology::anomaly(ta).unwrap();
        let step = statistics::standardize(&step).unwrap();
        let step = averager::spatial_mean(&step).unwrap();
        assert_eq!(fused.shape(), step.shape());
        assert_eq!(bits(&fused.array), bits(&step.array));
    }

    #[test]
    fn elementwise_steps_match_stepwise_bits() {
        let ds = SynthesisSpec::new(4, 2, 8, 16).build();
        let tos = ds.variable("tos").unwrap(); // masked over land
        let fused = run(
            tos,
            &[
                AnalysisStep::AddScalar(-273.15),
                AnalysisStep::MaskLess(-5.0),
                AnalysisStep::MulScalar(1.8),
                AnalysisStep::AddScalar(32.0),
                AnalysisStep::MaskGreater(100.0),
            ],
        )
        .unwrap();
        let step = ops::add_scalar(tos, -273.15).unwrap();
        let step = conditioned::masked_less(&step, -5.0).unwrap();
        let step = ops::mul_scalar(&step, 1.8).unwrap();
        let step = ops::add_scalar(&step, 32.0).unwrap();
        let step = conditioned::masked_greater(&step, 100.0).unwrap();
        assert_eq!(bits(&fused.array), bits(&step.array));
    }

    #[test]
    fn scalar_then_anomaly_flushes_correctly() {
        let ds = SynthesisSpec::new(8, 2, 8, 16).build();
        let ta = ds.variable("ta").unwrap();
        let fused =
            run(ta, &[AnalysisStep::AddScalar(-273.15), AnalysisStep::Anomaly]).unwrap();
        let step = ops::add_scalar(ta, -273.15).unwrap();
        let step = climatology::anomaly(&step).unwrap();
        assert_eq!(bits(&fused.array), bits(&step.array));
    }

    #[test]
    fn spatial_mean_alone_matches_averager() {
        let ds = SynthesisSpec::new(3, 2, 8, 16).build();
        let ta = ds.variable("ta").unwrap();
        let fused = run(ta, &[AnalysisStep::SpatialMean]).unwrap();
        let step = averager::spatial_mean(ta).unwrap();
        assert_eq!(fused.shape(), step.shape());
        assert_eq!(bits(&fused.array), bits(&step.array));
    }

    #[test]
    fn pipeline_errors_propagate() {
        let ds = SynthesisSpec::new(2, 1, 4, 8).build();
        let lf = ds.variable("sftlf").unwrap(); // no time axis
        assert!(run(lf, &[AnalysisStep::Anomaly]).is_err());
        // masking everything then standardizing reports the empty selection
        let all_masked = run(
            ds.variable("ta").unwrap(),
            &[AnalysisStep::MaskGreater(f32::NEG_INFINITY), AnalysisStep::Standardize],
        );
        assert!(all_masked.is_err());
    }
}
