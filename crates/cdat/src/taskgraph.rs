//! Parallel analysis task graphs — DV3D's "parallel task execution".
//!
//! An analysis recipe is a DAG of named tasks, each a closure from its
//! dependencies' outputs to a new [`Variable`]. The graph runs either
//! serially (for baselines/ablation) or wavefront-parallel with rayon.

use cdms::{CdmsError, Result, Variable};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

type TaskFn = dyn Fn(&BTreeMap<String, Arc<Variable>>) -> Result<Variable> + Send + Sync;

struct Task {
    name: String,
    deps: Vec<String>,
    run: Box<TaskFn>,
}

/// A dependency-aware analysis task graph.
#[derive(Default)]
pub struct TaskGraph {
    tasks: Vec<Task>,
}

/// Execution report: per-task wall time plus the result set.
#[derive(Debug, Clone)]
pub struct TaskReport {
    /// Completed task outputs by name.
    pub outputs: BTreeMap<String, Arc<Variable>>,
    /// Per-task wall-clock durations.
    pub timings: BTreeMap<String, Duration>,
    /// Total wall time of the run.
    pub total: Duration,
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> TaskGraph {
        TaskGraph::default()
    }

    /// Adds a task with dependencies. Task names must be unique.
    pub fn add_task(
        &mut self,
        name: &str,
        deps: &[&str],
        run: impl Fn(&BTreeMap<String, Arc<Variable>>) -> Result<Variable> + Send + Sync + 'static,
    ) -> Result<()> {
        if self.tasks.iter().any(|t| t.name == name) {
            return Err(CdmsError::Invalid(format!("duplicate task '{name}'")));
        }
        self.tasks.push(Task {
            name: name.to_string(),
            deps: deps.iter().map(|s| s.to_string()).collect(),
            run: Box::new(run),
        });
        Ok(())
    }

    /// Adds a source task that just provides an existing variable.
    pub fn add_source(&mut self, name: &str, var: Variable) -> Result<()> {
        let var = Arc::new(var);
        self.add_task(name, &[], move |_| Ok((*var).clone()))
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Wavefront schedule: groups of task indices whose dependencies are
    /// all in earlier groups. Errors on unknown deps or cycles.
    fn schedule(&self) -> Result<Vec<Vec<usize>>> {
        let index: BTreeMap<&str, usize> =
            self.tasks.iter().enumerate().map(|(i, t)| (t.name.as_str(), i)).collect();
        for t in &self.tasks {
            for d in &t.deps {
                if !index.contains_key(d.as_str()) {
                    return Err(CdmsError::NotFound(format!(
                        "task '{}' depends on unknown '{d}'",
                        t.name
                    )));
                }
            }
        }
        let mut done: BTreeSet<usize> = BTreeSet::new();
        let mut waves = Vec::new();
        while done.len() < self.tasks.len() {
            let ready: Vec<usize> = (0..self.tasks.len())
                .filter(|i| !done.contains(i))
                .filter(|&i| {
                    self.tasks[i].deps.iter().all(|d| done.contains(&index[d.as_str()]))
                })
                .collect();
            if ready.is_empty() {
                let stuck: Vec<String> = (0..self.tasks.len())
                    .filter(|i| !done.contains(i))
                    .map(|i| self.tasks[i].name.clone())
                    .collect();
                return Err(CdmsError::Invalid(format!("cycle among tasks {stuck:?}")));
            }
            done.extend(&ready);
            waves.push(ready);
        }
        Ok(waves)
    }

    /// Runs the graph serially in schedule order.
    pub fn run_serial(&self) -> Result<TaskReport> {
        let start = Instant::now();
        let waves = self.schedule()?;
        let mut outputs: BTreeMap<String, Arc<Variable>> = BTreeMap::new();
        let mut timings = BTreeMap::new();
        for wave in waves {
            for i in wave {
                let t = &self.tasks[i];
                let t0 = Instant::now();
                let out = (t.run)(&outputs)
                    .map_err(|e| CdmsError::Invalid(format!("task '{}': {e}", t.name)))?;
                timings.insert(t.name.clone(), t0.elapsed());
                outputs.insert(t.name.clone(), Arc::new(out));
            }
        }
        Ok(TaskReport { outputs, timings, total: start.elapsed() })
    }

    /// Runs the graph with each wavefront parallelized by rayon.
    pub fn run_parallel(&self) -> Result<TaskReport> {
        let start = Instant::now();
        let waves = self.schedule()?;
        let mut outputs: BTreeMap<String, Arc<Variable>> = BTreeMap::new();
        let timings: Mutex<BTreeMap<String, Duration>> = Mutex::new(BTreeMap::new());
        for wave in waves {
            // Scoped OS threads rather than the rayon pool: analysis tasks
            // may block on I/O (catalog transfers), which a work-stealing
            // pool on a small machine would serialize.
            let collected: Mutex<Vec<(String, Result<Variable>, Duration)>> =
                Mutex::new(Vec::with_capacity(wave.len()));
            std::thread::scope(|scope| {
                for &i in &wave {
                    let t = &self.tasks[i];
                    let outputs = &outputs;
                    let collected = &collected;
                    scope.spawn(move || {
                        let t0 = Instant::now();
                        let out = (t.run)(outputs);
                        collected.lock().push((t.name.clone(), out, t0.elapsed()));
                    });
                }
            });
            for (name, out, dt) in collected.into_inner() {
                let out =
                    out.map_err(|e| CdmsError::Invalid(format!("task '{name}': {e}")))?;
                timings.lock().insert(name.clone(), dt);
                outputs.insert(name, Arc::new(out));
            }
        }
        Ok(TaskReport {
            outputs,
            timings: timings.into_inner(),
            total: start.elapsed(),
        })
    }
}

impl std::fmt::Debug for TaskGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.tasks.iter().map(|t| t.name.as_str()).collect();
        f.debug_struct("TaskGraph").field("tasks", &names).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{averager, climatology};
    use cdms::synth::SynthesisSpec;

    fn analysis_graph(sleep_ms: u64) -> TaskGraph {
        let ds = SynthesisSpec::new(4, 2, 8, 16).build();
        let ta = ds.variable("ta").unwrap().clone();
        let mut g = TaskGraph::new();
        g.add_source("ta", ta).unwrap();
        g.add_task("anom", &["ta"], move |deps| {
            std::thread::sleep(Duration::from_millis(sleep_ms));
            climatology::anomaly(&deps["ta"])
        })
        .unwrap();
        g.add_task("zonal", &["ta"], move |deps| {
            std::thread::sleep(Duration::from_millis(sleep_ms));
            averager::zonal_mean(&deps["ta"])
        })
        .unwrap();
        g.add_task("series", &["anom"], |deps| averager::spatial_mean(&deps["anom"]))
            .unwrap();
        g
    }

    #[test]
    fn serial_run_produces_all_outputs() {
        let g = analysis_graph(0);
        let report = g.run_serial().unwrap();
        assert_eq!(report.outputs.len(), 4);
        assert_eq!(report.outputs["series"].shape(), &[4, 2]);
        assert_eq!(report.timings.len(), 4);
    }

    #[test]
    fn parallel_matches_serial() {
        let g = analysis_graph(0);
        let s = g.run_serial().unwrap();
        let p = g.run_parallel().unwrap();
        for name in ["anom", "zonal", "series"] {
            assert_eq!(s.outputs[name].array, p.outputs[name].array, "{name}");
        }
    }

    #[test]
    fn parallel_is_faster_on_independent_tasks() {
        // two independent 60ms tasks: serial ≥ 120ms, parallel ≈ 60ms
        let g = analysis_graph(60);
        let s = g.run_serial().unwrap();
        let p = g.run_parallel().unwrap();
        assert!(
            p.total < s.total,
            "parallel {:?} !< serial {:?}",
            p.total,
            s.total
        );
    }

    #[test]
    fn unknown_dependency_rejected() {
        let mut g = TaskGraph::new();
        g.add_task("a", &["ghost"], |_| {
            Err(CdmsError::Invalid("unreachable".into()))
        })
        .unwrap();
        assert!(g.run_serial().is_err());
    }

    #[test]
    fn cycle_detected() {
        let mut g = TaskGraph::new();
        g.add_task("a", &["b"], |_| Err(CdmsError::Invalid("x".into()))).unwrap();
        g.add_task("b", &["a"], |_| Err(CdmsError::Invalid("x".into()))).unwrap();
        let err = g.run_parallel().unwrap_err();
        assert!(matches!(err, CdmsError::Invalid(m) if m.contains("cycle")));
    }

    #[test]
    fn duplicate_task_rejected() {
        let mut g = TaskGraph::new();
        g.add_task("a", &[], |_| Err(CdmsError::Invalid("x".into()))).unwrap();
        assert!(g.add_task("a", &[], |_| Err(CdmsError::Invalid("x".into()))).is_err());
    }

    #[test]
    fn task_failure_is_attributed() {
        let mut g = TaskGraph::new();
        g.add_task("bad", &[], |_| Err(CdmsError::Invalid("numerical blow-up".into())))
            .unwrap();
        let err = g.run_serial().unwrap_err();
        assert!(err.to_string().contains("bad"));
        assert!(err.to_string().contains("numerical blow-up"));
    }

    #[test]
    fn empty_graph_runs() {
        let g = TaskGraph::new();
        assert!(g.is_empty());
        let r = g.run_parallel().unwrap();
        assert!(r.outputs.is_empty());
    }
}
