//! Parallel analysis task graphs — DV3D's "parallel task execution".
//!
//! An analysis recipe is a DAG of named tasks, each a closure from its
//! dependencies' outputs to a new [`Variable`]. The graph runs either
//! serially ([`TaskGraph::run_serial`], the determinism oracle) or on a
//! **dependency-counting, event-driven executor**
//! ([`TaskGraph::run_with_pool`] / [`TaskGraph::run_parallel`]): a bounded
//! worker pool in which a task is enqueued the instant its last dependency
//! completes — no inter-wave barriers, so a slow task only delays its own
//! dependents, never unrelated work. Ready tasks are dispatched
//! critical-path-first, the first task error cancels the rest of the graph
//! (in-flight tasks drain cleanly), and outputs are bit-identical to
//! `run_serial` at any worker count. See DESIGN.md §18.
//!
//! On the dv3dlint `indexing_hot_paths` list: the scheduler runs under
//! every batch workload and must not panic, so element access goes through
//! `.get()` and iterators.

use cdms::{CdmsError, Result, Variable};
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

type TaskFn = dyn Fn(&BTreeMap<String, Arc<Variable>>) -> Result<Variable> + Send + Sync;

struct Task {
    name: String,
    deps: Vec<String>,
    run: Box<TaskFn>,
}

/// How a run reacts to a failing task: total attempts per task, and the
/// backoff slept between them (doubling each retry). Mirrors
/// `vistrails::executor::RetryPolicy` without coupling the crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (clamped to at least 1).
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles on every further retry.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    /// Fail fast: one attempt, no backoff.
    fn default() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, backoff: Duration::ZERO }
    }
}

impl RetryPolicy {
    /// Up to `retries` re-runs after the first failure.
    pub fn retries(retries: u32, backoff: Duration) -> RetryPolicy {
        RetryPolicy { max_attempts: retries.saturating_add(1), backoff }
    }

    /// Runs `f` under the policy, returning per-attempt wall times and the
    /// final outcome (the last error when every attempt fails).
    fn run(
        &self,
        f: impl Fn(&BTreeMap<String, Arc<Variable>>) -> Result<Variable>,
        deps: &BTreeMap<String, Arc<Variable>>,
    ) -> (Vec<Duration>, Result<Variable>) {
        let max = self.max_attempts.max(1);
        let mut timings = Vec::new();
        let mut backoff = self.backoff;
        loop {
            let t0 = Instant::now();
            let out = f(deps);
            timings.push(t0.elapsed());
            match out {
                Ok(v) => return (timings, Ok(v)),
                Err(e) => {
                    if timings.len() as u32 >= max {
                        return (timings, Err(e));
                    }
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                        backoff *= 2;
                    }
                }
            }
        }
    }
}

/// A dependency-aware analysis task graph.
#[derive(Default)]
pub struct TaskGraph {
    tasks: Vec<Task>,
    /// Per-task retry policy applied by both runners (default: fail fast).
    pub retry: RetryPolicy,
}

/// Hard cap on graph size: scheduler state (dependency counts, ready heap,
/// done set) is sized per task, and graphs are often built from
/// user-supplied workflow files.
pub const MAX_TASKS: usize = 100_000;

/// Execution report: per-task wall time plus the result set.
#[derive(Debug, Clone)]
pub struct TaskReport {
    /// Completed task outputs by name.
    pub outputs: BTreeMap<String, Arc<Variable>>,
    /// Per-task wall-clock durations (summed over attempts).
    pub timings: BTreeMap<String, Duration>,
    /// Per-task wall time of each individual attempt, in order (length 1
    /// everywhere unless the retry policy re-ran a failing task).
    pub attempt_timings: BTreeMap<String, Vec<Duration>>,
    /// Worker threads the run actually used (1 for `run_serial`).
    pub workers: usize,
    /// Total wall time of the run.
    pub total: Duration,
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> TaskGraph {
        TaskGraph::default()
    }

    /// Adds a task with dependencies. Task names must be unique.
    pub fn add_task(
        &mut self,
        name: &str,
        deps: &[&str],
        run: impl Fn(&BTreeMap<String, Arc<Variable>>) -> Result<Variable> + Send + Sync + 'static,
    ) -> Result<()> {
        if self.tasks.iter().any(|t| t.name == name) {
            return Err(CdmsError::Invalid(format!("duplicate task '{name}'")));
        }
        if self.tasks.len() >= MAX_TASKS {
            return Err(CdmsError::Invalid(format!(
                "task graph at capacity ({MAX_TASKS} tasks); refusing to add '{name}'"
            )));
        }
        self.tasks.push(Task {
            name: name.to_string(),
            deps: deps.iter().map(|s| s.to_string()).collect(),
            run: Box::new(run),
        });
        Ok(())
    }

    /// Adds a source task that just provides an existing variable.
    pub fn add_source(&mut self, name: &str, var: Variable) -> Result<()> {
        let var = Arc::new(var);
        self.add_task(name, &[], move |_| Ok((*var).clone()))
    }

    /// Adds a source task that reads `variable` from an `.ncr` file at run
    /// time, degrading gracefully on damage:
    ///
    /// * transient storage errors (EINTR-style, injected flakiness)
    ///   propagate as-is so the graph's [`RetryPolicy`] re-runs the read;
    /// * a file that fails strict checksum verification is re-read with
    ///   salvage semantics — the task still succeeds as long as the
    ///   requested variable's sections are intact.
    pub fn add_dataset_source(&mut self, name: &str, path: &Path, variable: &str) -> Result<()> {
        self.add_dataset_source_with(Arc::new(cdms::storage::LocalDisk), name, path, variable)
    }

    /// [`TaskGraph::add_dataset_source`] through an explicit storage
    /// backend (fault injection, tests).
    pub fn add_dataset_source_with(
        &mut self,
        storage: Arc<dyn cdms::Storage>,
        name: &str,
        path: &Path,
        variable: &str,
    ) -> Result<()> {
        let path = path.to_path_buf();
        let variable = variable.to_string();
        self.add_task(name, &[], move |_| {
            match cdms::format::read_dataset_with(storage.as_ref(), &path) {
                Ok(ds) => Ok(ds.require(&variable)?.clone()),
                Err(e) if e.is_transient() => Err(e),
                Err(_) => {
                    // Strictly unreadable: salvage what the checksums vouch for.
                    let (ds, report) =
                        cdms::format::read_dataset_salvage_with(storage.as_ref(), &path)?;
                    ds.variable(&variable).cloned().ok_or_else(|| {
                        CdmsError::Format(format!(
                            "variable '{variable}' not salvageable from '{}': {report}",
                            path.display()
                        ))
                    })
                }
            }
        })
    }

    /// Adds a source task that streams ONE chunk window of `variable` out
    /// of a `.ncr` v3 file — a graph over many windows touches each chunk
    /// with ranged reads instead of ever loading the whole series, so the
    /// graph's working set stays at the streaming cache budget.
    ///
    /// Fault behaviour matches [`TaskGraph::add_dataset_source`] in
    /// spirit: transient storage errors propagate so the graph's
    /// [`RetryPolicy`] re-runs the node, and when `degrade` is set a
    /// permanently damaged window falls back to the best intact pyramid
    /// level (or a masked slab) instead of failing the graph.
    pub fn add_streaming_window_source(
        &mut self,
        name: &str,
        path: &Path,
        variable: &str,
        window: usize,
        degrade: bool,
    ) -> Result<()> {
        self.add_streaming_window_source_with(
            Arc::new(cdms::storage::LocalDisk),
            name,
            path,
            variable,
            window,
            cdms::StreamOptions::default(),
            degrade,
        )
    }

    /// [`TaskGraph::add_streaming_window_source`] through an explicit
    /// storage backend and stream options (fault injection, cache tuning).
    #[allow(clippy::too_many_arguments)]
    pub fn add_streaming_window_source_with(
        &mut self,
        storage: Arc<dyn cdms::Storage>,
        name: &str,
        path: &Path,
        variable: &str,
        window: usize,
        opts: cdms::StreamOptions,
        degrade: bool,
    ) -> Result<()> {
        let path = path.to_path_buf();
        let variable = variable.to_string();
        self.add_task(name, &[], move |_| {
            let sd = cdms::StreamingDataset::open_with(Arc::clone(&storage), &path, opts.clone())?;
            let sv = sd.variable(&variable)?;
            if degrade {
                sv.window_variable_degraded(window)
            } else {
                sv.window_variable(window)
            }
        })
    }

    /// Adds a task that regrids the output of `input` onto `target` with
    /// `method`, planning through the global regrid plan cache — graphs
    /// that regrid many timesteps (or many variables) over the same grid
    /// pair share one sparse weight matrix.
    pub fn add_regrid_task(
        &mut self,
        name: &str,
        input: &str,
        target: cdms::RectGrid,
        method: crate::regrid_plan::RegridMethod,
    ) -> Result<()> {
        let dep = input.to_string();
        self.add_task(name, &[input], move |deps| {
            let var = deps
                .get(&dep)
                .ok_or_else(|| CdmsError::NotFound(format!("dependency '{dep}'")))?;
            crate::regrid::regrid(var, &target, method)
        })
    }

    /// Adds one task that regrids N ensemble-member inputs onto `target`
    /// in a single batched apply ([`crate::regrid::regrid_batch`]): the
    /// plan cache is consulted once and the weight matrix streams through
    /// cache once per row band instead of once per member. The task's
    /// output stacks the regridded members along a new leading `member`
    /// axis, in the order of `inputs`.
    pub fn add_regrid_batch_task(
        &mut self,
        name: &str,
        inputs: &[&str],
        target: cdms::RectGrid,
        method: crate::regrid_plan::RegridMethod,
    ) -> Result<()> {
        let deps: Vec<String> = inputs.iter().map(|s| s.to_string()).collect();
        self.add_task(name, inputs, move |dep_vals| {
            let mut members: Vec<&Variable> = Vec::with_capacity(deps.len());
            for d in &deps {
                members.push(
                    dep_vals
                        .get(d)
                        .map(Arc::as_ref)
                        .ok_or_else(|| CdmsError::NotFound(format!("dependency '{d}'")))?,
                );
            }
            let regridded = crate::regrid::regrid_batch(&members, &target, method)?;
            crate::ensemble::stack(&regridded)
        })
    }

    /// Adds a task that runs a fused analysis pipeline
    /// ([`crate::pipeline::run`]) over the output of `input`: the steps
    /// execute with cross-step fusion (a few streaming passes) instead of
    /// materializing every intermediate variable.
    pub fn add_pipeline_task(
        &mut self,
        name: &str,
        input: &str,
        steps: Vec<crate::pipeline::AnalysisStep>,
    ) -> Result<()> {
        let dep = input.to_string();
        self.add_task(name, &[input], move |deps| {
            let var = deps
                .get(&dep)
                .ok_or_else(|| CdmsError::NotFound(format!("dependency '{dep}'")))?;
            crate::pipeline::run(var, &steps)
        })
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Wavefront schedule: groups of task indices whose dependencies are
    /// all in earlier groups. Errors on unknown deps or cycles.
    fn schedule(&self) -> Result<Vec<Vec<usize>>> {
        let index: BTreeMap<&str, usize> =
            self.tasks.iter().enumerate().map(|(i, t)| (t.name.as_str(), i)).collect();
        for t in &self.tasks {
            for d in &t.deps {
                if !index.contains_key(d.as_str()) {
                    return Err(CdmsError::NotFound(format!(
                        "task '{}' depends on unknown '{d}'",
                        t.name
                    )));
                }
            }
        }
        let mut done: BTreeSet<usize> = BTreeSet::new();
        let mut waves = Vec::new();
        while done.len() < self.tasks.len() {
            let ready: Vec<usize> = (0..self.tasks.len())
                .filter(|i| !done.contains(i))
                .filter(|&i| {
                    self.tasks.get(i).is_some_and(|t| {
                        t.deps
                            .iter()
                            .all(|d| index.get(d.as_str()).is_some_and(|j| done.contains(j)))
                    })
                })
                .collect();
            if ready.is_empty() {
                let stuck: Vec<String> = (0..self.tasks.len())
                    .filter(|i| !done.contains(i))
                    .filter_map(|i| self.tasks.get(i).map(|t| t.name.clone()))
                    .collect();
                return Err(CdmsError::Invalid(format!("cycle among tasks {stuck:?}")));
            }
            done.extend(&ready);
            waves.push(ready);
        }
        Ok(waves)
    }

    /// Runs the graph serially in schedule order.
    pub fn run_serial(&self) -> Result<TaskReport> {
        let start = Instant::now();
        let waves = self.schedule()?;
        let mut outputs: BTreeMap<String, Arc<Variable>> = BTreeMap::new();
        let mut timings = BTreeMap::new();
        let mut attempt_timings = BTreeMap::new();
        for wave in waves {
            for i in wave {
                let Some(t) = self.tasks.get(i) else { continue };
                let (attempts, out) = self.retry.run(&t.run, &outputs);
                let out = out
                    .map_err(|e| CdmsError::Invalid(format!("task '{}': {e}", t.name)))?;
                timings.insert(t.name.clone(), attempts.iter().sum());
                attempt_timings.insert(t.name.clone(), attempts);
                outputs.insert(t.name.clone(), Arc::new(out));
            }
        }
        Ok(TaskReport { outputs, timings, attempt_timings, workers: 1, total: start.elapsed() })
    }

    /// Validates the graph and derives the executor topology: the
    /// name→index map, the forward dependency counts, the dependents
    /// adjacency, and each task's critical-path height (longest chain of
    /// tasks from it to any sink). Errors match [`TaskGraph::schedule`]
    /// byte-for-byte on unknown deps and cycles.
    fn topology(&self) -> Result<Topology> {
        let index: BTreeMap<&str, usize> =
            self.tasks.iter().enumerate().map(|(i, t)| (t.name.as_str(), i)).collect();
        let n = self.tasks.len();
        let mut deps_left = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, t) in self.tasks.iter().enumerate() {
            for d in &t.deps {
                let Some(&j) = index.get(d.as_str()) else {
                    return Err(CdmsError::NotFound(format!(
                        "task '{}' depends on unknown '{d}'",
                        t.name
                    )));
                };
                if let Some(c) = deps_left.get_mut(i) {
                    *c += 1;
                }
                if let Some(v) = dependents.get_mut(j) {
                    v.push(i);
                }
            }
        }
        // Kahn order doubles as the cycle check and gives the reverse
        // order for the height computation.
        let mut counts = deps_left.clone();
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut frontier: Vec<usize> =
            counts.iter().enumerate().filter(|(_, &c)| c == 0).map(|(i, _)| i).collect();
        while let Some(i) = frontier.pop() {
            order.push(i);
            for &j in dependents.get(i).map(Vec::as_slice).unwrap_or_default() {
                if let Some(c) = counts.get_mut(j) {
                    *c -= 1;
                    if *c == 0 {
                        frontier.push(j);
                    }
                }
            }
        }
        if order.len() < n {
            let stuck: Vec<String> = counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, _)| {
                    self.tasks.get(i).map(|t| t.name.clone()).unwrap_or_default()
                })
                .collect();
            return Err(CdmsError::Invalid(format!("cycle among tasks {stuck:?}")));
        }
        // Critical-path height, sinks = 1, in reverse topological order:
        // dispatching the tallest ready task first keeps the longest
        // remaining chain moving while shorter branches fill spare workers.
        let mut height = vec![1u32; n];
        for &i in order.iter().rev() {
            let tallest_dependent = dependents
                .get(i)
                .map(Vec::as_slice)
                .unwrap_or_default()
                .iter()
                .filter_map(|&j| height.get(j).copied())
                .max()
                .unwrap_or(0);
            if let Some(h) = height.get_mut(i) {
                *h = tallest_dependent.saturating_add(1);
            }
        }
        Ok(Topology { deps_left, dependents, height })
    }

    /// Runs the graph on the dependency-counting executor with a worker
    /// pool sized from `RAYON_NUM_THREADS` / available parallelism (the
    /// same resolution the vendored rayon uses). Outputs are bit-identical
    /// to [`TaskGraph::run_serial`]; each task sees exactly its declared
    /// dependencies' outputs.
    pub fn run_parallel(&self) -> Result<TaskReport> {
        self.run_with_pool(rayon::current_num_threads())
    }

    /// Runs the graph on a bounded pool of exactly `threads` workers
    /// (clamped to at least 1, at most the task count).
    ///
    /// Scheduling is event-driven: every task carries a count of unmet
    /// dependencies, and the completion that zeroes the count pushes the
    /// task onto a priority queue ordered by critical-path height (ties
    /// broken by insertion index, so the queue order is deterministic).
    /// There are no inter-wave barriers. The first task failure cancels
    /// the run: the ready queue is drained, no new task starts, in-flight
    /// tasks finish and their workers exit cleanly. Retry semantics
    /// ([`TaskGraph::retry`]) are applied per task exactly as in
    /// `run_serial`.
    pub fn run_with_pool(&self, threads: usize) -> Result<TaskReport> {
        let start = Instant::now();
        let topo = self.topology()?;
        let n = self.tasks.len();
        let workers = threads.max(1).min(n.max(1));
        // Seed the ready queue with every zero-dependency task. The heap
        // is bounded by the task count; with_capacity states the cap.
        let mut ready: BinaryHeap<Ready> = BinaryHeap::with_capacity(n);
        for (i, &c) in topo.deps_left.iter().enumerate() {
            if c == 0 {
                ready.push(Ready { height: topo.height.get(i).copied().unwrap_or(1), index: i });
            }
        }
        let shared = ExecShared {
            state: StdMutex::new(ExecState {
                ready,
                deps_left: topo.deps_left.clone(),
                outputs: BTreeMap::new(),
                timings: BTreeMap::new(),
                attempt_timings: BTreeMap::new(),
                in_flight: 0,
                done: 0,
                error: None,
            }),
            cv: Condvar::new(),
        };
        if workers <= 1 {
            // Single-worker pool: run inline on the caller's thread. Same
            // code path, no spawn cost — this is the serial-fallback the
            // benches time as "pool of 1".
            self.exec_worker(&shared, &topo);
        } else {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| self.exec_worker(&shared, &topo));
                }
            });
        }
        let state = shared
            .state
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(e) = state.error {
            return Err(e);
        }
        Ok(TaskReport {
            outputs: state.outputs,
            timings: state.timings,
            attempt_timings: state.attempt_timings,
            workers,
            total: start.elapsed(),
        })
    }

    /// One executor worker: pop the tallest ready task, run it outside the
    /// scheduler lock, publish the result, and wake peers. Exits when the
    /// graph is complete or cancelled-and-drained.
    fn exec_worker(&self, shared: &ExecShared, topo: &Topology) {
        let n = self.tasks.len();
        let mut guard = std_lock(&shared.state);
        loop {
            while guard.ready.is_empty() && !guard.finished(n) {
                let cv = &shared.cv;
                guard = cv.wait(guard).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            if guard.finished(n) {
                drop(guard);
                shared.cv.notify_all();
                return;
            }
            let Some(next) = guard.ready.pop() else { continue };
            let Some(task) = self.tasks.get(next.index) else { continue };
            // Snapshot exactly the declared dependencies (Arc clones) while
            // still under the lock; the task body runs without it.
            let mut dep_vals: BTreeMap<String, Arc<Variable>> = BTreeMap::new();
            for d in &task.deps {
                if let Some(v) = guard.outputs.get(d) {
                    dep_vals.insert(d.clone(), Arc::clone(v));
                }
            }
            guard.in_flight += 1;
            drop(guard);

            let (attempts, out) = self.retry.run(&task.run, &dep_vals);

            guard = std_lock(&shared.state);
            guard.in_flight -= 1;
            match out {
                Ok(v) => {
                    guard.timings.insert(task.name.clone(), attempts.iter().sum());
                    guard.attempt_timings.insert(task.name.clone(), attempts);
                    guard.outputs.insert(task.name.clone(), Arc::new(v));
                    guard.done += 1;
                    if guard.error.is_none() {
                        for &j in
                            topo.dependents.get(next.index).map(Vec::as_slice).unwrap_or_default()
                        {
                            let now_ready = match guard.deps_left.get_mut(j) {
                                Some(c) => {
                                    *c = c.saturating_sub(1);
                                    *c == 0
                                }
                                None => false,
                            };
                            if now_ready {
                                let h = topo.height.get(j).copied().unwrap_or(1);
                                guard.ready.push(Ready { height: h, index: j });
                            }
                        }
                    }
                }
                Err(e) => {
                    // First-error cancellation: record the error once and
                    // drain the ready queue so nothing new starts.
                    if guard.error.is_none() {
                        guard.error = Some(CdmsError::Invalid(format!(
                            "task '{}': {e}",
                            task.name
                        )));
                    }
                    guard.ready.clear();
                }
            }
            shared.cv.notify_all();
        }
    }
}

/// Locks the executor mutex, recovering from poisoning (the scheduler
/// state stays consistent: a panicking task closure unwinds outside the
/// lock, and bookkeeping updates are straight-line code).
fn std_lock<T>(m: &StdMutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Static topology the executor schedules against.
struct Topology {
    /// Unmet forward-dependency count per task (the executor's seed).
    deps_left: Vec<usize>,
    /// Tasks unblocked by each task's completion.
    dependents: Vec<Vec<usize>>,
    /// Critical-path height (longest chain to any sink), for priority.
    height: Vec<u32>,
}

/// A ready task in the dispatch heap: tallest critical path first, then
/// lowest insertion index — a total, deterministic order.
#[derive(PartialEq, Eq)]
struct Ready {
    height: u32,
    index: usize,
}

impl Ord for Ready {
    fn cmp(&self, other: &Ready) -> std::cmp::Ordering {
        self.height.cmp(&other.height).then(other.index.cmp(&self.index))
    }
}

impl PartialOrd for Ready {
    fn partial_cmp(&self, other: &Ready) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Mutable scheduler state, guarded by one mutex that is never held
/// across a task body (workers snapshot dependencies, drop the lock, run,
/// re-lock to publish).
struct ExecState {
    ready: BinaryHeap<Ready>,
    deps_left: Vec<usize>,
    outputs: BTreeMap<String, Arc<Variable>>,
    timings: BTreeMap<String, Duration>,
    attempt_timings: BTreeMap<String, Vec<Duration>>,
    in_flight: usize,
    done: usize,
    error: Option<CdmsError>,
}

impl ExecState {
    /// True when no worker has anything left to do: every task completed,
    /// or the run was cancelled and all in-flight work has drained.
    fn finished(&self, n: usize) -> bool {
        self.done == n || (self.error.is_some() && self.in_flight == 0 && self.ready.is_empty())
    }
}

struct ExecShared {
    state: StdMutex<ExecState>,
    cv: Condvar,
}

impl std::fmt::Debug for TaskGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.tasks.iter().map(|t| t.name.as_str()).collect();
        f.debug_struct("TaskGraph").field("tasks", &names).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{averager, climatology};
    use cdms::synth::SynthesisSpec;

    fn analysis_graph(sleep_ms: u64) -> TaskGraph {
        let ds = SynthesisSpec::new(4, 2, 8, 16).build();
        let ta = ds.variable("ta").unwrap().clone();
        let mut g = TaskGraph::new();
        g.add_source("ta", ta).unwrap();
        g.add_task("anom", &["ta"], move |deps| {
            std::thread::sleep(Duration::from_millis(sleep_ms));
            climatology::anomaly(&deps["ta"])
        })
        .unwrap();
        g.add_task("zonal", &["ta"], move |deps| {
            std::thread::sleep(Duration::from_millis(sleep_ms));
            averager::zonal_mean(&deps["ta"])
        })
        .unwrap();
        g.add_task("series", &["anom"], |deps| averager::spatial_mean(&deps["anom"]))
            .unwrap();
        g
    }

    #[test]
    fn regrid_tasks_share_a_cached_plan() {
        use crate::regrid_plan::RegridMethod;
        let ds = SynthesisSpec::new(4, 2, 8, 16).build();
        let mut g = TaskGraph::new();
        g.add_source("ta", ds.variable("ta").unwrap().clone()).unwrap();
        g.add_source("ua", ds.variable("ua").unwrap().clone()).unwrap();
        // both tasks regrid onto the same target grid → one shared plan
        let dst = cdms::RectGrid::uniform(5, 9).unwrap();
        g.add_regrid_task("ta_lo", "ta", dst.clone(), RegridMethod::Bilinear).unwrap();
        g.add_regrid_task("ua_lo", "ua", dst, RegridMethod::Bilinear).unwrap();
        let before = crate::plan_cache::global_stats();
        let report = g.run_parallel().unwrap();
        assert_eq!(report.outputs["ta_lo"].shape(), &[4, 2, 5, 9]);
        assert_eq!(report.outputs["ua_lo"].shape(), &[4, 2, 5, 9]);
        let after = crate::plan_cache::global_stats();
        assert!(
            after.hits + after.misses >= before.hits + before.misses + 2,
            "both regrid tasks should consult the plan cache"
        );
        assert!(after.hits > before.hits, "second task should reuse the cached plan");
    }

    #[test]
    fn pipeline_task_matches_stepwise_tasks() {
        use crate::pipeline::AnalysisStep;
        let ds = SynthesisSpec::new(12, 2, 8, 16).build();
        let ta = ds.variable("ta").unwrap().clone();
        let mut g = TaskGraph::new();
        g.add_source("ta", ta).unwrap();
        g.add_pipeline_task(
            "series",
            "ta",
            vec![AnalysisStep::Anomaly, AnalysisStep::Standardize, AnalysisStep::SpatialMean],
        )
        .unwrap();
        g.add_task("anom", &["ta"], |deps| climatology::anomaly(&deps["ta"])).unwrap();
        g.add_task("stdz", &["anom"], |deps| {
            crate::statistics::standardize(&deps["anom"])
        })
        .unwrap();
        g.add_task("series_stepwise", &["stdz"], |deps| {
            averager::spatial_mean(&deps["stdz"])
        })
        .unwrap();
        let report = g.run_parallel().unwrap();
        assert_eq!(report.outputs["series"].array, report.outputs["series_stepwise"].array);
    }

    #[test]
    fn serial_run_produces_all_outputs() {
        let g = analysis_graph(0);
        let report = g.run_serial().unwrap();
        assert_eq!(report.outputs.len(), 4);
        assert_eq!(report.outputs["series"].shape(), &[4, 2]);
        assert_eq!(report.timings.len(), 4);
    }

    #[test]
    fn parallel_matches_serial() {
        let g = analysis_graph(0);
        let s = g.run_serial().unwrap();
        let p = g.run_parallel().unwrap();
        for name in ["anom", "zonal", "series"] {
            assert_eq!(s.outputs[name].array, p.outputs[name].array, "{name}");
        }
    }

    #[test]
    fn parallel_is_faster_on_independent_tasks() {
        // two independent 60ms tasks: serial ≥ 120ms, parallel ≈ 60ms.
        // Pool pinned to 2 so the assertion holds regardless of the
        // RAYON_NUM_THREADS ambient value.
        let g = analysis_graph(60);
        let s = g.run_serial().unwrap();
        let p = g.run_with_pool(2).unwrap();
        assert_eq!(p.workers, 2);
        assert!(
            p.total < s.total,
            "parallel {:?} !< serial {:?}",
            p.total,
            s.total
        );
    }

    #[test]
    fn unknown_dependency_rejected() {
        let mut g = TaskGraph::new();
        g.add_task("a", &["ghost"], |_| {
            Err(CdmsError::Invalid("unreachable".into()))
        })
        .unwrap();
        assert!(g.run_serial().is_err());
    }

    #[test]
    fn cycle_detected() {
        let mut g = TaskGraph::new();
        g.add_task("a", &["b"], |_| Err(CdmsError::Invalid("x".into()))).unwrap();
        g.add_task("b", &["a"], |_| Err(CdmsError::Invalid("x".into()))).unwrap();
        let err = g.run_parallel().unwrap_err();
        assert!(matches!(err, CdmsError::Invalid(m) if m.contains("cycle")));
    }

    #[test]
    fn duplicate_task_rejected() {
        let mut g = TaskGraph::new();
        g.add_task("a", &[], |_| Err(CdmsError::Invalid("x".into()))).unwrap();
        assert!(g.add_task("a", &[], |_| Err(CdmsError::Invalid("x".into()))).is_err());
    }

    #[test]
    fn task_failure_is_attributed() {
        let mut g = TaskGraph::new();
        g.add_task("bad", &[], |_| Err(CdmsError::Invalid("numerical blow-up".into())))
            .unwrap();
        let err = g.run_serial().unwrap_err();
        assert!(err.to_string().contains("bad"));
        assert!(err.to_string().contains("numerical blow-up"));
    }

    fn graph_with_flaky_task(failures: usize) -> TaskGraph {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let ds = SynthesisSpec::new(4, 2, 8, 16).build();
        let ta = ds.variable("ta").unwrap().clone();
        let mut g = TaskGraph::new();
        g.add_source("ta", ta).unwrap();
        let calls = AtomicUsize::new(0);
        g.add_task("flaky", &["ta"], move |deps| {
            if calls.fetch_add(1, Ordering::SeqCst) < failures {
                Err(CdmsError::Invalid("transient I/O hiccup".into()))
            } else {
                climatology::anomaly(&deps["ta"])
            }
        })
        .unwrap();
        g
    }

    #[test]
    fn retry_policy_recovers_flaky_task() {
        for parallel in [false, true] {
            let mut g = graph_with_flaky_task(2);
            g.retry = RetryPolicy::retries(2, Duration::from_millis(1));
            let report = if parallel { g.run_parallel() } else { g.run_serial() }.unwrap();
            assert!(report.outputs.contains_key("flaky"));
            // provenance records all three attempts and sums them
            assert_eq!(report.attempt_timings["flaky"].len(), 3, "parallel={parallel}");
            assert_eq!(report.attempt_timings["ta"].len(), 1);
            assert!(report.timings["flaky"] >= report.attempt_timings["flaky"][0]);
        }
    }

    #[test]
    fn default_policy_fails_fast_on_flaky_task() {
        let g = graph_with_flaky_task(1);
        let err = g.run_serial().unwrap_err();
        assert!(err.to_string().contains("flaky"), "{err}");
        assert!(err.to_string().contains("transient"), "{err}");
    }

    #[test]
    fn retries_exhausted_reports_last_error() {
        let mut g = graph_with_flaky_task(usize::MAX);
        g.retry = RetryPolicy::retries(2, Duration::ZERO);
        let err = g.run_parallel().unwrap_err();
        assert!(err.to_string().contains("transient"), "{err}");
    }

    fn saved_dataset(tag: &str) -> (std::path::PathBuf, cdms::Dataset) {
        let dir = std::env::temp_dir()
            .join(format!("cdat_taskgraph_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ds = SynthesisSpec::new(2, 2, 8, 16).build();
        let path = dir.join("src.ncr");
        ds.save(&path).unwrap();
        (path, ds)
    }

    #[test]
    fn dataset_source_reads_variable_from_disk() {
        let (path, ds) = saved_dataset("read");
        let mut g = TaskGraph::new();
        g.add_dataset_source("ta", &path, "ta").unwrap();
        let report = g.run_serial().unwrap();
        assert_eq!(report.outputs["ta"].array, ds.variable("ta").unwrap().array);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn dataset_source_retries_transient_storage_faults() {
        use cdms::storage::{FaultyStorage, StorageFault, StorageFaultPlan};
        let (path, ds) = saved_dataset("transient");
        // The read is storage op 0; make it (and the next one) fail
        // EINTR-style so a single RetryPolicy retry clears it.
        let plan = StorageFaultPlan::none().inject(0, StorageFault::Transient { times: 2 });
        let storage = Arc::new(FaultyStorage::new(plan));
        let mut g = TaskGraph::new();
        g.add_dataset_source_with(storage.clone(), "ta", &path, "ta").unwrap();

        // fail-fast policy: the transient error surfaces
        let err = g.run_serial().unwrap_err();
        assert!(err.to_string().contains("transient"), "{err}");

        // with retries the same graph succeeds (fresh storage, same plan)
        let plan = StorageFaultPlan::none().inject(0, StorageFault::Transient { times: 2 });
        let mut g = TaskGraph::new();
        g.add_dataset_source_with(Arc::new(FaultyStorage::new(plan)), "ta", &path, "ta")
            .unwrap();
        g.retry = RetryPolicy::retries(3, Duration::ZERO);
        let report = g.run_serial().unwrap();
        assert_eq!(report.outputs["ta"].array, ds.variable("ta").unwrap().array);
        assert!(report.attempt_timings["ta"].len() > 1, "should have retried");
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn dataset_source_degrades_to_salvage_on_corruption() {
        let (path, ds) = saved_dataset("salvage");
        // Corrupt a variable other than "ta": strict read fails, salvage
        // still recovers "ta", so the graph keeps running.
        let (bytes, layout) = cdms::format::to_bytes_v2_with_layout(&ds);
        let mut bytes = bytes.to_vec();
        let victim = layout
            .sections
            .iter()
            .find(|s| matches!(&s.variable, Some((id, _)) if id != "ta"))
            .expect("synth dataset has a second variable");
        bytes[victim.payload.start] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let mut g = TaskGraph::new();
        g.add_dataset_source("ta", &path, "ta").unwrap();
        let report = g.run_serial().unwrap();
        assert_eq!(report.outputs["ta"].array, ds.variable("ta").unwrap().array);

        // asking for the corrupted variable itself fails with a reason
        let (_, corrupt_id) = victim.variable.clone().map(|(id, _)| ((), id)).unwrap();
        let mut g = TaskGraph::new();
        g.add_dataset_source("broken", &path, &corrupt_id).unwrap();
        let err = g.run_serial().unwrap_err();
        assert!(err.to_string().contains("not salvageable"), "{err}");
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    fn saved_v3_dataset(tag: &str, window: usize) -> (std::path::PathBuf, cdms::Dataset) {
        let dir =
            std::env::temp_dir().join(format!("cdat_taskgraph_v3_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ds = SynthesisSpec::new(6, 2, 8, 16).build();
        let path = dir.join("src.ncr");
        let opts = cdms::format_v3::V3Options { window, levels: 2, compress: true };
        cdms::format_v3::write_dataset_v3_with(&cdms::storage::LocalDisk, &ds, &path, &opts)
            .unwrap();
        (path, ds)
    }

    #[test]
    fn streaming_window_sources_fan_out_one_node_per_window() {
        let (path, ds) = saved_v3_dataset("fanout", 2);
        let ta = ds.variable("ta").unwrap();
        let mut g = TaskGraph::new();
        for w in 0..3 {
            g.add_streaming_window_source(&format!("ta_w{w}"), &path, "ta", w, false).unwrap();
        }
        let report = g.run_parallel().unwrap();
        for w in 0..3 {
            let want = ta.time_window(w * 2..w * 2 + 2).unwrap();
            let got = &report.outputs[&format!("ta_w{w}")];
            assert_eq!(got.array, want.array, "window {w}");
            assert_eq!(got.axes, want.axes, "window {w}");
        }
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn streaming_window_source_degrades_instead_of_failing() {
        use cdms::storage::{FaultyStorage, LocalDisk, StorageFault, StorageFaultPlan};
        let (path, ds) = saved_v3_dataset("degrade", 2);
        let ta = ds.variable("ta").unwrap();
        // kill window 1's full-resolution chunk; the pyramid survives
        let meta = cdms::format_v3::read_meta_with(&LocalDisk, &path).unwrap();
        let vi = meta.var_index("ta").unwrap();
        let e = *meta.chunk(vi, 1, 0).unwrap();
        let plan = StorageFaultPlan::none().inject_read(
            e.offset..e.offset + 1,
            StorageFault::ReadError,
            0,
        );
        let fresh_storage = || -> Arc<dyn cdms::Storage> {
            let plan = StorageFaultPlan::none().inject_read(
                e.offset..e.offset + 1,
                StorageFault::ReadError,
                0,
            );
            Arc::new(FaultyStorage::new(plan))
        };

        // strict node: the damaged window fails the graph
        let mut g = TaskGraph::new();
        g.add_streaming_window_source_with(
            Arc::new(FaultyStorage::new(plan)),
            "ta_w1",
            &path,
            "ta",
            1,
            cdms::StreamOptions::default(),
            false,
        )
        .unwrap();
        assert!(g.run_serial().is_err());

        // degraded node: the graph completes with an approximate window
        let mut g = TaskGraph::new();
        g.add_streaming_window_source_with(
            fresh_storage(),
            "ta_w1",
            &path,
            "ta",
            1,
            cdms::StreamOptions::default(),
            true,
        )
        .unwrap();
        let report = g.run_serial().unwrap();
        let got = &report.outputs["ta_w1"];
        let want = ta.time_window(2..4).unwrap();
        assert_eq!(got.shape(), want.shape());
        assert_eq!(got.axes, want.axes);
        assert_ne!(got.array, want.array, "served from the pyramid, not level 0");
        assert!(got.array.valid_count() > 0, "degraded, not masked out");
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn streaming_window_source_retries_transients_via_policy() {
        use cdms::storage::{FaultyStorage, LocalDisk, StorageFault, StorageFaultPlan};
        let (path, ds) = saved_v3_dataset("retry", 3);
        let meta = cdms::format_v3::read_meta_with(&LocalDisk, &path).unwrap();
        let vi = meta.var_index("ta").unwrap();
        let e = *meta.chunk(vi, 0, 0).unwrap();
        // more consecutive failures than the stream's own retry budget, so
        // the error escapes the node and the graph's RetryPolicy matters
        let plan = StorageFaultPlan::none().inject_read(
            e.offset..e.offset + 1,
            StorageFault::Transient { times: 0 },
            5,
        );
        let sopts = cdms::StreamOptions {
            max_retries: 1,
            backoff_base_ms: 0,
            backoff_cap_ms: 0,
            ..cdms::StreamOptions::default()
        };
        let mut g = TaskGraph::new();
        g.add_streaming_window_source_with(
            Arc::new(FaultyStorage::new(plan)),
            "ta_w0",
            &path,
            "ta",
            0,
            sopts,
            false,
        )
        .unwrap();
        g.retry = RetryPolicy::retries(4, Duration::ZERO);
        let report = g.run_serial().unwrap();
        let want = ds.variable("ta").unwrap().time_window(0..3).unwrap();
        assert_eq!(report.outputs["ta_w0"].array, want.array);
        assert!(report.attempt_timings["ta_w0"].len() > 1, "should have retried");
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn empty_graph_runs() {
        let g = TaskGraph::new();
        assert!(g.is_empty());
        let r = g.run_parallel().unwrap();
        assert!(r.outputs.is_empty());
    }
}
