//! Conditioned comparisons: masking by predicate, comparison against other
//! variables, and compression to valid values — `MV2.masked_where` and
//! friends.
//!
//! The threshold helpers (`masked_greater` & co.) route through the fused
//! expression engine with typed predicates, so the mask test runs inside
//! the parallel chunked kernel; the general closures (`masked_where`,
//! `masked_where_other`) accept plain `Fn` and use the serial fused pass.

use crate::expr::{Expr, PredFn};
use cdms::{Result, Variable};

/// Masks elements where `pred(value)` holds.
pub fn masked_where(var: &Variable, pred: impl Fn(f32) -> bool) -> Result<Variable> {
    let arr = crate::expr::mask_where_local(&var.array, pred)?;
    let mut v = Variable::new(&var.id, arr, var.axes.clone())?;
    v.attributes = var.attributes.clone();
    Ok(v)
}

fn masked_pred(var: &Variable, pred: PredFn<'_>) -> Result<Variable> {
    let arr = Expr::leaf(&var.array).mask_where(pred).eval()?;
    let mut v = Variable::new(&var.id, arr, var.axes.clone())?;
    v.attributes = var.attributes.clone();
    Ok(v)
}

/// Masks elements greater than `threshold`.
pub fn masked_greater(var: &Variable, threshold: f32) -> Result<Variable> {
    masked_pred(var, PredFn::Greater(threshold))
}

/// Masks elements less than `threshold`.
pub fn masked_less(var: &Variable, threshold: f32) -> Result<Variable> {
    masked_pred(var, PredFn::Less(threshold))
}

/// Masks elements inside `[lo, hi]`.
pub fn masked_inside(var: &Variable, lo: f32, hi: f32) -> Result<Variable> {
    masked_pred(var, PredFn::Inside(lo, hi))
}

/// Masks elements outside `[lo, hi]`.
pub fn masked_outside(var: &Variable, lo: f32, hi: f32) -> Result<Variable> {
    masked_pred(var, PredFn::Outside(lo, hi))
}

/// Masks `a` wherever `cond`'s value satisfies `pred` (conditioned
/// comparison between two variables, e.g. "temperature where land fraction
/// > 0.5").
pub fn masked_where_other(
    a: &Variable,
    cond: &Variable,
    pred: impl Fn(f32) -> bool,
) -> Result<Variable> {
    crate::ops::check_domains(a, cond)?;
    let arr = crate::expr::mask_where_other_local(&a.array, &cond.array, pred)?;
    let mut v = Variable::new(&a.id, arr, a.axes.clone())?;
    v.attributes = a.attributes.clone();
    Ok(v)
}

/// Returns the valid values as a flat vector (numpy `compressed`).
pub fn compress(var: &Variable) -> Vec<f32> {
    var.array.iter_valid().map(|(_, v)| v).collect()
}

/// Fraction of elements masked.
pub fn masked_fraction(var: &Variable) -> f64 {
    1.0 - var.array.valid_fraction()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdms::synth::SynthesisSpec;
    use cdms::{Axis, MaskedArray};

    fn ramp() -> Variable {
        let lat = Axis::latitude(vec![-30.0, 0.0, 30.0]).unwrap();
        let lon = Axis::longitude(vec![0.0, 120.0, 240.0]).unwrap();
        let arr = MaskedArray::from_fn(&[3, 3], |ix| (ix[0] * 3 + ix[1]) as f32);
        Variable::new("r", arr, vec![lat, lon]).unwrap()
    }

    #[test]
    fn threshold_masks() {
        let v = ramp();
        assert_eq!(masked_greater(&v, 4.0).unwrap().array.valid_count(), 5);
        assert_eq!(masked_less(&v, 4.0).unwrap().array.valid_count(), 5);
        assert_eq!(masked_inside(&v, 2.0, 6.0).unwrap().array.valid_count(), 4);
        assert_eq!(masked_outside(&v, 2.0, 6.0).unwrap().array.valid_count(), 5);
    }

    #[test]
    fn conditioned_on_other_variable() {
        let ds = SynthesisSpec::new(1, 1, 8, 16).build();
        let lf = ds.variable("sftlf").unwrap();
        let pr2d = ds.variable("pr").unwrap().time_slab(0).unwrap();
        // precipitation over ocean only
        let ocean_pr = masked_where_other(&pr2d, lf, |land| land > 0.5).unwrap();
        let expected_masked =
            lf.array.data().iter().filter(|&&v| v > 0.5).count();
        assert_eq!(ocean_pr.array.len() - ocean_pr.array.valid_count(), expected_masked);
        // domains must match
        let coarse = SynthesisSpec::new(1, 1, 4, 8).build();
        assert!(masked_where_other(&pr2d, coarse.variable("sftlf").unwrap(), |v| v > 0.5)
            .is_err());
    }

    #[test]
    fn conditioned_mask_includes_cond_mask() {
        let ds = SynthesisSpec::new(1, 1, 8, 16).build();
        let tos2d = ds.variable("tos").unwrap().time_slab(0).unwrap();
        let pr2d = ds.variable("pr").unwrap().time_slab(0).unwrap();
        // mask pr where SST (itself masked over land) is warm
        let cold_pr = masked_where_other(&pr2d, &tos2d, |sst| sst > 295.0).unwrap();
        // every land point (masked in tos) must be masked in the output
        for i in 0..tos2d.array.len() {
            if tos2d.array.mask()[i] {
                assert!(cold_pr.array.mask()[i]);
            }
        }
    }

    #[test]
    fn compress_returns_valid_only() {
        let v = masked_greater(&ramp(), 6.0).unwrap();
        let c = compress(&v);
        assert_eq!(c.len(), 7);
        assert!(c.iter().all(|&x| x <= 6.0));
    }

    #[test]
    fn masked_fraction_math() {
        let v = ramp();
        assert_eq!(masked_fraction(&v), 0.0);
        let half = masked_less(&v, 4.5).unwrap();
        assert!((masked_fraction(&half) - 5.0 / 9.0).abs() < 1e-12);
    }
}
