//! EOF (Empirical Orthogonal Function) analysis — the workhorse of
//! climate pattern extraction, part of CDAT's statistics suite.
//!
//! Given a `(time, lat, lon)` variable, finds the leading spatial patterns
//! (EOFs) and their time series (principal components) by power iteration
//! with deflation on the area-weighted anomaly covariance — no external
//! linear-algebra crate needed. Masked grid points are excluded.

use cdms::axis::AxisKind;
use cdms::{CdmsError, MaskedArray, Result, Variable};

/// The result of an EOF decomposition.
#[derive(Debug, Clone)]
pub struct EofResult {
    /// Spatial patterns, unit-norm in the weighted inner product; one
    /// `(lat, lon)` variable per mode, masked where the input was.
    pub eofs: Vec<Variable>,
    /// Principal-component time series, one per mode.
    pub pcs: Vec<Vec<f64>>,
    /// Fraction of total (weighted) variance explained per mode.
    pub explained: Vec<f64>,
}

/// Computes the leading `n_modes` EOFs of a `(time, lat, lon)` variable.
///
/// Grid points masked at *any* timestep are excluded from the analysis
/// (and masked in the returned patterns). The time mean is removed
/// internally; rows are weighted by `sqrt(cos φ)` so the decomposition is
/// of the area-weighted covariance.
pub fn eof_analysis(var: &Variable, n_modes: usize) -> Result<EofResult> {
    let t_idx = var
        .axis_index(AxisKind::Time)
        .ok_or_else(|| CdmsError::NotFound(format!("time axis on '{}'", var.id)))?;
    if t_idx != 0 || var.rank() != 3 {
        return Err(CdmsError::Invalid(
            "eof_analysis wants a (time, lat, lon) variable".into(),
        ));
    }
    let lat = var
        .axis(AxisKind::Latitude)
        .ok_or_else(|| CdmsError::NotFound("latitude axis".into()))?
        .clone();
    let lon = var
        .axis(AxisKind::Longitude)
        .ok_or_else(|| CdmsError::NotFound("longitude axis".into()))?
        .clone();
    let (nt, ny, nx) = (var.shape()[0], var.shape()[1], var.shape()[2]);
    if nt < 2 {
        return Err(CdmsError::Invalid("need at least 2 timesteps".into()));
    }
    let n_modes = n_modes.min(nt - 1).max(1);
    let space = ny * nx;

    // Valid points: unmasked at every timestep.
    let mut valid = vec![true; space];
    for t in 0..nt {
        for s in 0..space {
            if var.array.mask()[t * space + s] {
                valid[s] = false;
            }
        }
    }
    let cols: Vec<usize> = (0..space).filter(|&s| valid[s]).collect();
    if cols.len() < 2 {
        return Err(CdmsError::EmptySelection("fewer than 2 valid grid points".into()));
    }

    // Weighted anomaly matrix X: nt × n_cols, row-major.
    let sqrt_w: Vec<f64> = cols
        .iter()
        .map(|&s| lat.values[s / nx].to_radians().cos().max(0.0).sqrt())
        .collect();
    let n_cols = cols.len();
    let mut x = vec![0.0f64; nt * n_cols];
    for (j, &s) in cols.iter().enumerate() {
        let mut mean = 0.0;
        for t in 0..nt {
            mean += var.array.data()[t * space + s] as f64;
        }
        mean /= nt as f64;
        for t in 0..nt {
            x[t * n_cols + j] = (var.array.data()[t * space + s] as f64 - mean) * sqrt_w[j];
        }
    }

    let total_variance: f64 = x.iter().map(|v| v * v).sum();
    if total_variance <= 1e-30 {
        return Err(CdmsError::Invalid("zero variance field".into()));
    }

    // Power iteration with deflation on C = XᵀX (never formed; two
    // matvecs per step keep it O(nt·n_cols)).
    let matvec = |x: &[f64], v: &[f64]| -> Vec<f64> {
        // u = X v (length nt), then w = Xᵀ u (length n_cols)
        let mut u = vec![0.0f64; nt];
        for t in 0..nt {
            let row = &x[t * n_cols..(t + 1) * n_cols];
            u[t] = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
        let mut w = vec![0.0f64; n_cols];
        for t in 0..nt {
            let row = &x[t * n_cols..(t + 1) * n_cols];
            for (j, &r) in row.iter().enumerate() {
                w[j] += r * u[t];
            }
        }
        w
    };

    let mut x_work = x.clone();
    let mut eofs = Vec::with_capacity(n_modes);
    let mut pcs = Vec::with_capacity(n_modes);
    let mut explained = Vec::with_capacity(n_modes);

    for mode in 0..n_modes {
        // deterministic pseudo-random start vector
        let mut v: Vec<f64> = (0..n_cols)
            .map(|j| {
                let h = (j as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407 + mode as u64);
                ((h >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect();
        normalize(&mut v);
        let mut eigenvalue = 0.0f64;
        for _ in 0..300 {
            let mut w = matvec(&x_work, &v);
            let norm = normalize(&mut w);
            let delta: f64 =
                w.iter().zip(&v).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
            v = w;
            eigenvalue = norm;
            if delta < 1e-10 {
                break;
            }
        }
        if eigenvalue <= 1e-12 * total_variance {
            break; // remaining variance is numerically zero
        }

        // PC time series: X v (on the *original* anomaly matrix).
        let mut pc = vec![0.0f64; nt];
        for t in 0..nt {
            let row = &x[t * n_cols..(t + 1) * n_cols];
            pc[t] = row.iter().zip(&v).map(|(a, b)| a * b).sum();
        }

        // Deflate: X ← X − (X v) vᵀ using the *working* matrix.
        let mut pc_work = vec![0.0f64; nt];
        for t in 0..nt {
            let row = &x_work[t * n_cols..(t + 1) * n_cols];
            pc_work[t] = row.iter().zip(&v).map(|(a, b)| a * b).sum();
        }
        for t in 0..nt {
            let row = &mut x_work[t * n_cols..(t + 1) * n_cols];
            for (j, r) in row.iter_mut().enumerate() {
                *r -= pc_work[t] * v[j];
            }
        }

        // Un-weight the pattern back to physical space and scatter to grid.
        let mut data = vec![0.0f32; space];
        let mut mask = vec![true; space];
        for (j, &s) in cols.iter().enumerate() {
            let w = sqrt_w[j];
            data[s] = if w > 1e-12 { (v[j] / w) as f32 } else { 0.0 };
            mask[s] = false;
        }
        let array = MaskedArray::with_mask(data, mask, &[ny, nx])?;
        let mut pattern = Variable::new(
            &format!("{}_eof{}", var.id, mode + 1),
            array,
            vec![lat.clone(), lon.clone()],
        )?;
        pattern
            .attributes
            .insert("long_name".into(), format!("EOF {} of {}", mode + 1, var.id).into());

        eofs.push(pattern);
        pcs.push(pc);
        explained.push(eigenvalue / total_variance);
    }
    if eofs.is_empty() {
        return Err(CdmsError::Invalid("no modes converged".into()));
    }
    Ok(EofResult { eofs, pcs, explained })
}

fn normalize(v: &mut [f64]) -> f64 {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 1e-300 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdms::calendar::Calendar;
    use cdms::Axis;

    /// Builds a field that is exactly a1(t)·P1(x) + a2(t)·P2(x) with
    /// orthogonal patterns and uncorrelated amplitudes.
    fn two_mode_field(nt: usize, ny: usize, nx: usize) -> Variable {
        let time = Axis::time(
            (0..nt).map(|t| t as f64).collect(),
            "days since 2000-01-01",
            Calendar::NoLeap365,
        )
        .unwrap();
        let dlat = 180.0 / ny as f64;
        let lat = Axis::latitude(
            (0..ny).map(|j| -90.0 + dlat / 2.0 + dlat * j as f64).collect(),
        )
        .unwrap();
        let lon =
            Axis::longitude((0..nx).map(|i| 360.0 * i as f64 / nx as f64).collect()).unwrap();
        let arr = MaskedArray::from_fn(&[nt, ny, nx], |ix| {
            let (t, _j, i) = (ix[0] as f64, ix[1] as f64, ix[2] as f64);
            let lam = 2.0 * std::f64::consts::PI * i / nx as f64;
            // mode 1: wavenumber-1, strong slow amplitude
            let a1 = 10.0 * (0.3 * t).sin();
            let p1 = lam.sin();
            // mode 2: wavenumber-2, weaker faster amplitude
            let a2 = 3.0 * (1.1 * t).cos();
            let p2 = (2.0 * lam).cos();
            (a1 * p1 + a2 * p2) as f32
        });
        Variable::new("x", arr, vec![time, lat, lon]).unwrap()
    }

    #[test]
    fn recovers_planted_modes_in_order() {
        let v = two_mode_field(40, 8, 24);
        let r = eof_analysis(&v, 3).unwrap();
        assert!(r.eofs.len() >= 2);
        // first two modes explain nearly everything, in amplitude order
        assert!(r.explained[0] > r.explained[1]);
        assert!(r.explained[0] + r.explained[1] > 0.98, "{:?}", r.explained);
        // EOF1 has wavenumber-1 structure: correlate with sin(λ)
        let e1 = &r.eofs[0];
        let nx = 24;
        let mut dot = 0.0f64;
        let mut norm_a = 0.0f64;
        let mut norm_b = 0.0f64;
        for i in 0..nx {
            let lam = 2.0 * std::f64::consts::PI * i as f64 / nx as f64;
            let a = e1.array.get(&[4, i]).unwrap() as f64;
            let b = lam.sin();
            dot += a * b;
            norm_a += a * a;
            norm_b += b * b;
        }
        let corr = (dot / (norm_a.sqrt() * norm_b.sqrt())).abs();
        assert!(corr > 0.98, "EOF1 vs sin(λ) correlation {corr}");
    }

    #[test]
    fn pcs_are_uncorrelated() {
        let v = two_mode_field(40, 8, 24);
        let r = eof_analysis(&v, 2).unwrap();
        let (p1, p2) = (&r.pcs[0], &r.pcs[1]);
        let n = p1.len() as f64;
        let m1: f64 = p1.iter().sum::<f64>() / n;
        let m2: f64 = p2.iter().sum::<f64>() / n;
        let cov: f64 =
            p1.iter().zip(p2).map(|(a, b)| (a - m1) * (b - m2)).sum::<f64>() / n;
        let s1 = (p1.iter().map(|a| (a - m1) * (a - m1)).sum::<f64>() / n).sqrt();
        let s2 = (p2.iter().map(|a| (a - m2) * (a - m2)).sum::<f64>() / n).sqrt();
        assert!((cov / (s1 * s2)).abs() < 0.05, "PC correlation {}", cov / (s1 * s2));
    }

    #[test]
    fn reconstruction_from_modes_matches_input() {
        let v = two_mode_field(20, 6, 16);
        let r = eof_analysis(&v, 2).unwrap();
        // reconstruct anomalies: sum_k pc_k(t) · w·eof_k (weighted pattern)
        // X is exactly rank 2, so two SVD modes reconstruct the anomalies
        // exactly: anomaly(t, s) = Σ_k pc_k(t) · eof_k(s) (the √w weights
        // cancel between the stored un-weighted pattern and the PC).
        let (nt, ny, nx) = (20, 6, 16);
        let mut err = 0.0f64;
        let mut total = 0.0f64;
        for t in 0..nt {
            for j in 0..ny {
                for i in 0..nx {
                    let truth = v.array.get(&[t, j, i]).unwrap() as f64;
                    let mut recon = 0.0;
                    for k in 0..r.eofs.len() {
                        recon += r.pcs[k][t] * (r.eofs[k].array.get(&[j, i]).unwrap() as f64);
                    }
                    let mut mean = 0.0;
                    for tt in 0..nt {
                        mean += v.array.get(&[tt, j, i]).unwrap() as f64;
                    }
                    mean /= nt as f64;
                    err += (truth - mean - recon).powi(2);
                    total += (truth - mean).powi(2);
                }
            }
        }
        assert!(err / total.max(1e-12) < 0.02, "reconstruction error {}", err / total);
    }

    #[test]
    fn masked_points_stay_masked() {
        let mut v = two_mode_field(12, 6, 12);
        for t in 0..12 {
            v.array.mask_at(&[t, 2, 3]).unwrap();
        }
        // also a point masked at only one timestep is dropped entirely
        v.array.mask_at(&[5, 4, 7]).unwrap();
        let r = eof_analysis(&v, 1).unwrap();
        assert_eq!(r.eofs[0].array.get_valid(&[2, 3]).unwrap(), None);
        assert_eq!(r.eofs[0].array.get_valid(&[4, 7]).unwrap(), None);
        assert!(r.eofs[0].array.get_valid(&[0, 0]).unwrap().is_some());
    }

    #[test]
    fn input_validation() {
        let v = two_mode_field(12, 6, 12);
        // not (time, lat, lon)
        let slab = v.time_slab(0).unwrap();
        assert!(eof_analysis(&slab, 1).is_err());
        // too few timesteps
        let short = two_mode_field(1, 6, 12);
        assert!(eof_analysis(&short, 1).is_err());
        // constant field
        let time = Axis::time(vec![0.0, 1.0], "days since 2000-01-01", Calendar::NoLeap365)
            .unwrap();
        let lat = Axis::latitude(vec![-45.0, 45.0]).unwrap();
        let lon = Axis::longitude(vec![0.0, 180.0]).unwrap();
        let flat = Variable::new(
            "c",
            MaskedArray::filled(1.0, &[2, 2, 2]),
            vec![time, lat, lon],
        )
        .unwrap();
        assert!(eof_analysis(&flat, 1).is_err());
    }

    #[test]
    fn n_modes_clamped_to_nt_minus_one() {
        let v = two_mode_field(4, 6, 12);
        let r = eof_analysis(&v, 10).unwrap();
        assert!(r.eofs.len() <= 3);
    }
}
