//! Frozen pre-fusion reference implementations.
//!
//! These are verbatim copies of the eager, serial analysis kernels as they
//! stood *before* the fused expression engine ([`crate::expr`]) and the
//! deterministic reduction kernel ([`crate::reduce`]) replaced them. They
//! exist for two reasons:
//!
//! 1. **Oracles.** The property tests in `crates/cdat/tests/expr_fusion.rs`
//!    check the fused paths against these bit-for-bit (elementwise ops,
//!    axis means) or within tight tolerances (compensated global sums).
//! 2. **Ablation baseline.** `benches/analysis.rs` times the
//!    anomaly → standardize → spatial-mean pipeline through these kernels
//!    to measure what fusion actually buys.
//!
//! Do not "improve" this module: its value is that it does not change.
//! Elementwise chains need no copies here — the eager `cdms::MaskedArray`
//! ops (`binop`/`map`/`mask_where`) remain the materializing reference and
//! are composed directly by the tests.

use cdms::axis::AxisKind;
use cdms::{CdmsError, Result, Variable};

/// Pre-fusion `averager::average_over`: eager serial `weighted_mean_axis`.
pub fn average_over(var: &Variable, kind: AxisKind) -> Result<Variable> {
    let idx = var
        .axis_index(kind)
        .ok_or_else(|| CdmsError::NotFound(format!("{kind:?} axis on '{}'", var.id)))?;
    let weights = var.axes[idx].weights();
    let array = var.array.weighted_mean_axis(idx, &weights)?;
    let mut axes = var.axes.clone();
    axes.remove(idx);
    if axes.is_empty() {
        axes.push(cdms::Axis::new("scalar", vec![0.0], "", AxisKind::Generic)?);
    }
    let mut v = Variable::new(&var.id, array, axes)?;
    v.attributes = var.attributes.clone();
    Ok(v)
}

/// Pre-fusion `averager::spatial_mean`.
pub fn spatial_mean(var: &Variable) -> Result<Variable> {
    let lat = average_over(var, AxisKind::Latitude)?;
    average_over(&lat, AxisKind::Longitude)
}

/// Pre-fusion `averager::running_mean_time`: the O(n·window) sliding
/// recompute — every output element re-walks its whole window.
pub fn running_mean_time(var: &Variable, window: usize) -> Result<Variable> {
    if window == 0 || window.is_multiple_of(2) {
        return Err(CdmsError::Invalid(format!("window {window} must be odd and > 0")));
    }
    let t_idx = var
        .axis_index(AxisKind::Time)
        .ok_or_else(|| CdmsError::NotFound(format!("time axis on '{}'", var.id)))?;
    let nt = var.axes[t_idx].len();
    let half = window / 2;
    let mut out = var.array.clone();
    let strides = var.array.strides();
    let t_stride = strides[t_idx] as i64;
    for flat in 0..var.array.len() {
        // time index of this element
        let t = (flat / strides[t_idx]) % nt;
        let lo = t.saturating_sub(half);
        let hi = (t + half).min(nt - 1);
        let mut sum = 0.0f64;
        let mut cnt = 0usize;
        for tt in lo..=hi {
            let src = (flat as i64 + (tt as i64 - t as i64) * t_stride) as usize;
            if !var.array.mask()[src] {
                sum += var.array.data()[src] as f64;
                cnt += 1;
            }
        }
        if cnt > 0 {
            out.data_mut()[flat] = (sum / cnt as f64) as f32;
            out.mask_mut()[flat] = false;
        } else {
            out.mask_mut()[flat] = true;
        }
    }
    let mut v = Variable::new(&var.id, out, var.axes.clone())?;
    v.attributes = var.attributes.clone();
    Ok(v)
}

/// Pre-fusion `climatology::anomaly`: eager time mean, clone, then a
/// serial subtract loop over every element.
pub fn anomaly(var: &Variable) -> Result<Variable> {
    let t_idx = var
        .axis_index(AxisKind::Time)
        .ok_or_else(|| CdmsError::NotFound(format!("time axis on '{}'", var.id)))?;
    let mean = var.array.reduce_axis(t_idx, cdms::array::Reduction::Mean)?;
    let nt = var.shape()[t_idx];
    let inner: usize = var.shape()[t_idx + 1..].iter().product();
    let mut out = var.array.clone();
    // subtract the mean slab from each time slab
    for t in 0..nt {
        for slab_i in 0..mean.len() {
            let o = slab_i / inner;
            let i = slab_i % inner;
            let flat = o * (nt * inner) + t * inner + i;
            if mean.mask()[slab_i] || out.mask()[flat] {
                out.mask_mut()[flat] = true;
            } else {
                out.data_mut()[flat] -= mean.data()[slab_i];
            }
        }
    }
    let mut v = Variable::new(&format!("{}_anom", var.id), out, var.axes.clone())?;
    v.attributes = var.attributes.clone();
    Ok(v)
}

/// Pre-fusion `statistics::standardize`: two eager global reductions plus
/// a materializing `map`.
pub fn standardize(var: &Variable) -> Result<Variable> {
    let mean = var
        .array
        .mean()
        .ok_or_else(|| CdmsError::EmptySelection("all masked".into()))?;
    let std = var.array.std().unwrap_or(0.0);
    if std <= 0.0 {
        return Err(CdmsError::Invalid("zero variance".into()));
    }
    let arr = var.array.map(|x| (x - mean) / std);
    let mut v = Variable::new(&format!("{}_std", var.id), arr, var.axes.clone())?;
    v.attributes = var.attributes.clone();
    Ok(v)
}

/// Pre-fusion `statistics::correlation`: one serial pass of plain `f64`
/// running sums.
pub fn correlation(a: &Variable, b: &Variable) -> Result<f64> {
    crate::ops::check_domains(a, b)?;
    let mut n = 0usize;
    let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
    for i in 0..a.array.len() {
        if a.array.mask()[i] || b.array.mask()[i] {
            continue;
        }
        let x = a.array.data()[i] as f64;
        let y = b.array.data()[i] as f64;
        n += 1;
        sx += x;
        sy += y;
        sxx += x * x;
        syy += y * y;
        sxy += x * y;
    }
    if n < 2 {
        return Err(CdmsError::EmptySelection("fewer than 2 valid pairs".into()));
    }
    let nf = n as f64;
    let cov = sxy / nf - (sx / nf) * (sy / nf);
    let vx = (sxx / nf - (sx / nf).powi(2)).max(0.0);
    let vy = (syy / nf - (sy / nf).powi(2)).max(0.0);
    if vx <= 0.0 || vy <= 0.0 {
        return Err(CdmsError::Invalid("zero variance".into()));
    }
    Ok(cov / (vx.sqrt() * vy.sqrt()))
}

/// Pre-fusion `statistics::rmse`.
pub fn rmse(a: &Variable, b: &Variable) -> Result<f64> {
    crate::ops::check_domains(a, b)?;
    let mut n = 0usize;
    let mut acc = 0.0f64;
    for i in 0..a.array.len() {
        if a.array.mask()[i] || b.array.mask()[i] {
            continue;
        }
        let d = (a.array.data()[i] - b.array.data()[i]) as f64;
        acc += d * d;
        n += 1;
    }
    if n == 0 {
        return Err(CdmsError::EmptySelection("no valid pairs".into()));
    }
    Ok((acc / n as f64).sqrt())
}

/// Pre-fusion `ops::magnitude`: three materialized intermediates plus a
/// materializing sqrt map.
pub fn magnitude(u: &Variable, v: &Variable) -> Result<Variable> {
    crate::ops::check_domains(u, v)?;
    let uu = u.array.mul(&u.array)?;
    let vv = v.array.mul(&v.array)?;
    let sum = uu.add(&vv)?;
    let mut out = Variable::new("speed", sum.map(|x| x.sqrt()), u.axes.clone())?;
    out.attributes = u.attributes.clone();
    out.attributes.insert("long_name".into(), "wind speed".into());
    Ok(out)
}
