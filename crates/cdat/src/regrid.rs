//! Regridding: horizontal bilinear and conservative remapping between
//! rectilinear grids, plus vertical interpolation to new pressure levels —
//! the `regrid2` / `vertical` equivalents.
//!
//! The horizontal paths are thin wrappers over the plan/apply engine in
//! [`crate::regrid_plan`]: the sparse weight matrix for a `(source grid,
//! target grid, method)` triple is planned once, cached in the
//! process-global [`crate::plan_cache`], and re-applied as a parallel
//! sparse mat-vec — so animations and spreadsheet cells that regrid the
//! same grid pair every timestep only pay the apply cost.

use crate::plan_cache;
use crate::regrid_plan::{horizontal_axes, plan_key, RegridMethod, RegridPlan};
use cdms::grid::{axes_fingerprint, RectGrid};
use cdms::axis::AxisKind;
use cdms::{CdmsError, MaskedArray, Result, Variable};

/// Regrids `var` onto `target` with `method`, planning through the global
/// plan cache.
pub fn regrid(var: &Variable, target: &RectGrid, method: RegridMethod) -> Result<Variable> {
    let (lat_i, lon_i) = horizontal_axes(var)?;
    let src_lat = &var.axes[lat_i];
    let src_lon = &var.axes[lon_i];
    let key = plan_key(axes_fingerprint(src_lat, src_lon), target.fingerprint(), method);
    let plan = plan_cache::shared_global()
        .get_or_build(key, || RegridPlan::build(method, src_lat, src_lon, target))?;
    plan.apply(var)
}

/// Regrids N ensemble members onto `target` with one plan-cache consult
/// and a single blocked multi-RHS apply ([`RegridPlan::apply_batch`]):
/// a 200-member ensemble touches the cache once instead of contending
/// 200 times, and the weight matrix streams through cache once per row
/// band instead of once per member. Every member must sit on the same
/// source grid; outputs are bit-identical to per-member [`regrid`] calls.
pub fn regrid_batch(
    members: &[&Variable],
    target: &RectGrid,
    method: RegridMethod,
) -> Result<Vec<Variable>> {
    let Some(first) = members.first() else {
        return Ok(Vec::new());
    };
    let (lat_i, lon_i) = horizontal_axes(first)?;
    let (src_lat, src_lon) = match (first.axes.get(lat_i), first.axes.get(lon_i)) {
        (Some(a), Some(b)) => (a, b),
        _ => return Err(CdmsError::Invalid("horizontal axes out of range".into())),
    };
    let key = plan_key(axes_fingerprint(src_lat, src_lon), target.fingerprint(), method);
    let plan = plan_cache::shared_global()
        .get_or_build(key, || RegridPlan::build(method, src_lat, src_lon, target))?;
    plan.apply_batch(members)
}

/// Bilinear regridding onto `target`. Longitude wraps for circular source
/// axes; masked source corners invalidate the interpolated point (a
/// conservative mask-propagation choice). Leading (time/level) axes are
/// preserved.
pub fn bilinear(var: &Variable, target: &RectGrid) -> Result<Variable> {
    regrid(var, target, RegridMethod::Bilinear)
}

/// First-order conservative remapping: each target cell's value is the
/// area-weighted mean of the overlapping source cells. Conserves the
/// area-weighted integral of valid data (the property test checks this).
pub fn conservative(var: &Variable, target: &RectGrid) -> Result<Variable> {
    regrid(var, target, RegridMethod::Conservative)
}

fn order(a: f64, b: f64) -> (f64, f64) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Area-weighted global integral mean of the last-two-axes field (helper
/// used by conservation tests and diagnostics).
pub fn area_mean_2d(var: &Variable) -> Result<f64> {
    let (lat_i, _) = horizontal_axes(var)?;
    if var.rank() != 2 {
        return Err(CdmsError::Invalid("area_mean_2d wants a rank-2 field".into()));
    }
    let grid = RectGrid::new(var.axes[lat_i].clone(), var.axes[lat_i + 1].clone())?;
    let areas = grid.cell_areas();
    let mut wsum = 0.0;
    let mut vsum = 0.0;
    for (i, &a) in areas.iter().enumerate() {
        if !var.array.mask()[i] {
            wsum += a;
            vsum += a * var.array.data()[i] as f64;
        }
    }
    if wsum <= 0.0 {
        return Err(CdmsError::EmptySelection("all masked".into()));
    }
    Ok(vsum / wsum)
}

/// Linear-in-log-pressure vertical interpolation onto new pressure levels.
/// Levels outside the source range are masked (no extrapolation).
pub fn pressure_interp(var: &Variable, new_levels: &[f64]) -> Result<Variable> {
    let lev_i = var
        .axis_index(AxisKind::Level)
        .ok_or_else(|| CdmsError::NotFound(format!("level axis on '{}'", var.id)))?;
    let src = &var.axes[lev_i];
    if new_levels.is_empty() {
        return Err(CdmsError::Invalid("no target levels".into()));
    }
    // work in ln(p); source must be monotonic (Axis guarantees it)
    let src_logs: Vec<f64> = src.values.iter().map(|&p| p.ln()).collect();
    let (src_lo, src_hi) = {
        let (a, b) = src.range();
        order(a, b)
    };

    let nl_s = src.len();
    let nl_t = new_levels.len();
    let outer: usize = var.shape()[..lev_i].iter().product();
    let inner: usize = var.shape()[lev_i + 1..].iter().product();

    let mut out_shape = var.shape().to_vec();
    out_shape[lev_i] = nl_t;
    let mut data = vec![0.0f32; outer * nl_t * inner];
    let mut mask = vec![false; data.len()];

    for (lt, &p_new) in new_levels.iter().enumerate() {
        if p_new < src_lo - 1e-9 || p_new > src_hi + 1e-9 || p_new <= 0.0 {
            for o in 0..outer {
                for i in 0..inner {
                    mask[(o * nl_t + lt) * inner + i] = true;
                }
            }
            continue;
        }
        let lp = p_new.ln();
        // find bracketing source levels in log space
        let mut k0 = 0usize;
        for k in 0..nl_s - 1 {
            let (a, b) = order(src_logs[k], src_logs[k + 1]);
            if lp >= a - 1e-12 && lp <= b + 1e-12 {
                k0 = k;
                break;
            }
        }
        let (la, lb) = (src_logs[k0], src_logs[k0 + 1]);
        let f = if (lb - la).abs() < 1e-12 { 0.0 } else { ((lp - la) / (lb - la)).clamp(0.0, 1.0) };
        for o in 0..outer {
            for i in 0..inner {
                let s0 = (o * nl_s + k0) * inner + i;
                let s1 = (o * nl_s + k0 + 1) * inner + i;
                let dst = (o * nl_t + lt) * inner + i;
                if var.array.mask()[s0] || var.array.mask()[s1] {
                    mask[dst] = true;
                } else {
                    let v = var.array.data()[s0] as f64 * (1.0 - f)
                        + var.array.data()[s1] as f64 * f;
                    data[dst] = v as f32;
                }
            }
        }
    }

    let array = MaskedArray::with_mask(data, mask, &out_shape)?;
    let mut axes = var.axes.clone();
    axes[lev_i] = cdms::Axis::pressure_levels(new_levels.to_vec())?;
    let mut v = Variable::new(&var.id, array, axes)?;
    v.attributes = var.attributes.clone();
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdms::synth::SynthesisSpec;
    use cdms::Axis;

    #[test]
    fn bilinear_preserves_linear_fields() {
        // f(lat, lon) = lat → regridding must be exact for interior points
        let src_grid = RectGrid::uniform(18, 36).unwrap();
        let arr = MaskedArray::from_fn(&[18, 36], |ix| src_grid.lat.values[ix[0]] as f32);
        let v = Variable::new("f", arr, vec![src_grid.lat.clone(), src_grid.lon.clone()]).unwrap();
        let dst = RectGrid::uniform(12, 24).unwrap();
        let r = bilinear(&v, &dst).unwrap();
        assert_eq!(r.shape(), &[12, 24]);
        for j in 1..11 {
            for i in 0..24 {
                let got = r.array.get(&[j, i]).unwrap() as f64;
                let want = dst.lat.values[j];
                assert!((got - want).abs() < 1e-3, "({j},{i}): {got} vs {want}");
            }
        }
    }

    #[test]
    fn bilinear_wraps_longitude() {
        // f = cos(lon) is continuous across the wrap point
        let src = RectGrid::uniform(8, 36).unwrap();
        let arr = MaskedArray::from_fn(&[8, 36], |ix| {
            (src.lon.values[ix[1]].to_radians().cos()) as f32
        });
        let v = Variable::new("f", arr, vec![src.lat.clone(), src.lon.clone()]).unwrap();
        // a target grid whose first lon is between src's last cell and 360
        let lat = Axis::latitude(vec![-10.0, 10.0]).unwrap();
        let lon = Axis::longitude(vec![355.0, 359.0]).unwrap();
        let dst = RectGrid::new(lat, lon).unwrap();
        let r = bilinear(&v, &dst).unwrap();
        for i in 0..2 {
            let got = r.array.get(&[0, i]).unwrap() as f64;
            let want = dst.lon.values[i].to_radians().cos();
            assert!((got - want).abs() < 0.02, "{got} vs {want}");
        }
    }

    #[test]
    fn bilinear_preserves_leading_axes_and_masks() {
        let ds = SynthesisSpec::new(2, 3, 16, 32).build();
        let ta = ds.variable("ta").unwrap();
        let dst = RectGrid::uniform(8, 16).unwrap();
        let r = bilinear(ta, &dst).unwrap();
        assert_eq!(r.shape(), &[2, 3, 8, 16]);
        // masked field keeps holes
        let tos = ds.variable("tos").unwrap();
        let r2 = bilinear(tos, &dst).unwrap();
        assert!(r2.array.valid_count() < r2.array.len());
        assert!(r2.array.valid_count() > 0);
    }

    #[test]
    fn requires_trailing_lat_lon() {
        let ds = SynthesisSpec::new(2, 1, 8, 16).build();
        let ta = ds.variable("ta").unwrap();
        let scrambled = Variable::new(
            "x",
            ta.array.transpose(&[3, 0, 1, 2]).unwrap(),
            vec![
                ta.axes[3].clone(),
                ta.axes[0].clone(),
                ta.axes[1].clone(),
                ta.axes[2].clone(),
            ],
        )
        .unwrap();
        let dst = RectGrid::uniform(4, 8).unwrap();
        assert!(bilinear(&scrambled, &dst).is_err());
        assert!(conservative(&scrambled, &dst).is_err());
    }

    #[test]
    fn conservative_conserves_global_mean() {
        let src_grid = RectGrid::uniform(24, 48).unwrap();
        // a bumpy field
        let arr = MaskedArray::from_fn(&[24, 48], |ix| {
            let phi = src_grid.lat.values[ix[0]].to_radians();
            let lam = src_grid.lon.values[ix[1]].to_radians();
            (10.0 + 5.0 * (2.0 * lam).sin() * phi.cos() + 3.0 * (3.0 * phi).sin()) as f32
        });
        let v =
            Variable::new("f", arr, vec![src_grid.lat.clone(), src_grid.lon.clone()]).unwrap();
        let before = area_mean_2d(&v).unwrap();
        for (nlat, nlon) in [(12, 24), (10, 20), (32, 64)] {
            let dst = RectGrid::uniform(nlat, nlon).unwrap();
            let r = conservative(&v, &dst).unwrap();
            let after = area_mean_2d(&r).unwrap();
            assert!(
                (before - after).abs() < 1e-4 * before.abs().max(1.0),
                "{nlat}x{nlon}: {before} vs {after}"
            );
        }
    }

    #[test]
    fn conservative_handles_masks() {
        let ds = SynthesisSpec::new(1, 1, 16, 32).build();
        let tos = ds.variable("tos").unwrap().time_slab(0).unwrap();
        let dst = RectGrid::uniform(8, 16).unwrap();
        let r = conservative(&tos, &dst).unwrap();
        // some cells masked (all-land target cells), most valid
        assert!(r.array.valid_count() > 0);
        let (lo, hi) = r.array.min_max().unwrap();
        assert!(lo > 260.0 && hi < 310.0, "[{lo}, {hi}]");
    }

    #[test]
    fn coarse_to_fine_and_back_is_stable() {
        let src = RectGrid::uniform(8, 16).unwrap();
        let arr = MaskedArray::from_fn(&[8, 16], |ix| (ix[0] * 16 + ix[1]) as f32);
        let v = Variable::new("f", arr, vec![src.lat.clone(), src.lon.clone()]).unwrap();
        let fine = RectGrid::uniform(32, 64).unwrap();
        let up = conservative(&v, &fine).unwrap();
        let back = conservative(&up, &src).unwrap();
        let m0 = area_mean_2d(&v).unwrap();
        let m1 = area_mean_2d(&back).unwrap();
        assert!((m0 - m1).abs() < 1e-3);
    }

    #[test]
    fn pressure_interp_log_linear() {
        let ds = SynthesisSpec::new(1, 8, 6, 12).noise(0.0).build();
        let ta = ds.variable("ta").unwrap();
        // interpolating onto the source levels reproduces them
        let src_levels = ta.axis(AxisKind::Level).unwrap().values.clone();
        let same = pressure_interp(ta, &src_levels).unwrap();
        for i in 0..40 {
            assert!(
                (same.array.data()[i] - ta.array.data()[i]).abs() < 1e-3,
                "{i}"
            );
        }
        // a midpoint level lands between its neighbours
        let mid = pressure_interp(ta, &[962.0]).unwrap();
        let v0 = ta.array.get(&[0, 0, 3, 3]).unwrap();
        let v1 = ta.array.get(&[0, 1, 3, 3]).unwrap();
        let vm = mid.array.get(&[0, 0, 3, 3]).unwrap();
        assert!((vm - v0.min(v1)) > -0.01 && (v0.max(v1) - vm) > -0.01, "{v0} {vm} {v1}");
    }

    #[test]
    fn pressure_interp_masks_out_of_range() {
        let ds = SynthesisSpec::new(1, 4, 4, 8).build();
        let ta = ds.variable("ta").unwrap(); // levels 1000..700
        let r = pressure_interp(ta, &[2000.0, 850.0, 10.0]).unwrap();
        assert_eq!(r.shape()[1], 3);
        assert_eq!(r.array.get_valid(&[0, 0, 0, 0]).unwrap(), None); // 2000 hPa below ground
        assert!(r.array.get_valid(&[0, 1, 0, 0]).unwrap().is_some());
        assert_eq!(r.array.get_valid(&[0, 2, 0, 0]).unwrap(), None); // 10 hPa above top
        assert!(pressure_interp(ta, &[]).is_err());
        let lf = ds.variable("sftlf").unwrap();
        assert!(pressure_interp(lf, &[500.0]).is_err());
    }
}
