//! Regridding: horizontal bilinear and conservative remapping between
//! rectilinear grids, plus vertical interpolation to new pressure levels —
//! the `regrid2` / `vertical` equivalents.

use cdms::axis::AxisKind;
use cdms::grid::RectGrid;
use rayon::prelude::*;
use cdms::{CdmsError, MaskedArray, Result, Variable};

/// Validates the variable ends with (…, lat, lon) axes and returns their
/// indices.
fn horizontal_axes(var: &Variable) -> Result<(usize, usize)> {
    let lat = var
        .axis_index(AxisKind::Latitude)
        .ok_or_else(|| CdmsError::NotFound(format!("latitude axis on '{}'", var.id)))?;
    let lon = var
        .axis_index(AxisKind::Longitude)
        .ok_or_else(|| CdmsError::NotFound(format!("longitude axis on '{}'", var.id)))?;
    if lon != var.rank() - 1 || lat != var.rank() - 2 {
        return Err(CdmsError::Invalid(format!(
            "'{}' must end with (lat, lon) axes; use to_canonical_order() first",
            var.id
        )));
    }
    Ok((lat, lon))
}

/// Bilinear regridding onto `target`. Longitude wraps for circular source
/// axes; masked source corners invalidate the interpolated point (a
/// conservative mask-propagation choice). Leading (time/level) axes are
/// preserved.
pub fn bilinear(var: &Variable, target: &RectGrid) -> Result<Variable> {
    let (lat_i, lon_i) = horizontal_axes(var)?;
    let src_lat = &var.axes[lat_i];
    let src_lon = &var.axes[lon_i];
    let (ny_s, nx_s) = (src_lat.len(), src_lon.len());
    let (ny_t, nx_t) = target.shape();
    let wrap = src_lon.is_circular();

    // Precompute interpolation stencils per target row/col.
    let lat_stencil: Vec<(usize, f64)> = target
        .lat
        .values
        .iter()
        .map(|&phi| src_lat.fractional_index(phi))
        .collect();
    let lon_stencil: Vec<(usize, usize, f64)> = target
        .lon
        .values
        .iter()
        .map(|&lam| {
            if wrap {
                // wrap-aware fractional index
                let lam_n = normalize_lon(lam, src_lon.values[0]);
                let span = 360.0 / nx_s as f64;
                // find bracketing cell allowing wraparound
                let mut i0 = 0usize;
                let mut frac = 0.0f64;
                let mut found = false;
                for i in 0..nx_s {
                    let a = src_lon.values[i];
                    let b = if i + 1 < nx_s { src_lon.values[i + 1] } else { src_lon.values[0] + 360.0 };
                    if lam_n >= a - 1e-9 && lam_n <= b + 1e-9 && (b - a).abs() < 2.0 * span {
                        i0 = i;
                        frac = ((lam_n - a) / (b - a)).clamp(0.0, 1.0);
                        found = true;
                        break;
                    }
                }
                if !found {
                    let (i, f) = src_lon.fractional_index(lam_n);
                    (i, (i + 1).min(nx_s - 1), f)
                } else {
                    (i0, (i0 + 1) % nx_s, frac)
                }
            } else {
                let (i, f) = src_lon.fractional_index(lam);
                (i, (i + 1).min(nx_s - 1), f)
            }
        })
        .collect();

    let leading: usize = var.shape()[..lat_i].iter().product();
    let src_plane = ny_s * nx_s;
    let dst_plane = ny_t * nx_t;
    let mut data = vec![0.0f32; leading * dst_plane];
    let mut mask = vec![false; leading * dst_plane];

    // Each leading slab (time x level plane) is independent: regrid them in
    // parallel with rayon.
    data.par_chunks_mut(dst_plane)
        .zip(mask.par_chunks_mut(dst_plane))
        .enumerate()
        .for_each(|(l, (data_sl, mask_sl))| {
            let src_off = l * src_plane;
            for (jt, &(j0, fy)) in lat_stencil.iter().enumerate() {
                let j1 = (j0 + 1).min(ny_s - 1);
                for (it, &(i0, i1, fx)) in lon_stencil.iter().enumerate() {
                    let idx = |j: usize, i: usize| src_off + j * nx_s + i;
                    let corners = [idx(j0, i0), idx(j0, i1), idx(j1, i0), idx(j1, i1)];
                    let dst = jt * nx_t + it;
                    if corners.iter().any(|&c| var.array.mask()[c]) {
                        mask_sl[dst] = true;
                        continue;
                    }
                    let d = var.array.data();
                    let v0 = d[corners[0]] as f64 * (1.0 - fx) + d[corners[1]] as f64 * fx;
                    let v1 = d[corners[2]] as f64 * (1.0 - fx) + d[corners[3]] as f64 * fx;
                    data_sl[dst] = (v0 * (1.0 - fy) + v1 * fy) as f32;
                }
            }
        });

    let mut out_shape = var.shape()[..lat_i].to_vec();
    out_shape.push(ny_t);
    out_shape.push(nx_t);
    let array = MaskedArray::with_mask(data, mask, &out_shape)?;
    let mut axes = var.axes[..lat_i].to_vec();
    axes.push(target.lat.clone());
    axes.push(target.lon.clone());
    let mut v = Variable::new(&var.id, array, axes)?;
    v.attributes = var.attributes.clone();
    Ok(v)
}

fn normalize_lon(lam: f64, base: f64) -> f64 {
    let mut l = (lam - base).rem_euclid(360.0) + base;
    if l < base {
        l += 360.0;
    }
    l
}

/// First-order conservative remapping: each target cell's value is the
/// area-weighted mean of the overlapping source cells. Conserves the
/// area-weighted integral of valid data (the property test checks this).
pub fn conservative(var: &Variable, target: &RectGrid) -> Result<Variable> {
    let (lat_i, lon_i) = horizontal_axes(var)?;
    let mut src_lat = var.axes[lat_i].clone();
    let mut src_lon = var.axes[lon_i].clone();
    let slat_b = src_lat.bounds_or_gen();
    let slon_b = src_lon.bounds_or_gen();
    let tlat_b = target.lat.clone().bounds_or_gen();
    let tlon_b = target.lon.clone().bounds_or_gen();
    let (ny_s, nx_s) = (src_lat.len(), src_lon.len());
    let (ny_t, nx_t) = target.shape();

    // Latitude overlaps in sin-lat (exact sphere areas).
    let overlap_lat: Vec<Vec<(usize, f64)>> = tlat_b
        .iter()
        .map(|&(lo_t, hi_t)| {
            let (lo_t, hi_t) = order(lo_t, hi_t);
            let mut v = Vec::new();
            for (j, &(lo_s, hi_s)) in slat_b.iter().enumerate() {
                let (lo_s, hi_s) = order(lo_s, hi_s);
                let lo = lo_t.max(lo_s);
                let hi = hi_t.min(hi_s);
                if hi > lo {
                    let w = hi.to_radians().sin() - lo.to_radians().sin();
                    if w > 0.0 {
                        v.push((j, w));
                    }
                }
            }
            v
        })
        .collect();
    // Longitude overlaps modulo 360.
    let overlap_lon: Vec<Vec<(usize, f64)>> = tlon_b
        .iter()
        .map(|&(lo_t, hi_t)| {
            let (lo_t, hi_t) = order(lo_t, hi_t);
            let mut v = Vec::new();
            for (i, &(lo_s, hi_s)) in slon_b.iter().enumerate() {
                let (lo_s, hi_s) = order(lo_s, hi_s);
                // try the source cell shifted by -360, 0, +360
                for shift in [-360.0, 0.0, 360.0] {
                    let lo = lo_t.max(lo_s + shift);
                    let hi = hi_t.min(hi_s + shift);
                    if hi > lo {
                        v.push((i, hi - lo));
                    }
                }
            }
            v
        })
        .collect();

    let leading: usize = var.shape()[..lat_i].iter().product();
    let src_plane = ny_s * nx_s;
    let dst_plane = ny_t * nx_t;
    let mut data = vec![0.0f32; leading * dst_plane];
    let mut mask = vec![false; leading * dst_plane];

    for l in 0..leading {
        let src_off = l * src_plane;
        let dst_off = l * dst_plane;
        for jt in 0..ny_t {
            for it in 0..nx_t {
                let mut wsum = 0.0f64;
                let mut vsum = 0.0f64;
                for &(js, wy) in &overlap_lat[jt] {
                    for &(is, wx) in &overlap_lon[it] {
                        let src = src_off + js * nx_s + is;
                        if !var.array.mask()[src] {
                            let w = wy * wx;
                            wsum += w;
                            vsum += w * var.array.data()[src] as f64;
                        }
                    }
                }
                let dst = dst_off + jt * nx_t + it;
                if wsum > 0.0 {
                    data[dst] = (vsum / wsum) as f32;
                } else {
                    mask[dst] = true;
                }
            }
        }
    }

    let mut out_shape = var.shape()[..lat_i].to_vec();
    out_shape.push(ny_t);
    out_shape.push(nx_t);
    let array = MaskedArray::with_mask(data, mask, &out_shape)?;
    let mut axes = var.axes[..lat_i].to_vec();
    axes.push(target.lat.clone());
    axes.push(target.lon.clone());
    let mut v = Variable::new(&var.id, array, axes)?;
    v.attributes = var.attributes.clone();
    Ok(v)
}

fn order(a: f64, b: f64) -> (f64, f64) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Area-weighted global integral mean of the last-two-axes field (helper
/// used by conservation tests and diagnostics).
pub fn area_mean_2d(var: &Variable) -> Result<f64> {
    let (lat_i, _) = horizontal_axes(var)?;
    if var.rank() != 2 {
        return Err(CdmsError::Invalid("area_mean_2d wants a rank-2 field".into()));
    }
    let grid = RectGrid::new(var.axes[lat_i].clone(), var.axes[lat_i + 1].clone())?;
    let areas = grid.cell_areas();
    let mut wsum = 0.0;
    let mut vsum = 0.0;
    for (i, &a) in areas.iter().enumerate() {
        if !var.array.mask()[i] {
            wsum += a;
            vsum += a * var.array.data()[i] as f64;
        }
    }
    if wsum <= 0.0 {
        return Err(CdmsError::EmptySelection("all masked".into()));
    }
    Ok(vsum / wsum)
}

/// Linear-in-log-pressure vertical interpolation onto new pressure levels.
/// Levels outside the source range are masked (no extrapolation).
pub fn pressure_interp(var: &Variable, new_levels: &[f64]) -> Result<Variable> {
    let lev_i = var
        .axis_index(AxisKind::Level)
        .ok_or_else(|| CdmsError::NotFound(format!("level axis on '{}'", var.id)))?;
    let src = &var.axes[lev_i];
    if new_levels.is_empty() {
        return Err(CdmsError::Invalid("no target levels".into()));
    }
    // work in ln(p); source must be monotonic (Axis guarantees it)
    let src_logs: Vec<f64> = src.values.iter().map(|&p| p.ln()).collect();
    let (src_lo, src_hi) = {
        let (a, b) = src.range();
        order(a, b)
    };

    let nl_s = src.len();
    let nl_t = new_levels.len();
    let outer: usize = var.shape()[..lev_i].iter().product();
    let inner: usize = var.shape()[lev_i + 1..].iter().product();

    let mut out_shape = var.shape().to_vec();
    out_shape[lev_i] = nl_t;
    let mut data = vec![0.0f32; outer * nl_t * inner];
    let mut mask = vec![false; data.len()];

    for (lt, &p_new) in new_levels.iter().enumerate() {
        if p_new < src_lo - 1e-9 || p_new > src_hi + 1e-9 || p_new <= 0.0 {
            for o in 0..outer {
                for i in 0..inner {
                    mask[(o * nl_t + lt) * inner + i] = true;
                }
            }
            continue;
        }
        let lp = p_new.ln();
        // find bracketing source levels in log space
        let mut k0 = 0usize;
        for k in 0..nl_s - 1 {
            let (a, b) = order(src_logs[k], src_logs[k + 1]);
            if lp >= a - 1e-12 && lp <= b + 1e-12 {
                k0 = k;
                break;
            }
        }
        let (la, lb) = (src_logs[k0], src_logs[k0 + 1]);
        let f = if (lb - la).abs() < 1e-12 { 0.0 } else { ((lp - la) / (lb - la)).clamp(0.0, 1.0) };
        for o in 0..outer {
            for i in 0..inner {
                let s0 = (o * nl_s + k0) * inner + i;
                let s1 = (o * nl_s + k0 + 1) * inner + i;
                let dst = (o * nl_t + lt) * inner + i;
                if var.array.mask()[s0] || var.array.mask()[s1] {
                    mask[dst] = true;
                } else {
                    let v = var.array.data()[s0] as f64 * (1.0 - f)
                        + var.array.data()[s1] as f64 * f;
                    data[dst] = v as f32;
                }
            }
        }
    }

    let array = MaskedArray::with_mask(data, mask, &out_shape)?;
    let mut axes = var.axes.clone();
    axes[lev_i] = cdms::Axis::pressure_levels(new_levels.to_vec())?;
    let mut v = Variable::new(&var.id, array, axes)?;
    v.attributes = var.attributes.clone();
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdms::synth::SynthesisSpec;
    use cdms::Axis;

    #[test]
    fn bilinear_preserves_linear_fields() {
        // f(lat, lon) = lat → regridding must be exact for interior points
        let src_grid = RectGrid::uniform(18, 36).unwrap();
        let arr = MaskedArray::from_fn(&[18, 36], |ix| src_grid.lat.values[ix[0]] as f32);
        let v = Variable::new("f", arr, vec![src_grid.lat.clone(), src_grid.lon.clone()]).unwrap();
        let dst = RectGrid::uniform(12, 24).unwrap();
        let r = bilinear(&v, &dst).unwrap();
        assert_eq!(r.shape(), &[12, 24]);
        for j in 1..11 {
            for i in 0..24 {
                let got = r.array.get(&[j, i]).unwrap() as f64;
                let want = dst.lat.values[j];
                assert!((got - want).abs() < 1e-3, "({j},{i}): {got} vs {want}");
            }
        }
    }

    #[test]
    fn bilinear_wraps_longitude() {
        // f = cos(lon) is continuous across the wrap point
        let src = RectGrid::uniform(8, 36).unwrap();
        let arr = MaskedArray::from_fn(&[8, 36], |ix| {
            (src.lon.values[ix[1]].to_radians().cos()) as f32
        });
        let v = Variable::new("f", arr, vec![src.lat.clone(), src.lon.clone()]).unwrap();
        // a target grid whose first lon is between src's last cell and 360
        let lat = Axis::latitude(vec![-10.0, 10.0]).unwrap();
        let lon = Axis::longitude(vec![355.0, 359.0]).unwrap();
        let dst = RectGrid::new(lat, lon).unwrap();
        let r = bilinear(&v, &dst).unwrap();
        for i in 0..2 {
            let got = r.array.get(&[0, i]).unwrap() as f64;
            let want = dst.lon.values[i].to_radians().cos();
            assert!((got - want).abs() < 0.02, "{got} vs {want}");
        }
    }

    #[test]
    fn bilinear_preserves_leading_axes_and_masks() {
        let ds = SynthesisSpec::new(2, 3, 16, 32).build();
        let ta = ds.variable("ta").unwrap();
        let dst = RectGrid::uniform(8, 16).unwrap();
        let r = bilinear(ta, &dst).unwrap();
        assert_eq!(r.shape(), &[2, 3, 8, 16]);
        // masked field keeps holes
        let tos = ds.variable("tos").unwrap();
        let r2 = bilinear(tos, &dst).unwrap();
        assert!(r2.array.valid_count() < r2.array.len());
        assert!(r2.array.valid_count() > 0);
    }

    #[test]
    fn requires_trailing_lat_lon() {
        let ds = SynthesisSpec::new(2, 1, 8, 16).build();
        let ta = ds.variable("ta").unwrap();
        let scrambled = Variable::new(
            "x",
            ta.array.transpose(&[3, 0, 1, 2]).unwrap(),
            vec![
                ta.axes[3].clone(),
                ta.axes[0].clone(),
                ta.axes[1].clone(),
                ta.axes[2].clone(),
            ],
        )
        .unwrap();
        let dst = RectGrid::uniform(4, 8).unwrap();
        assert!(bilinear(&scrambled, &dst).is_err());
        assert!(conservative(&scrambled, &dst).is_err());
    }

    #[test]
    fn conservative_conserves_global_mean() {
        let src_grid = RectGrid::uniform(24, 48).unwrap();
        // a bumpy field
        let arr = MaskedArray::from_fn(&[24, 48], |ix| {
            let phi = src_grid.lat.values[ix[0]].to_radians();
            let lam = src_grid.lon.values[ix[1]].to_radians();
            (10.0 + 5.0 * (2.0 * lam).sin() * phi.cos() + 3.0 * (3.0 * phi).sin()) as f32
        });
        let v =
            Variable::new("f", arr, vec![src_grid.lat.clone(), src_grid.lon.clone()]).unwrap();
        let before = area_mean_2d(&v).unwrap();
        for (nlat, nlon) in [(12, 24), (10, 20), (32, 64)] {
            let dst = RectGrid::uniform(nlat, nlon).unwrap();
            let r = conservative(&v, &dst).unwrap();
            let after = area_mean_2d(&r).unwrap();
            assert!(
                (before - after).abs() < 1e-4 * before.abs().max(1.0),
                "{nlat}x{nlon}: {before} vs {after}"
            );
        }
    }

    #[test]
    fn conservative_handles_masks() {
        let ds = SynthesisSpec::new(1, 1, 16, 32).build();
        let tos = ds.variable("tos").unwrap().time_slab(0).unwrap();
        let dst = RectGrid::uniform(8, 16).unwrap();
        let r = conservative(&tos, &dst).unwrap();
        // some cells masked (all-land target cells), most valid
        assert!(r.array.valid_count() > 0);
        let (lo, hi) = r.array.min_max().unwrap();
        assert!(lo > 260.0 && hi < 310.0, "[{lo}, {hi}]");
    }

    #[test]
    fn coarse_to_fine_and_back_is_stable() {
        let src = RectGrid::uniform(8, 16).unwrap();
        let arr = MaskedArray::from_fn(&[8, 16], |ix| (ix[0] * 16 + ix[1]) as f32);
        let v = Variable::new("f", arr, vec![src.lat.clone(), src.lon.clone()]).unwrap();
        let fine = RectGrid::uniform(32, 64).unwrap();
        let up = conservative(&v, &fine).unwrap();
        let back = conservative(&up, &src).unwrap();
        let m0 = area_mean_2d(&v).unwrap();
        let m1 = area_mean_2d(&back).unwrap();
        assert!((m0 - m1).abs() < 1e-3);
    }

    #[test]
    fn pressure_interp_log_linear() {
        let ds = SynthesisSpec::new(1, 8, 6, 12).noise(0.0).build();
        let ta = ds.variable("ta").unwrap();
        // interpolating onto the source levels reproduces them
        let src_levels = ta.axis(AxisKind::Level).unwrap().values.clone();
        let same = pressure_interp(ta, &src_levels).unwrap();
        for i in 0..40 {
            assert!(
                (same.array.data()[i] - ta.array.data()[i]).abs() < 1e-3,
                "{i}"
            );
        }
        // a midpoint level lands between its neighbours
        let mid = pressure_interp(ta, &[962.0]).unwrap();
        let v0 = ta.array.get(&[0, 0, 3, 3]).unwrap();
        let v1 = ta.array.get(&[0, 1, 3, 3]).unwrap();
        let vm = mid.array.get(&[0, 0, 3, 3]).unwrap();
        assert!((vm - v0.min(v1)) > -0.01 && (v0.max(v1) - vm) > -0.01, "{v0} {vm} {v1}");
    }

    #[test]
    fn pressure_interp_masks_out_of_range() {
        let ds = SynthesisSpec::new(1, 4, 4, 8).build();
        let ta = ds.variable("ta").unwrap(); // levels 1000..700
        let r = pressure_interp(ta, &[2000.0, 850.0, 10.0]).unwrap();
        assert_eq!(r.shape()[1], 3);
        assert_eq!(r.array.get_valid(&[0, 0, 0, 0]).unwrap(), None); // 2000 hPa below ground
        assert!(r.array.get_valid(&[0, 1, 0, 0]).unwrap().is_some());
        assert_eq!(r.array.get_valid(&[0, 2, 0, 0]).unwrap(), None); // 10 hPa above top
        assert!(pressure_interp(ta, &[]).is_err());
        let lf = ds.variable("sftlf").unwrap();
        assert!(pressure_interp(lf, &[500.0]).is_err());
    }
}
