//! Hovmöller extraction: restructure `(time, lat, lon)` data with *time as
//! the vertical dimension* — the data preparation behind DV3D's Hovmöller
//! slicer and volume plots (paper §III.C, Fig 4).

use cdms::axis::AxisKind;
use cdms::{CdmsError, MaskedArray, Result, Variable};

/// Averages over a latitude band and returns a `(time, lon)` section —
/// the classic 2D Hovmöller diagram.
pub fn lon_time_section(var: &Variable, lat_band: (f64, f64)) -> Result<Variable> {
    let sub = var.subset_kind(AxisKind::Latitude, lat_band.0, lat_band.1)?;
    crate::averager::average_over(&sub, AxisKind::Latitude)
}

/// Averages over a longitude band and returns a `(time, lat)` section.
pub fn lat_time_section(var: &Variable, lon_band: (f64, f64)) -> Result<Variable> {
    let sub = var.subset_kind(AxisKind::Longitude, lon_band.0, lon_band.1)?;
    crate::averager::average_over(&sub, AxisKind::Longitude)
}

/// Builds the Hovmöller *volume*: a `(time, lat, lon)` variable reordered
/// so DV3D can treat time as the vertical axis. The data is canonical
/// `(time, lat, lon)` order; the marker attribute tells the translation
/// stage to map time → z.
pub fn hovmoller_volume(var: &Variable) -> Result<Variable> {
    if var.axis_index(AxisKind::Time).is_none() {
        return Err(CdmsError::NotFound(format!("time axis on '{}'", var.id)));
    }
    let mut v = var.to_canonical_order()?;
    if v.axis_index(AxisKind::Level).is_some() {
        return Err(CdmsError::Invalid(format!(
            "'{}' still has a level axis; select one level before building a Hovmöller volume",
            var.id
        )));
    }
    if v.rank() != 3 {
        return Err(CdmsError::Invalid(format!(
            "Hovmöller volume wants (time, lat, lon); got rank {}",
            v.rank()
        )));
    }
    v.attributes.insert("dv3d_vertical".into(), "time".into());
    Ok(v)
}

/// Measures the zonal phase speed (degrees of longitude per time unit) of
/// the dominant propagating signal in a `(time, lon)` section by
/// cross-correlating consecutive time rows — the quantitative readout of a
/// Hovmöller diagram's ridge slope. Returns the mean shift per step.
pub fn zonal_phase_speed(section: &Variable) -> Result<f64> {
    if section.rank() != 2 {
        return Err(CdmsError::Invalid("phase speed wants a (time, lon) section".into()));
    }
    let t_idx = section
        .axis_index(AxisKind::Time)
        .ok_or_else(|| CdmsError::NotFound("time axis".into()))?;
    if t_idx != 0 {
        return Err(CdmsError::Invalid("time must be the leading axis".into()));
    }
    let lon = section
        .axis(AxisKind::Longitude)
        .ok_or_else(|| CdmsError::NotFound("longitude axis".into()))?;
    let nt = section.shape()[0];
    let nx = section.shape()[1];
    if nt < 2 || nx < 4 {
        return Err(CdmsError::Invalid("section too small".into()));
    }
    let dlon = (lon.values[1] - lon.values[0]).abs();
    let times = &section.axes[0].values;

    let row = |t: usize| -> Vec<f32> {
        (0..nx)
            .map(|i| section.array.get(&[t, i]).unwrap_or(0.0))
            .collect()
    };
    let mut total_shift_deg = 0.0f64;
    let mut total_dt = 0.0f64;
    for t in 0..nt - 1 {
        let a = row(t);
        let b = row(t + 1);
        // Circular correlation as a function of signed lag. A periodic
        // signal peaks at every wavelength; resolve the ambiguity the way a
        // human reads a Hovmöller ridge: search only small displacements
        // (|shift| ≤ nx/8 grid steps per time step) and refine the winning
        // lag sub-grid with a parabolic fit through its neighbours.
        let corr_at = |s: i64| -> f64 {
            let lag = s.rem_euclid(nx as i64) as usize;
            (0..nx).map(|i| a[i] as f64 * b[(i + lag) % nx] as f64).sum()
        };
        let window = (nx as i64 / 8).max(1);
        let mut best_s = 0i64;
        let mut best_c = f64::NEG_INFINITY;
        for s in -window..=window {
            let c = corr_at(s);
            if c > best_c {
                best_c = c;
                best_s = s;
            }
        }
        let (cm, c0, cp) = (corr_at(best_s - 1), best_c, corr_at(best_s + 1));
        let denom = cm - 2.0 * c0 + cp;
        let refine = if denom.abs() > 1e-12 {
            (0.5 * (cm - cp) / denom).clamp(-0.5, 0.5)
        } else {
            0.0
        };
        total_shift_deg += (best_s as f64 + refine) * dlon;
        total_dt += times[t + 1] - times[t];
    }
    if total_dt <= 0.0 {
        return Err(CdmsError::Invalid("non-increasing time axis".into()));
    }
    Ok(total_shift_deg / total_dt)
}

/// Stacks per-time 2D sections into a 3D masked array `(time, n1, n2)` —
/// utility for building custom Hovmöller volumes.
pub fn stack_time(slabs: &[MaskedArray]) -> Result<MaskedArray> {
    let refs: Vec<&MaskedArray> = slabs.iter().collect();
    if refs.is_empty() {
        return Err(CdmsError::Invalid("nothing to stack".into()));
    }
    let slab_shape = refs[0].shape().to_vec();
    let reshaped: Vec<MaskedArray> = refs
        .iter()
        .map(|a| {
            let mut s = vec![1usize];
            s.extend(a.shape());
            a.reshape(&s)
        })
        .collect::<Result<_>>()?;
    let refs2: Vec<&MaskedArray> = reshaped.iter().collect();
    let out = MaskedArray::concat(&refs2, 0)?;
    let mut expect = vec![slabs.len()];
    expect.extend(&slab_shape);
    out.reshape(&expect)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdms::synth::SynthesisSpec;

    #[test]
    fn lon_time_section_shape_and_axes() {
        let ds = SynthesisSpec::new(6, 1, 16, 32).build();
        let wave = ds.variable("wave").unwrap();
        let s = lon_time_section(wave, (-15.0, 15.0)).unwrap();
        assert_eq!(s.shape(), &[6, 32]);
        assert_eq!(s.axes[0].kind, AxisKind::Time);
        assert_eq!(s.axes[1].kind, AxisKind::Longitude);
    }

    #[test]
    fn lat_time_section_shape() {
        let ds = SynthesisSpec::new(4, 1, 16, 32).build();
        let pr = ds.variable("pr").unwrap();
        let s = lat_time_section(pr, (0.0, 90.0)).unwrap();
        assert_eq!(s.shape(), &[4, 16]);
        assert_eq!(s.axes[1].kind, AxisKind::Latitude);
    }

    #[test]
    fn measured_phase_speed_matches_synthesis() {
        let ds = SynthesisSpec::new(6, 1, 16, 72).noise(0.0).wave(8.0, 5.0).build();
        let wave = ds.variable("wave").unwrap();
        let s = lon_time_section(wave, (-20.0, 20.0)).unwrap();
        let c = zonal_phase_speed(&s).unwrap();
        // grid resolution is 5°, so the per-day shift quantizes
        assert!((c - 8.0).abs() <= 5.0 / 2.0 + 1e-9, "measured {c}°/day");
        assert!(c > 0.0, "eastward");
    }

    #[test]
    fn westward_wave_measures_negative() {
        let ds = SynthesisSpec::new(6, 1, 16, 72).noise(0.0).wave(-10.0, 4.0).build();
        let wave = ds.variable("wave").unwrap();
        let s = lon_time_section(wave, (-20.0, 20.0)).unwrap();
        let c = zonal_phase_speed(&s).unwrap();
        assert!(c < -5.0, "measured {c}°/day");
    }

    #[test]
    fn hovmoller_volume_marks_vertical() {
        let ds = SynthesisSpec::new(5, 1, 8, 16).build();
        let wave = ds.variable("wave").unwrap();
        let v = hovmoller_volume(wave).unwrap();
        assert_eq!(v.shape(), &[5, 8, 16]);
        assert_eq!(
            v.attributes.get("dv3d_vertical").and_then(|a| a.as_text()),
            Some("time")
        );
    }

    #[test]
    fn hovmoller_volume_rejects_4d_and_timeless() {
        let ds = SynthesisSpec::new(3, 2, 8, 16).build();
        assert!(hovmoller_volume(ds.variable("ta").unwrap()).is_err()); // has level
        assert!(hovmoller_volume(ds.variable("sftlf").unwrap()).is_err()); // no time
    }

    #[test]
    fn phase_speed_input_validation() {
        let ds = SynthesisSpec::new(3, 1, 8, 16).build();
        let wave = ds.variable("wave").unwrap();
        assert!(zonal_phase_speed(wave).is_err()); // rank 3
        let tiny = SynthesisSpec::new(1, 1, 4, 8).build();
        let s = lon_time_section(tiny.variable("wave").unwrap(), (-30.0, 30.0)).unwrap();
        assert!(zonal_phase_speed(&s).is_err()); // nt < 2
    }

    #[test]
    fn stack_time_rebuilds_volume() {
        let ds = SynthesisSpec::new(3, 1, 4, 8).build();
        let wave = ds.variable("wave").unwrap();
        let slabs: Vec<MaskedArray> =
            (0..3).map(|t| wave.array.take(0, t).unwrap()).collect();
        let rebuilt = stack_time(&slabs).unwrap();
        assert_eq!(rebuilt, wave.array);
        assert!(stack_time(&[]).is_err());
    }
}
