//! Climatologies, anomalies and seasonal means — `cdutil.times`
//! equivalents built on the calendar-aware time axis.
//!
//! The month-subset means route through
//! [`crate::reduce::selected_mean_axis`] and the anomaly through
//! [`crate::reduce::mean_axis`] plus a fused parallel subtract pass — both
//! deterministic under any `RAYON_NUM_THREADS` and bit-identical to the
//! pre-fusion serial kernels (see [`crate::eager_ref`]).

use cdms::array::MaskedArray;
use cdms::axis::AxisKind;
use cdms::calendar::RelTime;
use cdms::{CdmsError, Result, Variable};
use rayon::prelude::*;

/// Months of each standard season.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Season {
    /// December–January–February.
    Djf,
    /// March–April–May.
    Mam,
    /// June–July–August.
    Jja,
    /// September–October–November.
    Son,
}

impl Season {
    /// Member months (1-based).
    pub fn months(&self) -> [u32; 3] {
        match self {
            Season::Djf => [12, 1, 2],
            Season::Mam => [3, 4, 5],
            Season::Jja => [6, 7, 8],
            Season::Son => [9, 10, 11],
        }
    }
}

/// Decodes the month (1–12) of every timestep.
pub fn months_of(var: &Variable) -> Result<Vec<u32>> {
    let t_idx = var
        .axis_index(AxisKind::Time)
        .ok_or_else(|| CdmsError::NotFound(format!("time axis on '{}'", var.id)))?;
    let axis = &var.axes[t_idx];
    let rel = RelTime::parse(&axis.units)?;
    Ok(axis.values.iter().map(|&v| rel.decode(v, axis.calendar).month).collect())
}

/// Mean over the timesteps selected by `pred(month)`. The time axis is
/// removed. Errors if the predicate selects nothing.
pub fn mean_over_months(var: &Variable, pred: impl Fn(u32) -> bool) -> Result<Variable> {
    let t_idx = var.axis_index(AxisKind::Time).unwrap_or(0);
    let months = months_of(var)?;
    let selected: Vec<usize> =
        months.iter().enumerate().filter(|(_, &m)| pred(m)).map(|(i, _)| i).collect();
    if selected.is_empty() {
        return Err(CdmsError::EmptySelection("no timesteps match".into()));
    }
    // average the selected slabs: one parallel pass over output cells,
    // bit-identical to the old gather-and-accumulate loop
    let a = crate::reduce::selected_mean_axis(&var.array, t_idx, &selected)?;
    let mut axes = var.axes.clone();
    axes.remove(t_idx);
    if axes.is_empty() {
        axes.push(cdms::Axis::new("scalar", vec![0.0], "", AxisKind::Generic)?);
    }
    let mut v = Variable::new(&var.id, a, axes)?;
    v.attributes = var.attributes.clone();
    Ok(v)
}

/// Seasonal mean (e.g. DJF average over all years present).
pub fn seasonal_mean(var: &Variable, season: Season) -> Result<Variable> {
    let months = season.months();
    mean_over_months(var, |m| months.contains(&m))
}

/// Monthly climatology: a 12-step time series of per-month means
/// (months absent from the record are masked).
pub fn monthly_climatology(var: &Variable) -> Result<Variable> {
    let t_idx = var
        .axis_index(AxisKind::Time)
        .ok_or_else(|| CdmsError::NotFound(format!("time axis on '{}'", var.id)))?;
    let mut slabs = Vec::with_capacity(12);
    for month in 1..=12u32 {
        match mean_over_months(var, |m| m == month) {
            Ok(v) => {
                // reinsert a length-1 month axis position by reshaping later
                slabs.push(v.array);
            }
            Err(CdmsError::EmptySelection(_)) => {
                let mut shape = var.shape().to_vec();
                shape.remove(t_idx);
                slabs.push(MaskedArray::all_masked(&shape));
            }
            Err(e) => return Err(e),
        }
    }
    // stack along a new leading "month" axis
    let slab_shape = slabs[0].shape().to_vec();
    let mut full_shape = vec![12usize];
    full_shape.extend(&slab_shape);
    let mut data = Vec::new();
    let mut mask = Vec::new();
    for s in &slabs {
        data.extend_from_slice(s.data());
        mask.extend_from_slice(s.mask());
    }
    let array = MaskedArray::with_mask(data, mask, &full_shape)?;
    let month_axis = cdms::Axis::new(
        "month",
        (1..=12).map(|m| m as f64).collect(),
        "month of year",
        AxisKind::Generic,
    )?;
    let mut axes = vec![month_axis];
    let mut rest = var.axes.clone();
    rest.remove(t_idx);
    axes.extend(rest);
    let mut v = Variable::new(&format!("{}_clim", var.id), array, axes)?;
    v.attributes = var.attributes.clone();
    Ok(v)
}

/// Departure from the time mean ("anomaly"): `x(t) - mean_t(x)` per point.
pub fn anomaly(var: &Variable) -> Result<Variable> {
    let t_idx = var
        .axis_index(AxisKind::Time)
        .ok_or_else(|| CdmsError::NotFound(format!("time axis on '{}'", var.id)))?;
    let mean = crate::reduce::mean_axis(&var.array, t_idx)?;
    let nt = var.shape()[t_idx];
    let inner: usize = var.shape()[t_idx + 1..].iter().product::<usize>().max(1);
    let mut out = var.array.clone();
    let (mean_d, mean_m) = (mean.data(), mean.mask());
    let (out_d, out_m) = out.parts_mut();
    // subtract the mean slab from each (outer, t) row; rows are independent,
    // so distribute them over the pool — each row's work is elementwise,
    // hence deterministic and bit-identical to the old serial loop
    out_d
        .par_chunks_mut(inner)
        .zip(out_m.par_chunks_mut(inner))
        .enumerate()
        .for_each(|(row, (dd, mm))| {
            let o = row / nt;
            let mrow_d = mean_d.get(o * inner..(o + 1) * inner).unwrap_or_default();
            let mrow_m = mean_m.get(o * inner..(o + 1) * inner).unwrap_or_default();
            for (((d, mk), &mv), &mmk) in
                dd.iter_mut().zip(mm.iter_mut()).zip(mrow_d).zip(mrow_m)
            {
                if mmk || *mk {
                    *mk = true;
                } else {
                    *d -= mv;
                }
            }
        });
    let mut v = Variable::new(&format!("{}_anom", var.id), out, var.axes.clone())?;
    v.attributes = var.attributes.clone();
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdms::calendar::Calendar;
    use cdms::synth::SynthesisSpec;
    use cdms::Axis;

    /// A monthly series: value = month number at every point.
    fn monthly_var(n_months: usize) -> Variable {
        let time = Axis::time(
            (0..n_months).map(|t| t as f64).collect(),
            "months since 2000-01-01",
            Calendar::NoLeap365,
        )
        .unwrap();
        let lat = Axis::latitude(vec![0.0, 10.0]).unwrap();
        let arr = MaskedArray::from_fn(&[n_months, 2], |ix| ((ix[0] % 12) + 1) as f32);
        Variable::new("x", arr, vec![time, lat]).unwrap()
    }

    #[test]
    fn months_decode() {
        let v = monthly_var(14);
        let m = months_of(&v).unwrap();
        assert_eq!(&m[..3], &[1, 2, 3]);
        assert_eq!(m[12], 1); // wraps to January of year 2
    }

    #[test]
    fn seasonal_means_pick_right_months() {
        let v = monthly_var(24);
        let djf = seasonal_mean(&v, Season::Djf).unwrap();
        // mean of months {12, 1, 2} = 5
        assert!((djf.array.data()[0] - 5.0).abs() < 1e-5);
        let jja = seasonal_mean(&v, Season::Jja).unwrap();
        assert!((jja.array.data()[0] - 7.0).abs() < 1e-5);
        assert_eq!(djf.shape(), &[2]);
    }

    #[test]
    fn climatology_is_identity_for_pure_cycle() {
        let v = monthly_var(24);
        let clim = monthly_climatology(&v).unwrap();
        assert_eq!(clim.shape(), &[12, 2]);
        for m in 0..12 {
            assert!((clim.array.get(&[m, 0]).unwrap() - (m as f32 + 1.0)).abs() < 1e-5);
        }
        assert_eq!(clim.axes[0].id, "month");
    }

    #[test]
    fn climatology_masks_absent_months() {
        let v = monthly_var(3); // only Jan-Mar present
        let clim = monthly_climatology(&v).unwrap();
        assert!(clim.array.get_valid(&[0, 0]).unwrap().is_some());
        assert_eq!(clim.array.get_valid(&[6, 0]).unwrap(), None);
    }

    #[test]
    fn anomaly_zero_mean_per_point() {
        let ds = SynthesisSpec::new(8, 2, 4, 8).build();
        let ta = ds.variable("ta").unwrap();
        let an = anomaly(ta).unwrap();
        assert_eq!(an.shape(), ta.shape());
        // time-mean of the anomaly is ~0 at a few sampled points
        let t_mean = an.array.reduce_axis(0, cdms::array::Reduction::Mean).unwrap();
        let (lo, hi) = t_mean.min_max().unwrap();
        assert!(lo.abs() < 1e-3 && hi.abs() < 1e-3, "[{lo}, {hi}]");
    }

    #[test]
    fn anomaly_respects_masks() {
        let ds = SynthesisSpec::new(4, 1, 4, 8).build();
        let tos = ds.variable("tos").unwrap();
        let an = anomaly(tos).unwrap();
        assert_eq!(an.array.valid_count(), tos.array.valid_count());
    }

    #[test]
    fn empty_selection_errors() {
        let v = monthly_var(2); // Jan, Feb only
        assert!(seasonal_mean(&v, Season::Jja).is_err());
    }

    #[test]
    fn requires_time_axis() {
        let ds = SynthesisSpec::new(2, 1, 4, 8).build();
        let lf = ds.variable("sftlf").unwrap();
        assert!(anomaly(lf).is_err());
        assert!(monthly_climatology(lf).is_err());
        assert!(months_of(lf).is_err());
    }

}
