//! Plan/apply regridding engine: build a sparse CSR weight matrix once per
//! (source grid, target grid, method) and re-apply it as one sparse
//! mat-vec per leading time/level plane — repeated regrids over the same
//! grid pair scale with plane count instead of grid arithmetic. Mask
//! handling is folded into the apply kernel: bilinear propagates any
//! masked stencil corner (strict), conservative renormalizes by the
//! unmasked overlap weight. See DESIGN.md §11 for the CSR layout and the
//! fingerprint scheme.
//!
//! This file is on the dv3dlint `indexing_hot_paths` list: the kernel must
//! not panic mid-animation, so all element access goes through `.get()`
//! and iterators.

use cdms::axis::{Axis, AxisKind};
use cdms::grid::{axes_fingerprint, RectGrid};
use rayon::prelude::*;
use std::collections::BTreeMap;
use cdms::{CdmsError, MaskedArray, Result, Variable};

/// Version of the weight-generation math. Mixed into every plan key and
/// exported as the vistrails module-cache salt for `cdat.Regrid`, so
/// bumping it invalidates both cached plans and cached pipeline outputs.
pub const ENGINE_VERSION: u64 = 1;

/// Horizontal regridding method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegridMethod {
    /// Four-corner bilinear interpolation; any masked corner masks the
    /// output cell (strict mask propagation, no renormalization).
    Bilinear,
    /// First-order conservative remapping; output is the overlap-weighted
    /// mean of unmasked source cells, masked only when no valid source
    /// cell overlaps.
    Conservative,
}

impl RegridMethod {
    /// Stable tag mixed into plan keys.
    fn tag(self) -> u64 {
        match self {
            RegridMethod::Bilinear => 1,
            RegridMethod::Conservative => 2,
        }
    }

    /// Canonical lowercase name (`"bilinear"` / `"conservative"`).
    pub fn name(self) -> &'static str {
        match self {
            RegridMethod::Bilinear => "bilinear",
            RegridMethod::Conservative => "conservative",
        }
    }

    /// Parses a method name as used by calculator strings and workflow
    /// module parameters.
    pub fn parse(s: &str) -> Option<RegridMethod> {
        match s.trim().to_ascii_lowercase().as_str() {
            "bilinear" | "linear" => Some(RegridMethod::Bilinear),
            "conservative" => Some(RegridMethod::Conservative),
            _ => None,
        }
    }
}

/// Cache key for a `(source grid, target grid, method)` triple, salted
/// with [`ENGINE_VERSION`].
pub fn plan_key(src_fp: u64, dst_fp: u64, method: RegridMethod) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in [ENGINE_VERSION, method.tag(), src_fp, dst_fp] {
        for b in w.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Validates the variable ends with (…, lat, lon) axes and returns their
/// indices. Shared by the plan engine and the `regrid` wrappers.
pub(crate) fn horizontal_axes(var: &Variable) -> Result<(usize, usize)> {
    let lat = var
        .axis_index(AxisKind::Latitude)
        .ok_or_else(|| CdmsError::NotFound(format!("latitude axis on '{}'", var.id)))?;
    let lon = var
        .axis_index(AxisKind::Longitude)
        .ok_or_else(|| CdmsError::NotFound(format!("longitude axis on '{}'", var.id)))?;
    if lon != var.rank() - 1 || lat != var.rank() - 2 {
        return Err(CdmsError::Invalid(format!(
            "'{}' must end with (lat, lon) axes; use to_canonical_order() first",
            var.id
        )));
    }
    Ok((lat, lon))
}

/// A precomputed sparse regridding operator in CSR form: row `r` of the
/// matrix holds the source-cell weights of flattened target cell `r`
/// (`cols`/`weights` in `row_ptr[r]..row_ptr[r+1]`). Build once with
/// [`RegridPlan::bilinear`] / [`RegridPlan::conservative`], then
/// [`RegridPlan::apply`] it to any variable on the same source grid.
#[derive(Debug, Clone)]
pub struct RegridPlan {
    method: RegridMethod,
    src_shape: (usize, usize),
    dst_shape: (usize, usize),
    src_fp: u64,
    dst_fp: u64,
    row_ptr: Vec<usize>,
    cols: Vec<u32>,
    weights: Vec<f64>,
    dst_lat: Axis,
    dst_lon: Axis,
}

impl RegridPlan {
    /// Plans bilinear interpolation from `(src_lat, src_lon)` onto `target`.
    pub fn bilinear(src_lat: &Axis, src_lon: &Axis, target: &RectGrid) -> Result<RegridPlan> {
        RegridPlan::build(RegridMethod::Bilinear, src_lat, src_lon, target)
    }

    /// Plans first-order conservative remapping onto `target`.
    pub fn conservative(src_lat: &Axis, src_lon: &Axis, target: &RectGrid) -> Result<RegridPlan> {
        RegridPlan::build(RegridMethod::Conservative, src_lat, src_lon, target)
    }

    /// Plans `method` regridding from `(src_lat, src_lon)` onto `target`.
    pub fn build(
        method: RegridMethod,
        src_lat: &Axis,
        src_lon: &Axis,
        target: &RectGrid,
    ) -> Result<RegridPlan> {
        let (ny_s, nx_s) = (src_lat.len(), src_lon.len());
        let (ny_t, nx_t) = target.shape();
        if ny_s == 0 || nx_s == 0 || ny_t == 0 || nx_t == 0 {
            return Err(CdmsError::Invalid("cannot plan a regrid on an empty grid".into()));
        }
        if ny_s * nx_s > u32::MAX as usize {
            return Err(CdmsError::Invalid("source grid too large for a u32-column plan".into()));
        }
        let (row_ptr, cols, weights) = match method {
            RegridMethod::Bilinear => bilinear_weights(src_lat, src_lon, target),
            RegridMethod::Conservative => conservative_weights(src_lat, src_lon, target),
        };
        Ok(RegridPlan {
            method,
            src_shape: (ny_s, nx_s),
            dst_shape: (ny_t, nx_t),
            src_fp: axes_fingerprint(src_lat, src_lon),
            dst_fp: target.fingerprint(),
            row_ptr,
            cols,
            weights,
            dst_lat: target.lat.clone(),
            dst_lon: target.lon.clone(),
        })
    }

    /// The method this plan was built for.
    pub fn method(&self) -> RegridMethod {
        self.method
    }

    /// `(nlat, nlon)` of the source grid.
    pub fn src_shape(&self) -> (usize, usize) {
        self.src_shape
    }

    /// `(nlat, nlon)` of the target grid.
    pub fn dst_shape(&self) -> (usize, usize) {
        self.dst_shape
    }

    /// Number of stored (column, weight) pairs.
    pub fn nnz(&self) -> usize {
        self.weights.len()
    }

    /// The cache key of this plan (see [`plan_key`]).
    pub fn key(&self) -> u64 {
        plan_key(self.src_fp, self.dst_fp, self.method)
    }

    /// Fingerprint of the source (lat, lon) axes the plan was built from.
    pub fn src_fingerprint(&self) -> u64 {
        self.src_fp
    }

    /// Fingerprint of the target grid.
    pub fn dst_fingerprint(&self) -> u64 {
        self.dst_fp
    }

    /// Applies the planned operator to `var`: one sparse mat-vec per
    /// leading (time × level) plane, parallel across planes. The variable
    /// must end with the same (lat, lon) axes the plan was built from.
    pub fn apply(&self, var: &Variable) -> Result<Variable> {
        let (lat_i, lon_i) = horizontal_axes(var)?;
        let (src_lat, src_lon) = match (var.axes.get(lat_i), var.axes.get(lon_i)) {
            (Some(a), Some(b)) => (a, b),
            _ => return Err(CdmsError::Invalid("horizontal axes out of range".into())),
        };
        if axes_fingerprint(src_lat, src_lon) != self.src_fp {
            return Err(CdmsError::Invalid(format!(
                "regrid plan mismatch: '{}' is not on the source grid this plan was built for",
                var.id
            )));
        }
        let (ny_s, nx_s) = self.src_shape;
        let (ny_t, nx_t) = self.dst_shape;
        let leading: usize =
            var.shape().get(..lat_i).unwrap_or_default().iter().product();
        let src_plane = ny_s * nx_s;
        let dst_plane = ny_t * nx_t;
        let src_data = var.array.data();
        let src_mask = var.array.mask();
        let mut data = vec![0.0f32; leading * dst_plane];
        let mut mask = vec![false; leading * dst_plane];

        // Each leading plane is an independent sparse mat-vec.
        data.par_chunks_mut(dst_plane)
            .zip(mask.par_chunks_mut(dst_plane))
            .enumerate()
            .for_each(|(l, (data_sl, mask_sl))| {
                let off = l * src_plane;
                let sd = src_data.get(off..off + src_plane).unwrap_or_default();
                let sm = src_mask.get(off..off + src_plane).unwrap_or_default();
                self.apply_plane(sd, sm, data_sl, mask_sl);
            });

        let mut out_shape = var.shape().get(..lat_i).unwrap_or_default().to_vec();
        out_shape.push(ny_t);
        out_shape.push(nx_t);
        let array = MaskedArray::with_mask(data, mask, &out_shape)?;
        let mut axes = var.axes.get(..lat_i).unwrap_or_default().to_vec();
        axes.push(self.dst_lat.clone());
        axes.push(self.dst_lon.clone());
        let mut v = Variable::new(&var.id, array, axes)?;
        v.attributes = var.attributes.clone();
        Ok(v)
    }

    /// The CSR kernel for one horizontal plane, mask rule folded in:
    /// strict (bilinear) masks the row on the first masked source cell;
    /// renormalizing (conservative) divides by the unmasked weight sum and
    /// masks only when it is zero.
    fn apply_plane(&self, sd: &[f32], sm: &[bool], out: &mut [f32], out_mask: &mut [bool]) {
        let renorm = matches!(self.method, RegridMethod::Conservative);
        let mut start = self.row_ptr.first().copied().unwrap_or(0);
        let row_ends = self.row_ptr.iter().skip(1);
        for ((o, om), &end) in out.iter_mut().zip(out_mask.iter_mut()).zip(row_ends) {
            let row_cols = self.cols.get(start..end).unwrap_or_default();
            let row_w = self.weights.get(start..end).unwrap_or_default();
            start = end;
            accum_row(renorm, row_cols, row_w, sd, sm, o, om);
        }
    }

    /// Applies the planned operator to N ensemble members at once as a
    /// **blocked multi-RHS sparse mat-mat**: each CSR row's columns and
    /// weights are walked once and reused across a cache-resident block of
    /// source planes ([`accum_row_block`]), so a 200-member regrid
    /// traverses the weight matrix `planes / PLANE_BLOCK` times instead of
    /// `200 × planes` times. Parallelism is over (member, plane-block)
    /// work items, each writing directly into a disjoint contiguous slice
    /// of its member's output — no intermediate scratch, no scatter pass.
    ///
    /// Every member must sit on the plan's source grid (leading time/level
    /// axes may differ). Per-plane accumulation visits the row's
    /// `(column, weight)` pairs in the same order with the same f64
    /// arithmetic as [`accum_row`] and finalizes through the shared
    /// [`finalize_cell`], so the result is bit-identical to N single
    /// applies — masks included; the equivalence is locked down
    /// byte-for-byte by the executor test suite.
    pub fn apply_batch(&self, members: &[&Variable]) -> Result<Vec<Variable>> {
        // Source planes per work item: bounds the kernel's hot working
        // set to ~8 source planes regardless of member count, while the
        // item count (total planes / 8) still feeds a wide pool.
        const PLANE_BLOCK: usize = 8;

        if members.is_empty() {
            return Ok(Vec::new());
        }
        let (ny_s, nx_s) = self.src_shape;
        let (ny_t, nx_t) = self.dst_shape;
        let src_plane = ny_s * nx_s;
        let dst_plane = ny_t * nx_t;

        // Validate every member against the plan and size its output.
        let mut lat_axis_pos = Vec::with_capacity(members.len());
        let mut plane_counts = Vec::with_capacity(members.len());
        for var in members {
            let (lat_i, lon_i) = horizontal_axes(var)?;
            let (src_lat, src_lon) = match (var.axes.get(lat_i), var.axes.get(lon_i)) {
                (Some(a), Some(b)) => (a, b),
                _ => return Err(CdmsError::Invalid("horizontal axes out of range".into())),
            };
            if axes_fingerprint(src_lat, src_lon) != self.src_fp {
                return Err(CdmsError::Invalid(format!(
                    "regrid plan mismatch: '{}' is not on the source grid this plan was built for",
                    var.id
                )));
            }
            lat_axis_pos.push(lat_i);
            plane_counts.push(
                var.shape().get(..lat_i).unwrap_or_default().iter().product::<usize>(),
            );
        }

        let member_data: Vec<&[f32]> = members.iter().map(|v| v.array.data()).collect();
        let member_mask: Vec<&[bool]> = members.iter().map(|v| v.array.mask()).collect();
        let renorm = matches!(self.method, RegridMethod::Conservative);

        // Member-major output buffers, carved into disjoint per-work-item
        // chunks of PLANE_BLOCK consecutive planes so every item owns a
        // contiguous `&mut` slice and the kernel writes final values
        // directly.
        let mut out_data: Vec<Vec<f32>> =
            plane_counts.iter().map(|&c| vec![0.0f32; c * dst_plane]).collect();
        let mut out_mask: Vec<Vec<bool>> =
            plane_counts.iter().map(|&c| vec![false; c * dst_plane]).collect();
        let n_items: usize = plane_counts.iter().map(|c| c.div_ceil(PLANE_BLOCK)).sum();
        let mut work: Vec<(usize, usize, &mut [f32], &mut [bool])> =
            Vec::with_capacity(n_items);
        for (m, (data, mask)) in out_data.iter_mut().zip(out_mask.iter_mut()).enumerate() {
            for (b, (dchunk, mchunk)) in data
                .chunks_mut(PLANE_BLOCK * dst_plane)
                .zip(mask.chunks_mut(PLANE_BLOCK * dst_plane))
                .enumerate()
            {
                work.push((m, b * PLANE_BLOCK, dchunk, mchunk));
            }
        }

        work.par_iter_mut().for_each(|(m, lp0, dchunk, mchunk)| {
            let n_planes = dchunk.len() / dst_plane.max(1);
            // Hoist the block's source plane slices out of the row loop.
            let srcs: Vec<(&[f32], &[bool])> = (0..n_planes)
                .map(|k| {
                    let off = (*lp0 + k) * src_plane;
                    (
                        member_data
                            .get(*m)
                            .and_then(|d| d.get(off..off + src_plane))
                            .unwrap_or_default(),
                        member_mask
                            .get(*m)
                            .and_then(|d| d.get(off..off + src_plane))
                            .unwrap_or_default(),
                    )
                })
                .collect();
            let mut acc = [(0.0f64, 0.0f64, false); PLANE_BLOCK];
            let block_acc = acc.get_mut(..srcs.len()).unwrap_or_default();
            let mut start = self.row_ptr.first().copied().unwrap_or(0);
            for bi in 0..dst_plane {
                let end = self.row_ptr.get(bi + 1).copied().unwrap_or(start);
                let row_cols = self.cols.get(start..end).unwrap_or_default();
                let row_w = self.weights.get(start..end).unwrap_or_default();
                start = end;
                accum_row_block(renorm, row_cols, row_w, &srcs, block_acc);
                let empty = row_cols.is_empty();
                for (k, &(vsum, wsum, masked)) in block_acc.iter().enumerate() {
                    let idx = k * dst_plane + bi;
                    if let (Some(o), Some(om)) = (dchunk.get_mut(idx), mchunk.get_mut(idx))
                    {
                        finalize_cell(renorm, vsum, wsum, masked || empty, o, om);
                    }
                }
            }
        });
        drop(work);

        let mut out = Vec::with_capacity(members.len());
        for (((var, &lat_i), data), mask) in members
            .iter()
            .zip(lat_axis_pos.iter())
            .zip(out_data)
            .zip(out_mask)
        {
            let mut shape = var.shape().get(..lat_i).unwrap_or_default().to_vec();
            shape.push(ny_t);
            shape.push(nx_t);
            let array = MaskedArray::with_mask(data, mask, &shape)?;
            let mut axes = var.axes.get(..lat_i).unwrap_or_default().to_vec();
            axes.push(self.dst_lat.clone());
            axes.push(self.dst_lon.clone());
            let mut v = Variable::new(&var.id, array, axes)?;
            v.attributes = var.attributes.clone();
            out.push(v);
        }
        Ok(out)
    }
}

/// One CSR row × one source plane — the accumulation kernel of
/// [`RegridPlan::apply`]. Strict mode (bilinear) masks the output on the
/// first masked source cell; renormalizing mode (conservative) divides by
/// the unmasked weight sum and masks only when it is zero.
#[inline]
fn accum_row(
    renorm: bool,
    row_cols: &[u32],
    row_w: &[f64],
    sd: &[f32],
    sm: &[bool],
    o: &mut f32,
    om: &mut bool,
) {
    let mut vsum = 0.0f64;
    let mut wsum = 0.0f64;
    let mut any_masked = row_cols.is_empty();
    for (&c, &w) in row_cols.iter().zip(row_w) {
        let ci = c as usize;
        if sm.get(ci).copied().unwrap_or(true) {
            any_masked = true;
            if !renorm {
                break;
            }
        } else {
            let v = f64::from(sd.get(ci).copied().unwrap_or(0.0));
            wsum += w;
            vsum += w * v;
        }
    }
    finalize_cell(renorm, vsum, wsum, any_masked, o, om);
}

/// One CSR row × a block of source planes — the multi-RHS kernel of
/// [`RegridPlan::apply_batch`]. Walks the row's `(column, weight)` pairs
/// once and accumulates `(vsum, wsum, any_masked)` for every plane in the
/// block into `acc` (reset here; one entry per plane of `srcs`).
///
/// Per plane this performs exactly [`accum_row`]'s accumulation: the same
/// weights hit the same f64 sums in the same column order, and a strict
/// plane stops accumulating once masked (`accum_row`'s early `break`,
/// expressed as a dead flag so the shared column walk can continue for
/// the other planes). The caller finishes each plane with
/// [`finalize_cell`], keeping batched output bit-identical to per-plane
/// applies.
#[inline]
fn accum_row_block(
    renorm: bool,
    row_cols: &[u32],
    row_w: &[f64],
    srcs: &[(&[f32], &[bool])],
    acc: &mut [(f64, f64, bool)],
) {
    for a in acc.iter_mut() {
        *a = (0.0, 0.0, false);
    }
    for (&c, &w) in row_cols.iter().zip(row_w) {
        let ci = c as usize;
        for ((sd, sm), a) in srcs.iter().zip(acc.iter_mut()) {
            if !renorm && a.2 {
                continue;
            }
            if sm.get(ci).copied().unwrap_or(true) {
                a.2 = true;
            } else {
                let v = f64::from(sd.get(ci).copied().unwrap_or(0.0));
                a.1 += w;
                a.0 += w * v;
            }
        }
    }
}

/// Shared epilogue of [`accum_row`] and the [`accum_row_block`] call
/// sites: renormalizing mode divides by the unmasked weight sum (masking
/// only when it is zero), strict mode masks when any contributing cell —
/// or the whole row — was masked.
#[inline]
fn finalize_cell(
    renorm: bool,
    vsum: f64,
    wsum: f64,
    any_masked: bool,
    o: &mut f32,
    om: &mut bool,
) {
    if renorm {
        if wsum > 0.0 {
            *o = (vsum / wsum) as f32;
        } else {
            *om = true;
        }
    } else if any_masked {
        *om = true;
    } else {
        *o = vsum as f32;
    }
}

/// CSR triple for bilinear interpolation. Each row holds the (up to) four
/// corner weights of one target cell; duplicate corners (clamped edges)
/// are coalesced, and zero-weight corners are kept so strict mask
/// propagation sees exactly the corners the direct implementation checked.
fn bilinear_weights(
    src_lat: &Axis,
    src_lon: &Axis,
    target: &RectGrid,
) -> (Vec<usize>, Vec<u32>, Vec<f64>) {
    let (ny_s, nx_s) = (src_lat.len(), src_lon.len());
    let (ny_t, nx_t) = target.shape();
    let wrap = src_lon.is_circular() && src_lon.direction() > 0;
    let step = uniform_step(&src_lon.values);

    let lat_stencil: Vec<(usize, f64)> =
        target.lat.values.iter().map(|&phi| src_lat.fractional_index(phi)).collect();
    let lon_stencil: Vec<(usize, usize, f64)> = target
        .lon
        .values
        .iter()
        .map(|&lam| {
            if wrap {
                lon_bracket_wrapped(src_lon, step, lam)
            } else {
                let (i, f) = src_lon.fractional_index(lam);
                (i, (i + 1).min(nx_s - 1), f)
            }
        })
        .collect();

    let n_rows = ny_t * nx_t;
    let mut row_ptr = Vec::with_capacity(n_rows + 1);
    row_ptr.push(0);
    let mut cols = Vec::with_capacity(4 * n_rows);
    let mut weights = Vec::with_capacity(4 * n_rows);
    let mut corners: Vec<(u32, f64)> = Vec::with_capacity(4);
    for &(j0, fy) in &lat_stencil {
        let j1 = (j0 + 1).min(ny_s - 1);
        for &(i0, i1, fx) in &lon_stencil {
            corners.clear();
            push_coalesced(&mut corners, (j0 * nx_s + i0) as u32, (1.0 - fy) * (1.0 - fx));
            push_coalesced(&mut corners, (j0 * nx_s + i1) as u32, (1.0 - fy) * fx);
            push_coalesced(&mut corners, (j1 * nx_s + i0) as u32, fy * (1.0 - fx));
            push_coalesced(&mut corners, (j1 * nx_s + i1) as u32, fy * fx);
            for &(c, w) in &corners {
                cols.push(c);
                weights.push(w);
            }
            row_ptr.push(cols.len());
        }
    }
    (row_ptr, cols, weights)
}

fn push_coalesced(corners: &mut Vec<(u32, f64)>, col: u32, w: f64) {
    for entry in corners.iter_mut() {
        if entry.0 == col {
            entry.1 += w;
            return;
        }
    }
    corners.push((col, w));
}

/// CSR triple for first-order conservative remapping: separable overlap
/// weights (sin-lat bands × longitude widths modulo 360), duplicates from
/// the ±360° shifts coalesced per row in column order.
fn conservative_weights(
    src_lat: &Axis,
    src_lon: &Axis,
    target: &RectGrid,
) -> (Vec<usize>, Vec<u32>, Vec<f64>) {
    let slat_b = src_lat.clone().bounds_or_gen();
    let slon_b = src_lon.clone().bounds_or_gen();
    let tlat_b = target.lat.clone().bounds_or_gen();
    let tlon_b = target.lon.clone().bounds_or_gen();
    let nx_s = src_lon.len();

    // Latitude overlaps in sin-lat (exact sphere areas).
    let overlap_lat: Vec<Vec<(usize, f64)>> = tlat_b
        .iter()
        .map(|&(lo_t, hi_t)| {
            let (lo_t, hi_t) = order(lo_t, hi_t);
            let mut v = Vec::new();
            for (j, &(lo_s, hi_s)) in slat_b.iter().enumerate() {
                let (lo_s, hi_s) = order(lo_s, hi_s);
                let lo = lo_t.max(lo_s);
                let hi = hi_t.min(hi_s);
                if hi > lo {
                    let w = hi.to_radians().sin() - lo.to_radians().sin();
                    if w > 0.0 {
                        v.push((j, w));
                    }
                }
            }
            v
        })
        .collect();
    // Longitude overlaps modulo 360.
    let overlap_lon: Vec<Vec<(usize, f64)>> = tlon_b
        .iter()
        .map(|&(lo_t, hi_t)| {
            let (lo_t, hi_t) = order(lo_t, hi_t);
            let mut v = Vec::new();
            for (i, &(lo_s, hi_s)) in slon_b.iter().enumerate() {
                let (lo_s, hi_s) = order(lo_s, hi_s);
                // try the source cell shifted by -360, 0, +360
                for shift in [-360.0, 0.0, 360.0] {
                    let lo = lo_t.max(lo_s + shift);
                    let hi = hi_t.min(hi_s + shift);
                    if hi > lo {
                        v.push((i, hi - lo));
                    }
                }
            }
            v
        })
        .collect();

    let n_rows = overlap_lat.len() * overlap_lon.len();
    let mut row_ptr = Vec::with_capacity(n_rows + 1);
    row_ptr.push(0);
    let mut cols = Vec::new();
    let mut weights = Vec::new();
    let mut acc: BTreeMap<u32, f64> = BTreeMap::new();
    for lat_row in &overlap_lat {
        for lon_row in &overlap_lon {
            acc.clear();
            for &(js, wy) in lat_row {
                for &(is, wx) in lon_row {
                    *acc.entry((js * nx_s + is) as u32).or_insert(0.0) += wy * wx;
                }
            }
            for (&c, &w) in &acc {
                if w > 0.0 {
                    cols.push(c);
                    weights.push(w);
                }
            }
            row_ptr.push(cols.len());
        }
    }
    (row_ptr, cols, weights)
}

/// `Some(step)` when the values are uniformly spaced (ascending) within a
/// relative 1e-9 — the fast path for direct bracket computation.
fn uniform_step(values: &[f64]) -> Option<f64> {
    let first = values.first().copied()?;
    let second = values.get(1).copied()?;
    let step = second - first;
    if step <= 0.0 {
        return None;
    }
    let tol = step * 1e-9 + 1e-12;
    let ok = values
        .iter()
        .zip(values.iter().skip(1))
        .all(|(a, b)| ((b - a) - step).abs() <= tol);
    if ok {
        Some(step)
    } else {
        None
    }
}

/// Bracketing cell of `lam` on an ascending circular longitude axis:
/// O(1) on uniform spacing, O(log n) binary search otherwise — replacing
/// the former O(n) scan per target column. Returns `(i0, i1, frac)` with
/// `i1 = (i0 + 1) % n` so the wrap cell `[last, first + 360)` works.
fn lon_bracket_wrapped(src_lon: &Axis, step: Option<f64>, lam: f64) -> (usize, usize, f64) {
    let nx = src_lon.len();
    let values = &src_lon.values;
    let first = values.first().copied().unwrap_or(0.0);
    let last = values.last().copied().unwrap_or(0.0);
    let lam_n = normalize_lon(lam, first);
    let mean_span = 360.0 / nx as f64;

    if let Some(st) = step {
        // First cell i with lam_n <= upper_bound(i) + 1e-9, upper bounds at
        // first + st*(i+1): same tie behaviour as the original scan.
        let u = (lam_n - first - 1e-9) / st;
        let i0 = if u <= 0.0 { 0 } else { (u.ceil() as usize).saturating_sub(1).min(nx - 1) };
        let a = first + st * i0 as f64;
        let frac = ((lam_n - a) / st).clamp(0.0, 1.0);
        return (i0, (i0 + 1) % nx, frac);
    }

    // Binary search for the first cell whose upper bound admits lam_n.
    // Upper bounds are values[1..] followed by first + 360.
    let i0 = values
        .get(1..)
        .map(|uppers| uppers.partition_point(|&v| v + 1e-9 < lam_n))
        .unwrap_or(0)
        .min(nx - 1);
    let a = values.get(i0).copied().unwrap_or(first);
    let b = if i0 + 1 < nx {
        values.get(i0 + 1).copied().unwrap_or(last)
    } else {
        first + 360.0
    };
    if (b - a).abs() >= 2.0 * mean_span || (b - a).abs() < 1e-12 {
        // Pathologically wide (or degenerate) cell: fall back to the
        // clamped fractional index, as the scan-based implementation did.
        let (i, f) = src_lon.fractional_index(lam_n);
        return (i, (i + 1).min(nx - 1), f);
    }
    let frac = ((lam_n - a) / (b - a)).clamp(0.0, 1.0);
    (i0, (i0 + 1) % nx, frac)
}

/// Shifts `lam` by whole turns into `[base, base + 360)`.
pub(crate) fn normalize_lon(lam: f64, base: f64) -> f64 {
    let mut l = (lam - base).rem_euclid(360.0) + base;
    if l < base {
        l += 360.0;
    }
    l
}

fn order(a: f64, b: f64) -> (f64, f64) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_names_round_trip() {
        for m in [RegridMethod::Bilinear, RegridMethod::Conservative] {
            assert_eq!(RegridMethod::parse(m.name()), Some(m));
        }
        assert_eq!(RegridMethod::parse(" Conservative "), Some(RegridMethod::Conservative));
        assert_eq!(RegridMethod::parse("cubic"), None);
    }

    #[test]
    fn plan_keys_separate_methods_and_grids() {
        let a = RectGrid::uniform(8, 16).unwrap();
        let b = RectGrid::uniform(4, 8).unwrap();
        let pb = RegridPlan::bilinear(&a.lat, &a.lon, &b).unwrap();
        let pc = RegridPlan::conservative(&a.lat, &a.lon, &b).unwrap();
        assert_ne!(pb.key(), pc.key());
        let reversed = RegridPlan::bilinear(&b.lat, &b.lon, &a).unwrap();
        assert_ne!(pb.key(), reversed.key());
        // deterministic across rebuilds
        assert_eq!(pb.key(), RegridPlan::bilinear(&a.lat, &a.lon, &b).unwrap().key());
    }

    #[test]
    fn bilinear_rows_have_at_most_four_corners_summing_to_one() {
        let src = RectGrid::uniform(6, 12).unwrap();
        let dst = RectGrid::uniform(9, 17).unwrap();
        let p = RegridPlan::bilinear(&src.lat, &src.lon, &dst).unwrap();
        assert_eq!(p.row_ptr.len(), 9 * 17 + 1);
        for r in 0..9 * 17 {
            let (s, e) = (p.row_ptr[r], p.row_ptr[r + 1]);
            assert!(e - s >= 1 && e - s <= 4, "row {r} has {} entries", e - s);
            let sum: f64 = p.weights[s..e].iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "row {r} weight sum {sum}");
        }
    }

    #[test]
    fn uniform_step_detection() {
        assert_eq!(uniform_step(&[0.0, 10.0, 20.0, 30.0]), Some(10.0));
        assert_eq!(uniform_step(&[0.0, 10.0, 21.0]), None);
        assert_eq!(uniform_step(&[30.0, 20.0, 10.0]), None); // descending
        assert_eq!(uniform_step(&[5.0]), None);
    }

    #[test]
    fn wrapped_bracket_matches_linear_scan() {
        // non-uniform circular axis → binary-search path
        let lon = Axis::longitude(vec![0.0, 20.0, 90.0, 200.0, 300.0]).unwrap();
        assert!(lon.is_circular());
        let nx = lon.len();
        let span = 360.0 / nx as f64;
        for lam in [0.0, 5.0, 19.9, 20.0, 150.0, 299.0, 330.0, 359.9, 361.0, -5.0] {
            let lam_n = normalize_lon(lam, 0.0);
            // reference: the original O(n) scan
            let mut want = None;
            for i in 0..nx {
                let a = lon.values[i];
                let b = if i + 1 < nx { lon.values[i + 1] } else { lon.values[0] + 360.0 };
                if lam_n >= a - 1e-9 && lam_n <= b + 1e-9 && (b - a).abs() < 2.0 * span {
                    want = Some((i, (i + 1) % nx, ((lam_n - a) / (b - a)).clamp(0.0, 1.0)));
                    break;
                }
            }
            let want = want.unwrap_or_else(|| {
                let (i, f) = lon.fractional_index(lam_n);
                (i, (i + 1).min(nx - 1), f)
            });
            let got = lon_bracket_wrapped(&lon, uniform_step(&lon.values), lam);
            assert_eq!(got.0, want.0, "lam={lam}");
            assert_eq!(got.1, want.1, "lam={lam}");
            assert!((got.2 - want.2).abs() < 1e-9, "lam={lam}: {} vs {}", got.2, want.2);
        }
    }

    #[test]
    fn uniform_fast_path_matches_scan_at_boundaries() {
        let lon = Axis::longitude((0..36).map(|i| i as f64 * 10.0).collect()).unwrap();
        let st = uniform_step(&lon.values);
        assert_eq!(st, Some(10.0));
        for lam in [0.0, 10.0, 15.0, 355.0, 359.999, 350.0, 345.0] {
            let fast = lon_bracket_wrapped(&lon, st, lam);
            let slow = lon_bracket_wrapped(&lon, None, lam);
            assert_eq!(fast.0, slow.0, "lam={lam}");
            assert_eq!(fast.1, slow.1, "lam={lam}");
            assert!((fast.2 - slow.2).abs() < 1e-9, "lam={lam}");
        }
    }

    #[test]
    fn apply_rejects_wrong_source_grid() {
        let src = RectGrid::uniform(8, 16).unwrap();
        let other = RectGrid::uniform(10, 20).unwrap();
        let dst = RectGrid::uniform(4, 8).unwrap();
        let plan = RegridPlan::bilinear(&src.lat, &src.lon, &dst).unwrap();
        let arr = MaskedArray::from_fn(&[10, 20], |ix| ix[0] as f32);
        let v = Variable::new("f", arr, vec![other.lat.clone(), other.lon.clone()]).unwrap();
        assert!(plan.apply(&v).is_err());
    }
}
