//! Statistical operations: variance, correlation, trends, RMSE —
//! `genutil.statistics` equivalents, mask-aware throughout.
//!
//! Global reductions (correlation, RMSE, the standardize moments) run on
//! the deterministic blocked kernel in [`crate::reduce`]: parallel over
//! fixed-size blocks, Neumaier-compensated partials merged in a fixed tree
//! order — bit-identical results for any `RAYON_NUM_THREADS`. Per-gridpoint
//! reductions (the trend) parallelize over output cells while keeping each
//! cell's accumulation in eager order, so they are additionally
//! bit-identical to the pre-fusion serial code (see [`crate::eager_ref`]).

use crate::reduce;
use cdms::axis::AxisKind;
use cdms::{CdmsError, Result, Variable};
use rayon::prelude::*;

/// Pearson correlation between two variables over all mutually valid
/// elements (pattern correlation when fed spatial fields).
pub fn correlation(a: &Variable, b: &Variable) -> Result<f64> {
    crate::ops::check_domains(a, b)?;
    let p = reduce::pair_sums(&a.array, &b.array);
    if p.n < 2 {
        return Err(CdmsError::EmptySelection("fewer than 2 valid pairs".into()));
    }
    p.correlation().ok_or_else(|| CdmsError::Invalid("zero variance".into()))
}

/// Root-mean-square error between two variables over valid pairs.
pub fn rmse(a: &Variable, b: &Variable) -> Result<f64> {
    crate::ops::check_domains(a, b)?;
    let p = reduce::pair_sums(&a.array, &b.array);
    p.rmse().ok_or_else(|| CdmsError::EmptySelection("no valid pairs".into()))
}

/// Least-squares linear trend along the time axis, per grid point:
/// returns a variable of slopes in units of `[var]/[time unit]`.
/// Points with fewer than 3 valid times are masked.
pub fn linear_trend(var: &Variable) -> Result<Variable> {
    let t_idx = var
        .axis_index(AxisKind::Time)
        .ok_or_else(|| CdmsError::NotFound(format!("time axis on '{}'", var.id)))?;
    let times = &var.axes[t_idx].values;
    let nt = times.len();
    let strides = var.array.strides();
    let t_stride = strides[t_idx];

    let mut out_shape = var.shape().to_vec();
    out_shape.remove(t_idx);
    if out_shape.is_empty() {
        out_shape.push(1);
    }
    let outer: usize = var.shape()[..t_idx].iter().product();
    let inner: usize = var.shape()[t_idx + 1..].iter().product();

    // Output cells are independent: distribute the outer slabs over the
    // pool, keep each cell's time accumulation serial in ascending order —
    // the eager order, so slopes are bit-identical to the serial reference
    // and invariant under thread count.
    let src_mask = var.array.mask();
    let src_data = var.array.data();
    let mut data = vec![0.0f32; outer * inner];
    let mut mask = vec![false; outer * inner];
    data.par_chunks_mut(inner.max(1))
        .zip(mask.par_chunks_mut(inner.max(1)))
        .enumerate()
        .for_each(|(o, (dd, mm))| {
            for (i, (d, mk)) in dd.iter_mut().zip(mm.iter_mut()).enumerate() {
                let base = o * t_stride * nt + i;
                let (mut n, mut st, mut sv, mut stt, mut stv) = (0usize, 0.0f64, 0.0, 0.0, 0.0);
                for (t, &tv) in times.iter().enumerate() {
                    let idx = base + t * t_stride;
                    if src_mask.get(idx).copied().unwrap_or(true) {
                        continue;
                    }
                    let v = src_data.get(idx).copied().unwrap_or_default() as f64;
                    n += 1;
                    st += tv;
                    sv += v;
                    stt += tv * tv;
                    stv += tv * v;
                }
                let mut fitted = false;
                if n >= 3 {
                    let nf = n as f64;
                    let denom = stt - st * st / nf;
                    if denom.abs() > 1e-12 {
                        *d = ((stv - st * sv / nf) / denom) as f32;
                        fitted = true;
                    }
                }
                if !fitted {
                    *mk = true;
                }
            }
        });
    let array = cdms::MaskedArray::with_mask(data, mask, &out_shape)?;
    let mut axes = var.axes.clone();
    axes.remove(t_idx);
    if axes.is_empty() {
        axes.push(cdms::Axis::new("scalar", vec![0.0], "", AxisKind::Generic)?);
    }
    let mut v = Variable::new(&format!("{}_trend", var.id), array, axes)?;
    v.attributes = var.attributes.clone();
    Ok(v)
}

/// Standardizes a variable: `(x - mean) / std` over valid elements.
///
/// One deterministic blocked pass gathers mean and std together (the eager
/// path reduced twice), then a fused parallel map applies the transform.
pub fn standardize(var: &Variable) -> Result<Variable> {
    let m = reduce::moments(&var.array);
    let mean =
        m.mean().ok_or_else(|| CdmsError::EmptySelection("all masked".into()))? as f32;
    let std = m.std().unwrap_or(0.0) as f32;
    if std <= 0.0 {
        return Err(CdmsError::Invalid("zero variance".into()));
    }
    let arr = crate::expr::Expr::leaf(&var.array).sub_div(mean, std).eval()?;
    let mut v = Variable::new(&format!("{}_std", var.id), arr, var.axes.clone())?;
    v.attributes = var.attributes.clone();
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdms::calendar::Calendar;
    use cdms::synth::SynthesisSpec;
    use cdms::{Axis, MaskedArray};

    fn time_var(values: Vec<f32>) -> Variable {
        let n = values.len();
        let time = Axis::time(
            (0..n).map(|t| t as f64).collect(),
            "days since 2000-01-01",
            Calendar::NoLeap365,
        )
        .unwrap();
        Variable::new("x", MaskedArray::from_vec(values, &[n]).unwrap(), vec![time]).unwrap()
    }

    #[test]
    fn self_correlation_is_one() {
        let ds = SynthesisSpec::new(2, 2, 8, 16).build();
        let ta = ds.variable("ta").unwrap();
        let r = correlation(ta, ta).unwrap();
        assert!((r - 1.0).abs() < 1e-9);
    }

    #[test]
    fn anticorrelation_is_minus_one() {
        let a = time_var(vec![1.0, 2.0, 3.0, 4.0]);
        let mut b = a.clone();
        b.array = a.array.mul_scalar(-2.0).add_scalar(10.0);
        let r = correlation(&a, &b).unwrap();
        assert!((r + 1.0).abs() < 1e-9);
    }

    #[test]
    fn correlation_needs_valid_pairs_and_variance() {
        let a = time_var(vec![1.0, 1.0, 1.0]);
        let b = time_var(vec![1.0, 2.0, 3.0]);
        assert!(correlation(&a, &b).is_err()); // zero variance
        let mut c = time_var(vec![1.0, 2.0, 3.0]);
        for i in 0..3 {
            c.array.mask_at(&[i]).unwrap();
        }
        assert!(correlation(&c, &b).is_err()); // no pairs
    }

    #[test]
    fn rmse_basics() {
        let a = time_var(vec![1.0, 2.0, 3.0]);
        let b = time_var(vec![1.0, 2.0, 3.0]);
        assert!(rmse(&a, &b).unwrap() < 1e-12);
        let c = time_var(vec![2.0, 3.0, 4.0]);
        assert!((rmse(&a, &c).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trend_of_linear_series() {
        let v = time_var((0..10).map(|t| 3.0 * t as f32 + 5.0).collect());
        let tr = linear_trend(&v).unwrap();
        assert_eq!(tr.array.len(), 1);
        assert!((tr.array.data()[0] - 3.0).abs() < 1e-5);
    }

    #[test]
    fn trend_per_gridpoint_with_masking() {
        let ds = SynthesisSpec::new(6, 1, 4, 8).noise(0.0).build();
        let mut ta = ds.variable("ta").unwrap().clone();
        // mask one point's entire series except two steps → masked output
        for t in 0..4 {
            ta.array.mask_at(&[t, 0, 0, 0]).unwrap();
        }
        let tr = linear_trend(&ta).unwrap();
        assert_eq!(tr.shape(), &[1, 4, 8]);
        assert_eq!(tr.array.get_valid(&[0, 0, 0]).unwrap(), None);
        assert!(tr.array.get_valid(&[0, 1, 1]).unwrap().is_some());
    }

    #[test]
    fn trend_requires_time_axis() {
        let ds = SynthesisSpec::new(2, 1, 4, 8).build();
        let lf = ds.variable("sftlf").unwrap();
        assert!(linear_trend(lf).is_err());
    }

    #[test]
    fn standardize_zero_mean_unit_std() {
        let v = time_var(vec![2.0, 4.0, 6.0, 8.0]);
        let s = standardize(&v).unwrap();
        assert!(s.array.mean().unwrap().abs() < 1e-6);
        assert!((s.array.std().unwrap() - 1.0).abs() < 1e-5);
        let flat = time_var(vec![1.0, 1.0]);
        assert!(standardize(&flat).is_err());
    }
}
