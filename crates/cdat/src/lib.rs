#![forbid(unsafe_code)]
// Index-form loops over several parallel arrays are clearer here than
// iterator chains; silence the style lint crate-wide.
#![allow(clippy::needless_range_loop)]

//! # cdat — Climate Data Analysis Tools
//!
//! The analysis-operation suite the paper's workflows draw on (§III.G):
//! "simple arithmetic operations, regridding, conditioned comparisons,
//! weighted averages, various statistical operations, etc." — plus the
//! parallel task execution DV3D advertises, as a dependency-aware task
//! graph executed with rayon.
//!
//! All operations act on [`cdms::Variable`]s, propagate masks, and keep
//! axis metadata consistent with the data.
//!
//! ## Quickstart
//!
//! ```
//! use cdms::synth::SynthesisSpec;
//! use cdat::{averager, climatology, regrid};
//!
//! let ds = SynthesisSpec::new(8, 3, 16, 32).build();
//! let ta = ds.variable("ta").unwrap();
//!
//! // Area-weighted global mean time series.
//! let series = averager::spatial_mean(ta).unwrap();
//! assert_eq!(series.shape()[0], 8);
//!
//! // Anomalies from the time mean.
//! let anom = climatology::anomaly(ta).unwrap();
//! assert!(anom.array.mean().unwrap().abs() < 0.5);
//!
//! // Regrid to a coarser grid.
//! let coarse = cdms::RectGrid::uniform(8, 16).unwrap();
//! let ta_lo = regrid::bilinear(ta, &coarse).unwrap();
//! assert_eq!(&ta_lo.shape()[2..], &[8, 16]);
//! ```

pub mod averager;
pub mod climatology;
pub mod conditioned;
pub mod eager_ref;
pub mod ensemble;
pub mod eof;
pub mod expr;
pub mod hovmoller;
pub mod ops;
pub mod pipeline;
pub mod plan_cache;
pub mod reduce;
pub mod regrid;
pub mod regrid_plan;
pub mod statistics;
pub mod taskgraph;

pub use cdms::{CdmsError, Result};
