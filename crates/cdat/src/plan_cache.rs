//! Workspace-wide cache of [`RegridPlan`]s: a bounded LRU keyed by the
//! `(source grid, target grid, method)` fingerprint from
//! [`crate::regrid_plan::plan_key`], with hit/miss/dedup/eviction counters
//! so benches and diagnostics can verify reuse. The `regrid::{bilinear,
//! conservative}` wrappers route through the process-global instance, so
//! every animation frame, spreadsheet cell or hyperwall panel that repeats
//! a grid pair pays the planning cost once.
//!
//! Two layers:
//!
//! * [`PlanCache`] — the single-owner LRU (bookkeeping only, no locking).
//! * [`SharedPlanCache`] — the concurrent front the multi-tenant session
//!   service hits from many threads at once. The map lock is **never held
//!   while a plan builds** (builds for different keys proceed in
//!   parallel), and concurrent requests for the *same* key are
//!   deduplicated: one thread builds, the rest wait on that build and are
//!   counted in [`CacheStats::dedups`]. Keys are content-addressed grid
//!   fingerprints, so "same key" means "same work" across sessions.
//!
//! On the dv3dlint `indexing_hot_paths` list: lookups run inside the
//! interactive render loop and must not panic.

use crate::regrid_plan::RegridPlan;
use cdms::Result;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex as StdMutex, OnceLock};

/// Default capacity of the process-global cache: a hyperwall's worth of
/// distinct grid pairs, small enough that eviction scans stay trivial.
pub const DEFAULT_GLOBAL_CAPACITY: usize = 32;

/// Cumulative cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build a plan.
    pub misses: u64,
    /// Plans dropped to respect the capacity bound.
    pub evictions: u64,
    /// Lookups that piggybacked on another thread's in-flight build of the
    /// same key instead of building their own copy (shared front only).
    pub dedups: u64,
}

#[derive(Debug)]
struct Entry {
    plan: Arc<RegridPlan>,
    last_used: u64,
}

/// A bounded LRU cache of regrid plans.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    tick: u64,
    stats: CacheStats,
    entries: HashMap<u64, Entry>,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity: capacity.max(1),
            tick: 0,
            stats: CacheStats::default(),
            entries: HashMap::new(),
        }
    }

    /// The cached plan for `key`, bumping its recency. Counts a hit or a
    /// miss.
    pub fn get(&mut self, key: u64) -> Option<Arc<RegridPlan>> {
        self.tick += 1;
        match self.entries.get_mut(&key) {
            Some(e) => {
                e.last_used = self.tick;
                self.stats.hits += 1;
                Some(Arc::clone(&e.plan))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// The plan for `key`, building (and caching) it on a miss. A failed
    /// build caches nothing and surfaces the error.
    pub fn get_or_build(
        &mut self,
        key: u64,
        build: impl FnOnce() -> Result<RegridPlan>,
    ) -> Result<Arc<RegridPlan>> {
        if let Some(plan) = self.get(key) {
            return Ok(plan);
        }
        let plan = Arc::new(build()?);
        self.insert(key, Arc::clone(&plan));
        Ok(plan)
    }

    /// Inserts a plan, evicting least-recently-used entries to stay within
    /// capacity.
    pub fn insert(&mut self, key: u64, plan: Arc<RegridPlan>) {
        self.tick += 1;
        let tick = self.tick;
        self.entries.insert(key, Entry { plan, last_used: tick });
        self.enforce_capacity();
    }

    fn enforce_capacity(&mut self) {
        while self.entries.len() > self.capacity {
            // O(n) scan; n is bounded by the (small) capacity. Tie-break on
            // key so eviction order is deterministic.
            let victim = self
                .entries
                .iter()
                .map(|(&k, e)| (e.last_used, k))
                .min()
                .map(|(_, k)| k);
            match victim {
                Some(k) => {
                    self.entries.remove(&k);
                    self.stats.evictions += 1;
                }
                None => break,
            }
        }
    }

    /// Cumulative counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of cached plans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Changes the capacity, evicting LRU entries if it shrank.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        self.enforce_capacity();
    }

    /// Drops every cached plan (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Locks a std mutex, recovering the guard from a poisoned lock (the
/// protected state is plain bookkeeping; a panicked peer cannot corrupt it
/// beyond what the usual counters tolerate).
fn std_lock<T>(m: &StdMutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One in-flight plan build that other threads can wait on.
#[derive(Debug, Default)]
struct BuildSlot {
    done: StdMutex<bool>,
    cv: Condvar,
}

impl BuildSlot {
    fn wait(&self) {
        let mut done = std_lock(&self.done);
        while !*done {
            done = self
                .cv
                .wait(done)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn finish(&self) {
        *std_lock(&self.done) = true;
        self.cv.notify_all();
    }
}

/// The concurrent front over a [`PlanCache`]: safe to hit from many
/// session threads at once.
///
/// Invariants the contention tests pin down:
///
/// * the LRU lock is held only for map bookkeeping, never across a plan
///   build — distinct keys build in parallel;
/// * concurrent lookups of the same missing key run **one** build; the
///   other threads block on that build and count as
///   [`CacheStats::dedups`] (their served lookups also count as hits);
/// * a failed build poisons nothing: waiters retry, and the next claimant
///   rebuilds;
/// * capacity stays bounded under any interleaving (eviction is the
///   ordinary LRU path, counted in [`CacheStats::evictions`]).
#[derive(Debug)]
pub struct SharedPlanCache {
    cache: Mutex<PlanCache>,
    inflight: StdMutex<HashMap<u64, Arc<BuildSlot>>>,
}

impl SharedPlanCache {
    /// A shared cache holding at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> SharedPlanCache {
        SharedPlanCache {
            cache: Mutex::new(PlanCache::new(capacity)),
            inflight: StdMutex::new(HashMap::new()),
        }
    }

    /// The underlying LRU, for single-owner maintenance (capacity changes,
    /// clears). Do not hold this lock across plan builds.
    pub fn cache(&self) -> &Mutex<PlanCache> {
        &self.cache
    }

    /// Cumulative counters.
    pub fn stats(&self) -> CacheStats {
        self.cache.lock().stats()
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.cache.lock().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.cache.lock().is_empty()
    }

    /// The cached plan for `key`, bumping recency (counts a hit or miss).
    pub fn get(&self, key: u64) -> Option<Arc<RegridPlan>> {
        self.cache.lock().get(key)
    }

    /// The plan for `key`, building it on a miss without serializing
    /// unrelated builds, and deduplicating concurrent builds of the same
    /// key. A failed build caches nothing and surfaces the error to the
    /// thread that ran it; waiting threads retry (and rebuild if needed).
    pub fn get_or_build(
        &self,
        key: u64,
        mut build: impl FnMut() -> Result<RegridPlan>,
    ) -> Result<Arc<RegridPlan>> {
        let mut waited = false;
        loop {
            // fast path: answer from the LRU under its own (brief) lock
            {
                let mut c = self.cache.lock();
                c.tick += 1;
                let tick = c.tick;
                if let Some(e) = c.entries.get_mut(&key) {
                    e.last_used = tick;
                    let plan = Arc::clone(&e.plan);
                    c.stats.hits += 1;
                    if waited {
                        c.stats.dedups += 1;
                    }
                    return Ok(plan);
                }
            }
            // miss: claim the build, or wait on whoever already claimed it
            let (slot, is_builder) = {
                let mut inflight = std_lock(&self.inflight);
                match inflight.get(&key) {
                    Some(s) => (Arc::clone(s), false),
                    None => {
                        let s = Arc::new(BuildSlot::default());
                        inflight.insert(key, Arc::clone(&s));
                        (s, true)
                    }
                }
            };
            if !is_builder {
                slot.wait();
                waited = true;
                continue;
            }
            // build WITHOUT holding either lock: other keys proceed freely
            let built = build();
            let out = match built {
                Ok(plan) => {
                    let plan = Arc::new(plan);
                    let mut c = self.cache.lock();
                    c.stats.misses += 1;
                    c.insert(key, Arc::clone(&plan));
                    Ok(plan)
                }
                Err(e) => {
                    self.cache.lock().stats.misses += 1;
                    Err(e)
                }
            };
            std_lock(&self.inflight).remove(&key);
            slot.finish();
            return out;
        }
    }
}

static GLOBAL: OnceLock<SharedPlanCache> = OnceLock::new();

/// The process-global shared plan cache: the concurrent front every
/// session of the multi-tenant service (and the `regrid` wrappers) hits.
pub fn shared_global() -> &'static SharedPlanCache {
    GLOBAL.get_or_init(|| SharedPlanCache::new(DEFAULT_GLOBAL_CAPACITY))
}

/// The process-global plan cache's LRU (legacy single-owner handle; the
/// concurrent paths should use [`shared_global`]).
pub fn global() -> &'static Mutex<PlanCache> {
    shared_global().cache()
}

/// Counters of the global cache.
pub fn global_stats() -> CacheStats {
    global().lock().stats()
}

/// Empties the global cache (counters are kept).
pub fn clear_global() {
    global().lock().clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdms::RectGrid;

    fn plan_for(n: usize) -> RegridPlan {
        let src = RectGrid::uniform(n, 2 * n).unwrap();
        let dst = RectGrid::uniform(n + 1, 2 * n + 1).unwrap();
        RegridPlan::bilinear(&src.lat, &src.lon, &dst).unwrap()
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = PlanCache::new(2);
        c.insert(1, Arc::new(plan_for(2)));
        c.insert(2, Arc::new(plan_for(3)));
        assert!(c.get(1).is_some()); // 1 is now more recent than 2
        c.insert(3, Arc::new(plan_for(4)));
        assert_eq!(c.len(), 2);
        assert!(c.get(2).is_none(), "LRU entry 2 should have been evicted");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn get_or_build_builds_once() {
        let mut c = PlanCache::new(4);
        let mut builds = 0;
        for _ in 0..3 {
            let p = c
                .get_or_build(7, || {
                    builds += 1;
                    Ok(plan_for(2))
                })
                .unwrap();
            assert_eq!(p.dst_shape(), (3, 5));
        }
        assert_eq!(builds, 1);
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn failed_builds_cache_nothing() {
        let mut c = PlanCache::new(4);
        let r = c.get_or_build(9, || Err(cdms::CdmsError::Invalid("nope".into())));
        assert!(r.is_err());
        assert!(c.is_empty());
        // a later successful build still works
        assert!(c.get_or_build(9, || Ok(plan_for(2))).is_ok());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn shrinking_capacity_evicts() {
        let mut c = PlanCache::new(4);
        for k in 0..4 {
            c.insert(k, Arc::new(plan_for(2)));
        }
        c.set_capacity(1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().evictions, 3);
        assert!(c.get(3).is_some(), "most recent entry survives");
    }
}
