//! Workspace-wide cache of [`RegridPlan`]s: a bounded LRU keyed by the
//! `(source grid, target grid, method)` fingerprint from
//! [`crate::regrid_plan::plan_key`], with hit/miss/eviction counters so
//! benches and diagnostics can verify reuse. The `regrid::{bilinear,
//! conservative}` wrappers route through the process-global instance, so
//! every animation frame, spreadsheet cell or hyperwall panel that repeats
//! a grid pair pays the planning cost once.
//!
//! On the dv3dlint `indexing_hot_paths` list: lookups run inside the
//! interactive render loop and must not panic.

use crate::regrid_plan::RegridPlan;
use cdms::Result;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Default capacity of the process-global cache: a hyperwall's worth of
/// distinct grid pairs, small enough that eviction scans stay trivial.
pub const DEFAULT_GLOBAL_CAPACITY: usize = 32;

/// Cumulative cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build a plan.
    pub misses: u64,
    /// Plans dropped to respect the capacity bound.
    pub evictions: u64,
}

#[derive(Debug)]
struct Entry {
    plan: Arc<RegridPlan>,
    last_used: u64,
}

/// A bounded LRU cache of regrid plans.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    tick: u64,
    stats: CacheStats,
    entries: HashMap<u64, Entry>,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity: capacity.max(1),
            tick: 0,
            stats: CacheStats::default(),
            entries: HashMap::new(),
        }
    }

    /// The cached plan for `key`, bumping its recency. Counts a hit or a
    /// miss.
    pub fn get(&mut self, key: u64) -> Option<Arc<RegridPlan>> {
        self.tick += 1;
        match self.entries.get_mut(&key) {
            Some(e) => {
                e.last_used = self.tick;
                self.stats.hits += 1;
                Some(Arc::clone(&e.plan))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// The plan for `key`, building (and caching) it on a miss. A failed
    /// build caches nothing and surfaces the error.
    pub fn get_or_build(
        &mut self,
        key: u64,
        build: impl FnOnce() -> Result<RegridPlan>,
    ) -> Result<Arc<RegridPlan>> {
        if let Some(plan) = self.get(key) {
            return Ok(plan);
        }
        let plan = Arc::new(build()?);
        self.insert(key, Arc::clone(&plan));
        Ok(plan)
    }

    /// Inserts a plan, evicting least-recently-used entries to stay within
    /// capacity.
    pub fn insert(&mut self, key: u64, plan: Arc<RegridPlan>) {
        self.tick += 1;
        let tick = self.tick;
        self.entries.insert(key, Entry { plan, last_used: tick });
        self.enforce_capacity();
    }

    fn enforce_capacity(&mut self) {
        while self.entries.len() > self.capacity {
            // O(n) scan; n is bounded by the (small) capacity. Tie-break on
            // key so eviction order is deterministic.
            let victim = self
                .entries
                .iter()
                .map(|(&k, e)| (e.last_used, k))
                .min()
                .map(|(_, k)| k);
            match victim {
                Some(k) => {
                    self.entries.remove(&k);
                    self.stats.evictions += 1;
                }
                None => break,
            }
        }
    }

    /// Cumulative counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of cached plans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Changes the capacity, evicting LRU entries if it shrank.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        self.enforce_capacity();
    }

    /// Drops every cached plan (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

static GLOBAL: OnceLock<Mutex<PlanCache>> = OnceLock::new();

/// The process-global plan cache the `regrid` wrappers share.
pub fn global() -> &'static Mutex<PlanCache> {
    GLOBAL.get_or_init(|| Mutex::new(PlanCache::new(DEFAULT_GLOBAL_CAPACITY)))
}

/// Counters of the global cache.
pub fn global_stats() -> CacheStats {
    global().lock().stats()
}

/// Empties the global cache (counters are kept).
pub fn clear_global() {
    global().lock().clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdms::RectGrid;

    fn plan_for(n: usize) -> RegridPlan {
        let src = RectGrid::uniform(n, 2 * n).unwrap();
        let dst = RectGrid::uniform(n + 1, 2 * n + 1).unwrap();
        RegridPlan::bilinear(&src.lat, &src.lon, &dst).unwrap()
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = PlanCache::new(2);
        c.insert(1, Arc::new(plan_for(2)));
        c.insert(2, Arc::new(plan_for(3)));
        assert!(c.get(1).is_some()); // 1 is now more recent than 2
        c.insert(3, Arc::new(plan_for(4)));
        assert_eq!(c.len(), 2);
        assert!(c.get(2).is_none(), "LRU entry 2 should have been evicted");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn get_or_build_builds_once() {
        let mut c = PlanCache::new(4);
        let mut builds = 0;
        for _ in 0..3 {
            let p = c
                .get_or_build(7, || {
                    builds += 1;
                    Ok(plan_for(2))
                })
                .unwrap();
            assert_eq!(p.dst_shape(), (3, 5));
        }
        assert_eq!(builds, 1);
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn failed_builds_cache_nothing() {
        let mut c = PlanCache::new(4);
        let r = c.get_or_build(9, || Err(cdms::CdmsError::Invalid("nope".into())));
        assert!(r.is_err());
        assert!(c.is_empty());
        // a later successful build still works
        assert!(c.get_or_build(9, || Ok(plan_for(2))).is_ok());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn shrinking_capacity_evicts() {
        let mut c = PlanCache::new(4);
        for k in 0..4 {
            c.insert(k, Arc::new(plan_for(2)));
        }
        c.set_capacity(1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().evictions, 3);
        assert!(c.get(3).is_some(), "most recent entry survives");
    }
}
