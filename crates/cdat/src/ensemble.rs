//! Ensemble / multi-region batch workloads — the ROADMAP's
//! "hundreds of members × regions" shape, built from the pieces the rest
//! of the crate provides: batched regridding onto a common grid
//! ([`crate::regrid::regrid_batch`]), deterministic ensemble reductions
//! through [`crate::reduce`] (mean / percentile / extremes along a new
//! leading `member` axis), regional clipping, and per-region climatology
//! normals. [`build_graph`] wires a full workload into a [`TaskGraph`]
//! whose sources fan into one batched regrid node and fan back out into
//! per-region analysis — the DAG the dependency-counting executor is
//! benchmarked on (`benches/ensemble.rs`).
//!
//! On the dv3dlint `indexing_hot_paths` list: these drivers run under
//! every batch workload, so element access goes through `.get()`.

use crate::regrid_plan::RegridMethod;
use crate::taskgraph::TaskGraph;
use crate::{averager, climatology, reduce};
use cdms::axis::{Axis, AxisKind};
use cdms::synth::SynthesisSpec;
use cdms::{CdmsError, RectGrid, Result, Variable};

/// A named rectangular analysis region (inclusive lat/lon bounds, degrees).
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    /// Region name, used to derive task names (`clip_<name>`, …).
    pub name: String,
    /// `(south, north)` latitude bounds.
    pub lat: (f64, f64),
    /// `(west, east)` longitude bounds.
    pub lon: (f64, f64),
}

impl Region {
    /// A named region from lat/lon bounds.
    pub fn new(name: &str, lat: (f64, f64), lon: (f64, f64)) -> Region {
        Region { name: name.to_string(), lat, lon }
    }
}

/// Synthesizes `count` ensemble members of the `ta` field: one
/// [`SynthesisSpec`] per member, seeded `base_seed + m`, so members share
/// axes but differ in data — the stand-in for N model realizations.
pub fn synth_members(
    count: usize,
    (t, lev, lat, lon): (usize, usize, usize, usize),
    base_seed: u64,
) -> Result<Vec<Variable>> {
    let mut members = Vec::with_capacity(count);
    for m in 0..count {
        let ds = SynthesisSpec::new(t, lev, lat, lon).seed(base_seed.wrapping_add(m as u64)).build();
        let var = ds
            .variable("ta")
            .ok_or_else(|| CdmsError::NotFound("synthesized 'ta'".into()))?;
        let mut var = var.clone();
        var.id = format!("ta_m{m}");
        members.push(var);
    }
    Ok(members)
}

/// Stacks equal-shape members along a new leading `member` axis
/// (`AxisKind::Generic`, coordinates `0..n`). Mask and data are carried
/// through unchanged; member order is the slice order.
pub fn stack(members: &[Variable]) -> Result<Variable> {
    let Some(first) = members.first() else {
        return Err(CdmsError::EmptySelection("no ensemble members to stack".into()));
    };
    let mut shape = vec![1usize];
    shape.extend_from_slice(first.shape());
    let mut parts = Vec::with_capacity(members.len());
    for var in members {
        if var.shape() != first.shape() {
            return Err(CdmsError::ShapeMismatch {
                expected: first.shape().to_vec(),
                got: var.shape().to_vec(),
            });
        }
        parts.push(var.array.reshape(&shape)?);
    }
    let part_refs: Vec<&cdms::MaskedArray> = parts.iter().collect();
    let array = cdms::MaskedArray::concat(&part_refs, 0)?;
    let member_axis = Axis::new(
        "member",
        (0..members.len()).map(|i| i as f64).collect(),
        "1",
        AxisKind::Generic,
    )?;
    let mut axes = Vec::with_capacity(first.axes.len() + 1);
    axes.push(member_axis);
    axes.extend(first.axes.iter().cloned());
    let mut v = Variable::new(&first.id, array, axes)?;
    v.attributes = first.attributes.clone();
    Ok(v)
}

/// Rebuilds a variable from a member-axis reduction of `stacked`: the
/// reduced array keeps every axis but the leading `member` one.
fn drop_member_axis(stacked: &Variable, array: cdms::MaskedArray, id: &str) -> Result<Variable> {
    let axes = stacked.axes.get(1..).unwrap_or_default().to_vec();
    let mut v = Variable::new(id, array, axes)?;
    v.attributes = stacked.attributes.clone();
    Ok(v)
}

/// Ensemble mean across the leading `member` axis, through the
/// deterministic [`reduce::mean_axis`] kernel (bit-identical to the eager
/// reduction, invariant under thread count).
pub fn mean(stacked: &Variable) -> Result<Variable> {
    let arr = reduce::mean_axis(&stacked.array, 0)?;
    drop_member_axis(stacked, arr, &format!("{}_ensmean", stacked.id))
}

/// The `q`-th ensemble percentile (0–100) across the `member` axis
/// ([`reduce::percentile_axis`]: `total_cmp` sort + linear interpolation,
/// deterministic).
pub fn percentile(stacked: &Variable, q: f64) -> Result<Variable> {
    let arr = reduce::percentile_axis(&stacked.array, 0, q)?;
    drop_member_axis(stacked, arr, &format!("{}_p{q:.0}", stacked.id))
}

/// Ensemble envelope: `(min, max)` across the `member` axis.
pub fn extremes(stacked: &Variable) -> Result<(Variable, Variable)> {
    let lo = drop_member_axis(stacked, reduce::min_axis(&stacked.array, 0)?, &format!("{}_min", stacked.id))?;
    let hi = drop_member_axis(stacked, reduce::max_axis(&stacked.array, 0)?, &format!("{}_max", stacked.id))?;
    Ok((lo, hi))
}

/// Clips a variable to a region's lat/lon box.
pub fn clip_region(var: &Variable, region: &Region) -> Result<Variable> {
    var.subset_lat_lon(region.lat, region.lon)
}

/// Per-region climatology normals: clip to the region, then the monthly
/// climatology (12 calendar-month means) of the clipped field.
pub fn region_normals(var: &Variable, region: &Region) -> Result<Variable> {
    climatology::monthly_climatology(&clip_region(var, region)?)
}

/// Wires a full ensemble workload into a [`TaskGraph`]:
///
/// ```text
/// m0 … mN ──► ens (batched regrid + stack)
///               ├─► ens_mean ──► per region: clip_R ─► normals_R
///               │                                   └► series_R
///               ├─► ens_p10 / ens_p50 / ens_p90
///               ├─► ens_lo
///               └─► ens_hi
/// ```
///
/// N member sources fan into one batched-regrid node (one plan-cache
/// consult, one blocked multi-RHS apply), which fans back out into the
/// ensemble reductions and per-region chains — wide where members and
/// regions are independent, so the event-driven executor can overlap
/// everything but the regrid barrier itself.
pub fn build_graph(
    members: Vec<Variable>,
    target: RectGrid,
    method: RegridMethod,
    regions: &[Region],
) -> Result<TaskGraph> {
    let mut g = TaskGraph::new();
    let mut names = Vec::with_capacity(members.len());
    for (m, var) in members.into_iter().enumerate() {
        let name = format!("m{m}");
        g.add_source(&name, var)?;
        names.push(name);
    }
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    g.add_regrid_batch_task("ens", &name_refs, target, method)?;

    fn dep<'a>(
        deps: &'a std::collections::BTreeMap<String, std::sync::Arc<Variable>>,
        name: &str,
    ) -> Result<&'a Variable> {
        deps.get(name)
            .map(std::sync::Arc::as_ref)
            .ok_or_else(|| CdmsError::NotFound(format!("dependency '{name}'")))
    }

    g.add_task("ens_mean", &["ens"], move |deps| mean(dep(deps, "ens")?))?;
    g.add_task("ens_p10", &["ens"], move |deps| percentile(dep(deps, "ens")?, 10.0))?;
    g.add_task("ens_p50", &["ens"], move |deps| percentile(dep(deps, "ens")?, 50.0))?;
    g.add_task("ens_p90", &["ens"], move |deps| percentile(dep(deps, "ens")?, 90.0))?;
    g.add_task("ens_lo", &["ens"], move |deps| Ok(extremes(dep(deps, "ens")?)?.0))?;
    g.add_task("ens_hi", &["ens"], move |deps| Ok(extremes(dep(deps, "ens")?)?.1))?;

    for region in regions {
        let clip_name = format!("clip_{}", region.name);
        let r = region.clone();
        g.add_task(&clip_name, &["ens_mean"], move |deps| {
            clip_region(dep(deps, "ens_mean")?, &r)
        })?;
        let dep_name = clip_name.clone();
        g.add_task(&format!("normals_{}", region.name), &[clip_name.as_str()], move |deps| {
            climatology::monthly_climatology(dep(deps, &dep_name)?)
        })?;
        let dep_name = clip_name.clone();
        g.add_task(&format!("series_{}", region.name), &[clip_name.as_str()], move |deps| {
            averager::spatial_mean(dep(deps, &dep_name)?)
        })?;
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regrid;

    fn members() -> Vec<Variable> {
        synth_members(4, (12, 2, 12, 24), 42).unwrap()
    }

    #[test]
    fn stack_prepends_member_axis() {
        let ms = members();
        let s = stack(&ms).unwrap();
        assert_eq!(s.shape(), &[4, 12, 2, 12, 24]);
        assert_eq!(s.axes[0].id, "member");
        assert_eq!(s.axes[0].kind, AxisKind::Generic);
        // member 2's data is carried through verbatim
        let plane = 12 * 2 * 12 * 24;
        assert_eq!(
            s.array.data().get(2 * plane..3 * plane),
            Some(ms[2].array.data())
        );
        assert!(stack(&[]).is_err());
    }

    #[test]
    fn stack_rejects_shape_mismatch() {
        let mut ms = members();
        ms.push(synth_members(1, (6, 2, 12, 24), 7).unwrap().remove(0));
        assert!(stack(&ms).is_err());
    }

    #[test]
    fn ensemble_reductions_reduce_member_axis() {
        let ms = members();
        let s = stack(&ms).unwrap();
        let m = mean(&s).unwrap();
        assert_eq!(m.shape(), &[12, 2, 12, 24]);
        let p = percentile(&s, 90.0).unwrap();
        assert_eq!(p.shape(), m.shape());
        let (lo, hi) = extremes(&s).unwrap();
        // envelope brackets the mean everywhere valid
        for ((&l, &h), &v) in lo.array.data().iter().zip(hi.array.data()).zip(m.array.data()) {
            assert!(l <= v + 1e-3 && v <= h + 1e-3, "{l} <= {v} <= {h}");
        }
    }

    #[test]
    fn graph_matches_direct_computation() {
        let ms = members();
        let target = RectGrid::uniform(8, 16).unwrap();
        let regions =
            [Region::new("tropics", (-20.0, 20.0), (0.0, 360.0))];
        let g = build_graph(ms.clone(), target.clone(), RegridMethod::Bilinear, &regions).unwrap();
        let report = g.run_serial().unwrap();

        // direct: per-member regrid, stack, reduce, clip, normals
        let regridded: Vec<Variable> =
            ms.iter().map(|v| regrid::regrid(v, &target, RegridMethod::Bilinear).unwrap()).collect();
        let s = stack(&regridded).unwrap();
        assert_eq!(report.outputs["ens"].array, s.array);
        let want_mean = mean(&s).unwrap();
        assert_eq!(report.outputs["ens_mean"].array, want_mean.array);
        assert_eq!(report.outputs["ens_p90"].array, percentile(&s, 90.0).unwrap().array);
        let clip = clip_region(&want_mean, &regions[0]).unwrap();
        assert_eq!(report.outputs["clip_tropics"].array, clip.array);
        assert_eq!(
            report.outputs["normals_tropics"].array,
            climatology::monthly_climatology(&clip).unwrap().array
        );
        assert_eq!(
            report.outputs["series_tropics"].array,
            averager::spatial_mean(&clip).unwrap().array
        );
    }

    #[test]
    fn graph_parallel_matches_serial_bitwise() {
        let ms = members();
        let target = RectGrid::uniform(8, 16).unwrap();
        let regions = [
            Region::new("tropics", (-20.0, 20.0), (0.0, 360.0)),
            Region::new("north", (30.0, 80.0), (0.0, 360.0)),
        ];
        let g = build_graph(ms, target, RegridMethod::Conservative, &regions).unwrap();
        let s = g.run_serial().unwrap();
        for pool in [1, 2, 8] {
            let p = g.run_with_pool(pool).unwrap();
            assert_eq!(s.outputs.len(), p.outputs.len(), "pool {pool}");
            for (name, want) in &s.outputs {
                let got = p.outputs.get(name).unwrap_or_else(|| panic!("missing {name}"));
                assert_eq!(want.array, got.array, "task {name}, pool {pool}");
            }
        }
    }
}
