//! Contention tests for [`cdat::plan_cache::SharedPlanCache`] — the
//! concurrent front the multi-tenant service hammers from many session
//! worker threads at once.
//!
//! Pinned invariants:
//!
//! * concurrent lookups of one missing key run exactly **one** build and
//!   the piggybacking threads are counted as `dedups`;
//! * the map lock is never held across a build, so distinct keys build in
//!   parallel;
//! * a failed build poisons nothing — waiters retry and the next claimant
//!   rebuilds;
//! * capacity stays bounded under arbitrary interleavings, with counters
//!   that add up afterwards.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use cdat::plan_cache::SharedPlanCache;
use cdat::regrid_plan::RegridPlan;
use cdms::grid::RectGrid;
use cdms::CdmsError;

/// A real (small) plan build, so the cached values are the genuine article.
fn build_plan(n: usize) -> cdms::Result<RegridPlan> {
    let src = RectGrid::uniform(6, 12)?;
    let dst = RectGrid::uniform(3 + n, 2 * (3 + n))?;
    RegridPlan::conservative(&src.lat, &src.lon, &dst)
}

#[test]
fn same_key_concurrent_lookups_build_once() {
    const THREADS: usize = 8;
    let cache = Arc::new(SharedPlanCache::new(8));
    let builds = Arc::new(AtomicUsize::new(0));
    let gate = Arc::new(Barrier::new(THREADS));

    let plans: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let builds = Arc::clone(&builds);
                let gate = Arc::clone(&gate);
                s.spawn(move || {
                    gate.wait();
                    cache.get_or_build(42, || {
                        builds.fetch_add(1, Ordering::SeqCst);
                        // widen the race window so the others really queue up
                        std::thread::sleep(Duration::from_millis(40));
                        build_plan(1)
                    })
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap().unwrap()).collect()
    });

    assert_eq!(builds.load(Ordering::SeqCst), 1, "one build for one key");
    for p in &plans[1..] {
        assert!(Arc::ptr_eq(&plans[0], p), "all callers share one allocation");
    }
    let stats = cache.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, THREADS as u64 - 1);
    assert!(
        stats.dedups >= 1 && stats.dedups < THREADS as u64,
        "threads that blocked on the in-flight build count as dedups, got {}",
        stats.dedups
    );
}

#[test]
fn distinct_keys_build_in_parallel_lock_not_held_across_builds() {
    const KEYS: usize = 4;
    const BUILD_SLEEP: Duration = Duration::from_millis(80);
    let cache = Arc::new(SharedPlanCache::new(8));
    let gate = Arc::new(Barrier::new(KEYS));

    let start = Instant::now();
    std::thread::scope(|s| {
        for k in 0..KEYS {
            let cache = Arc::clone(&cache);
            let gate = Arc::clone(&gate);
            s.spawn(move || {
                gate.wait();
                cache
                    .get_or_build(k as u64, || {
                        std::thread::sleep(BUILD_SLEEP);
                        build_plan(k)
                    })
                    .unwrap();
            });
        }
    });
    let elapsed = start.elapsed();

    // serial builds would take KEYS * BUILD_SLEEP = 320ms; parallel ~80ms.
    // The generous bound still proves the lock was not held across builds.
    assert!(
        elapsed < BUILD_SLEEP * (KEYS as u32 - 1),
        "distinct keys must build concurrently (took {elapsed:?})"
    );
    assert_eq!(cache.len(), KEYS);
    assert_eq!(cache.stats().misses, KEYS as u64);
}

#[test]
fn failed_build_does_not_poison_and_waiters_retry() {
    const THREADS: usize = 4;
    let cache = Arc::new(SharedPlanCache::new(4));
    let attempts = Arc::new(AtomicUsize::new(0));
    let gate = Arc::new(Barrier::new(THREADS));

    let results: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let attempts = Arc::clone(&attempts);
                let gate = Arc::clone(&gate);
                s.spawn(move || {
                    gate.wait();
                    cache.get_or_build(7, || {
                        let n = attempts.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(20));
                        if n == 0 {
                            Err(CdmsError::Invalid("injected build failure".into()))
                        } else {
                            build_plan(2)
                        }
                    })
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let errs = results.iter().filter(|r| r.is_err()).count();
    let oks: Vec<_> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
    assert_eq!(errs, 1, "exactly the claimant that ran the failing build errors");
    assert_eq!(oks.len(), THREADS - 1, "everyone else is served by the retry");
    for p in &oks[1..] {
        assert!(Arc::ptr_eq(oks[0], p));
    }
    assert!(attempts.load(Ordering::SeqCst) >= 2, "a waiter must have rebuilt");
    assert!(cache.get(7).is_some(), "the retried build landed in the cache");
}

#[test]
fn eviction_under_contention_stays_bounded_with_consistent_counters() {
    const THREADS: usize = 8;
    const KEYS: u64 = 6;
    const ROUNDS: usize = 12;
    let cache = Arc::new(SharedPlanCache::new(2));
    let gate = Arc::new(Barrier::new(THREADS));

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let cache = Arc::clone(&cache);
            let gate = Arc::clone(&gate);
            s.spawn(move || {
                gate.wait();
                for r in 0..ROUNDS {
                    // every thread walks the key space with a different stride
                    // so evictions and rebuilds interleave
                    let key = ((t + r * (t + 1)) as u64) % KEYS;
                    let plan = cache
                        .get_or_build(key, || build_plan(key as usize))
                        .unwrap();
                    assert!(plan.nnz() > 0);
                }
            });
        }
    });

    assert!(cache.len() <= 2, "capacity bound violated: {}", cache.len());
    let stats = cache.stats();
    assert_eq!(
        stats.evictions,
        stats.misses - cache.len() as u64,
        "every successful build inserted; inserts beyond capacity evicted"
    );
    assert!(
        stats.hits + stats.misses >= (THREADS * ROUNDS) as u64,
        "each of the {} lookups was served (hits {} + misses {})",
        THREADS * ROUNDS,
        stats.hits,
        stats.misses
    );
}
