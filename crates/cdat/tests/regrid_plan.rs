//! Plan/apply regridding vs the pre-split direct implementations.
//!
//! `reference_bilinear` / `reference_conservative` below are verbatim
//! copies of the stencil-per-call implementations that `cdat::regrid`
//! shipped before the CSR plan/apply engine replaced them. The property
//! tests check that planning + applying reproduces them (masks exactly,
//! values within a relative 1e-6 — the slack is one f32 ulp from summing
//! the same products in a different order), plus cache behaviour:
//! fingerprint collisions-by-construction, LRU eviction, and
//! cross-variable plan reuse.

// The reference copies must stay verbatim, pre-split idiom included.
#![allow(clippy::needless_range_loop, clippy::manual_is_multiple_of)]

use cdat::plan_cache::{self, PlanCache};
use cdat::regrid;
use cdat::regrid_plan::{plan_key, RegridMethod, RegridPlan};
use cdms::axis::AxisKind;
use cdms::grid::axes_fingerprint;
use cdms::synth::SynthesisSpec;
use cdms::{Axis, MaskedArray, RectGrid, Result, Variable};
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Reference implementations (pre-split direct regridders, copied verbatim)
// ---------------------------------------------------------------------------

fn horizontal_axes(var: &Variable) -> (usize, usize) {
    let lat = var.axis_index(AxisKind::Latitude).unwrap();
    let lon = var.axis_index(AxisKind::Longitude).unwrap();
    assert!(lon == var.rank() - 1 && lat == var.rank() - 2);
    (lat, lon)
}

fn normalize_lon(lam: f64, base: f64) -> f64 {
    let mut l = (lam - base).rem_euclid(360.0) + base;
    if l < base {
        l += 360.0;
    }
    l
}

fn order(a: f64, b: f64) -> (f64, f64) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

fn reference_bilinear(var: &Variable, target: &RectGrid) -> Result<Variable> {
    let (lat_i, lon_i) = horizontal_axes(var);
    let src_lat = &var.axes[lat_i];
    let src_lon = &var.axes[lon_i];
    let (ny_s, nx_s) = (src_lat.len(), src_lon.len());
    let (ny_t, nx_t) = target.shape();
    let wrap = src_lon.is_circular();

    let lat_stencil: Vec<(usize, f64)> =
        target.lat.values.iter().map(|&phi| src_lat.fractional_index(phi)).collect();
    let lon_stencil: Vec<(usize, usize, f64)> = target
        .lon
        .values
        .iter()
        .map(|&lam| {
            if wrap {
                let lam_n = normalize_lon(lam, src_lon.values[0]);
                let span = 360.0 / nx_s as f64;
                let mut i0 = 0usize;
                let mut frac = 0.0f64;
                let mut found = false;
                for i in 0..nx_s {
                    let a = src_lon.values[i];
                    let b = if i + 1 < nx_s {
                        src_lon.values[i + 1]
                    } else {
                        src_lon.values[0] + 360.0
                    };
                    if lam_n >= a - 1e-9 && lam_n <= b + 1e-9 && (b - a).abs() < 2.0 * span {
                        i0 = i;
                        frac = ((lam_n - a) / (b - a)).clamp(0.0, 1.0);
                        found = true;
                        break;
                    }
                }
                if !found {
                    let (i, f) = src_lon.fractional_index(lam_n);
                    (i, (i + 1).min(nx_s - 1), f)
                } else {
                    (i0, (i0 + 1) % nx_s, frac)
                }
            } else {
                let (i, f) = src_lon.fractional_index(lam);
                (i, (i + 1).min(nx_s - 1), f)
            }
        })
        .collect();

    let leading: usize = var.shape()[..lat_i].iter().product();
    let src_plane = ny_s * nx_s;
    let dst_plane = ny_t * nx_t;
    let mut data = vec![0.0f32; leading * dst_plane];
    let mut mask = vec![false; leading * dst_plane];

    for l in 0..leading {
        let src_off = l * src_plane;
        let dst_off = l * dst_plane;
        for (jt, &(j0, fy)) in lat_stencil.iter().enumerate() {
            let j1 = (j0 + 1).min(ny_s - 1);
            for (it, &(i0, i1, fx)) in lon_stencil.iter().enumerate() {
                let idx = |j: usize, i: usize| src_off + j * nx_s + i;
                let corners = [idx(j0, i0), idx(j0, i1), idx(j1, i0), idx(j1, i1)];
                let dst = dst_off + jt * nx_t + it;
                if corners.iter().any(|&c| var.array.mask()[c]) {
                    mask[dst] = true;
                    continue;
                }
                let d = var.array.data();
                let v0 = d[corners[0]] as f64 * (1.0 - fx) + d[corners[1]] as f64 * fx;
                let v1 = d[corners[2]] as f64 * (1.0 - fx) + d[corners[3]] as f64 * fx;
                data[dst] = (v0 * (1.0 - fy) + v1 * fy) as f32;
            }
        }
    }

    let mut out_shape = var.shape()[..lat_i].to_vec();
    out_shape.push(ny_t);
    out_shape.push(nx_t);
    let array = MaskedArray::with_mask(data, mask, &out_shape)?;
    let mut axes = var.axes[..lat_i].to_vec();
    axes.push(target.lat.clone());
    axes.push(target.lon.clone());
    Variable::new(&var.id, array, axes)
}

fn reference_conservative(var: &Variable, target: &RectGrid) -> Result<Variable> {
    let (lat_i, lon_i) = horizontal_axes(var);
    let mut src_lat = var.axes[lat_i].clone();
    let mut src_lon = var.axes[lon_i].clone();
    let slat_b = src_lat.bounds_or_gen();
    let slon_b = src_lon.bounds_or_gen();
    let tlat_b = target.lat.clone().bounds_or_gen();
    let tlon_b = target.lon.clone().bounds_or_gen();
    let (ny_s, nx_s) = (src_lat.len(), src_lon.len());
    let (ny_t, nx_t) = target.shape();

    let overlap_lat: Vec<Vec<(usize, f64)>> = tlat_b
        .iter()
        .map(|&(lo_t, hi_t)| {
            let (lo_t, hi_t) = order(lo_t, hi_t);
            let mut v = Vec::new();
            for (j, &(lo_s, hi_s)) in slat_b.iter().enumerate() {
                let (lo_s, hi_s) = order(lo_s, hi_s);
                let lo = lo_t.max(lo_s);
                let hi = hi_t.min(hi_s);
                if hi > lo {
                    let w = hi.to_radians().sin() - lo.to_radians().sin();
                    if w > 0.0 {
                        v.push((j, w));
                    }
                }
            }
            v
        })
        .collect();
    let overlap_lon: Vec<Vec<(usize, f64)>> = tlon_b
        .iter()
        .map(|&(lo_t, hi_t)| {
            let (lo_t, hi_t) = order(lo_t, hi_t);
            let mut v = Vec::new();
            for (i, &(lo_s, hi_s)) in slon_b.iter().enumerate() {
                let (lo_s, hi_s) = order(lo_s, hi_s);
                for shift in [-360.0, 0.0, 360.0] {
                    let lo = lo_t.max(lo_s + shift);
                    let hi = hi_t.min(hi_s + shift);
                    if hi > lo {
                        v.push((i, hi - lo));
                    }
                }
            }
            v
        })
        .collect();

    let leading: usize = var.shape()[..lat_i].iter().product();
    let src_plane = ny_s * nx_s;
    let dst_plane = ny_t * nx_t;
    let mut data = vec![0.0f32; leading * dst_plane];
    let mut mask = vec![false; leading * dst_plane];

    for l in 0..leading {
        let src_off = l * src_plane;
        let dst_off = l * dst_plane;
        for jt in 0..ny_t {
            for it in 0..nx_t {
                let mut wsum = 0.0f64;
                let mut vsum = 0.0f64;
                for &(js, wy) in &overlap_lat[jt] {
                    for &(is, wx) in &overlap_lon[it] {
                        let src = src_off + js * nx_s + is;
                        if !var.array.mask()[src] {
                            let w = wy * wx;
                            wsum += w;
                            vsum += w * var.array.data()[src] as f64;
                        }
                    }
                }
                let dst = dst_off + jt * nx_t + it;
                if wsum > 0.0 {
                    data[dst] = (vsum / wsum) as f32;
                } else {
                    mask[dst] = true;
                }
            }
        }
    }

    let mut out_shape = var.shape()[..lat_i].to_vec();
    out_shape.push(ny_t);
    out_shape.push(nx_t);
    let array = MaskedArray::with_mask(data, mask, &out_shape)?;
    let mut axes = var.axes[..lat_i].to_vec();
    axes.push(target.lat.clone());
    axes.push(target.lon.clone());
    Variable::new(&var.id, array, axes)
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Same masks everywhere; unmasked values within `rel_tol` relative.
fn assert_vars_match(got: &Variable, want: &Variable, rel_tol: f64) {
    assert_eq!(got.shape(), want.shape());
    let (gd, gm) = (got.array.data(), got.array.mask());
    let (wd, wm) = (want.array.data(), want.array.mask());
    for i in 0..gd.len() {
        assert_eq!(gm[i], wm[i], "mask mismatch at flat index {i}");
        if !gm[i] {
            let (a, b) = (gd[i] as f64, wd[i] as f64);
            let tol = rel_tol * a.abs().max(b.abs()).max(1.0);
            assert!((a - b).abs() <= tol, "value mismatch at {i}: {a} vs {b}");
        }
    }
}

/// A smooth 2-plane (time × lat × lon) field with a deterministic mask
/// pattern controlled by `mask_mod` (0 = unmasked).
fn field(ny: usize, nx: usize, amp: f64, freq: f64, mask_mod: usize) -> Variable {
    let grid = RectGrid::uniform(ny, nx).unwrap();
    let nt = 2usize;
    let mut data = Vec::with_capacity(nt * ny * nx);
    let mut mask = Vec::with_capacity(nt * ny * nx);
    for t in 0..nt {
        for j in 0..ny {
            for i in 0..nx {
                let phi = grid.lat.values[j].to_radians();
                let lam = grid.lon.values[i].to_radians();
                data.push(
                    (10.0 + amp * (freq * lam).sin() * phi.cos()
                        + 0.5 * t as f64
                        + 2.0 * (2.0 * phi).sin()) as f32,
                );
                mask.push(mask_mod != 0 && (t + j * nx + i) % mask_mod == 0);
            }
        }
    }
    let arr = MaskedArray::with_mask(data, mask, &[nt, ny, nx]).unwrap();
    let time = Axis::linspace("time", 0.0, 1.0, nt, "days since 2000-1-1").unwrap();
    Variable::new("f", arr, vec![time, grid.lat.clone(), grid.lon.clone()]).unwrap()
}

fn plan_apply(var: &Variable, target: &RectGrid, method: RegridMethod) -> Variable {
    let (lat_i, lon_i) = (var.rank() - 2, var.rank() - 1);
    let plan = RegridPlan::build(method, &var.axes[lat_i], &var.axes[lon_i], target).unwrap();
    plan.apply(var).unwrap()
}

// ---------------------------------------------------------------------------
// Property tests: plan+apply ≡ direct implementation
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bilinear plan+apply matches the pre-split direct implementation:
    /// identical masks, values within a relative 1e-6, on arbitrary
    /// grid-pair shapes and mask densities.
    #[test]
    fn bilinear_plan_apply_matches_direct(
        src_n in 4usize..16,
        dst_n in 3usize..20,
        amp in 0.5f64..8.0,
        freq in 1.0f64..4.0,
        mask_mod in 0usize..9,
    ) {
        let v = field(src_n, src_n * 2, amp, freq, mask_mod);
        let dst = RectGrid::uniform(dst_n, dst_n * 2).unwrap();
        let want = reference_bilinear(&v, &dst).unwrap();
        let got = plan_apply(&v, &dst, RegridMethod::Bilinear);
        assert_vars_match(&got, &want, 1e-6);
    }

    /// Conservative plan+apply matches the pre-split direct implementation
    /// under masks.
    #[test]
    fn conservative_plan_apply_matches_direct(
        src_n in 4usize..16,
        dst_n in 3usize..20,
        amp in 0.5f64..8.0,
        freq in 1.0f64..4.0,
        mask_mod in 0usize..9,
    ) {
        let v = field(src_n, src_n * 2, amp, freq, mask_mod);
        let dst = RectGrid::uniform(dst_n, dst_n * 2).unwrap();
        let want = reference_conservative(&v, &dst).unwrap();
        let got = plan_apply(&v, &dst, RegridMethod::Conservative);
        assert_vars_match(&got, &want, 1e-6);
    }

    /// Renormalizing conservative remapping is exact for constant fields
    /// whatever the mask pattern: every unmasked target cell reproduces the
    /// constant, so the valid-area global mean is conserved exactly.
    #[test]
    fn conservative_conserves_constant_fields_under_masks(
        src_n in 4usize..14,
        dst_n in 3usize..16,
        mask_mod in 2usize..7,
        value in -50.0f64..50.0,
    ) {
        let src = RectGrid::uniform(src_n, src_n * 2).unwrap();
        let n = src_n * src_n * 2;
        let mask: Vec<bool> = (0..n).map(|i| i % mask_mod == 0).collect();
        let arr = MaskedArray::with_mask(vec![value as f32; n], mask, &[src_n, src_n * 2]).unwrap();
        let v = Variable::new("c", arr, vec![src.lat.clone(), src.lon.clone()]).unwrap();
        let dst = RectGrid::uniform(dst_n, dst_n * 2).unwrap();
        let r = plan_apply(&v, &dst, RegridMethod::Conservative);
        prop_assert!(r.array.valid_count() > 0);
        for (i, &m) in r.array.mask().iter().enumerate() {
            if !m {
                let got = r.array.data()[i] as f64;
                prop_assert!((got - value).abs() < 1e-4 * value.abs().max(1.0),
                    "cell {}: {} vs {}", i, got, value);
            }
        }
        let before = regrid::area_mean_2d(&v).unwrap();
        let after = regrid::area_mean_2d(&r).unwrap();
        prop_assert!((before - after).abs() < 1e-4 * before.abs().max(1.0));
    }
}

/// Conservative regridding of a smooth masked field still conserves the
/// valid-area global mean to first order (renormalization shifts weight
/// only at mask boundaries).
#[test]
fn conservative_conserves_global_mean_under_masks() {
    let v = field(24, 48, 5.0, 2.0, 5).time_slab(0).unwrap();
    assert!(v.array.valid_count() < v.array.len(), "field must actually be masked");
    let before = regrid::area_mean_2d(&v).unwrap();
    for (nlat, nlon) in [(12, 24), (10, 20), (32, 64)] {
        let dst = RectGrid::uniform(nlat, nlon).unwrap();
        let r = plan_apply(&v, &dst, RegridMethod::Conservative);
        let after = regrid::area_mean_2d(&r).unwrap();
        assert!(
            (before - after).abs() < 0.02 * before.abs().max(1.0),
            "{nlat}x{nlon}: {before} vs {after}"
        );
        // and the plan must agree with the direct reference exactly
        assert_vars_match(&r, &reference_conservative(&v, &dst).unwrap(), 1e-6);
    }
}

// ---------------------------------------------------------------------------
// Cache behaviour
// ---------------------------------------------------------------------------

/// Grid pairs engineered to collide under a naive "hash the concatenated
/// values" fingerprint must get distinct plan keys.
#[test]
fn fingerprint_collisions_by_construction_get_distinct_keys() {
    // Same flattened stream [0, 10, 20, 30] split (2, 2) vs (1, 3).
    let lat_a = Axis::latitude(vec![0.0, 10.0]).unwrap();
    let lon_a = Axis::longitude(vec![20.0, 30.0]).unwrap();
    let lat_b = Axis::latitude(vec![0.0]).unwrap();
    let lon_b = Axis::longitude(vec![10.0, 20.0, 30.0]).unwrap();
    let dst = RectGrid::uniform(3, 6).unwrap();
    assert_ne!(axes_fingerprint(&lat_a, &lon_a), axes_fingerprint(&lat_b, &lon_b));
    let key_a = plan_key(axes_fingerprint(&lat_a, &lon_a), dst.fingerprint(), RegridMethod::Bilinear);
    let key_b = plan_key(axes_fingerprint(&lat_b, &lon_b), dst.fingerprint(), RegridMethod::Bilinear);
    assert_ne!(key_a, key_b, "colliding keys would serve the wrong cached plan");

    // Same geometry, different method → distinct keys too.
    let key_c = plan_key(axes_fingerprint(&lat_a, &lon_a), dst.fingerprint(), RegridMethod::Conservative);
    assert_ne!(key_a, key_c);

    // Same centres, different bounds (conservative weights differ).
    let mut lat_wide = Axis::latitude(vec![-30.0, 30.0]).unwrap();
    lat_wide.bounds = Some(vec![(-60.0, 0.0), (0.0, 60.0)]);
    let mut lat_narrow = Axis::latitude(vec![-30.0, 30.0]).unwrap();
    lat_narrow.bounds = Some(vec![(-40.0, -20.0), (20.0, 40.0)]);
    let lon = Axis::longitude(vec![0.0, 180.0]).unwrap();
    assert_ne!(axes_fingerprint(&lat_wide, &lon), axes_fingerprint(&lat_narrow, &lon));

    // And the cache actually treats them as distinct entries.
    let mut cache = PlanCache::new(8);
    cache.get_or_build(key_a, || RegridPlan::bilinear(&lat_a, &lon_a, &dst)).unwrap();
    cache.get_or_build(key_b, || RegridPlan::bilinear(&lat_b, &lon_b, &dst)).unwrap();
    assert_eq!(cache.len(), 2);
    assert_eq!(cache.stats().misses, 2);
    assert_eq!(cache.stats().hits, 0);
}

/// A capacity-bounded cache evicts the least recently used plan and
/// counts it.
#[test]
fn lru_eviction_with_real_plans() {
    let src = RectGrid::uniform(8, 16).unwrap();
    let targets: Vec<RectGrid> =
        (3..7).map(|n| RectGrid::uniform(n, 2 * n).unwrap()).collect();
    let keys: Vec<u64> = targets
        .iter()
        .map(|t| plan_key(src.fingerprint(), t.fingerprint(), RegridMethod::Conservative))
        .collect();
    let mut cache = PlanCache::new(2);
    for (k, t) in keys.iter().zip(&targets).take(3) {
        cache
            .get_or_build(*k, || RegridPlan::conservative(&src.lat, &src.lon, t))
            .unwrap();
    }
    assert_eq!(cache.len(), 2);
    assert_eq!(cache.stats().evictions, 1);
    // oldest key was evicted → rebuilding it is a miss
    assert!(cache.get(keys[0]).is_none());
    // the two most recent are still resident
    assert!(cache.get(keys[1]).is_some());
    assert!(cache.get(keys[2]).is_some());
}

/// Two different variables on the same grid pair share one plan: the
/// second regrid is a pure cache hit, and both results match their direct
/// references.
#[test]
fn cross_variable_plan_reuse() {
    let ds = SynthesisSpec::new(3, 2, 16, 32).seed(7).build();
    let ta = ds.variable("ta").unwrap();
    let ua = ds.variable("ua").unwrap();
    // odd target shape → the key is unique to this test even when the
    // whole suite shares the global cache
    let dst = RectGrid::uniform(11, 23).unwrap();

    let before = plan_cache::global_stats();
    let ta_lo = regrid::bilinear(ta, &dst).unwrap();
    let mid = plan_cache::global_stats();
    let ua_lo = regrid::bilinear(ua, &dst).unwrap();
    let after = plan_cache::global_stats();

    assert!(mid.hits + mid.misses > before.hits + before.misses);
    assert!(after.hits > mid.hits, "second variable must hit the first variable's plan");
    assert_vars_match(&ta_lo, &reference_bilinear(ta, &dst).unwrap(), 1e-6);
    assert_vars_match(&ua_lo, &reference_bilinear(ua, &dst).unwrap(), 1e-6);

    // the shared plan is literally the same allocation
    let key = plan_key(
        axes_fingerprint(&ta.axes[ta.rank() - 2], &ta.axes[ta.rank() - 1]),
        dst.fingerprint(),
        RegridMethod::Bilinear,
    );
    let p1 = plan_cache::global().lock().get(key).unwrap();
    let p2 = plan_cache::global().lock().get(key).unwrap();
    assert!(Arc::ptr_eq(&p1, &p2));
}
