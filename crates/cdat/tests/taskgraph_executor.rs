//! The dependency-counting executor vs the `run_serial` oracle.
//!
//! Two contracts are pinned here:
//!
//! 1. **Scheduling is invisible in the bits.** Over randomly generated
//!    DAGs — random fan-in/fan-out, injected transient failures cleared
//!    by the retry policy, and permanently failing tasks — the executor's
//!    `TaskReport.outputs` (data AND masks) and its attempt counts are
//!    bit-identical to `run_serial` at pool sizes 1, 2 and 8, and
//!    `run_parallel` honours `RAYON_NUM_THREADS` the same way.
//! 2. **Batched regrid is invisible in the bits.** `apply_batch` over N
//!    ensemble members equals N sequential `apply` calls byte-for-byte,
//!    masks included, for both regrid methods and uneven member shapes.

use cdat::regrid_plan::{RegridMethod, RegridPlan};
use cdat::taskgraph::{RetryPolicy, TaskGraph};
use cdms::axis::AxisKind;
use cdms::synth::SynthesisSpec;
use cdms::{Axis, CdmsError, MaskedArray, RectGrid, Variable};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

// ---- deterministic PRNG (no external crates, no wall clock) ----

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn chance(&mut self, pct: u64) -> bool {
        self.next() % 100 < pct
    }
}

// ---- random DAG specs, rebuilt into a fresh graph per run ----

#[derive(Clone, Copy, Debug, PartialEq)]
enum Behavior {
    /// Succeeds on the first attempt.
    Ok,
    /// Fails the first `n` attempts, then succeeds (the retry policy's
    /// budget always covers `n`).
    Flaky(u32),
    /// Fails every attempt.
    Fail,
}

#[derive(Clone, Debug)]
struct TaskSpec {
    deps: Vec<usize>,
    behavior: Behavior,
    salt: u64,
}

/// A random DAG: each task depends on a random subset of earlier tasks,
/// so the spec is acyclic by construction. `fail_one` plants exactly one
/// permanently failing task (never task 0, so something always runs).
fn random_spec(seed: u64, n: usize, edge_pct: u64, flaky_pct: u64, fail_one: bool) -> Vec<TaskSpec> {
    let mut rng = Rng::new(seed);
    let mut spec: Vec<TaskSpec> = (0..n)
        .map(|i| {
            let mut deps = Vec::new();
            for j in 0..i {
                if rng.chance(edge_pct) {
                    deps.push(j);
                }
            }
            // keep the graph connected-ish: half the orphan tasks get one
            // random earlier dependency
            if deps.is_empty() && i > 0 && rng.chance(50) {
                deps.push(rng.below(i));
            }
            let behavior = if rng.chance(flaky_pct) {
                Behavior::Flaky(1 + (rng.next() % 2) as u32)
            } else {
                Behavior::Ok
            };
            TaskSpec { deps, behavior, salt: rng.next() }
        })
        .collect();
    if fail_one && n > 1 {
        let victim = 1 + rng.below(n - 1);
        if let Some(t) = spec.get_mut(victim) {
            t.behavior = Behavior::Fail;
        }
    }
    spec
}

/// Builds a runnable graph from a spec. Every closure reads exactly its
/// declared dependencies (never the whole map), computes a small masked
/// field as a pure function of (salt, deps) with f32 accumulation in
/// fixed dep order, and fails per its behavior through a fresh per-run
/// attempt counter.
fn build_graph(spec: &[TaskSpec]) -> TaskGraph {
    const SHAPE: [usize; 2] = [3, 4];
    let mut g = TaskGraph::new();
    g.retry = RetryPolicy::retries(3, Duration::ZERO);
    for (i, t) in spec.iter().enumerate() {
        let dep_names: Vec<String> = t.deps.iter().map(|j| format!("t{j}")).collect();
        let dep_refs: Vec<&str> = dep_names.iter().map(String::as_str).collect();
        let salt = t.salt;
        let behavior = t.behavior;
        let attempts = AtomicU32::new(0);
        let names = dep_names.clone();
        g.add_task(&format!("t{i}"), &dep_refs, move |deps| {
            let attempt = attempts.fetch_add(1, Ordering::SeqCst);
            match behavior {
                Behavior::Fail => {
                    return Err(CdmsError::Invalid("planted permanent failure".into()))
                }
                Behavior::Flaky(n) if attempt < n => {
                    return Err(CdmsError::Invalid("planted transient failure".into()))
                }
                _ => {}
            }
            let n = SHAPE.iter().product();
            let mut data: Vec<f32> = (0..n)
                .map(|l| ((salt.wrapping_add(l as u64 * 31) % 2000) as f32) / 100.0 - 10.0)
                .collect();
            let mut mask: Vec<bool> = (0..n).map(|l| (salt >> (l % 13)) & 1 == 1).collect();
            // accumulate declared deps only, in declared order
            for name in &names {
                let dv = deps
                    .get(name)
                    .ok_or_else(|| CdmsError::NotFound(format!("dependency '{name}'")))?;
                for ((d, m), (dv, &dm)) in data
                    .iter_mut()
                    .zip(mask.iter_mut())
                    .zip(dv.array.data().iter().zip(dv.array.mask()))
                {
                    *d += dv;
                    *m |= dm;
                }
            }
            let arr = MaskedArray::with_mask(data, mask, &SHAPE)?;
            let axes = vec![
                Axis::new("y", vec![0.0, 1.0, 2.0], "1", AxisKind::Generic)?,
                Axis::new("x", vec![0.0, 1.0, 2.0, 3.0], "1", AxisKind::Generic)?,
            ];
            Variable::new("v", arr, axes)
        })
        .expect("unique task names");
    }
    g
}

fn assert_reports_identical(spec: &[TaskSpec], pool: usize) {
    let serial = build_graph(spec).run_serial().expect("serial run");
    let pooled = build_graph(spec).run_with_pool(pool).expect("pooled run");
    assert_eq!(
        serial.outputs.keys().collect::<Vec<_>>(),
        pooled.outputs.keys().collect::<Vec<_>>(),
        "output key sets differ at pool {pool}"
    );
    for (name, want) in &serial.outputs {
        let got = &pooled.outputs[name];
        let wb: Vec<u32> = want.array.data().iter().map(|v| v.to_bits()).collect();
        let gb: Vec<u32> = got.array.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(wb, gb, "data bits differ for '{name}' at pool {pool}");
        assert_eq!(want.array.mask(), got.array.mask(), "masks differ for '{name}'");
    }
    // retry provenance: same attempt counts per task
    for (name, want) in &serial.attempt_timings {
        assert_eq!(
            want.len(),
            pooled.attempt_timings[name].len(),
            "attempt counts differ for '{name}' at pool {pool}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Executor outputs are bit-identical to the serial oracle over random
    /// DAGs with injected transient failures, at pools 1, 2 and 8.
    #[test]
    fn executor_bit_identical_to_serial(
        seed in 0u64..u64::MAX,
        n in 3usize..24,
        edge_pct in 5u64..45,
        flaky_pct in 0u64..35,
    ) {
        let spec = random_spec(seed, n, edge_pct, flaky_pct, false);
        for pool in [1usize, 2, 8] {
            assert_reports_identical(&spec, pool);
        }
    }

    /// A permanently failing task fails every runner with an attributed
    /// error; the executor cancels cleanly instead of hanging or panicking.
    #[test]
    fn executor_fails_like_serial_on_planted_failure(
        seed in 0u64..u64::MAX,
        n in 3usize..16,
        edge_pct in 10u64..50,
    ) {
        let spec = random_spec(seed, n, edge_pct, 10, true);
        let serial_err = build_graph(&spec).run_serial().expect_err("serial must fail");
        prop_assert!(serial_err.to_string().contains("planted permanent failure"));
        for pool in [1usize, 2, 8] {
            let err = build_graph(&spec)
                .run_with_pool(pool)
                .expect_err("pooled run must fail");
            prop_assert!(
                err.to_string().contains("planted permanent failure"),
                "pool {}: {}", pool, err
            );
            prop_assert!(err.to_string().contains("task 't"), "pool {}: {}", pool, err);
        }
    }
}

// ---- run_parallel honours RAYON_NUM_THREADS ----

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let prev = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", n.to_string());
    let out = f();
    match prev {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    out
}

#[test]
fn run_parallel_matches_serial_at_env_thread_counts() {
    let _guard = ENV_LOCK.lock().expect("env lock");
    let spec = random_spec(0xD1CE, 18, 30, 20, false);
    let want = build_graph(&spec).run_serial().expect("serial");
    for threads in [1usize, 2, 8] {
        let got = with_threads(threads, || build_graph(&spec).run_parallel().expect("parallel"));
        assert_eq!(got.workers, threads.min(spec.len()), "threads {threads}");
        for (name, w) in &want.outputs {
            let g = &got.outputs[name];
            let wb: Vec<u32> = w.array.data().iter().map(|v| v.to_bits()).collect();
            let gb: Vec<u32> = g.array.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(wb, gb, "'{name}' at {threads} env threads");
            assert_eq!(w.array.mask(), g.array.mask(), "'{name}' mask");
        }
    }
}

// ---- apply_batch ≡ N sequential applies, byte-for-byte ----

fn batch_members() -> Vec<Variable> {
    // uneven leading shapes on the same horizontal grid: a 4-D field, a
    // 3-D time slab stack, and a masked 2-D surface field
    let ds = SynthesisSpec::new(4, 2, 12, 24).seed(7).build();
    let ta = ds.variable("ta").expect("ta").clone();
    let tos = ds.variable("tos").expect("tos").clone();
    let slab = ta.time_slab(1).expect("slab");
    vec![ta, slab, tos]
}

#[test]
fn apply_batch_equals_sequential_applies_byte_for_byte() {
    let members = batch_members();
    let target = RectGrid::uniform(7, 13).expect("target grid");
    for method in [RegridMethod::Bilinear, RegridMethod::Conservative] {
        let lat = members[0].axis(AxisKind::Latitude).expect("lat").clone();
        let lon = members[0].axis(AxisKind::Longitude).expect("lon").clone();
        let plan = RegridPlan::build(method, &lat, &lon, &target).expect("plan");
        let refs: Vec<&Variable> = members.iter().collect();
        let batch = plan.apply_batch(&refs).expect("apply_batch");
        assert_eq!(batch.len(), members.len());
        for (member, got) in members.iter().zip(&batch) {
            let want = plan.apply(member).expect("single apply");
            assert_eq!(got.shape(), want.shape(), "{method:?} '{}'", member.id);
            let wb: Vec<u32> = want.array.data().iter().map(|v| v.to_bits()).collect();
            let gb: Vec<u32> = got.array.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(wb, gb, "{method:?} '{}' data bits", member.id);
            assert_eq!(
                got.array.mask(),
                want.array.mask(),
                "{method:?} '{}' mask",
                member.id
            );
            assert_eq!(got.axes, want.axes, "{method:?} '{}' axes", member.id);
            assert_eq!(got.id, want.id);
        }
    }
}

#[test]
fn apply_batch_validates_and_handles_edges() {
    let members = batch_members();
    let target = RectGrid::uniform(5, 9).expect("target grid");
    let lat = members[0].axis(AxisKind::Latitude).expect("lat").clone();
    let lon = members[0].axis(AxisKind::Longitude).expect("lon").clone();
    let plan = RegridPlan::bilinear(&lat, &lon, &target).expect("plan");

    // empty batch is an empty result, not an error
    assert!(plan.apply_batch(&[]).expect("empty batch").is_empty());

    // a member on the wrong source grid rejects the whole batch
    let other = SynthesisSpec::new(2, 1, 9, 18).seed(3).build();
    let wrong = other.variable("ta").expect("ta").clone();
    let refs: Vec<&Variable> = members.iter().take(1).chain(std::iter::once(&wrong)).collect();
    assert!(plan.apply_batch(&refs).is_err());

    // single-member batch is exactly the single apply
    let solo = plan.apply_batch(&[&members[2]]).expect("solo batch");
    let want = plan.apply(&members[2]).expect("single");
    assert_eq!(solo[0].array, want.array);
}

// ---- regrid_batch: one cache consult for N members ----

#[test]
fn regrid_batch_hits_plan_cache_once() {
    let members = batch_members();
    let refs: Vec<&Variable> = members.iter().collect();
    let target = RectGrid::uniform(6, 11).expect("target grid");
    let before = cdat::plan_cache::global_stats();
    let out = cdat::regrid::regrid_batch(&refs, &target, RegridMethod::Bilinear)
        .expect("regrid_batch");
    let after = cdat::plan_cache::global_stats();
    assert_eq!(out.len(), members.len());
    assert_eq!(
        after.hits + after.misses,
        before.hits + before.misses + 1,
        "batch must consult the plan cache exactly once"
    );
    for (member, got) in members.iter().zip(&out) {
        let want =
            cdat::regrid::regrid(member, &target, RegridMethod::Bilinear).expect("regrid");
        assert_eq!(got.array, want.array, "'{}'", member.id);
    }
}

// ---- executor structural properties ----

/// After a failure is recorded, no queued-but-unstarted task may run: the
/// ready queue drains. With one worker, the failing task runs first and
/// the planted counter proves the independent task never started.
#[test]
fn first_error_cancels_unstarted_tasks() {
    let started = Arc::new(AtomicU32::new(0));
    let mut g = TaskGraph::new();
    g.add_task("boom", &[], |_| Err(CdmsError::Invalid("early failure".into())))
        .expect("add boom");
    let flag = Arc::clone(&started);
    g.add_task("later", &[], move |_| {
        flag.fetch_add(1, Ordering::SeqCst);
        Err(CdmsError::Invalid("should never run".into()))
    })
    .expect("add later");
    let err = g.run_with_pool(1).expect_err("must fail");
    assert!(err.to_string().contains("early failure"), "{err}");
    assert_eq!(started.load(Ordering::SeqCst), 0, "cancelled task must not start");
}

/// Tall-chain-first dispatch: with one worker, the head of the 3-deep
/// chain runs before an independent leaf added earlier would... the leaf
/// is added first but has height 1, the chain head height 3.
#[test]
fn critical_path_runs_first() {
    let order = Arc::new(Mutex::new(Vec::new()));
    let mk = |order: &Arc<Mutex<Vec<&'static str>>>, tag: &'static str| {
        let order = Arc::clone(order);
        move |_: &std::collections::BTreeMap<String, Arc<Variable>>| {
            order.lock().expect("order lock").push(tag);
            let arr = MaskedArray::zeros(&[1]);
            let axes = vec![Axis::new("s", vec![0.0], "1", AxisKind::Generic)?];
            Variable::new("v", arr, axes)
        }
    };
    let mut g = TaskGraph::new();
    g.add_task("leaf", &[], mk(&order, "leaf")).expect("leaf");
    g.add_task("c0", &[], mk(&order, "c0")).expect("c0");
    g.add_task("c1", &["c0"], mk(&order, "c1")).expect("c1");
    g.add_task("c2", &["c1"], mk(&order, "c2")).expect("c2");
    g.run_with_pool(1).expect("run");
    let got = order.lock().expect("order lock").clone();
    // c0 (height 3) must dispatch before leaf (height 1)
    assert_eq!(got[0], "c0", "dispatch order {got:?}");
}
