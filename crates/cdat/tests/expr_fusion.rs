//! Property tests for the fused masked-array engine.
//!
//! Three contracts are pinned here:
//!
//! 1. **Fusion is invisible in the bits.** A randomly generated chain of
//!    elementwise ops evaluated through `cdat::expr` (one fused chunked
//!    pass, bit-packed mask words, possibly parallel) must produce data
//!    AND mask bit-identical to a verbatim transcription of the
//!    pre-fusion eager semantics applied one op at a time.
//! 2. **Reductions are thread-count invariant.** `spatial_mean`,
//!    `correlation`, `standardize`, `monthly_climatology` and the fused
//!    pipeline produce bit-identical results under rayon pools of
//!    1, 2 and 8 workers (the vendored rayon honours RAYON_NUM_THREADS
//!    at dispatch time).
//! 3. **The O(n) running mean matches the O(n·window) original.** Masks
//!    and counts agree exactly; data agrees to tolerance (prefix-sum
//!    differencing regroups the f64 window sum, which is not a
//!    bit-preserving transformation), and exactly for window 1.

use cdat::expr::{Expr, PredFn, UnaryFn};
use cdat::{averager, climatology, eager_ref, pipeline, statistics};
use cdms::synth::SynthesisSpec;
use cdms::{Axis, AxisKind, MaskedArray, Variable};
use std::sync::Mutex;

// ---- deterministic PRNG (no external crates, no wall clock) ----

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    /// Uniform-ish in [-10, 10).
    fn value(&mut self) -> f32 {
        (self.next() % 20_000) as f32 / 1000.0 - 10.0
    }

    fn chance(&mut self, pct: u64) -> bool {
        self.next() % 100 < pct
    }
}

fn random_array(rng: &mut Rng, shape: &[usize]) -> MaskedArray {
    let n: usize = shape.iter().product();
    let mut data = Vec::with_capacity(n);
    let mut mask = Vec::with_capacity(n);
    for _ in 0..n {
        // occasional non-finite payloads stress the NaN-masking rules
        let v = if rng.chance(2) {
            f32::NAN
        } else if rng.chance(2) {
            f32::INFINITY
        } else {
            rng.value()
        };
        // pre-masked lanes must carry their (arbitrary) payload through
        let m = rng.chance(15);
        data.push(v);
        mask.push(m || v.is_nan());
    }
    // the eager ops never see NaN on a valid lane as *input* except via
    // division; keep unmasked inputs finite so both sides start equal
    for (v, &m) in data.iter_mut().zip(&mask) {
        if !m && !v.is_finite() {
            *v = 1.0;
        }
    }
    MaskedArray::with_mask(data, mask, shape).expect("array")
}

// ---- verbatim pre-fusion eager reference ----
//
// These loops transcribe the semantics the eager MaskedArray ops had
// before the fused engine landed: one full pass and one output
// allocation per op, bool masks, no chunking. They are deliberately
// naive — the property is that the fused engine is indistinguishable.

fn eager_bin(a: &MaskedArray, b: &MaskedArray, op: impl Fn(f32, f32) -> f32) -> MaskedArray {
    let n = a.len();
    let mut data = vec![0.0f32; n];
    let mut mask = vec![false; n];
    for i in 0..n {
        let am = a.mask().get(i).copied().unwrap_or(true);
        let bm = b.mask().get(i).copied().unwrap_or(true);
        if am || bm {
            if let Some(m) = mask.get_mut(i) {
                *m = true;
            }
            continue;
        }
        let v = op(
            a.data().get(i).copied().unwrap_or_default(),
            b.data().get(i).copied().unwrap_or_default(),
        );
        if v.is_nan() {
            if let Some(m) = mask.get_mut(i) {
                *m = true;
            }
        } else if let Some(d) = data.get_mut(i) {
            *d = v;
        }
    }
    MaskedArray::with_mask(data, mask, a.shape()).expect("eager bin")
}

fn eager_map(a: &MaskedArray, f: impl Fn(f32) -> f32) -> MaskedArray {
    let mut out = a.clone();
    let (d, m) = out.parts_mut();
    for (v, mk) in d.iter_mut().zip(m.iter_mut()) {
        if *mk {
            continue;
        }
        let r = f(*v);
        if r.is_nan() || r.is_infinite() {
            *mk = true;
        } else {
            *v = r;
        }
    }
    out
}

fn eager_mask_where(a: &MaskedArray, p: impl Fn(f32) -> bool) -> MaskedArray {
    let mut out = a.clone();
    let (d, m) = out.parts_mut();
    for (v, mk) in d.iter().zip(m.iter_mut()) {
        if !*mk && p(*v) {
            *mk = true;
        }
    }
    out
}

fn eager_mask_where_other(
    a: &MaskedArray,
    cond: &MaskedArray,
    p: impl Fn(f32) -> bool,
) -> MaskedArray {
    let mut out = a.clone();
    let (_, m) = out.parts_mut();
    for ((mk, &cv), &cm) in m.iter_mut().zip(cond.data()).zip(cond.mask()) {
        if cm || p(cv) {
            *mk = true;
        }
    }
    out
}

// ---- 1. fused chain vs eager reference, bit for bit ----

/// One randomly drawn op for the chain comparison.
enum OpSpec {
    Add(MaskedArray),
    Sub(MaskedArray),
    Mul(MaskedArray),
    Div(MaskedArray),
    AddScalar(f32),
    MulScalar(f32),
    SubDiv(f32, f32),
    Sqrt,
    MaskGreater(f32),
    MaskOther(MaskedArray, f32),
}

fn random_chain(rng: &mut Rng, shape: &[usize], len: usize) -> Vec<OpSpec> {
    (0..len)
        .map(|_| match rng.below(10) {
            0 => OpSpec::Add(random_array(rng, shape)),
            1 => OpSpec::Sub(random_array(rng, shape)),
            2 => OpSpec::Mul(random_array(rng, shape)),
            3 => OpSpec::Div(random_array(rng, shape)),
            4 => OpSpec::AddScalar(rng.value()),
            5 => OpSpec::MulScalar(rng.value()),
            6 => OpSpec::SubDiv(rng.value(), rng.value()),
            7 => OpSpec::Sqrt,
            8 => OpSpec::MaskGreater(rng.value()),
            _ => OpSpec::MaskOther(random_array(rng, shape), rng.value()),
        })
        .collect()
}

fn eager_chain(base: &MaskedArray, specs: &[OpSpec]) -> MaskedArray {
    let mut cur = base.clone();
    for spec in specs {
        cur = match spec {
            OpSpec::Add(b) => eager_bin(&cur, b, |a, b| a + b),
            OpSpec::Sub(b) => eager_bin(&cur, b, |a, b| a - b),
            OpSpec::Mul(b) => eager_bin(&cur, b, |a, b| a * b),
            OpSpec::Div(b) => {
                eager_bin(&cur, b, |a, b| if b == 0.0 { f32::NAN } else { a / b })
            }
            OpSpec::AddScalar(s) => eager_map(&cur, |v| v + s),
            OpSpec::MulScalar(s) => eager_map(&cur, |v| v * s),
            OpSpec::SubDiv(sub, div) => eager_map(&cur, |v| (v - sub) / div),
            OpSpec::Sqrt => eager_map(&cur, |v| v.sqrt()),
            OpSpec::MaskGreater(t) => eager_mask_where(&cur, |v| v > *t),
            OpSpec::MaskOther(c, t) => eager_mask_where_other(&cur, c, |v| v > *t),
        };
    }
    cur
}

fn fused_chain(base: &MaskedArray, specs: &[OpSpec]) -> MaskedArray {
    let mut e = Expr::leaf(base);
    for spec in specs {
        e = match spec {
            OpSpec::Add(b) => e + Expr::leaf(b),
            OpSpec::Sub(b) => e - Expr::leaf(b),
            OpSpec::Mul(b) => e * Expr::leaf(b),
            OpSpec::Div(b) => e / Expr::leaf(b),
            OpSpec::AddScalar(s) => e.add_scalar(*s),
            OpSpec::MulScalar(s) => e.mul_scalar(*s),
            OpSpec::SubDiv(sub, div) => e.map(UnaryFn::SubDiv { sub: *sub, div: *div }),
            OpSpec::Sqrt => e.sqrt(),
            OpSpec::MaskGreater(t) => e.mask_where(PredFn::Greater(*t)),
            OpSpec::MaskOther(c, t) => e.mask_where_other(Expr::leaf(c), PredFn::Greater(*t)),
        };
    }
    e.eval().expect("fused eval")
}

fn assert_bits_eq(fused: &MaskedArray, eager: &MaskedArray, ctx: &str) {
    assert_eq!(fused.shape(), eager.shape(), "{ctx}: shape");
    assert_eq!(fused.mask(), eager.mask(), "{ctx}: mask");
    let fb: Vec<u32> = fused.data().iter().map(|v| v.to_bits()).collect();
    let eb: Vec<u32> = eager.data().iter().map(|v| v.to_bits()).collect();
    assert_eq!(fb, eb, "{ctx}: data bits");
}

#[test]
fn fused_chains_match_eager_reference_bit_for_bit() {
    // small shapes cover the serial path, big ones the parallel path
    // (PARALLEL_CUTOFF is 8192 lanes); ragged sizes cover partial words
    let shapes: &[&[usize]] = &[
        &[1],
        &[63],
        &[64],
        &[65],
        &[7, 13],
        &[4096],
        &[3, 5, 7, 11],
        &[12_345],
        &[2, 3, 2048],
    ];
    for (case, shape) in shapes.iter().enumerate() {
        for round in 0..4 {
            let seed = (case * 31 + round) as u64 + 1;
            let mut rng = Rng::new(seed);
            let base = random_array(&mut rng, shape);
            let chain_len = 1 + rng.below(6);
            let specs = random_chain(&mut rng, shape, chain_len);
            let eager = eager_chain(&base, &specs);
            let fused = fused_chain(&base, &specs);
            assert_bits_eq(&fused, &eager, &format!("seed {seed}, shape {shape:?}"));
        }
    }
}

// ---- 2. reductions are bit-identical across pool sizes ----

/// Serializes RAYON_NUM_THREADS mutation across tests in this binary:
/// the test harness runs cases concurrently and the env var is
/// process-global.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let prev = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", n.to_string());
    let out = f();
    match prev {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    out
}

fn var_bits(v: &Variable) -> (Vec<u32>, Vec<bool>) {
    (v.array.data().iter().map(|x| x.to_bits()).collect(), v.array.mask().to_vec())
}

#[test]
fn reductions_bit_identical_across_thread_counts() {
    let _guard = ENV_LOCK.lock().expect("env lock");
    // 24 x 4 x 32 x 64 = 196k lanes: well past every parallel cutoff
    let ds = SynthesisSpec::new(24, 4, 32, 64).seed(99).build();
    let ta = ds.variable("ta").expect("ta");
    let tos = ds.variable("tos").expect("tos");

    let reference = with_threads(1, || {
        (
            var_bits(&averager::spatial_mean(ta).expect("spatial")),
            statistics::correlation(ta, ta).expect("corr").to_bits(),
            var_bits(&statistics::standardize(ta).expect("stdz")),
            var_bits(&climatology::monthly_climatology(ta).expect("climo")),
            var_bits(&climatology::anomaly(ta).expect("anom")),
            var_bits(&averager::running_mean_time(ta, 5).expect("rm")),
            var_bits(
                &pipeline::run(
                    ta,
                    &[
                        pipeline::AnalysisStep::Anomaly,
                        pipeline::AnalysisStep::Standardize,
                        pipeline::AnalysisStep::SpatialMean,
                    ],
                )
                .expect("pipeline"),
            ),
            var_bits(&statistics::standardize(tos).expect("stdz tos")),
        )
    });
    for threads in [2usize, 8] {
        let got = with_threads(threads, || {
            (
                var_bits(&averager::spatial_mean(ta).expect("spatial")),
                statistics::correlation(ta, ta).expect("corr").to_bits(),
                var_bits(&statistics::standardize(ta).expect("stdz")),
                var_bits(&climatology::monthly_climatology(ta).expect("climo")),
                var_bits(&climatology::anomaly(ta).expect("anom")),
                var_bits(&averager::running_mean_time(ta, 5).expect("rm")),
                var_bits(
                    &pipeline::run(
                        ta,
                        &[
                            pipeline::AnalysisStep::Anomaly,
                            pipeline::AnalysisStep::Standardize,
                            pipeline::AnalysisStep::SpatialMean,
                        ],
                    )
                    .expect("pipeline"),
                ),
                var_bits(&statistics::standardize(tos).expect("stdz tos")),
            )
        });
        assert_eq!(got, reference, "thread count {threads} changed reduction bits");
    }
}

#[test]
fn expr_eval_bit_identical_across_thread_counts() {
    let _guard = ENV_LOCK.lock().expect("env lock");
    let mut rng = Rng::new(4242);
    let shape = [40_000usize];
    let base = random_array(&mut rng, &shape);
    let specs = random_chain(&mut rng, &shape, 5);
    let reference = with_threads(1, || fused_chain(&base, &specs));
    for threads in [2usize, 8] {
        let got = with_threads(threads, || fused_chain(&base, &specs));
        assert_bits_eq(&got, &reference, &format!("expr eval at {threads} threads"));
    }
}

// ---- 3. O(n) running mean vs the O(n·window) original ----

fn running_mean_case(var: &Variable, window: usize) {
    let old = eager_ref::running_mean_time(var, window).expect("eager running mean");
    let new = averager::running_mean_time(var, window).expect("fused running mean");
    assert_eq!(new.shape(), old.shape(), "window {window}: shape");
    assert_eq!(new.array.mask(), old.array.mask(), "window {window}: masks must agree exactly");
    for (i, (&nv, &ov)) in new.array.data().iter().zip(old.array.data()).enumerate() {
        if window == 1 {
            // a single-element window is an exact f64->f32 round trip on
            // both paths
            assert_eq!(nv.to_bits(), ov.to_bits(), "window 1, lane {i}");
        } else {
            let tol = 1e-4f32.max(ov.abs() * 1e-5);
            assert!(
                (nv - ov).abs() <= tol,
                "window {window}, lane {i}: prefix {nv} vs direct {ov}"
            );
        }
    }
}

#[test]
fn running_mean_prefix_matches_direct_window_sums() {
    let ds = SynthesisSpec::new(48, 2, 8, 16).seed(7).build();
    let ta = ds.variable("ta").expect("ta");
    for window in [1usize, 3, 5, 9, 47] {
        running_mean_case(ta, window);
    }
}

#[test]
fn running_mean_handles_masked_runs_and_inner_time_axis() {
    // time in the middle (outer > 1) plus long masked stretches: the
    // masked-count-aware prefix arrays must reproduce exactly which
    // windows are empty
    let mut rng = Rng::new(31337);
    let (nlev, nt, nlon) = (3usize, 40usize, 16usize);
    let lev = Axis::new("lev", (0..nlev).map(|i| i as f64).collect(), "hPa", AxisKind::Level)
        .expect("lev");
    let time = Axis::new("time", (0..nt).map(|i| i as f64).collect(), "days since 2000-01-01", AxisKind::Time)
        .expect("time");
    let lon = Axis::new("lon", (0..nlon).map(|i| i as f64 * 2.5).collect(), "degrees_east", AxisKind::Longitude)
        .expect("lon");
    let n = nlev * nt * nlon;
    let mut data = Vec::with_capacity(n);
    let mut mask = Vec::with_capacity(n);
    for i in 0..n {
        data.push(rng.value());
        // long masked stretches: whole blocks of timesteps vanish
        mask.push(rng.chance(30) || (i / nlon) % 7 == 3);
    }
    let arr = MaskedArray::with_mask(data, mask, &[nlev, nt, nlon]).expect("array");
    let var = Variable::new("synthetic", arr, vec![lev, time, lon]).expect("var");
    for window in [1usize, 3, 7, 21] {
        running_mean_case(&var, window);
    }
}
