//! Integration tests for the multi-tenant session service over real TCP.
//!
//! The acceptance scenario: drive the service at 4× its worker capacity
//! with a seeded mix of conforming sessions and scripted abusers
//! (quota storms, slow-loris, mid-request disconnects, reconnect
//! herds). Conforming sessions must keep a p99 within 2× of the healthy
//! baseline, misbehaving sessions must be shed first, and every turned-
//! away request must receive an explicit `RetryAfter` — zero silent
//! drops.

use hyperwall::fault::FaultPlan;
use hyperwall::protocol::ServiceWork;
use hyperwall::service::client::{
    disconnect_mid_request, reconnect_storm, run_faulted_client, slow_loris_open, ServiceClient,
};
use hyperwall::service::quota::{QuotaConfig, MILLI};
use hyperwall::service::{spawn_service, MuxConfig, ServiceConfig};
use hyperwall::WallError;
use std::time::Duration;

const IO: Duration = Duration::from_millis(500);

fn quick_work(seed: u64) -> ServiceWork {
    ServiceWork::Analysis { seed, len: 256 }
}

fn service_cfg() -> ServiceConfig {
    ServiceConfig {
        mux: MuxConfig {
            max_sessions: 16,
            inbox_capacity: 12,
            quota: QuotaConfig { burst: 12, refill_milli_per_round: 4 * MILLI },
            quantum: 2,
            overload_watermark: 16,
            shed_watermark: 32,
            misbehave_threshold: 4,
            round_ms: 2,
        },
        workers: 2,
        io_deadline_ms: 250,
        round_interval_ms: 2,
    }
}

/// The headline acceptance test: 4× over-capacity with one scripted
/// quota-storm flooder. Conforming p99 stays within 2× the healthy
/// baseline, the flooder is shed first, and nothing is dropped silently.
#[test]
fn seeded_overload_protects_conforming_sessions() {
    // --- healthy baseline: 2 conforming sessions, paced requests ---
    let svc = spawn_service(service_cfg()).unwrap();
    let addr = svc.addr();
    let works: Vec<ServiceWork> = (0..10).map(quick_work).collect();
    let baseline: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2u64)
            .map(|id| {
                let works = works.clone();
                s.spawn(move || {
                    let mut c = ServiceClient::connect(addr, id, IO).unwrap();
                    let stats =
                        c.run_closed_loop(&works, Duration::from_secs(2), Duration::from_millis(4));
                    c.close().ok();
                    stats
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    svc.shutdown();
    let healthy_p99 = baseline
        .iter()
        .filter_map(|s| s.percentile_ms(99.0))
        .fold(0.0f64, f64::max);
    assert!(healthy_p99 > 0.0, "baseline produced latencies");
    for s in &baseline {
        assert_eq!(s.timeouts, 0, "healthy run must not time out");
        assert_eq!(s.answered(), 10, "healthy run answers everything");
    }

    // --- overload: same service tuning, 4× the worker capacity ---
    // 2 workers × 2-slot rounds ≈ the capacity the conforming pair uses;
    // one seeded quota-storm flooder adds ~4× that demand on top.
    let plan = FaultPlan::seeded_service_storm(77, 3, 1, 96);
    let storm_session = (0..3)
        .find(|&id| plan.client(id).quota_storm() > 0)
        .expect("seeded storm scripts one quota flooder") as u64;
    let svc = spawn_service(service_cfg()).unwrap();
    let addr = svc.addr();
    let (conforming, flooder): (Vec<_>, _) = std::thread::scope(|s| {
        let flood_plan = plan.clone();
        let flooder = s.spawn(move || {
            run_faulted_client(
                addr,
                storm_session,
                &flood_plan.client(storm_session as usize),
                &[quick_work(999)],
                IO,
            )
            .unwrap()
        });
        let handles: Vec<_> = (0..3u64)
            .filter(|id| *id != storm_session)
            .map(|id| {
                let works = works.clone();
                s.spawn(move || {
                    let mut c = ServiceClient::connect(addr, 100 + id, IO).unwrap();
                    let stats =
                        c.run_closed_loop(&works, Duration::from_secs(2), Duration::from_millis(4));
                    c.close().ok();
                    stats
                })
            })
            .collect();
        (
            handles.into_iter().map(|h| h.join().unwrap()).collect(),
            flooder.join().unwrap(),
        )
    });
    let sessions = svc.sessions();
    let report = svc.shutdown();

    // conforming latency held: p99 within 2× the healthy baseline
    // (floored at 25 ms — scheduler-tick noise dominates below that)
    let overload_p99 = conforming
        .iter()
        .filter_map(|s| s.percentile_ms(99.0))
        .fold(0.0f64, f64::max);
    let bound = 2.0 * healthy_p99.max(25.0);
    assert!(
        overload_p99 <= bound,
        "conforming p99 {overload_p99:.1}ms exceeded 2× healthy baseline \
         ({healthy_p99:.1}ms → bound {bound:.1}ms)"
    );
    for s in &conforming {
        assert_eq!(s.timeouts, 0, "conforming sessions must not time out");
        assert_eq!(s.answered(), 10, "every conforming request gets an answer");
    }

    // the flooder was rejected/shed — and every one of those was an
    // explicit RetryAfter, zero silent drops
    assert!(
        flooder.retry_afters > 0,
        "the quota storm must see explicit RetryAfter frames, got {flooder:?}"
    );
    let m = report.mux;
    assert!(
        m.rejected_quota + m.rejected_inbox + m.shed > 0,
        "overload must actually reject or shed: {m:?}"
    );
    assert!(
        report.counters.retry_afters >= m.shed + m.rejected_quota + m.rejected_inbox,
        "every rejection and shed produced a RetryAfter: {:?} vs {m:?}",
        report.counters
    );
    // sheds (if any) came off the misbehaving session only
    if let Some(storm) = sessions.iter().find(|s| s.misbehaving) {
        for s in &sessions {
            if !s.misbehaving {
                assert_eq!(s.shed, 0, "conforming session {s:?} was shed before {storm:?}");
            }
        }
    }
}

/// A slow-loris opener (one byte per 20 ms) is cut off by the total-frame
/// deadline instead of wedging a connection thread, and a concurrent
/// well-behaved client is unaffected.
#[test]
fn slow_loris_is_cut_off_and_neighbors_unaffected() {
    let mut cfg = service_cfg();
    cfg.io_deadline_ms = 100;
    let svc = spawn_service(cfg).unwrap();
    let addr = svc.addr();
    let (sent, neighbor) = std::thread::scope(|s| {
        let loris = s.spawn(move || slow_loris_open(addr, 7, 20).unwrap());
        let good = s.spawn(move || {
            let mut c = ServiceClient::connect(addr, 1, IO).unwrap();
            let stats = c.run_closed_loop(
                &(0..5).map(quick_work).collect::<Vec<_>>(),
                Duration::from_secs(2),
                Duration::from_millis(2),
            );
            c.close().ok();
            stats
        });
        (loris.join().unwrap(), good.join().unwrap())
    });
    let report = svc.shutdown();
    assert!(
        sent < 30,
        "the service must hang up on a dribbling opener well before the \
         frame completes (sent {sent} bytes)"
    );
    assert!(report.counters.deadline_drops >= 1, "the drop is accounted: {report:?}");
    assert_eq!(neighbor.timeouts, 0, "neighbor unaffected by the slow-loris");
    assert_eq!(neighbor.answered(), 5);
}

/// A client that dies halfway through a `Request` frame neither wedges
/// its connection thread nor poisons the session: a reconnect under the
/// same id picks up where it left off.
#[test]
fn mid_request_disconnect_survives_and_session_reconnects() {
    let mut cfg = service_cfg();
    cfg.io_deadline_ms = 100;
    let svc = spawn_service(cfg).unwrap();
    let addr = svc.addr();
    disconnect_mid_request(addr, 5, IO).unwrap();
    // give the connection thread time to trip its frame deadline
    std::thread::sleep(Duration::from_millis(250));
    // same session id reconnects and works
    let mut c = ServiceClient::connect(addr, 5, IO).unwrap();
    let stats = c.run_closed_loop(
        &(0..4).map(quick_work).collect::<Vec<_>>(),
        Duration::from_secs(2),
        Duration::from_millis(2),
    );
    c.close().ok();
    let report = svc.shutdown();
    assert_eq!(stats.timeouts, 0);
    assert_eq!(stats.answered(), 4, "reconnected session is fully served");
    assert!(
        report.counters.deadline_drops + report.counters.disconnects >= 1,
        "the cut connection is accounted: {report:?}"
    );
}

/// A thundering herd of reconnects on one session id is admitted
/// idempotently — quota and badness survive, the session slot is not
/// duplicated, and the service keeps serving others throughout.
#[test]
fn reconnect_storm_is_idempotent_and_bounded() {
    let svc = spawn_service(service_cfg()).unwrap();
    let addr = svc.addr();
    let (accepted, neighbor) = std::thread::scope(|s| {
        let herd = s.spawn(move || reconnect_storm(addr, 9, 8, IO));
        let good = s.spawn(move || {
            let mut c = ServiceClient::connect(addr, 2, IO).unwrap();
            let stats = c.run_closed_loop(
                &(0..5).map(quick_work).collect::<Vec<_>>(),
                Duration::from_secs(2),
                Duration::from_millis(2),
            );
            c.close().ok();
            stats
        });
        (herd.join().unwrap(), good.join().unwrap())
    });
    let sessions = svc.sessions();
    svc.shutdown();
    assert_eq!(accepted, 8, "idempotent reopen accepts every handshake");
    assert!(
        sessions.iter().filter(|s| s.id == 9).count() <= 1,
        "the stormed session occupies at most one slot"
    );
    assert_eq!(neighbor.timeouts, 0);
    assert_eq!(neighbor.answered(), 5, "neighbor served through the herd");
}

/// The session cap turns the (max+1)-th tenant away with an explicit
/// retry hint, surfaced as `WallError::Overloaded`.
#[test]
fn session_capacity_rejects_with_retry_hint() {
    let mut cfg = service_cfg();
    cfg.mux.max_sessions = 2;
    let svc = spawn_service(cfg).unwrap();
    let addr = svc.addr();
    let a = ServiceClient::connect(addr, 1, IO).unwrap();
    let b = ServiceClient::connect(addr, 2, IO).unwrap();
    match ServiceClient::connect(addr, 3, IO) {
        Err(WallError::Overloaded { retry_after_ms }) => {
            assert!(retry_after_ms > 0, "the rejection carries a usable backoff");
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    drop(a);
    drop(b);
    svc.shutdown();
}

/// Responses are deterministic per (work, quality): two sessions asking
/// for the same work get the same digest, and the shared plan cache
/// means the second regrid request reuses the first session's plan.
#[test]
fn shared_caches_give_identical_answers_across_sessions() {
    let svc = spawn_service(service_cfg()).unwrap();
    let addr = svc.addr();
    let work = ServiceWork::Regrid { src: (24, 48), dst: (11, 21), seed: 42 };
    let digest_of = |session: u64| -> u64 {
        let mut c = ServiceClient::connect(addr, session, IO).unwrap();
        c.send_request(0, work.clone()).unwrap();
        let mut digest = None;
        for _ in 0..400 {
            if let Some(hyperwall::protocol::Message::Response { digest: d, .. }) =
                c.poll(Duration::from_millis(10)).unwrap()
            {
                digest = Some(d);
                break;
            }
        }
        c.close().ok();
        digest.expect("request answered")
    };
    let d1 = digest_of(1);
    let d2 = digest_of(2);
    let report = svc.shutdown();
    assert_eq!(d1, d2, "same work, same digest, regardless of tenant");
    assert!(
        report.plan_cache.hits > 0,
        "the second session's regrid must hit the shared plan cache: {:?}",
        report.plan_cache
    );
}
