//! Property tests for the session multiplexer's scheduling invariants.
//!
//! The mux is deterministic, pure data on a logical round clock, so these
//! properties hold *exactly*, not statistically:
//!
//! * **no starvation** — a conforming session with queued work is served
//!   within one round whenever the round budget covers the conforming
//!   session count;
//! * **quota enforcement ± 1** — admissions never exceed the token-bucket
//!   envelope `burst + rate × rounds`, and a session pacing itself inside
//!   the envelope is never rejected;
//! * **deterministic shedding** — replaying identical traffic (seeded
//!   from a [`FaultPlan`] storm) sheds identical victims in identical
//!   order, misbehaving sessions strictly first.

use hyperwall::fault::FaultPlan;
use hyperwall::protocol::ServiceWork;
use hyperwall::service::mux::{Admission, MuxConfig, SessionMux};
use hyperwall::service::quota::{QuotaConfig, MILLI};
use proptest::prelude::*;

fn work(seed: u64) -> ServiceWork {
    ServiceWork::Analysis { seed, len: 64 }
}

fn cfg_for(sessions: usize) -> MuxConfig {
    MuxConfig {
        max_sessions: sessions.max(1),
        inbox_capacity: 8,
        quota: QuotaConfig { burst: 16, refill_milli_per_round: 16 * MILLI },
        quantum: 1,
        overload_watermark: 1_000, // stay Healthy: these tests isolate fairness
        shed_watermark: 2_000,
        misbehave_threshold: 4,
        round_ms: 10,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With a round budget ≥ the session count, every conforming session
    /// with queued work is served every round — no session waits more
    /// than one round, regardless of the arrival pattern.
    #[test]
    fn no_conforming_session_starves(
        n_sessions in 1usize..6,
        // per-round, per-session arrival counts (0..3 requests)
        arrivals in proptest::collection::vec(
            proptest::collection::vec(0usize..3, 1..6), 1..12),
    ) {
        let mut mux = SessionMux::new(cfg_for(n_sessions));
        for id in 0..n_sessions as u64 {
            mux.open_session(id);
        }
        let mut next_req = 0u64;
        for round in &arrivals {
            // queue depth per session before this round's scheduling
            for (slot, &count) in round.iter().enumerate() {
                let id = (slot % n_sessions) as u64;
                for _ in 0..count {
                    mux.submit(id, next_req, work(next_req));
                    next_req += 1;
                }
            }
            let had_work: Vec<u64> = mux
                .snapshot()
                .iter()
                .filter(|s| s.queued > 0 && !s.misbehaving)
                .map(|s| s.id)
                .collect();
            let picks = mux.schedule_round(n_sessions.max(1));
            let served: std::collections::HashSet<u64> =
                picks.iter().map(|p| p.session).collect();
            for id in had_work {
                prop_assert!(
                    served.contains(&id),
                    "session {id} had queued work but was not served this round \
                     (served: {served:?})"
                );
            }
        }
    }

    /// Token-bucket envelope: over any horizon, admissions are bounded by
    /// `burst + ⌊rate × rounds⌋ + 1`, and a session that paces at or
    /// under the refill rate is never rejected for quota.
    #[test]
    fn quota_enforced_within_one_request(
        burst in 1u32..6,
        rate_milli in 250u64..3_000,
        rounds in 1usize..40,
        per_round_demand in 1u64..8,
    ) {
        let cfg = MuxConfig {
            max_sessions: 1,
            inbox_capacity: 10_000,
            quota: QuotaConfig { burst, refill_milli_per_round: rate_milli },
            quantum: 8,
            overload_watermark: 100_000,
            shed_watermark: 200_000,
            misbehave_threshold: u32::MAX,
            round_ms: 10,
        };
        let mut mux = SessionMux::new(cfg);
        mux.open_session(0);
        let mut admitted = 0u64;
        let mut req = 0u64;
        for _ in 0..rounds {
            for _ in 0..per_round_demand {
                if let Admission::Enqueued { .. } = mux.submit(0, req, work(req)) {
                    admitted += 1;
                }
                req += 1;
            }
            // drain what was scheduled so the inbox never interferes
            mux.schedule_round(usize::MAX >> 1);
        }
        let envelope = u64::from(burst) + (rate_milli * rounds as u64) / MILLI + 1;
        prop_assert!(
            admitted <= envelope,
            "admitted {admitted} > envelope {envelope} (burst {burst}, \
             rate {rate_milli} m/round, {rounds} rounds)"
        );
        // a conforming pacer (demand within both the burst and the
        // whole-token refill rate) is never rejected
        let whole_rate = rate_milli / MILLI;
        if whole_rate >= per_round_demand && u64::from(burst) >= per_round_demand {
            prop_assert_eq!(
                admitted,
                per_round_demand * rounds as u64,
                "conforming demand must be admitted in full"
            );
        }
    }

    /// Replaying the identical seeded storm twice sheds identical victims
    /// in identical order, and misbehaving sessions are shed strictly
    /// before any conforming session loses a request.
    #[test]
    fn shedding_is_deterministic_and_misbehaving_first(
        seed in 0u64..1_000,
        n_sessions in 3usize..8,
    ) {
        let n_bad = (n_sessions / 2).max(1);
        let plan = FaultPlan::seeded_service_storm(seed, n_sessions, n_bad, 24);
        let replay = |plan: &FaultPlan| {
            let cfg = MuxConfig {
                max_sessions: n_sessions,
                inbox_capacity: 32,
                quota: QuotaConfig { burst: 32, refill_milli_per_round: 32 * MILLI },
                quantum: 1,
                overload_watermark: n_sessions * 2,
                shed_watermark: n_sessions * 3,
                misbehave_threshold: 4,
                round_ms: 10,
            };
            let mut mux = SessionMux::new(cfg);
            for id in 0..n_sessions as u64 {
                mux.open_session(id);
            }
            let mut req = 0u64;
            for id in 0..n_sessions as u64 {
                let faults = plan.client(id as usize);
                // storm sessions flood (overflowing inbox + quota to build
                // badness); conforming sessions submit a modest trickle
                let demand = if faults.quota_storm() > 0 { 64 } else { 2 };
                for _ in 0..demand {
                    mux.submit(id, req, work(req));
                    req += 1;
                }
            }
            let notices = mux.shed_to_watermark();
            (notices, mux.snapshot())
        };
        let (notices_a, snap_a) = replay(&plan);
        let (notices_b, _) = replay(&plan);
        prop_assert_eq!(&notices_a, &notices_b, "shed order must be reproducible");
        // strict priority: if any conforming session was shed, every
        // misbehaving session's inbox must already be empty
        let misbehaving: std::collections::HashSet<u64> =
            snap_a.iter().filter(|s| s.misbehaving).map(|s| s.id).collect();
        if !misbehaving.is_empty() {
            let first_conforming_shed =
                notices_a.iter().position(|n| !misbehaving.contains(&n.session));
            if let Some(pos) = first_conforming_shed {
                let misbehaving_shed_after = notices_a[pos..]
                    .iter()
                    .any(|n| misbehaving.contains(&n.session));
                prop_assert!(
                    !misbehaving_shed_after,
                    "a misbehaving session was shed after a conforming one"
                );
            }
        }
    }
}
