//! Wall geometry: mapping workflow cells onto display panels.
//!
//! The NCCS wall of Fig 5: "a 5×3 array of 46" displays … and a 17 by
//! 6-foot, 15.7 million pixel display".

/// A rectangular display wall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WallLayout {
    /// Panel rows.
    pub rows: usize,
    /// Panel columns.
    pub cols: usize,
    /// Pixels per panel (width, height).
    pub panel_px: (usize, usize),
}

impl WallLayout {
    /// The NCCS configuration: 5×3 panels at 1366×768 ≈ 15.7 Mpixels,
    /// matching the paper's "15.7 million pixel display".
    pub fn nccs() -> WallLayout {
        WallLayout { rows: 3, cols: 5, panel_px: (1366, 768) }
    }

    /// A reduced wall for tests/benches.
    pub fn small(rows: usize, cols: usize, panel_px: (usize, usize)) -> WallLayout {
        WallLayout { rows, cols, panel_px }
    }

    /// Number of panels (= client nodes = workflow cells).
    pub fn n_panels(&self) -> usize {
        self.rows * self.cols
    }

    /// Total pixels across the wall.
    pub fn total_pixels(&self) -> usize {
        self.n_panels() * self.panel_px.0 * self.panel_px.1
    }

    /// Panel (row, col) of a cell index, row-major.
    pub fn panel_of(&self, cell: usize) -> Option<(usize, usize)> {
        if cell >= self.n_panels() {
            return None;
        }
        Some((cell / self.cols, cell % self.cols))
    }

    /// Cell index of a panel position.
    pub fn cell_of(&self, row: usize, col: usize) -> Option<usize> {
        if row >= self.rows || col >= self.cols {
            return None;
        }
        Some(row * self.cols + col)
    }

    /// The server's low-resolution mirror size for one cell, given a
    /// downsample factor.
    pub fn mirror_px(&self, downsample: usize) -> (usize, usize) {
        let d = downsample.max(1);
        (self.panel_px.0 / d, self.panel_px.1 / d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nccs_wall_matches_paper_scale() {
        let w = WallLayout::nccs();
        assert_eq!(w.n_panels(), 15);
        let mp = w.total_pixels() as f64 / 1e6;
        assert!((mp - 15.7).abs() < 0.5, "{mp} Mpixels");
    }

    #[test]
    fn panel_cell_mapping_roundtrips() {
        let w = WallLayout::nccs();
        for cell in 0..w.n_panels() {
            let (r, c) = w.panel_of(cell).unwrap();
            assert_eq!(w.cell_of(r, c), Some(cell));
        }
        assert_eq!(w.panel_of(15), None);
        assert_eq!(w.cell_of(3, 0), None);
        assert_eq!(w.cell_of(0, 5), None);
        // row-major: cell 7 is row 1, col 2
        assert_eq!(w.panel_of(7), Some((1, 2)));
    }

    #[test]
    fn mirror_downsampling() {
        let w = WallLayout::small(2, 2, (800, 600));
        assert_eq!(w.mirror_px(4), (200, 150));
        assert_eq!(w.mirror_px(0), (800, 600)); // clamped
        assert_eq!(w.total_pixels(), 4 * 800 * 600);
    }
}
