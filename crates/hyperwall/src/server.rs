//! The server (control) node: owns the full workflow, ships sub-workflows
//! to clients, mirrors everything at reduced resolution, and propagates
//! the user's interaction ops to the wall.
//!
//! The server is the fault-tolerance anchor (see the crate docs): every
//! client exchange runs under a deadline, a failing client degrades its
//! panel instead of stopping the wall, degraded panels are served from the
//! server's own low-res mirror, and reconnecting clients are re-handshaken
//! with capped exponential backoff and promoted back to live.

use crate::frame_delta::{Applied, FrameAssembler};
use crate::protocol::{
    encode_frame, read_message_deadline, write_message_deadline, Message, PROTO_DELTA,
};
use crate::workflow::{split_per_client, wall_registry, CellChain, WallWorkflowConfig};
use crate::{Result, WallError};
use dv3d::cell::Dv3dCell;
use dv3d::interaction::ConfigOp;
use dv3d::plots::PlotSpec;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};
use vistrails::executor::Executor;
use vistrails::pipeline::Pipeline;

/// Health of one wall panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanelState {
    /// The display client renders this panel at full resolution.
    Live,
    /// The client is gone or misbehaving; the server substitutes its own
    /// low-res mirror render so the wall keeps animating.
    Degraded,
}

/// Deadlines and retry policy for the wall.
#[derive(Debug, Clone)]
pub struct WallTuning {
    /// Deadline for handshake exchanges and message sends.
    pub io_deadline: Duration,
    /// Deadline for a client's `FrameDone` after `Execute`.
    pub frame_deadline: Duration,
    /// Base of the reconnect backoff, in frames: a degraded panel is
    /// retried after `base << attempt` frames (capped at 32).
    pub backoff_base_frames: u64,
    /// Reconnect attempts before a panel is left permanently degraded.
    pub max_reconnect_attempts: u32,
    /// How long one reconnect poll keeps the door open for a returning
    /// client before the wall moves on to the next frame.
    pub reconnect_poll: Duration,
    /// Probe live clients with a `Heartbeat` every this many frames
    /// (0 disables; [`crate::cluster::run_wall_with_faults`] honours it).
    pub heartbeat_every_frames: u64,
}

impl Default for WallTuning {
    fn default() -> WallTuning {
        WallTuning {
            io_deadline: Duration::from_secs(2),
            frame_deadline: Duration::from_secs(5),
            backoff_base_frames: 1,
            max_reconnect_attempts: 5,
            reconnect_poll: Duration::from_millis(100),
            heartbeat_every_frames: 0,
        }
    }
}

/// One display connection and its health bookkeeping.
#[derive(Debug)]
struct Panel {
    stream: Option<TcpStream>,
    state: PanelState,
    reconnect_attempts: u32,
    next_retry_frame: u64,
    /// Protocol revision the client spoke at its handshake (1 = metadata
    /// only, [`PROTO_DELTA`] = frame-delta pixel transport).
    proto: u32,
    /// Receiver half of the delta transport; `Some` only for v2 panels.
    assembler: Option<FrameAssembler>,
}

impl Panel {
    fn live(stream: TcpStream, proto: u32) -> Panel {
        Panel {
            stream: Some(stream),
            state: PanelState::Live,
            reconnect_attempts: 0,
            next_retry_frame: 0,
            proto,
            assembler: None,
        }
    }
}

/// Upper bound on transport messages one panel may send per frame; beyond
/// it the panel is degraded (a spamming client must not hold the frame
/// loop hostage).
const MAX_TRANSPORT_PER_FRAME: u32 = 64;

/// Timing record of one distributed frame.
#[derive(Debug, Clone)]
pub struct FrameReport {
    pub frame: u64,
    /// Per-client render times, ms (client-measured; 0 for degraded panels).
    pub client_render_ms: Vec<f64>,
    /// Wall time from Execute broadcast to the last FrameDone, ms.
    pub round_trip_ms: f64,
    /// Server's low-res mirror render time for all cells, ms.
    pub mirror_ms: f64,
    /// Per-client coverage fractions (mirror-derived for degraded panels).
    pub coverage: Vec<f64>,
    /// Which panels were served from the server mirror this frame.
    pub degraded: Vec<bool>,
    /// Wire bytes of frame-delta transport messages received per panel
    /// this frame (0 for v1 panels).
    pub transport_bytes: Vec<u64>,
    /// Per panel: ms from the Execute broadcast to the first pixel content
    /// (preview, keyframe or delta) arriving — the interaction-to-photon
    /// latency of the wall. 0 when no content arrived.
    pub first_content_ms: Vec<f64>,
}

/// The hyperwall server.
#[derive(Debug)]
pub struct HyperwallServer {
    listener: TcpListener,
    panels: Vec<Panel>,
    /// The full wall pipeline.
    pub pipeline: Pipeline,
    /// One chain per cell.
    pub chains: Vec<CellChain>,
    /// Local low-resolution mirror cells (the touchscreen spreadsheet).
    mirror: Vec<Dv3dCell>,
    /// Mirror resolution per cell.
    pub mirror_px: (usize, usize),
    /// Deadlines / retry policy.
    pub tuning: WallTuning,
    /// Saved `AssignWorkflow` messages, replayed at reconnect.
    assignments: Vec<Option<Message>>,
    /// Interaction ops broadcast so far, replayed at reconnect so a
    /// recovered panel matches the rest of the wall.
    op_log: Vec<ConfigOp>,
    heartbeat_seq: u64,
    current_frame: u64,
    degraded_frames_total: u64,
    reconnects_total: u64,
    deadline_misses_total: u64,
    delta_bytes_total: u64,
    key_bytes_total: u64,
    preview_frames_total: u64,
    resync_requests_total: u64,
    delta_rejects_total: u64,
    /// Human-readable fault timeline ("frame 2: panel 1 degraded: …").
    pub incidents: Vec<String>,
}

impl HyperwallServer {
    /// Binds a listener and prepares the wall workflow + local mirror,
    /// with default [`WallTuning`].
    pub fn bind(cfg: &WallWorkflowConfig, mirror_downsample: usize) -> Result<HyperwallServer> {
        HyperwallServer::bind_tuned(cfg, mirror_downsample, WallTuning::default())
    }

    /// Binds with explicit deadlines / retry policy.
    pub fn bind_tuned(
        cfg: &WallWorkflowConfig,
        mirror_downsample: usize,
        tuning: WallTuning,
    ) -> Result<HyperwallServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let (pipeline, chains) = crate::workflow::build_wall_pipeline(cfg)?;
        let d = mirror_downsample.max(1);
        let mirror_px = (cfg.cell_px.0 / d, cfg.cell_px.1 / d);
        Ok(HyperwallServer {
            listener,
            panels: Vec::new(),
            pipeline,
            chains,
            mirror: Vec::new(),
            mirror_px,
            tuning,
            assignments: Vec::new(),
            op_log: Vec::new(),
            heartbeat_seq: 0,
            current_frame: 0,
            degraded_frames_total: 0,
            reconnects_total: 0,
            deadline_misses_total: 0,
            delta_bytes_total: 0,
            key_bytes_total: 0,
            preview_frames_total: 0,
            resync_requests_total: 0,
            delta_rejects_total: 0,
            incidents: Vec::new(),
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> Result<std::net::SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// Accepts `n` clients (ordered by their Hello ids). Both handshake
    /// revisions are admitted: plain `Hello` clients get the original
    /// metadata-only protocol, `HelloV2` clients opt into the frame-delta
    /// pixel transport.
    pub fn accept_clients(&mut self, n: usize) -> Result<()> {
        let mut slots: Vec<Option<(TcpStream, u32)>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (mut stream, _) = self.listener.accept()?;
            stream.set_nodelay(true).ok();
            match read_message_deadline(&mut stream, self.tuning.io_deadline, "Hello")? {
                Message::Hello { client_id } if client_id < n => {
                    slots[client_id] = Some((stream, 1));
                }
                Message::HelloV2 { client_id, proto } if client_id < n => {
                    slots[client_id] = Some((stream, proto.max(PROTO_DELTA)));
                }
                other => {
                    return Err(WallError::Protocol(format!("expected Hello, got {other:?}")))
                }
            }
        }
        self.panels = slots
            .into_iter()
            .map(|s| {
                s.map(|(stream, proto)| Panel::live(stream, proto))
                    .ok_or_else(|| WallError::Protocol("missing client".into()))
            })
            .collect::<Result<_>>()?;
        Ok(())
    }

    /// Ships each client its sub-workflow and waits for all Ready replies.
    /// Also instantiates the server's local low-res mirror of every cell.
    ///
    /// A client that fails its assignment degrades its panel instead of
    /// failing the wall: the mirror covers it from frame 0 onward.
    pub fn assign_workflows(&mut self, cfg: &WallWorkflowConfig) -> Result<()> {
        let subs = split_per_client(&self.pipeline, &self.chains)?;
        self.assignments = (0..self.panels.len())
            .map(|i| {
                Ok(Some(Message::AssignWorkflow {
                    pipeline_json: subs[i].to_json()?,
                    cell_module: self.chains[i].cell,
                    width: cfg.cell_px.0,
                    height: cfg.cell_px.1,
                }))
            })
            .collect::<Result<_>>()?;
        for i in 0..self.panels.len() {
            // v2 panels get a frame assembler matching the assigned size
            if self.panels[i].proto >= PROTO_DELTA {
                self.panels[i].assembler =
                    Some(FrameAssembler::new(cfg.cell_px.0, cfg.cell_px.1));
            }
            // every slot was filled Some(..) by the collect above
            let Some(msg) = self.assignments[i].clone() else { continue };
            let deadline = self.tuning.io_deadline;
            let send = match self.panels[i].stream.as_mut() {
                Some(stream) => write_message_deadline(stream, &msg, deadline, "AssignWorkflow"),
                None => Err(WallError::Degraded { panel: i, reason: "no connection".into() }),
            };
            if let Err(e) = send {
                self.degrade(i, &format!("AssignWorkflow send failed: {e}"));
            }
        }
        for i in 0..self.panels.len() {
            if self.panels[i].state != PanelState::Live {
                continue;
            }
            let deadline = self.tuning.io_deadline;
            let reply = self
                .panels[i]
                .stream
                .as_mut()
                .map(|s| read_message_deadline(s, deadline, "Ready"))
                .unwrap_or_else(|| Err(WallError::Protocol("no connection".into())));
            match reply {
                Ok(Message::Ready { .. }) => {}
                Ok(other) => self.degrade(i, &format!("expected Ready, got {other:?}")),
                Err(e) => self.degrade(i, &format!("Ready read failed: {e}")),
            }
        }
        // Build the local mirror by executing each plot stage once.
        self.mirror.clear();
        let mut exec = Executor::new(wall_registry());
        for chain in self.chains.clone() {
            let results = exec.execute_subset(&self.pipeline, Some(chain.plot))?;
            let spec = results
                .output(chain.plot, "plot")
                .and_then(|d| d.as_opaque::<PlotSpec>())
                .ok_or_else(|| WallError::Protocol("no PlotSpec for mirror".into()))?;
            let mut cell = Dv3dCell::try_new("mirror", (*spec).clone())?;
            cell.show_colorbar = false;
            self.mirror.push(cell);
        }
        Ok(())
    }

    /// Broadcasts an interaction op to every live client and applies it to
    /// the local mirror; the op is also logged for replay to reconnecting
    /// clients. Returns the broadcast wall time in ms.
    pub fn broadcast_op(&mut self, op: &ConfigOp) -> Result<f64> {
        let start = Instant::now();
        // dv3dlint: allow(unbounded_growth) -- reconnect replay needs the full op history (ops are relative deltas over the reset assignment state), and growth is paced by operator interaction, not client traffic
        self.op_log.push(op.clone());
        let deadline = self.tuning.io_deadline;
        for i in 0..self.panels.len() {
            if self.panels[i].state != PanelState::Live {
                continue;
            }
            let send = self
                .panels[i]
                .stream
                .as_mut()
                .map(|s| write_message_deadline(s, &Message::Op(op.clone()), deadline, "Op"))
                .unwrap_or(Ok(()));
            if let Err(e) = send {
                self.degrade(i, &format!("Op send failed: {e}"));
            }
        }
        for cell in &mut self.mirror {
            let _ = cell.configure(op);
        }
        Ok(start.elapsed().as_secs_f64() * 1000.0)
    }

    /// Probes every live client with a `Heartbeat` and degrades the silent
    /// ones. Returns the number of panels still live afterwards.
    pub fn heartbeat(&mut self) -> Result<usize> {
        self.heartbeat_seq += 1;
        let seq = self.heartbeat_seq;
        let deadline = self.tuning.io_deadline;
        for i in 0..self.panels.len() {
            if self.panels[i].state != PanelState::Live {
                continue;
            }
            let probe = (|| -> Result<()> {
                let stream = self.panels[i]
                    .stream
                    .as_mut()
                    .ok_or_else(|| WallError::Protocol("no connection".into()))?;
                write_message_deadline(stream, &Message::Heartbeat { seq }, deadline, "Heartbeat")?;
                match read_message_deadline(stream, deadline, "HeartbeatAck")? {
                    Message::HeartbeatAck { client_id, seq: s } if client_id == i && s == seq => {
                        Ok(())
                    }
                    other => Err(WallError::Protocol(format!(
                        "expected HeartbeatAck({seq}), got {other:?}"
                    ))),
                }
            })();
            if let Err(e) = probe {
                self.degrade(i, &format!("heartbeat failed: {e}"));
            }
        }
        Ok(self.panels.iter().filter(|p| p.state == PanelState::Live).count())
    }

    /// Executes one distributed frame: reconnect any panels whose backoff
    /// is due, broadcast Execute to live panels, render the local mirror
    /// while clients render full-res, collect FrameDone, and substitute the
    /// mirror for every panel that is (or just became) degraded.
    ///
    /// Client failures never fail the frame — only server-local errors
    /// (e.g. the mirror render itself) do.
    pub fn execute_frame(&mut self, frame: u64) -> Result<FrameReport> {
        self.current_frame = frame;
        self.try_reconnects(frame);

        let n = self.panels.len();
        let start = Instant::now();
        let mut sent = vec![false; n];
        let deadline = self.tuning.io_deadline;
        for (i, was_sent) in sent.iter_mut().enumerate() {
            if self.panels[i].state != PanelState::Live {
                continue;
            }
            let send = self
                .panels[i]
                .stream
                .as_mut()
                .map(|s| write_message_deadline(s, &Message::Execute { frame }, deadline, "Execute"))
                .unwrap_or_else(|| Err(WallError::Protocol("no connection".into())));
            match send {
                Ok(()) => *was_sent = true,
                Err(e) => self.degrade(i, &format!("Execute send failed: {e}")),
            }
        }

        // server-side reduced-resolution mirror of the full spreadsheet
        let (mw, mh) = (self.mirror_px.0.max(16), self.mirror_px.1.max(16));
        let mirror_start = Instant::now();
        let mut mirror_coverage = vec![0.0f64; n];
        for (i, cell) in self.mirror.iter_mut().enumerate() {
            let fb = cell.render(mw, mh)?;
            mirror_coverage[i] =
                fb.covered_pixels(rvtk::Color::BLACK) as f64 / (mw * mh) as f64;
        }
        let mirror_ms = mirror_start.elapsed().as_secs_f64() * 1000.0;

        let mut client_render_ms = vec![0.0; n];
        let mut coverage = vec![0.0; n];
        let mut transport_bytes = vec![0u64; n];
        let mut first_content_ms = vec![0.0f64; n];
        let frame_deadline = self.tuning.frame_deadline;
        for i in 0..n {
            if !sent[i] {
                continue;
            }
            // v2 clients interleave FramePreview / FrameKey / FrameDelta
            // messages before their FrameDone on the same ordered stream;
            // drain them into the panel's assembler until the frame closes.
            let mut transport_msgs: u32 = 0;
            let mut content_ok = false;
            loop {
                let reply = self
                    .panels[i]
                    .stream
                    .as_mut()
                    .map(|s| read_message_deadline(s, frame_deadline, "FrameDone"))
                    .unwrap_or_else(|| Err(WallError::Protocol("no connection".into())));
                match reply {
                    Ok(Message::FrameDone { client_id, frame: f, coverage: c, render_ms })
                        if client_id == i && f == frame =>
                    {
                        client_render_ms[i] = render_ms;
                        coverage[i] = c;
                        break;
                    }
                    Ok(Message::FrameDone { client_id, frame: f, .. }) => {
                        self.degrade(
                            i,
                            &format!("client {client_id} answered frame {f}, expected {frame}"),
                        );
                        break;
                    }
                    Ok(
                        msg @ (Message::FrameKey { .. }
                        | Message::FrameDelta { .. }
                        | Message::FramePreview { .. }),
                    ) => {
                        transport_msgs += 1;
                        if transport_msgs > MAX_TRANSPORT_PER_FRAME {
                            self.degrade(i, "transport message flood");
                            break;
                        }
                        let wire = encode_frame(&msg).map(|b| b.len() as u64).unwrap_or(0);
                        transport_bytes[i] += wire;
                        match &msg {
                            Message::FrameKey { .. } => self.key_bytes_total += wire,
                            Message::FrameDelta { .. } => self.delta_bytes_total += wire,
                            _ => self.preview_frames_total += 1,
                        }
                        if first_content_ms[i] == 0.0 {
                            first_content_ms[i] = start.elapsed().as_secs_f64() * 1000.0;
                        }
                        if self.panels[i].assembler.is_none() {
                            self.degrade(i, "pixel transport from a v1 client");
                            break;
                        }
                        if let Some(asm) = self.panels[i].assembler.as_mut() {
                            // a rejected delta is NOT a degradation: the
                            // assembler unsyncs atomically (no torn tiles)
                            // and the end-of-frame resync below repairs it
                            match asm.apply(&msg) {
                                Ok(Applied::Key) | Ok(Applied::Delta { .. }) => {
                                    content_ok = true;
                                }
                                Ok(Applied::Preview) => {}
                                Err(_) => self.delta_rejects_total += 1,
                            }
                        }
                    }
                    Ok(other) => {
                        self.degrade(i, &format!("expected FrameDone, got {other:?}"));
                        break;
                    }
                    Err(e) => {
                        if matches!(e, WallError::Timeout(_)) {
                            self.deadline_misses_total += 1;
                        }
                        self.degrade(i, &format!("FrameDone failed: {e}"));
                        break;
                    }
                }
            }
            // Drop / reject detection: a live v2 panel whose frame closed
            // without committing any pixel content (delta lost in transit or
            // rejected) is told to open its next frame with a keyframe.
            if self.panels[i].state == PanelState::Live
                && self.panels[i].proto >= PROTO_DELTA
                && !content_ok
            {
                let epoch =
                    self.panels[i].assembler.as_ref().map(|a| a.epoch()).unwrap_or(0);
                let send = self
                    .panels[i]
                    .stream
                    .as_mut()
                    .map(|s| {
                        write_message_deadline(
                            s,
                            &Message::ResyncRequest { client_id: i, epoch },
                            deadline,
                            "ResyncRequest",
                        )
                    })
                    .unwrap_or_else(|| Err(WallError::Protocol("no connection".into())));
                match send {
                    Ok(()) => self.resync_requests_total += 1,
                    Err(e) => self.degrade(i, &format!("ResyncRequest send failed: {e}")),
                }
            }
        }

        // graceful degradation: degraded panels show the server mirror
        let mut degraded = vec![false; n];
        for i in 0..n {
            if self.panels[i].state == PanelState::Degraded {
                degraded[i] = true;
                coverage[i] = mirror_coverage[i];
                self.degraded_frames_total += 1;
            }
        }

        Ok(FrameReport {
            frame,
            client_render_ms,
            round_trip_ms: start.elapsed().as_secs_f64() * 1000.0,
            mirror_ms,
            coverage,
            degraded,
            transport_bytes,
            first_content_ms,
        })
    }

    /// Marks a panel degraded, drops its connection, and schedules the
    /// first reconnect attempt.
    fn degrade(&mut self, i: usize, reason: &str) {
        if self.panels[i].state == PanelState::Degraded {
            return;
        }
        self.incidents
            .push(format!("frame {}: panel {i} degraded: {reason}", self.current_frame));
        let p = &mut self.panels[i];
        p.state = PanelState::Degraded;
        p.stream = None;
        // the assembled frame is stale the moment the client is gone; a
        // reconnect installs a fresh assembler sized from the assignment
        p.assembler = None;
        p.reconnect_attempts = 0;
        p.next_retry_frame = self.current_frame + self.tuning.backoff_base_frames.max(1);
    }

    /// True when some degraded panel is due a reconnect attempt at `frame`.
    fn reconnect_due(&self, frame: u64) -> bool {
        self.panels.iter().any(|p| {
            p.state == PanelState::Degraded
                && p.reconnect_attempts < self.tuning.max_reconnect_attempts
                && frame >= p.next_retry_frame
        })
    }

    /// Polls the listener for returning clients and re-handshakes them:
    /// `Hello → AssignWorkflow → Ready`, then replays the op log so the
    /// recovered panel matches the rest of the wall. Panels that do not
    /// return get their backoff doubled (capped); after
    /// `max_reconnect_attempts` they are left permanently degraded.
    fn try_reconnects(&mut self, frame: u64) {
        if !self.reconnect_due(frame) {
            return;
        }
        let poll_deadline = Instant::now() + self.tuning.reconnect_poll;
        self.listener.set_nonblocking(true).ok();
        loop {
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    stream.set_nonblocking(false).ok();
                    stream.set_nodelay(true).ok();
                    match self.rehandshake(&mut stream) {
                        Ok((i, proto)) => {
                            self.incidents.push(format!(
                                "frame {frame}: panel {i} reconnected, restored to live"
                            ));
                            let mut panel = Panel::live(stream, proto);
                            if proto >= PROTO_DELTA {
                                // fresh assembler: the client's fresh streamer
                                // opens with a keyframe, so they resync
                                if let Some(Message::AssignWorkflow { width, height, .. }) =
                                    self.assignments.get(i).cloned().flatten()
                                {
                                    panel.assembler = Some(FrameAssembler::new(width, height));
                                }
                            }
                            self.panels[i] = panel;
                            self.reconnects_total += 1;
                        }
                        Err(e) => {
                            self.incidents
                                .push(format!("frame {frame}: rejected reconnect: {e}"));
                        }
                    }
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if !self.reconnect_due(frame) || Instant::now() >= poll_deadline {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => break,
            }
            if !self.reconnect_due(frame) {
                break;
            }
        }
        self.listener.set_nonblocking(false).ok();
        // panels still down: consume this attempt and back off exponentially
        for i in 0..self.panels.len() {
            let max = self.tuning.max_reconnect_attempts;
            let base = self.tuning.backoff_base_frames.max(1);
            let p = &mut self.panels[i];
            if p.state == PanelState::Degraded
                && p.reconnect_attempts < max
                && frame >= p.next_retry_frame
            {
                p.reconnect_attempts += 1;
                let backoff = base.saturating_shl(p.reconnect_attempts.min(5)).min(32);
                p.next_retry_frame = frame + backoff;
            }
        }
    }

    /// Runs the full recovery handshake on a fresh connection; returns the
    /// recovered panel index and the protocol revision it spoke.
    fn rehandshake(&mut self, stream: &mut TcpStream) -> Result<(usize, u32)> {
        let deadline = self.tuning.io_deadline;
        let (i, proto) = match read_message_deadline(stream, deadline, "Hello")? {
            Message::Hello { client_id } if client_id < self.panels.len() => (client_id, 1),
            Message::HelloV2 { client_id, proto } if client_id < self.panels.len() => {
                (client_id, proto.max(PROTO_DELTA))
            }
            other => {
                return Err(WallError::Protocol(format!("expected Hello, got {other:?}")))
            }
        };
        if self.panels[i].state != PanelState::Degraded {
            return Err(WallError::Protocol(format!(
                "client {i} reconnected but its panel is live"
            )));
        }
        let assignment = self.assignments.get(i).cloned().flatten().ok_or_else(|| {
            WallError::Protocol(format!("no stored assignment for panel {i}"))
        })?;
        write_message_deadline(stream, &assignment, deadline, "AssignWorkflow")?;
        match read_message_deadline(stream, deadline, "Ready")? {
            Message::Ready { .. } => {}
            other => {
                return Err(WallError::Protocol(format!("expected Ready, got {other:?}")))
            }
        }
        for op in self.op_log.clone() {
            write_message_deadline(stream, &Message::Op(op), deadline, "Op replay")?;
        }
        Ok((i, proto))
    }

    /// Assembles the server's low-resolution mirror cells into one mosaic
    /// framebuffer arranged by the wall layout — the touchscreen preview of
    /// the whole wall.
    pub fn mirror_mosaic(&mut self, layout: &crate::layout::WallLayout) -> Result<rvtk::render::Framebuffer> {
        let (mw, mh) = (self.mirror_px.0.max(16), self.mirror_px.1.max(16));
        let mut mosaic = rvtk::render::Framebuffer::new(mw * layout.cols, mh * layout.rows);
        for (i, cell) in self.mirror.iter_mut().enumerate() {
            let Some((row, col)) = layout.panel_of(i) else {
                break;
            };
            let frame = cell.render(mw, mh)?;
            mosaic.blit(&frame, col * mw, row * mh);
        }
        Ok(mosaic)
    }

    /// Shuts the wall down (best effort: degraded panels have no client to
    /// notify).
    pub fn shutdown(&mut self) -> Result<()> {
        let deadline = self.tuning.io_deadline;
        for panel in self.panels.iter_mut() {
            if let Some(stream) = panel.stream.as_mut() {
                write_message_deadline(stream, &Message::Shutdown, deadline, "Shutdown").ok();
            }
        }
        Ok(())
    }

    /// Number of connected clients (live or degraded panels).
    pub fn n_clients(&self) -> usize {
        self.panels.len()
    }

    /// Current health of every panel.
    pub fn panel_states(&self) -> Vec<PanelState> {
        self.panels.iter().map(|p| p.state).collect()
    }

    /// Panel-frames served from the server mirror instead of a live client.
    pub fn degraded_frames_total(&self) -> u64 {
        self.degraded_frames_total
    }

    /// Successful panel recoveries.
    pub fn reconnects_total(&self) -> u64 {
        self.reconnects_total
    }

    /// FrameDone waits that expired at the deadline.
    pub fn deadline_misses_total(&self) -> u64 {
        self.deadline_misses_total
    }

    /// Total wire bytes of `FrameDelta` messages received.
    pub fn delta_bytes_total(&self) -> u64 {
        self.delta_bytes_total
    }

    /// Total wire bytes of `FrameKey` messages received.
    pub fn key_bytes_total(&self) -> u64 {
        self.key_bytes_total
    }

    /// Low-res motion previews received.
    pub fn preview_frames_total(&self) -> u64 {
        self.preview_frames_total
    }

    /// Keyframe resyncs the server had to request (dropped or rejected
    /// deltas detected at end of frame).
    pub fn resync_requests_total(&self) -> u64 {
        self.resync_requests_total
    }

    /// Transport messages rejected by an assembler (corrupt payload, stale
    /// epoch, sequence gap). Every reject is followed by a resync, never a
    /// torn frame.
    pub fn delta_rejects_total(&self) -> u64 {
        self.delta_rejects_total
    }

    /// Per panel: does its assembler currently hold a hash-verified frame?
    /// (Always `false` for v1 panels, which ship no pixels.)
    pub fn panels_synced(&self) -> Vec<bool> {
        self.panels
            .iter()
            .map(|p| p.assembler.as_ref().map(|a| a.is_synced()).unwrap_or(false))
            .collect()
    }

    /// True when panel `i`'s assembled frame re-verifies against its
    /// whole-frame content hash (the no-torn-tiles guarantee).
    pub fn panel_frame_verified(&self, i: usize) -> bool {
        self.panels
            .get(i)
            .and_then(|p| p.assembler.as_ref())
            .map(|a| a.verify())
            .unwrap_or(false)
    }

    /// The last committed full-resolution RGBA frame for panel `i`, if its
    /// assembler is synced.
    pub fn panel_frame(&self, i: usize) -> Option<&[u8]> {
        self.panels.get(i).and_then(|p| p.assembler.as_ref()).and_then(|a| a.frame())
    }
}

/// `u64::checked_shl` that saturates instead of wrapping (backoff helper).
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        self.checked_shl(shift).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{read_message, write_message, Message};
    use crate::workflow::WallWorkflowConfig;

    fn cfg() -> WallWorkflowConfig {
        WallWorkflowConfig { n_cells: 2, synth: (1, 2, 8, 16), cell_px: (32, 24) }
    }

    fn fast_tuning() -> WallTuning {
        WallTuning {
            io_deadline: Duration::from_millis(500),
            frame_deadline: Duration::from_millis(500),
            backoff_base_frames: 1,
            max_reconnect_attempts: 3,
            reconnect_poll: Duration::from_millis(50),
            heartbeat_every_frames: 0,
        }
    }

    #[test]
    fn rejects_bad_hello() {
        let mut server = HyperwallServer::bind(&cfg(), 4).unwrap();
        let addr = server.addr().unwrap();
        let rogue = std::thread::spawn(move || {
            let mut s = std::net::TcpStream::connect(addr).unwrap();
            // claims an out-of-range client id
            write_message(&mut s, &Message::Hello { client_id: 99 }).unwrap();
        });
        let err = server.accept_clients(2).unwrap_err();
        assert!(matches!(err, WallError::Protocol(_)), "{err}");
        rogue.join().unwrap();
    }

    #[test]
    fn rejects_non_hello_first_message() {
        let mut server = HyperwallServer::bind(&cfg(), 4).unwrap();
        let addr = server.addr().unwrap();
        let rogue = std::thread::spawn(move || {
            let mut s = std::net::TcpStream::connect(addr).unwrap();
            write_message(&mut s, &Message::Execute { frame: 0 }).unwrap();
        });
        assert!(server.accept_clients(1).is_err());
        rogue.join().unwrap();
    }

    #[test]
    fn client_disconnect_degrades_panels_but_wall_survives() {
        let mut server = HyperwallServer::bind_tuned(&cfg(), 4, fast_tuning()).unwrap();
        let addr = server.addr().unwrap();
        // clients that hang up right after Hello
        let quitter = std::thread::spawn(move || {
            for id in 0..2 {
                let mut s = std::net::TcpStream::connect(addr).unwrap();
                write_message(&mut s, &Message::Hello { client_id: id }).unwrap();
                drop(s);
            }
        });
        server.accept_clients(2).unwrap();
        quitter.join().unwrap();
        // assignment hits the closed sockets: panels degrade, wall survives
        server.assign_workflows(&cfg()).unwrap();
        assert_eq!(server.panel_states(), vec![PanelState::Degraded; 2]);
        // the frame still completes, fully served by the mirror
        let report = server.execute_frame(0).unwrap();
        assert_eq!(report.degraded, vec![true, true]);
        assert!(report.coverage.iter().all(|&c| c > 0.0), "{report:?}");
        assert_eq!(server.degraded_frames_total(), 2);
        assert!(!server.incidents.is_empty());
    }

    #[test]
    fn frame_mismatch_degrades_the_lying_panel() {
        let mut server = HyperwallServer::bind_tuned(&cfg(), 4, fast_tuning()).unwrap();
        let addr = server.addr().unwrap();
        // two concurrent fake clients; client 1 answers the wrong frame
        let fakes: Vec<_> = (0..2usize)
            .map(|id| {
                std::thread::spawn(move || {
                    let mut s = std::net::TcpStream::connect(addr).unwrap();
                    write_message(&mut s, &Message::Hello { client_id: id }).unwrap();
                    match read_message(&mut s).unwrap() {
                        Message::AssignWorkflow { .. } => {}
                        other => panic!("{other:?}"),
                    }
                    write_message(&mut s, &Message::Ready { client_id: id }).unwrap();
                    match read_message(&mut s).unwrap() {
                        Message::Execute { frame } => {
                            let lie = if id == 1 { 999 } else { frame };
                            write_message(
                                &mut s,
                                &Message::FrameDone {
                                    client_id: id,
                                    frame: lie,
                                    coverage: 0.5,
                                    render_ms: 1.0,
                                },
                            )
                            .unwrap();
                        }
                        other => panic!("{other:?}"),
                    }
                    // hold the socket open until the server reacts
                    std::thread::sleep(Duration::from_millis(200));
                })
            })
            .collect();
        server.accept_clients(2).unwrap();
        server.assign_workflows(&cfg()).unwrap();
        let report = server.execute_frame(0).unwrap();
        assert_eq!(report.degraded, vec![false, true]);
        assert_eq!(
            server.panel_states(),
            vec![PanelState::Live, PanelState::Degraded]
        );
        // the honest client's numbers came through
        assert_eq!(report.client_render_ms[0], 1.0);
        assert_eq!(report.coverage[0], 0.5);
        // the liar's coverage was substituted from the mirror
        assert!(report.coverage[1] > 0.0);
        for f in fakes {
            f.join().unwrap();
        }
    }

    #[test]
    fn heartbeat_degrades_silent_clients() {
        let mut server = HyperwallServer::bind_tuned(&cfg(), 4, fast_tuning()).unwrap();
        let addr = server.addr().unwrap();
        let clients: Vec<_> = (0..2usize)
            .map(|id| {
                std::thread::spawn(move || {
                    let mut s = std::net::TcpStream::connect(addr).unwrap();
                    write_message(&mut s, &Message::Hello { client_id: id }).unwrap();
                    match read_message(&mut s).unwrap() {
                        Message::AssignWorkflow { .. } => {}
                        other => panic!("{other:?}"),
                    }
                    write_message(&mut s, &Message::Ready { client_id: id }).unwrap();
                    // client 0 answers heartbeats; client 1 goes silent
                    if id == 0 {
                        match read_message(&mut s).unwrap() {
                            Message::Heartbeat { seq } => write_message(
                                &mut s,
                                &Message::HeartbeatAck { client_id: id, seq },
                            )
                            .unwrap(),
                            other => panic!("{other:?}"),
                        }
                    }
                    std::thread::sleep(Duration::from_millis(700));
                })
            })
            .collect();
        server.accept_clients(2).unwrap();
        server.assign_workflows(&cfg()).unwrap();
        let live = server.heartbeat().unwrap();
        assert_eq!(live, 1);
        assert_eq!(
            server.panel_states(),
            vec![PanelState::Live, PanelState::Degraded]
        );
        assert_eq!(server.deadline_misses_total(), 0);
        for c in clients {
            c.join().unwrap();
        }
    }
}
