//! The server (control) node: owns the full workflow, ships sub-workflows
//! to clients, mirrors everything at reduced resolution, and propagates
//! the user's interaction ops to the wall.

use crate::protocol::{read_message, write_message, Message};
use crate::workflow::{split_per_client, wall_registry, CellChain, WallWorkflowConfig};
use crate::{Result, WallError};
use dv3d::cell::Dv3dCell;
use dv3d::interaction::ConfigOp;
use dv3d::plots::PlotSpec;
use std::net::{TcpListener, TcpStream};
use std::time::Instant;
use vistrails::executor::Executor;
use vistrails::pipeline::Pipeline;

/// Timing record of one distributed frame.
#[derive(Debug, Clone)]
pub struct FrameReport {
    pub frame: u64,
    /// Per-client render times, ms (client-measured).
    pub client_render_ms: Vec<f64>,
    /// Wall time from Execute broadcast to the last FrameDone, ms.
    pub round_trip_ms: f64,
    /// Server's low-res mirror render time for all cells, ms.
    pub mirror_ms: f64,
    /// Per-client coverage fractions.
    pub coverage: Vec<f64>,
}

/// The hyperwall server.
pub struct HyperwallServer {
    listener: TcpListener,
    clients: Vec<TcpStream>,
    /// The full wall pipeline.
    pub pipeline: Pipeline,
    /// One chain per cell.
    pub chains: Vec<CellChain>,
    /// Local low-resolution mirror cells (the touchscreen spreadsheet).
    mirror: Vec<Dv3dCell>,
    /// Mirror resolution per cell.
    pub mirror_px: (usize, usize),
}

impl HyperwallServer {
    /// Binds a listener and prepares the wall workflow + local mirror.
    pub fn bind(cfg: &WallWorkflowConfig, mirror_downsample: usize) -> Result<HyperwallServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let (pipeline, chains) = crate::workflow::build_wall_pipeline(cfg)?;
        let d = mirror_downsample.max(1);
        let mirror_px = (cfg.cell_px.0 / d, cfg.cell_px.1 / d);
        Ok(HyperwallServer {
            listener,
            clients: Vec::new(),
            pipeline,
            chains,
            mirror: Vec::new(),
            mirror_px,
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> Result<std::net::SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// Accepts `n` clients (ordered by their Hello ids).
    pub fn accept_clients(&mut self, n: usize) -> Result<()> {
        let mut slots: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (mut stream, _) = self.listener.accept()?;
            stream.set_nodelay(true).ok();
            match read_message(&mut stream)? {
                Message::Hello { client_id } if client_id < n => {
                    slots[client_id] = Some(stream);
                }
                other => {
                    return Err(WallError::Protocol(format!("expected Hello, got {other:?}")))
                }
            }
        }
        self.clients = slots
            .into_iter()
            .map(|s| s.ok_or_else(|| WallError::Protocol("missing client".into())))
            .collect::<Result<_>>()?;
        Ok(())
    }

    /// Ships each client its sub-workflow and waits for all Ready replies.
    /// Also instantiates the server's local low-res mirror of every cell.
    pub fn assign_workflows(&mut self, cfg: &WallWorkflowConfig) -> Result<()> {
        let subs = split_per_client(&self.pipeline, &self.chains)?;
        for (i, stream) in self.clients.iter_mut().enumerate() {
            write_message(
                stream,
                &Message::AssignWorkflow {
                    pipeline_json: subs[i].to_json()?,
                    cell_module: self.chains[i].cell,
                    width: cfg.cell_px.0,
                    height: cfg.cell_px.1,
                },
            )?;
        }
        for stream in self.clients.iter_mut() {
            match read_message(stream)? {
                Message::Ready { .. } => {}
                other => {
                    return Err(WallError::Protocol(format!("expected Ready, got {other:?}")))
                }
            }
        }
        // Build the local mirror by executing each plot stage once.
        self.mirror.clear();
        let mut exec = Executor::new(wall_registry());
        for chain in self.chains.clone() {
            let results = exec.execute_subset(&self.pipeline, Some(chain.plot))?;
            let spec = results
                .output(chain.plot, "plot")
                .and_then(|d| d.as_opaque::<PlotSpec>())
                .ok_or_else(|| WallError::Protocol("no PlotSpec for mirror".into()))?;
            let mut cell = Dv3dCell::try_new("mirror", (*spec).clone())?;
            cell.show_colorbar = false;
            self.mirror.push(cell);
        }
        Ok(())
    }

    /// Broadcasts an interaction op to every client and applies it to the
    /// local mirror. Returns the broadcast wall time in ms.
    pub fn broadcast_op(&mut self, op: &ConfigOp) -> Result<f64> {
        let start = Instant::now();
        for stream in self.clients.iter_mut() {
            write_message(stream, &Message::Op(op.clone()))?;
        }
        for cell in &mut self.mirror {
            let _ = cell.configure(op);
        }
        Ok(start.elapsed().as_secs_f64() * 1000.0)
    }

    /// Executes one distributed frame: broadcast Execute, render the local
    /// mirror while clients render full-res, then collect all FrameDone.
    pub fn execute_frame(&mut self, frame: u64) -> Result<FrameReport> {
        let start = Instant::now();
        for stream in self.clients.iter_mut() {
            write_message(stream, &Message::Execute { frame })?;
        }
        // server-side reduced-resolution mirror of the full spreadsheet
        let mirror_start = Instant::now();
        for cell in &mut self.mirror {
            cell.render(self.mirror_px.0.max(16), self.mirror_px.1.max(16))?;
        }
        let mirror_ms = mirror_start.elapsed().as_secs_f64() * 1000.0;

        let mut client_render_ms = vec![0.0; self.clients.len()];
        let mut coverage = vec![0.0; self.clients.len()];
        for stream in self.clients.iter_mut() {
            match read_message(stream)? {
                Message::FrameDone { client_id, frame: f, coverage: c, render_ms } => {
                    if f != frame {
                        return Err(WallError::Protocol(format!(
                            "client {client_id} answered frame {f}, expected {frame}"
                        )));
                    }
                    client_render_ms[client_id] = render_ms;
                    coverage[client_id] = c;
                }
                other => {
                    return Err(WallError::Protocol(format!(
                        "expected FrameDone, got {other:?}"
                    )))
                }
            }
        }
        Ok(FrameReport {
            frame,
            client_render_ms,
            round_trip_ms: start.elapsed().as_secs_f64() * 1000.0,
            mirror_ms,
            coverage,
        })
    }

    /// Assembles the server's low-resolution mirror cells into one mosaic
    /// framebuffer arranged by the wall layout — the touchscreen preview of
    /// the whole wall.
    pub fn mirror_mosaic(&mut self, layout: &crate::layout::WallLayout) -> Result<rvtk::render::Framebuffer> {
        let (mw, mh) = (self.mirror_px.0.max(16), self.mirror_px.1.max(16));
        let mut mosaic = rvtk::render::Framebuffer::new(mw * layout.cols, mh * layout.rows);
        for (i, cell) in self.mirror.iter_mut().enumerate() {
            let Some((row, col)) = layout.panel_of(i) else {
                break;
            };
            let frame = cell.render(mw, mh)?;
            mosaic.blit(&frame, col * mw, row * mh);
        }
        Ok(mosaic)
    }

    /// Shuts the wall down.
    pub fn shutdown(&mut self) -> Result<()> {
        for stream in self.clients.iter_mut() {
            write_message(stream, &Message::Shutdown)?;
        }
        Ok(())
    }

    /// Number of connected clients.
    pub fn n_clients(&self) -> usize {
        self.clients.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{read_message, write_message, Message};
    use crate::workflow::WallWorkflowConfig;

    fn cfg() -> WallWorkflowConfig {
        WallWorkflowConfig { n_cells: 2, synth: (1, 2, 8, 16), cell_px: (32, 24) }
    }

    #[test]
    fn rejects_bad_hello() {
        let mut server = HyperwallServer::bind(&cfg(), 4).unwrap();
        let addr = server.addr().unwrap();
        let rogue = std::thread::spawn(move || {
            let mut s = std::net::TcpStream::connect(addr).unwrap();
            // claims an out-of-range client id
            write_message(&mut s, &Message::Hello { client_id: 99 }).unwrap();
        });
        let err = server.accept_clients(2).unwrap_err();
        assert!(matches!(err, WallError::Protocol(_)), "{err}");
        rogue.join().unwrap();
    }

    #[test]
    fn rejects_non_hello_first_message() {
        let mut server = HyperwallServer::bind(&cfg(), 4).unwrap();
        let addr = server.addr().unwrap();
        let rogue = std::thread::spawn(move || {
            let mut s = std::net::TcpStream::connect(addr).unwrap();
            write_message(&mut s, &Message::Execute { frame: 0 }).unwrap();
        });
        assert!(server.accept_clients(1).is_err());
        rogue.join().unwrap();
    }

    #[test]
    fn client_disconnect_surfaces_as_error() {
        let mut server = HyperwallServer::bind(&cfg(), 4).unwrap();
        let addr = server.addr().unwrap();
        // a client that hangs up right after Hello
        let quitter = std::thread::spawn(move || {
            for id in 0..2 {
                let mut s = std::net::TcpStream::connect(addr).unwrap();
                write_message(&mut s, &Message::Hello { client_id: id }).unwrap();
                drop(s);
            }
        });
        server.accept_clients(2).unwrap();
        quitter.join().unwrap();
        // assignment hits the closed sockets somewhere: send may buffer,
        // but the Ready read must fail
        let err = server.assign_workflows(&cfg()).unwrap_err();
        assert!(matches!(err, WallError::Io(_) | WallError::Protocol(_)), "{err}");
    }

    #[test]
    fn frame_mismatch_detected() {
        let mut server = HyperwallServer::bind(&cfg(), 4).unwrap();
        let addr = server.addr().unwrap();
        // two concurrent fake clients that answer the wrong frame number
        let fakes: Vec<_> = (0..2usize)
            .map(|id| {
                std::thread::spawn(move || {
                    let mut s = std::net::TcpStream::connect(addr).unwrap();
                    write_message(&mut s, &Message::Hello { client_id: id }).unwrap();
                    match read_message(&mut s).unwrap() {
                        Message::AssignWorkflow { .. } => {}
                        other => panic!("{other:?}"),
                    }
                    write_message(&mut s, &Message::Ready { client_id: id }).unwrap();
                    match read_message(&mut s).unwrap() {
                        Message::Execute { .. } => {}
                        other => panic!("{other:?}"),
                    }
                    write_message(
                        &mut s,
                        &Message::FrameDone {
                            client_id: id,
                            frame: 999,
                            coverage: 0.5,
                            render_ms: 1.0,
                        },
                    )
                    .unwrap();
                    // hold the socket open until the server errors out
                    std::thread::sleep(std::time::Duration::from_millis(200));
                })
            })
            .collect();
        server.accept_clients(2).unwrap();
        server.assign_workflows(&cfg()).unwrap();
        let err = server.execute_frame(0).unwrap_err();
        assert!(matches!(err, WallError::Protocol(_)), "{err}");
        for f in fakes {
            f.join().unwrap();
        }
    }
}
