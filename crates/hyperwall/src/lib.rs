#![forbid(unsafe_code)]

//! # hyperwall — distributed visualization framework (§III.H, Fig 5)
//!
//! Reproduces the NCCS hyperwall deployment: a server node holding the full
//! multi-cell workflow, plus one client node per display. "At execution
//! time the server instance sends edited versions of the workflow to each
//! client node for local execution. Each client workflow consists of one of
//! the cell modules (and all its upstream modules) from the server
//! workflow. The server instance executes a reduced resolution instance of
//! the full workflow, whereas each client instance executes a full
//! resolution 1-cell sub-workflow."
//!
//! The cluster nodes are threads connected by real TCP sockets on loopback
//! (the protocol is identical to what separate hosts would speak):
//!
//! * [`protocol`] — length-prefixed JSON messages (workflow assignment,
//!   interaction ops, frame execution, completion reports, heartbeats).
//! * [`frame_delta`] — the v2 pixel transport: dirty-tile deltas with
//!   RLE payloads, hash-guarded all-or-nothing assembly, keyframe resync,
//!   and low-res previews during camera motion.
//! * [`workflow`] — builds the 15-cell wall workflow and splits it into
//!   per-client sub-workflows with `Pipeline::upstream_subgraph`.
//! * [`server`] / [`client`] — the two node roles.
//! * [`layout`] — wall geometry (the NCCS wall: 5×3 panels).
//! * [`cluster`] — spawns a full loopback wall and reports timings.
//! * [`fault`] — deterministic fault injection for resilience testing.
//!
//! ## Fault tolerance
//!
//! A wall of 15 display nodes has 15 chances per frame for something to go
//! wrong, and a demo in front of an audience cannot stop because one panel
//! died. The fault layer keeps the wall animating through client failures:
//!
//! * **Deadlines everywhere.** Every protocol exchange runs under a read /
//!   write timeout ([`protocol::read_message_deadline`] and friends), every
//!   message length is capped at [`protocol::MAX_MESSAGE_BYTES`], and the
//!   server can interleave [`protocol::Message::Heartbeat`] probes to
//!   detect silent clients between frames.
//! * **Panel states, `Live → Degraded → Live`.** When a client misses its
//!   frame deadline, disconnects, or answers garbage, the server marks that
//!   panel [`server::PanelState::Degraded`] and substitutes its own low-res
//!   mirror render of the same cell, so the wall keeps animating (at worse
//!   quality on one panel) instead of freezing. Degraded panels are retried
//!   with capped exponential backoff: the server polls its listener each
//!   frame, re-runs the `Hello → AssignWorkflow → Ready` handshake, replays
//!   the interaction-op log the client missed, and promotes the panel back
//!   to `Live`.
//! * **Reproducible failure.** [`fault::FaultPlan`] injects failures
//!   deterministically (drop at frame N, delayed replies, corrupt bytes,
//!   refused reconnects), so every degradation/recovery path has an exact,
//!   seedable test.
//!
//! Degradation is accounted for in [`cluster::WallRunReport`]:
//! `degraded_frames`, `reconnects` and `deadline_misses` quantify how much
//! of a run the audience saw at mirror quality.

pub mod client;
pub mod cluster;
pub mod fault;
pub mod frame_delta;
pub mod layout;
pub mod protocol;
pub mod server;
pub mod service;
pub mod workflow;

/// Errors raised by hyperwall operations.
///
/// Marked `#[non_exhaustive]`: fault-tolerance work grows this enum (e.g.
/// [`WallError::Timeout`]) without that being a breaking change.
#[derive(Debug)]
#[non_exhaustive]
pub enum WallError {
    Io(std::io::Error),
    Protocol(String),
    Workflow(vistrails::WfError),
    Render(String),
    /// A protocol exchange missed its deadline.
    Timeout(String),
    /// An operation addressed a panel that is currently degraded.
    Degraded { panel: usize, reason: String },
    /// The session service turned the caller away under load; retry after
    /// the indicated backoff.
    Overloaded { retry_after_ms: u64 },
    /// A frame-delta transport message was rejected (corrupt payload,
    /// stale epoch, sequence gap); the inner error says why and is
    /// surfaced through `source()`.
    Delta(frame_delta::DeltaError),
}

impl std::fmt::Display for WallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WallError::Io(e) => write!(f, "io: {e}"),
            WallError::Protocol(m) => write!(f, "protocol: {m}"),
            WallError::Workflow(e) => write!(f, "workflow: {e}"),
            WallError::Render(m) => write!(f, "render: {m}"),
            WallError::Timeout(m) => write!(f, "timeout: {m}"),
            WallError::Degraded { panel, reason } => {
                write!(f, "panel {panel} degraded: {reason}")
            }
            WallError::Overloaded { retry_after_ms } => {
                write!(f, "service overloaded: retry after {retry_after_ms} ms")
            }
            WallError::Delta(e) => write!(f, "frame delta: {e}"),
        }
    }
}

impl std::error::Error for WallError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WallError::Io(e) => Some(e),
            WallError::Workflow(e) => Some(e),
            WallError::Delta(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WallError {
    fn from(e: std::io::Error) -> Self {
        WallError::Io(e)
    }
}

impl From<vistrails::WfError> for WallError {
    fn from(e: vistrails::WfError) -> Self {
        WallError::Workflow(e)
    }
}

impl From<frame_delta::DeltaError> for WallError {
    fn from(e: frame_delta::DeltaError) -> Self {
        WallError::Delta(e)
    }
}

impl From<dv3d::Dv3dError> for WallError {
    fn from(e: dv3d::Dv3dError) -> Self {
        WallError::Render(e.to_string())
    }
}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, WallError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_source_forwards_inner_errors() {
        use std::error::Error;
        let io: WallError =
            std::io::Error::new(std::io::ErrorKind::ConnectionReset, "peer gone").into();
        assert!(io.source().is_some());
        let wf: WallError = vistrails::WfError::NotFound("module".into()).into();
        assert!(wf.source().is_some());
        let proto = WallError::Protocol("bad".into());
        assert!(proto.source().is_none());
        let delta: WallError = frame_delta::DeltaError::NotSynced.into();
        assert!(delta.to_string().contains("frame delta"));
        let chained: WallError =
            frame_delta::DeltaError::Codec(frame_delta::CodecError::ZeroRun { at: 0 }).into();
        assert!(chained.source().and_then(|e| e.source()).is_some());
        let timeout = WallError::Timeout("FrameDone".into());
        assert!(timeout.source().is_none());
    }

    #[test]
    fn error_display_covers_new_variants() {
        let t = WallError::Timeout("read".into());
        assert!(t.to_string().contains("timeout"));
        let d = WallError::Degraded { panel: 4, reason: "disconnect".into() };
        assert!(d.to_string().contains("panel 4"));
    }
}
