//! # hyperwall — distributed visualization framework (§III.H, Fig 5)
//!
//! Reproduces the NCCS hyperwall deployment: a server node holding the full
//! multi-cell workflow, plus one client node per display. "At execution
//! time the server instance sends edited versions of the workflow to each
//! client node for local execution. Each client workflow consists of one of
//! the cell modules (and all its upstream modules) from the server
//! workflow. The server instance executes a reduced resolution instance of
//! the full workflow, whereas each client instance executes a full
//! resolution 1-cell sub-workflow."
//!
//! The cluster nodes are threads connected by real TCP sockets on loopback
//! (the protocol is identical to what separate hosts would speak):
//!
//! * [`protocol`] — length-prefixed JSON messages (workflow assignment,
//!   interaction ops, frame execution, completion reports).
//! * [`workflow`] — builds the 15-cell wall workflow and splits it into
//!   per-client sub-workflows with `Pipeline::upstream_subgraph`.
//! * [`server`] / [`client`] — the two node roles.
//! * [`layout`] — wall geometry (the NCCS wall: 5×3 panels).
//! * [`cluster`] — spawns a full loopback wall and reports timings.

pub mod client;
pub mod cluster;
pub mod layout;
pub mod protocol;
pub mod server;
pub mod workflow;

/// Errors raised by hyperwall operations.
#[derive(Debug)]
pub enum WallError {
    Io(std::io::Error),
    Protocol(String),
    Workflow(vistrails::WfError),
    Render(String),
}

impl std::fmt::Display for WallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WallError::Io(e) => write!(f, "io: {e}"),
            WallError::Protocol(m) => write!(f, "protocol: {m}"),
            WallError::Workflow(e) => write!(f, "workflow: {e}"),
            WallError::Render(m) => write!(f, "render: {m}"),
        }
    }
}

impl std::error::Error for WallError {}

impl From<std::io::Error> for WallError {
    fn from(e: std::io::Error) -> Self {
        WallError::Io(e)
    }
}

impl From<vistrails::WfError> for WallError {
    fn from(e: vistrails::WfError) -> Self {
        WallError::Workflow(e)
    }
}

impl From<dv3d::Dv3dError> for WallError {
    fn from(e: dv3d::Dv3dError) -> Self {
        WallError::Render(e.to_string())
    }
}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, WallError>;
