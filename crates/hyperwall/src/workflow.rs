//! Building the multi-cell wall workflow and splitting it per client.
//!
//! One `cdms.SynthSource` feeds all cells; each cell selects its own
//! variable/level, translates it and plots it — so the per-client
//! upstream subgraph (source + select + translate + plot + cell) is the
//! "edited version of the workflow" the paper's server ships to clients.

use crate::Result;
use vistrails::module::ModuleRegistry;
use vistrails::pipeline::{ModuleId, Pipeline};
use vistrails::value::ParamValue;

/// Configuration of the wall workflow.
#[derive(Debug, Clone)]
pub struct WallWorkflowConfig {
    /// Number of spreadsheet cells (= displays).
    pub n_cells: usize,
    /// Synthetic dataset size `(nt, nlev, nlat, nlon)`.
    pub synth: (i64, i64, i64, i64),
    /// Per-display full resolution.
    pub cell_px: (usize, usize),
}

impl Default for WallWorkflowConfig {
    fn default() -> WallWorkflowConfig {
        WallWorkflowConfig { n_cells: 15, synth: (2, 4, 24, 48), cell_px: (256, 192) }
    }
}

/// The (variable, plot type) pairs the cells cycle through — one variable
/// per display, like the "large numbers of variables contained in a typical
/// climate simulation dataset" the paper shows on the wall. Surface-only
/// fields (`pr`) get slicers; 3D fields also get volumes and isosurfaces.
const WALL_CELLS: [(&str, &str); 5] = [
    ("ta", "dv3d.SlicerPlot"),
    ("zg", "dv3d.VolumePlot"),
    ("hus", "dv3d.IsosurfacePlot"),
    ("ua", "dv3d.VolumePlot"),
    ("pr", "dv3d.SlicerPlot"),
];

/// The module ids of one cell's chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellChain {
    pub select: ModuleId,
    pub translate: ModuleId,
    pub plot: ModuleId,
    pub cell: ModuleId,
}

/// Builds the full wall pipeline. Module 1 is the shared data source;
/// cell `i` uses ids `10i + {10, 11, 12, 13}`.
pub fn build_wall_pipeline(cfg: &WallWorkflowConfig) -> Result<(Pipeline, Vec<CellChain>)> {
    let mut p = Pipeline::new();
    p.add_module(1, "cdms.SynthSource")?;
    p.set_parameter(1, "nt", ParamValue::Int(cfg.synth.0))?;
    p.set_parameter(1, "nlev", ParamValue::Int(cfg.synth.1))?;
    p.set_parameter(1, "nlat", ParamValue::Int(cfg.synth.2))?;
    p.set_parameter(1, "nlon", ParamValue::Int(cfg.synth.3))?;

    let mut chains = Vec::with_capacity(cfg.n_cells);
    for i in 0..cfg.n_cells {
        let base = 10 * (i as ModuleId + 1);
        let chain = CellChain {
            select: base,
            translate: base + 1,
            plot: base + 2,
            cell: base + 3,
        };
        let (variable, plot_type) = WALL_CELLS[i % WALL_CELLS.len()];

        p.add_module(chain.select, "cdms.SelectVariable")?;
        p.set_parameter(chain.select, "name", ParamValue::Str(variable.into()))?;
        p.set_parameter(chain.select, "time_index", ParamValue::Int(0))?;
        p.connect((1, "dataset"), (chain.select, "dataset"))?;

        p.add_module(chain.translate, "dv3d.TranslateScalar")?;
        p.connect((chain.select, "variable"), (chain.translate, "variable"))?;

        p.add_module(chain.plot, plot_type)?;
        p.connect((chain.translate, "image"), (chain.plot, "image"))?;

        p.add_module(chain.cell, "dv3d.Cell")?;
        p.connect((chain.plot, "plot"), (chain.cell, "plot"))?;
        p.set_parameter(chain.cell, "name", ParamValue::Str(format!("{variable} #{i}")))?;
        p.set_parameter(chain.cell, "width", ParamValue::Int(cfg.cell_px.0 as i64))?;
        p.set_parameter(chain.cell, "height", ParamValue::Int(cfg.cell_px.1 as i64))?;
        chains.push(chain);
    }
    Ok((p, chains))
}

/// The registry a wall node (server or client) uses.
pub fn wall_registry() -> ModuleRegistry {
    let mut reg = ModuleRegistry::new();
    dv3d::modules::register_all(&mut reg);
    reg
}

/// Splits the wall pipeline into one sub-pipeline per cell — the per-client
/// workflow edit of §III.H.
pub fn split_per_client(
    pipeline: &Pipeline,
    chains: &[CellChain],
) -> Result<Vec<Pipeline>> {
    chains
        .iter()
        .map(|c| pipeline.upstream_subgraph(c.cell).map_err(Into::into))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_pipeline_builds_and_validates() {
        let cfg = WallWorkflowConfig { n_cells: 15, ..Default::default() };
        let (p, chains) = build_wall_pipeline(&cfg).unwrap();
        assert_eq!(chains.len(), 15);
        assert_eq!(p.modules.len(), 1 + 15 * 4);
        p.validate(&wall_registry()).unwrap();
        // every cell is a sink
        let sinks = p.sinks();
        for c in &chains {
            assert!(sinks.contains(&c.cell));
        }
    }

    #[test]
    fn chain_ids_exist_in_pipeline() {
        let cfg = WallWorkflowConfig { n_cells: 4, ..Default::default() };
        let (p, chains) = build_wall_pipeline(&cfg).unwrap();
        for c in &chains {
            for id in [c.select, c.translate, c.plot, c.cell] {
                assert!(p.modules.contains_key(&id), "missing module {id}");
            }
        }
    }

    #[test]
    fn split_extracts_single_cell_workflows() {
        let cfg = WallWorkflowConfig { n_cells: 6, ..Default::default() };
        let (p, chains) = build_wall_pipeline(&cfg).unwrap();
        let subs = split_per_client(&p, &chains).unwrap();
        assert_eq!(subs.len(), 6);
        for (i, sub) in subs.iter().enumerate() {
            // source + one chain of 4
            assert_eq!(sub.modules.len(), 5, "client {i}");
            assert!(sub.modules.contains_key(&1));
            assert!(sub.modules.contains_key(&chains[i].cell));
            sub.validate(&wall_registry()).unwrap();
            // other cells' modules are absent
            for (j, other) in chains.iter().enumerate() {
                if j != i {
                    assert!(!sub.modules.contains_key(&other.cell));
                }
            }
        }
    }

    #[test]
    fn sub_workflow_executes_standalone() {
        let cfg = WallWorkflowConfig {
            n_cells: 3,
            synth: (1, 2, 10, 20),
            cell_px: (64, 48),
        };
        let (p, chains) = build_wall_pipeline(&cfg).unwrap();
        let subs = split_per_client(&p, &chains).unwrap();
        let mut exec = vistrails::executor::Executor::new(wall_registry());
        let results = exec.execute(&subs[1]).unwrap();
        let coverage = results
            .output(chains[1].cell, "coverage")
            .and_then(vistrails::value::WfData::as_float)
            .unwrap();
        assert!(coverage > 0.0);
    }

    #[test]
    fn variables_and_plots_cycle() {
        let cfg = WallWorkflowConfig { n_cells: 7, ..Default::default() };
        let (p, chains) = build_wall_pipeline(&cfg).unwrap();
        // cell 5 wraps back to variable 0
        let v0: String = p.modules[&chains[0].select].params["name"]
            .as_str()
            .unwrap()
            .into();
        let v5: String = p.modules[&chains[5].select].params["name"]
            .as_str()
            .unwrap()
            .into();
        assert_eq!(v0, v5);
        // plot types cycle with the variable pairing (period 5)
        assert_eq!(
            p.modules[&chains[0].plot].type_name,
            p.modules[&chains[5].plot].type_name
        );
        assert_ne!(
            p.modules[&chains[0].plot].type_name,
            p.modules[&chains[1].plot].type_name
        );
    }
}
