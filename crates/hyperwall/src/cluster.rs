//! Spawning a full loopback wall: server + N client threads, one scenario.
//!
//! [`run_wall`] runs a healthy wall; [`run_wall_with_faults`] runs the same
//! scenario under a [`FaultPlan`], exercising the degradation path: panels
//! whose client crashes are served from the server mirror, and the
//! [`WallRunReport`] counts how many panel-frames the audience saw at
//! mirror quality.

use crate::client::ClientNode;
use crate::fault::FaultPlan;
use crate::server::{FrameReport, HyperwallServer, PanelState, WallTuning};
use crate::workflow::WallWorkflowConfig;
use crate::Result;
use dv3d::interaction::ConfigOp;
use std::time::Instant;

/// Summary of one wall run.
#[derive(Debug, Clone)]
pub struct WallRunReport {
    /// Clients that participated.
    pub n_clients: usize,
    /// Time to assign all sub-workflows and get Ready, ms.
    pub assign_ms: f64,
    /// Per-frame reports.
    pub frames: Vec<FrameReport>,
    /// Broadcast latencies of the interaction ops, ms.
    pub op_broadcast_ms: Vec<f64>,
    /// Total frames rendered across all clients.
    pub client_frames: u64,
    /// Panel-frames served from the server mirror instead of a live client.
    pub degraded_frames: u64,
    /// Successful panel recoveries (Degraded → Live).
    pub reconnects: u64,
    /// FrameDone waits that expired at the server's deadline.
    pub deadline_misses: u64,
    /// Health of each panel when the run ended.
    pub final_states: Vec<PanelState>,
    /// Human-readable fault timeline from the server.
    pub incidents: Vec<String>,
    /// Wire bytes of dirty-tile `FrameDelta` messages received.
    pub delta_bytes: u64,
    /// Wire bytes of `FrameKey` full-frame messages received.
    pub key_bytes: u64,
    /// Low-res motion previews received.
    pub preview_frames: u64,
    /// Keyframe resyncs the server requested (dropped / rejected deltas).
    pub resync_requests: u64,
    /// Transport messages an assembler rejected (corrupt, stale, gapped).
    pub delta_rejects: u64,
    /// Per panel: did the run end with a hash-verified assembled frame?
    pub synced_final: Vec<bool>,
}

impl WallRunReport {
    /// Mean client render time across all frames, ms.
    pub fn mean_client_render_ms(&self) -> f64 {
        let all: Vec<f64> = self
            .frames
            .iter()
            .flat_map(|f| f.client_render_ms.iter().copied())
            .collect();
        if all.is_empty() {
            0.0
        } else {
            all.iter().sum::<f64>() / all.len() as f64
        }
    }

    /// Mean server mirror time per frame, ms.
    pub fn mean_mirror_ms(&self) -> f64 {
        if self.frames.is_empty() {
            0.0
        } else {
            self.frames.iter().map(|f| f.mirror_ms).sum::<f64>() / self.frames.len() as f64
        }
    }

    /// Fraction of panel-frames served degraded, in `[0, 1]`.
    pub fn degraded_fraction(&self) -> f64 {
        let total = (self.n_clients as u64) * (self.frames.len() as u64);
        if total == 0 {
            0.0
        } else {
            self.degraded_frames as f64 / total as f64
        }
    }
}

/// Runs a complete wall scenario on loopback: `n_frames` distributed
/// frames, with `ops` broadcast between frame 0 and frame 1 (mirroring a
/// user interacting once at the touchscreen).
pub fn run_wall(
    cfg: &WallWorkflowConfig,
    mirror_downsample: usize,
    n_frames: u64,
    ops: &[ConfigOp],
) -> Result<WallRunReport> {
    run_wall_with_faults(
        cfg,
        mirror_downsample,
        n_frames,
        ops,
        &FaultPlan::none(),
        WallTuning::default(),
    )
}

/// Runs a wall scenario under a fault plan. Every client runs
/// [`ClientNode::run_with_faults`] with its slice of the plan (clients the
/// plan does not mention behave normally), and the server runs with the
/// given [`WallTuning`] deadlines / retry policy.
///
/// The run completes — all `n_frames` frames are served — regardless of
/// which clients the plan kills; failed panels are mirror-substituted and
/// their recovery is attempted with capped exponential backoff.
pub fn run_wall_with_faults(
    cfg: &WallWorkflowConfig,
    mirror_downsample: usize,
    n_frames: u64,
    ops: &[ConfigOp],
    plan: &FaultPlan,
    tuning: WallTuning,
) -> Result<WallRunReport> {
    let heartbeat_every = tuning.heartbeat_every_frames;
    let mut server = HyperwallServer::bind_tuned(cfg, mirror_downsample, tuning)?;
    let addr = server.addr()?;
    let n = cfg.n_cells;

    let client_threads: Vec<_> = (0..n)
        .map(|id| {
            let faults = plan.client(id);
            std::thread::spawn(move || -> Result<u64> {
                let client = ClientNode::connect_v2(addr, id)?;
                client.run_with_faults(faults)
            })
        })
        .collect();

    server.accept_clients(n)?;
    let assign_start = Instant::now();
    server.assign_workflows(cfg)?;
    let assign_ms = assign_start.elapsed().as_secs_f64() * 1000.0;

    let mut frames = Vec::new();
    let mut op_broadcast_ms = Vec::new();
    for frame in 0..n_frames {
        if frame == 1 {
            for op in ops {
                op_broadcast_ms.push(server.broadcast_op(op)?);
            }
        }
        if heartbeat_every > 0 && frame > 0 && frame % heartbeat_every == 0 {
            server.heartbeat()?;
        }
        frames.push(server.execute_frame(frame)?);
    }
    server.shutdown()?;

    let mut client_frames = 0;
    for t in client_threads {
        client_frames += t.join().map_err(|_| {
            crate::WallError::Protocol("client thread panicked".into())
        })??;
    }
    Ok(WallRunReport {
        n_clients: n,
        assign_ms,
        frames,
        op_broadcast_ms,
        client_frames,
        degraded_frames: server.degraded_frames_total(),
        reconnects: server.reconnects_total(),
        deadline_misses: server.deadline_misses_total(),
        final_states: server.panel_states(),
        incidents: server.incidents.clone(),
        delta_bytes: server.delta_bytes_total(),
        key_bytes: server.key_bytes_total(),
        preview_frames: server.preview_frames_total(),
        resync_requests: server.resync_requests_total(),
        delta_rejects: server.delta_rejects_total(),
        synced_final: server.panels_synced(),
    })
}

/// Renders the same wall workload entirely on one node at full resolution
/// (the no-hyperwall baseline): returns total wall time in ms.
pub fn run_single_node_baseline(cfg: &WallWorkflowConfig, n_frames: u64) -> Result<f64> {
    let (pipeline, chains) = crate::workflow::build_wall_pipeline(cfg)?;
    let mut exec = vistrails::executor::Executor::new(crate::workflow::wall_registry());
    // build all cells once (like clients do)
    let mut cells = Vec::new();
    for chain in &chains {
        let results = exec.execute_subset(&pipeline, Some(chain.plot))?;
        let spec = results
            .output(chain.plot, "plot")
            .and_then(|d| d.as_opaque::<dv3d::plots::PlotSpec>())
            .ok_or_else(|| crate::WallError::Protocol("no PlotSpec".into()))?;
        cells.push(dv3d::cell::Dv3dCell::try_new("baseline", (*spec).clone())?);
    }
    let start = Instant::now();
    for _ in 0..n_frames {
        for cell in &mut cells {
            cell.render(cfg.cell_px.0, cfg.cell_px.1)?;
        }
    }
    Ok(start.elapsed().as_secs_f64() * 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Fault;
    use dv3d::interaction::{Axis3, CameraOp};
    use std::time::Duration;

    fn small_cfg(n_cells: usize) -> WallWorkflowConfig {
        WallWorkflowConfig { n_cells, synth: (1, 2, 10, 20), cell_px: (64, 48) }
    }

    fn fast_tuning() -> WallTuning {
        WallTuning {
            io_deadline: Duration::from_secs(1),
            frame_deadline: Duration::from_secs(1),
            backoff_base_frames: 1,
            max_reconnect_attempts: 4,
            reconnect_poll: Duration::from_millis(400),
            heartbeat_every_frames: 0,
        }
    }

    #[test]
    fn three_cell_wall_end_to_end() {
        let cfg = small_cfg(3);
        let ops = vec![
            ConfigOp::Camera(CameraOp::Azimuth(20.0)),
            ConfigOp::MoveSlice { axis: Axis3::Z, delta: 1 },
        ];
        let report = run_wall(&cfg, 4, 2, &ops).unwrap();
        assert_eq!(report.n_clients, 3);
        assert_eq!(report.frames.len(), 2);
        assert_eq!(report.client_frames, 6);
        assert_eq!(report.op_broadcast_ms.len(), 2);
        // every client rendered something on every frame
        for f in &report.frames {
            assert!(f.coverage.iter().all(|&c| c > 0.0), "{f:?}");
            assert!(f.round_trip_ms > 0.0);
            assert!(f.mirror_ms > 0.0);
            assert!(f.degraded.iter().all(|&d| !d), "{f:?}");
        }
        assert!(report.assign_ms > 0.0);
        assert!(report.mean_client_render_ms() > 0.0);
        // a healthy wall has a clean fault ledger
        assert_eq!(report.degraded_frames, 0);
        assert_eq!(report.reconnects, 0);
        assert_eq!(report.deadline_misses, 0);
        assert_eq!(report.degraded_fraction(), 0.0);
        assert_eq!(report.final_states, vec![PanelState::Live; 3]);
        assert!(report.incidents.is_empty(), "{:?}", report.incidents);
        // delta transport: frame 0 opened with keyframes, frame 1 shipped
        // dirty-tile deltas, and the camera op triggered motion previews
        assert!(report.key_bytes > 0, "{report:?}");
        assert!(report.delta_bytes > 0, "{report:?}");
        assert!(report.preview_frames >= 3, "{report:?}");
        assert_eq!(report.resync_requests, 0);
        assert_eq!(report.delta_rejects, 0);
        assert_eq!(report.synced_final, vec![true; 3]);
        for f in &report.frames {
            assert!(f.transport_bytes.iter().all(|&b| b > 0), "{f:?}");
            assert!(f.first_content_ms.iter().all(|&ms| ms > 0.0), "{f:?}");
        }
    }

    #[test]
    fn fifteen_cell_wall_smoke() {
        // the paper's full 15-cell scenario, tiny sizes
        let cfg = WallWorkflowConfig { n_cells: 15, synth: (1, 2, 8, 16), cell_px: (32, 24) };
        let report = run_wall(&cfg, 2, 1, &[]).unwrap();
        assert_eq!(report.n_clients, 15);
        assert_eq!(report.client_frames, 15);
        assert_eq!(report.degraded_frames, 0);
    }

    #[test]
    fn server_mirror_mosaic_covers_all_panels() {
        use crate::layout::WallLayout;
        use crate::server::HyperwallServer;
        let cfg = WallWorkflowConfig { n_cells: 6, synth: (1, 2, 8, 16), cell_px: (64, 48) };
        let layout = WallLayout::small(2, 3, (64, 48));
        let mut server = HyperwallServer::bind(&cfg, 2).unwrap();
        let addr = server.addr().unwrap();
        let clients: Vec<_> = (0..6)
            .map(|id| {
                std::thread::spawn(move || {
                    crate::client::ClientNode::connect(addr, id).unwrap().run()
                })
            })
            .collect();
        server.accept_clients(6).unwrap();
        server.assign_workflows(&cfg).unwrap();
        let mosaic = server.mirror_mosaic(&layout).unwrap();
        assert_eq!(mosaic.width(), 3 * 32);
        assert_eq!(mosaic.height(), 2 * 24);
        // every panel region has some non-background pixels
        for row in 0..2 {
            for col in 0..3 {
                let mut lit = 0;
                for y in 0..24 {
                    for x in 0..32 {
                        if mosaic.pixel(col * 32 + x, row * 24 + y).luminance() > 0.02 {
                            lit += 1;
                        }
                    }
                }
                assert!(lit > 10, "panel ({row},{col}) dark: {lit}");
            }
        }
        server.shutdown().unwrap();
        for c in clients {
            c.join().unwrap().unwrap();
        }
    }

    #[test]
    fn baseline_runs() {
        let cfg = small_cfg(2);
        let ms = run_single_node_baseline(&cfg, 1).unwrap();
        assert!(ms > 0.0);
    }

    #[test]
    fn mirror_is_cheaper_than_full_res() {
        // the design rationale: the server's reduced-resolution mirror costs
        // far less than the full-resolution work the clients do
        let cfg = WallWorkflowConfig { n_cells: 2, synth: (1, 2, 10, 20), cell_px: (160, 120) };
        let report = run_wall(&cfg, 4, 2, &[]).unwrap();
        let mirror = report.mean_mirror_ms() / cfg.n_cells as f64; // per cell
        let client = report.mean_client_render_ms();
        assert!(
            mirror < client,
            "mirror {mirror:.2}ms/cell should be cheaper than full-res {client:.2}ms"
        );
    }

    /// The issue's acceptance scenario: one client crashes at frame 2 of 8
    /// (its first reconnect attempt is refused by the fault plan), yet the
    /// wall completes every frame — the dead panel is mirror-substituted
    /// while degraded and restored to Live once the client comes back.
    #[test]
    fn client_crash_mid_run_degrades_then_recovers() {
        let cfg = small_cfg(3);
        let plan = FaultPlan::none()
            .inject(1, Fault::DropAtFrame(2))
            .inject(1, Fault::RefuseReconnect(1));
        // one op broadcast before the crash, so recovery also exercises the
        // op-replay path (the reconnecting client must catch up)
        let ops = vec![ConfigOp::Camera(CameraOp::Azimuth(10.0))];
        let report =
            run_wall_with_faults(&cfg, 4, 8, &ops, &plan, fast_tuning()).unwrap();
        // the wall never stopped: all 8 frames served, with coverage
        assert_eq!(report.frames.len(), 8);
        for f in &report.frames {
            assert!(f.coverage.iter().all(|&c| c > 0.0), "{f:?}");
        }
        // the crash frame was served from the mirror for the dead panel
        assert!(report.degraded_frames > 0, "{report:?}");
        assert!(report.frames[2].degraded[1], "{:?}", report.frames[2]);
        // healthy panels never degraded
        assert!(report.frames.iter().all(|f| !f.degraded[0] && !f.degraded[2]));
        // the victim recovered: exactly one reconnect, and the wall ended
        // with every panel live again
        assert_eq!(report.reconnects, 1, "{:?}", report.incidents);
        assert_eq!(report.final_states, vec![PanelState::Live; 3]);
        // the last frame was served fully live
        assert!(report.frames[7].degraded.iter().all(|&d| !d), "{:?}", report.incidents);
        // the two healthy clients rendered all 8 frames; the victim missed
        // at least the crash frame
        assert!(report.client_frames >= 16, "{report:?}");
        assert!(report.client_frames < 24, "{report:?}");
        assert!(report.degraded_fraction() > 0.0 && report.degraded_fraction() < 0.5);
        assert!(!report.incidents.is_empty());
        // the reconnected client's fresh streamer re-keyed its fresh
        // assembler: the run ends with every panel hash-verified
        assert_eq!(report.synced_final, vec![true; 3], "{:?}", report.incidents);
    }

    /// A panel whose client never comes back stays degraded for the rest of
    /// the run and the wall still completes (mirror keeps covering it).
    #[test]
    fn permanently_dead_panel_stays_degraded() {
        let cfg = small_cfg(2);
        let plan = FaultPlan::none()
            .inject(0, Fault::DropAtFrame(1))
            .inject(0, Fault::RefuseReconnect(u32::MAX));
        let mut tuning = fast_tuning();
        tuning.max_reconnect_attempts = 2;
        tuning.reconnect_poll = Duration::from_millis(30);
        let report = run_wall_with_faults(&cfg, 4, 5, &[], &plan, tuning).unwrap();
        assert_eq!(report.frames.len(), 5);
        assert_eq!(report.reconnects, 0);
        // frames 1..4 degraded for panel 0 → 4 mirror-served panel-frames
        assert_eq!(report.degraded_frames, 4, "{:?}", report.incidents);
        assert_eq!(report.final_states[0], PanelState::Degraded);
        assert_eq!(report.final_states[1], PanelState::Live);
        // the mirror kept the dead panel lit
        for f in &report.frames[1..] {
            assert!(f.degraded[0]);
            assert!(f.coverage[0] > 0.0);
        }
        // a dead panel's assembler is dropped with its connection
        assert_eq!(report.synced_final, vec![false, true]);
    }

    /// A slow-loris client dribbles its `FrameDone` one byte at a time: the
    /// frame deadline trips even though the socket stays alive, the panel
    /// degrades, and the rest of the wall keeps animating.
    #[test]
    fn slow_loris_client_trips_deadline_and_degrades() {
        let cfg = small_cfg(2);
        let plan = FaultPlan::none().inject(1, Fault::SlowLoris(10));
        let mut tuning = fast_tuning();
        tuning.frame_deadline = Duration::from_millis(100);
        tuning.max_reconnect_attempts = 1;
        tuning.reconnect_poll = Duration::from_millis(10);
        let report = run_wall_with_faults(&cfg, 4, 3, &[], &plan, tuning).unwrap();
        assert!(report.deadline_misses >= 1, "{:?}", report.incidents);
        assert_eq!(report.final_states[1], PanelState::Degraded);
        // the healthy panel and the mirror kept every frame covered
        for f in &report.frames {
            assert!(!f.degraded[0]);
            assert!(f.coverage.iter().all(|&c| c > 0.0), "{f:?}");
        }
    }

    /// A client that cuts the connection halfway through a `FrameDone`
    /// leaves a torn frame on the wire; the server degrades the panel, the
    /// client redials, and the panel is restored to live.
    #[test]
    fn mid_request_disconnect_degrades_then_recovers() {
        let cfg = small_cfg(2);
        let plan = FaultPlan::none().inject(0, Fault::MidRequestDisconnect(1));
        let report = run_wall_with_faults(&cfg, 4, 6, &[], &plan, fast_tuning()).unwrap();
        assert_eq!(report.frames.len(), 6);
        assert!(report.frames[1].degraded[0], "{:?}", report.incidents);
        assert!(report.degraded_frames >= 1);
        // the victim came back and the run ended fully live
        assert_eq!(report.reconnects, 1, "{:?}", report.incidents);
        assert_eq!(report.final_states, vec![PanelState::Live; 2]);
        for f in &report.frames {
            assert!(f.coverage.iter().all(|&c| c > 0.0), "{f:?}");
        }
    }

    /// The issue's delta-transport acceptance scenario: a seeded storm of
    /// transport faults (corrupt payload, dropped delta, delayed delta)
    /// hits the wall mid-run. Corrupt deltas are rejected atomically (never
    /// partially applied), drops are detected at end of frame, and every
    /// affected panel converges back to a hash-verified frame via keyframe
    /// resync — with zero panel degradations, because transport faults are
    /// repaired below the liveness layer.
    #[test]
    fn seeded_delta_fault_storm_ends_with_every_panel_converged() {
        let cfg = small_cfg(3);
        let plan = crate::fault::FaultPlan::seeded_delta_storm(0xD1CE, 3, 10, 2);
        let report = run_wall_with_faults(&cfg, 4, 10, &[], &plan, fast_tuning()).unwrap();
        assert_eq!(report.frames.len(), 10);
        assert_eq!(report.client_frames, 30);
        // the storm was real: the server had to request keyframe resyncs
        // for both the corrupt and the dropped delta...
        assert!(report.resync_requests >= 2, "{report:?}");
        // ...and the corrupt one was rejected whole, not applied torn
        assert!(report.delta_rejects >= 1, "{report:?}");
        // transport faults never degraded a panel: the wall stayed live
        assert_eq!(report.degraded_frames, 0, "{:?}", report.incidents);
        assert_eq!(report.final_states, vec![PanelState::Live; 3]);
        // and every panel's assembled frame re-verified at the end
        assert_eq!(report.synced_final, vec![true; 3], "{:?}", report.incidents);
    }

    /// Version gating: a v1 (metadata-only) client and a v2 (delta
    /// transport) client share one wall. The v1 panel works exactly as
    /// before — no pixel transport, no resync traffic — while the v2 panel
    /// streams hash-verified frames.
    #[test]
    fn v1_and_v2_clients_share_a_wall() {
        let cfg = small_cfg(2);
        let mut server = HyperwallServer::bind_tuned(&cfg, 4, fast_tuning()).unwrap();
        let addr = server.addr().unwrap();
        let t0 = std::thread::spawn(move || ClientNode::connect(addr, 0).unwrap().run());
        let t1 =
            std::thread::spawn(move || ClientNode::connect_v2(addr, 1).unwrap().run());
        server.accept_clients(2).unwrap();
        server.assign_workflows(&cfg).unwrap();
        for frame in 0..3 {
            let report = server.execute_frame(frame).unwrap();
            assert_eq!(report.degraded, vec![false, false], "{:?}", server.incidents);
            // the v1 panel ships no pixels; the v2 panel does every frame
            assert_eq!(report.transport_bytes[0], 0);
            assert!(report.transport_bytes[1] > 0, "{report:?}");
            assert_eq!(report.first_content_ms[0], 0.0);
            assert!(report.first_content_ms[1] > 0.0, "{report:?}");
        }
        assert_eq!(server.panels_synced(), vec![false, true]);
        assert!(server.panel_frame_verified(1));
        assert!(!server.panel_frame_verified(0));
        let assembled = server.panel_frame(1).unwrap();
        assert_eq!(assembled.len(), cfg.cell_px.0 * cfg.cell_px.1 * 4);
        assert!(assembled.iter().any(|&b| b != 0));
        assert_eq!(server.resync_requests_total(), 0);
        assert_eq!(server.delta_rejects_total(), 0);
        server.shutdown().unwrap();
        t0.join().unwrap().unwrap();
        t1.join().unwrap().unwrap();
    }

    /// A client that replies too slowly trips the frame deadline and is
    /// degraded (the miss is counted separately from disconnects).
    #[test]
    fn delayed_client_trips_frame_deadline() {
        let cfg = small_cfg(2);
        // client 1 replies ~300ms late to everything; with a 100ms frame
        // deadline the server degrades it on the first frame
        let plan = FaultPlan::none().inject(1, Fault::DelayReplies(300));
        let mut tuning = fast_tuning();
        tuning.frame_deadline = Duration::from_millis(100);
        tuning.max_reconnect_attempts = 1;
        tuning.reconnect_poll = Duration::from_millis(10);
        let report = run_wall_with_faults(&cfg, 4, 3, &[], &plan, tuning).unwrap();
        assert!(report.deadline_misses >= 1, "{:?}", report.incidents);
        assert!(report.degraded_frames >= 1);
        assert_eq!(report.final_states[1], PanelState::Degraded);
        // frame 0 for client 0 was honest and live
        assert!(!report.frames[0].degraded[0]);
    }
}
