//! Spawning a full loopback wall: server + N client threads, one scenario.

use crate::client::ClientNode;
use crate::server::{FrameReport, HyperwallServer};
use crate::workflow::WallWorkflowConfig;
use crate::Result;
use dv3d::interaction::ConfigOp;
use std::time::Instant;

/// Summary of one wall run.
#[derive(Debug, Clone)]
pub struct WallRunReport {
    /// Clients that participated.
    pub n_clients: usize,
    /// Time to assign all sub-workflows and get Ready, ms.
    pub assign_ms: f64,
    /// Per-frame reports.
    pub frames: Vec<FrameReport>,
    /// Broadcast latencies of the interaction ops, ms.
    pub op_broadcast_ms: Vec<f64>,
    /// Total frames rendered across all clients.
    pub client_frames: u64,
}

impl WallRunReport {
    /// Mean client render time across all frames, ms.
    pub fn mean_client_render_ms(&self) -> f64 {
        let all: Vec<f64> = self
            .frames
            .iter()
            .flat_map(|f| f.client_render_ms.iter().copied())
            .collect();
        if all.is_empty() {
            0.0
        } else {
            all.iter().sum::<f64>() / all.len() as f64
        }
    }

    /// Mean server mirror time per frame, ms.
    pub fn mean_mirror_ms(&self) -> f64 {
        if self.frames.is_empty() {
            0.0
        } else {
            self.frames.iter().map(|f| f.mirror_ms).sum::<f64>() / self.frames.len() as f64
        }
    }
}

/// Runs a complete wall scenario on loopback: `n_frames` distributed
/// frames, with `ops` broadcast between frame 0 and frame 1 (mirroring a
/// user interacting once at the touchscreen).
pub fn run_wall(
    cfg: &WallWorkflowConfig,
    mirror_downsample: usize,
    n_frames: u64,
    ops: &[ConfigOp],
) -> Result<WallRunReport> {
    let mut server = HyperwallServer::bind(cfg, mirror_downsample)?;
    let addr = server.addr()?;
    let n = cfg.n_cells;

    let client_threads: Vec<_> = (0..n)
        .map(|id| {
            std::thread::spawn(move || -> Result<u64> {
                let client = ClientNode::connect(addr, id)?;
                client.run()
            })
        })
        .collect();

    server.accept_clients(n)?;
    let assign_start = Instant::now();
    server.assign_workflows(cfg)?;
    let assign_ms = assign_start.elapsed().as_secs_f64() * 1000.0;

    let mut frames = Vec::new();
    let mut op_broadcast_ms = Vec::new();
    for frame in 0..n_frames {
        if frame == 1 {
            for op in ops {
                op_broadcast_ms.push(server.broadcast_op(op)?);
            }
        }
        frames.push(server.execute_frame(frame)?);
    }
    server.shutdown()?;

    let mut client_frames = 0;
    for t in client_threads {
        client_frames += t.join().map_err(|_| {
            crate::WallError::Protocol("client thread panicked".into())
        })??;
    }
    Ok(WallRunReport { n_clients: n, assign_ms, frames, op_broadcast_ms, client_frames })
}

/// Renders the same wall workload entirely on one node at full resolution
/// (the no-hyperwall baseline): returns total wall time in ms.
pub fn run_single_node_baseline(cfg: &WallWorkflowConfig, n_frames: u64) -> Result<f64> {
    let (pipeline, chains) = crate::workflow::build_wall_pipeline(cfg)?;
    let mut exec = vistrails::executor::Executor::new(crate::workflow::wall_registry());
    // build all cells once (like clients do)
    let mut cells = Vec::new();
    for chain in &chains {
        let results = exec.execute_subset(&pipeline, Some(chain.plot))?;
        let spec = results
            .output(chain.plot, "plot")
            .and_then(|d| d.as_opaque::<dv3d::plots::PlotSpec>())
            .ok_or_else(|| crate::WallError::Protocol("no PlotSpec".into()))?;
        cells.push(dv3d::cell::Dv3dCell::try_new("baseline", (*spec).clone())?);
    }
    let start = Instant::now();
    for _ in 0..n_frames {
        for cell in &mut cells {
            cell.render(cfg.cell_px.0, cfg.cell_px.1)?;
        }
    }
    Ok(start.elapsed().as_secs_f64() * 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv3d::interaction::{Axis3, CameraOp};

    fn small_cfg(n_cells: usize) -> WallWorkflowConfig {
        WallWorkflowConfig { n_cells, synth: (1, 2, 10, 20), cell_px: (64, 48) }
    }

    #[test]
    fn three_cell_wall_end_to_end() {
        let cfg = small_cfg(3);
        let ops = vec![
            ConfigOp::Camera(CameraOp::Azimuth(20.0)),
            ConfigOp::MoveSlice { axis: Axis3::Z, delta: 1 },
        ];
        let report = run_wall(&cfg, 4, 2, &ops).unwrap();
        assert_eq!(report.n_clients, 3);
        assert_eq!(report.frames.len(), 2);
        assert_eq!(report.client_frames, 6);
        assert_eq!(report.op_broadcast_ms.len(), 2);
        // every client rendered something on every frame
        for f in &report.frames {
            assert!(f.coverage.iter().all(|&c| c > 0.0), "{f:?}");
            assert!(f.round_trip_ms > 0.0);
            assert!(f.mirror_ms > 0.0);
        }
        assert!(report.assign_ms > 0.0);
        assert!(report.mean_client_render_ms() > 0.0);
    }

    #[test]
    fn fifteen_cell_wall_smoke() {
        // the paper's full 15-cell scenario, tiny sizes
        let cfg = WallWorkflowConfig { n_cells: 15, synth: (1, 2, 8, 16), cell_px: (32, 24) };
        let report = run_wall(&cfg, 2, 1, &[]).unwrap();
        assert_eq!(report.n_clients, 15);
        assert_eq!(report.client_frames, 15);
    }

    #[test]
    fn server_mirror_mosaic_covers_all_panels() {
        use crate::layout::WallLayout;
        use crate::server::HyperwallServer;
        let cfg = WallWorkflowConfig { n_cells: 6, synth: (1, 2, 8, 16), cell_px: (64, 48) };
        let layout = WallLayout::small(2, 3, (64, 48));
        let mut server = HyperwallServer::bind(&cfg, 2).unwrap();
        let addr = server.addr().unwrap();
        let clients: Vec<_> = (0..6)
            .map(|id| {
                std::thread::spawn(move || {
                    crate::client::ClientNode::connect(addr, id).unwrap().run()
                })
            })
            .collect();
        server.accept_clients(6).unwrap();
        server.assign_workflows(&cfg).unwrap();
        let mosaic = server.mirror_mosaic(&layout).unwrap();
        assert_eq!(mosaic.width(), 3 * 32);
        assert_eq!(mosaic.height(), 2 * 24);
        // every panel region has some non-background pixels
        for row in 0..2 {
            for col in 0..3 {
                let mut lit = 0;
                for y in 0..24 {
                    for x in 0..32 {
                        if mosaic.pixel(col * 32 + x, row * 24 + y).luminance() > 0.02 {
                            lit += 1;
                        }
                    }
                }
                assert!(lit > 10, "panel ({row},{col}) dark: {lit}");
            }
        }
        server.shutdown().unwrap();
        for c in clients {
            c.join().unwrap().unwrap();
        }
    }

    #[test]
    fn baseline_runs() {
        let cfg = small_cfg(2);
        let ms = run_single_node_baseline(&cfg, 1).unwrap();
        assert!(ms > 0.0);
    }

    #[test]
    fn mirror_is_cheaper_than_full_res() {
        // the design rationale: the server's reduced-resolution mirror costs
        // far less than the full-resolution work the clients do
        let cfg = WallWorkflowConfig { n_cells: 2, synth: (1, 2, 10, 20), cell_px: (160, 120) };
        let report = run_wall(&cfg, 4, 2, &[]).unwrap();
        let mirror = report.mean_mirror_ms() / cfg.n_cells as f64; // per cell
        let client = report.mean_client_render_ms();
        assert!(
            mirror < client,
            "mirror {mirror:.2}ms/cell should be cheaper than full-res {client:.2}ms"
        );
    }
}
