//! Deterministic fault injection for wall resilience testing.
//!
//! A [`FaultPlan`] scripts exactly what goes wrong, where, and when: client
//! code consults its [`ClientFaults`] at each protocol step and misbehaves
//! on cue. Because the plan is plain data (and the seeded constructor is a
//! pure function of its seed), every failure scenario is reproducible —
//! the degradation/recovery tests in [`crate::cluster`] are ordinary
//! deterministic unit tests, not flaky chaos runs.

use std::collections::BTreeMap;

/// One scripted misbehaviour of a display client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Drop the TCP connection upon receiving `Execute { frame }` —
    /// simulates a client crash mid-animation.
    DropAtFrame(u64),
    /// Sleep this many milliseconds before every reply — simulates a
    /// saturated node; large values trip the server's frame deadline.
    DelayReplies(u64),
    /// Answer `Execute { frame }` with garbage bytes instead of a valid
    /// `FrameDone` — simulates wire corruption / a buggy client build.
    CorruptAtFrame(u64),
    /// Pretend the first K reconnect attempts fail (flaky network between
    /// the crash and the recovery).
    RefuseReconnect(u32),
    /// Dribble every outbound message one byte at a time with this delay
    /// (milliseconds per byte) — the classic slow-loris: the connection is
    /// alive but a frame never completes within any reasonable deadline.
    SlowLoris(u64),
    /// Cut the connection halfway through sending message (wall: frame,
    /// service: request) N — the peer sees a truncated frame, not a clean
    /// close.
    MidRequestDisconnect(u64),
    /// After losing the connection, redial this many times in a tight loop
    /// (a thundering-herd reconnect storm hammering the accept path).
    ReconnectStorm(u32),
    /// Fire this many requests back-to-back, ignoring every `Busy` /
    /// `RetryAfter` the service answers — a quota-exhaustion storm
    /// (service-level; the wall protocol has no client-initiated requests).
    QuotaStorm(u32),
    /// Flip payload bytes inside the `FrameKey` / `FrameDelta` for this
    /// frame before sending — the message still parses, but its content
    /// hashes no longer match; the server must reject it atomically and
    /// request a keyframe resync (never display a torn tile).
    CorruptDeltaAt(u64),
    /// Encode this frame's transport message, then discard it instead of
    /// sending — the server sees `FrameDone` with no pixel content and
    /// must request a resync (the panel stays live; no degradation).
    DropDeltaAt(u64),
    /// Sleep this many milliseconds before sending the transport message
    /// of frame `.0` — a late (but within-deadline) delta must apply
    /// normally; a very late one trips the ordinary frame deadline.
    DelayDeltaAt(u64, u64),
}

/// All faults scripted for a single client, with query helpers the client
/// loop calls at each decision point.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClientFaults {
    faults: Vec<Fault>,
}

impl ClientFaults {
    /// True when nothing is scripted.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Frame at which this client drops its connection, if scripted.
    pub fn drop_at(&self) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            Fault::DropAtFrame(n) => Some(*n),
            _ => None,
        })
    }

    /// Scripted delay before every reply, in milliseconds.
    pub fn reply_delay_ms(&self) -> u64 {
        self.faults
            .iter()
            .find_map(|f| match f {
                Fault::DelayReplies(d) => Some(*d),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// Frame whose `FrameDone` is replaced by garbage bytes, if scripted.
    pub fn corrupt_at(&self) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            Fault::CorruptAtFrame(n) => Some(*n),
            _ => None,
        })
    }

    /// How many reconnect attempts the client must pretend fail.
    pub fn refused_reconnects(&self) -> u32 {
        self.faults
            .iter()
            .find_map(|f| match f {
                Fault::RefuseReconnect(k) => Some(*k),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// Scripted slow-loris delay in milliseconds per byte (0 = none).
    pub fn slow_loris_ms(&self) -> u64 {
        self.faults
            .iter()
            .find_map(|f| match f {
                Fault::SlowLoris(ms) => Some(*ms),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// Message (frame / request) mid-way through which the connection is
    /// cut, if scripted.
    pub fn mid_request_disconnect_at(&self) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            Fault::MidRequestDisconnect(n) => Some(*n),
            _ => None,
        })
    }

    /// Size of the scripted reconnect storm (0 = none).
    pub fn reconnect_storm(&self) -> u32 {
        self.faults
            .iter()
            .find_map(|f| match f {
                Fault::ReconnectStorm(k) => Some(*k),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// Size of the scripted quota-exhaustion storm (0 = none).
    pub fn quota_storm(&self) -> u32 {
        self.faults
            .iter()
            .find_map(|f| match f {
                Fault::QuotaStorm(k) => Some(*k),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// Frame whose delta/keyframe payload is corrupted in flight, if
    /// scripted.
    pub fn corrupt_delta_at(&self) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            Fault::CorruptDeltaAt(n) => Some(*n),
            _ => None,
        })
    }

    /// Frame whose transport message is encoded then discarded, if
    /// scripted.
    pub fn drop_delta_at(&self) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            Fault::DropDeltaAt(n) => Some(*n),
            _ => None,
        })
    }

    /// `(frame, delay_ms)` for a scripted late transport send, if any.
    pub fn delay_delta_at(&self) -> Option<(u64, u64)> {
        self.faults.iter().find_map(|f| match f {
            Fault::DelayDeltaAt(n, ms) => Some((*n, *ms)),
            _ => None,
        })
    }
}

/// A scripted failure scenario for a whole wall run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    per_client: BTreeMap<usize, ClientFaults>,
}

impl FaultPlan {
    /// The empty plan: every client behaves.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Scripts a fault for one client. Chainable.
    pub fn inject(mut self, client: usize, fault: Fault) -> FaultPlan {
        self.per_client.entry(client).or_default().faults.push(fault);
        self
    }

    /// The faults scripted for `client` (empty set when unscripted).
    pub fn client(&self, client: usize) -> ClientFaults {
        self.per_client.get(&client).cloned().unwrap_or_default()
    }

    /// True when no client has scripted faults.
    pub fn is_empty(&self) -> bool {
        self.per_client.values().all(ClientFaults::is_empty)
    }

    /// Clients with at least one scripted fault.
    pub fn faulty_clients(&self) -> Vec<usize> {
        self.per_client
            .iter()
            .filter(|(_, f)| !f.is_empty())
            .map(|(&c, _)| c)
            .collect()
    }

    /// A seeded random crash: picks one victim client and one crash frame
    /// deterministically from `seed` (SplitMix64), with `refusals` flaky
    /// reconnect attempts. Same seed → same scenario, always.
    pub fn seeded_crash(seed: u64, n_clients: usize, n_frames: u64, refusals: u32) -> FaultPlan {
        assert!(n_clients > 0 && n_frames > 0, "empty wall scenario");
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let victim = (next() % n_clients as u64) as usize;
        let frame = next() % n_frames;
        FaultPlan::none()
            .inject(victim, Fault::DropAtFrame(frame))
            .inject(victim, Fault::RefuseReconnect(refusals))
    }

    /// A seeded service-overload scenario: of `n_sessions` client sessions,
    /// `n_misbehaving` distinct victims are picked deterministically from
    /// `seed` (SplitMix64) and each is scripted one misbehaviour, cycling
    /// through quota storms, slow-loris sends, mid-request disconnects and
    /// reconnect storms. Same seed → same storm, always.
    pub fn seeded_service_storm(
        seed: u64,
        n_sessions: usize,
        n_misbehaving: usize,
        storm_requests: u32,
    ) -> FaultPlan {
        assert!(n_sessions > 0, "empty service scenario");
        let n_misbehaving = n_misbehaving.min(n_sessions);
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        // Fisher–Yates prefix over the session ids picks distinct victims.
        let mut ids: Vec<usize> = (0..n_sessions).collect();
        for i in 0..n_misbehaving {
            let j = i + (next() % (n_sessions - i) as u64) as usize;
            ids.swap(i, j);
        }
        let mut plan = FaultPlan::none();
        for (k, &victim) in ids[..n_misbehaving].iter().enumerate() {
            let fault = match k % 4 {
                0 => Fault::QuotaStorm(storm_requests.max(1)),
                1 => Fault::SlowLoris(20 + next() % 30),
                2 => Fault::MidRequestDisconnect(next() % 4),
                _ => Fault::ReconnectStorm(4 + (next() % 8) as u32),
            };
            plan = plan.inject(victim, fault);
        }
        plan
    }

    /// A seeded frame-delta fault storm: `n_misbehaving` distinct victim
    /// clients are drawn deterministically from `seed` (SplitMix64) and
    /// each is scripted one transport fault — corrupt, drop, or a small
    /// within-deadline delay — at a frame early enough that the keyframe
    /// resync can complete before the run ends. Same seed → same storm.
    pub fn seeded_delta_storm(
        seed: u64,
        n_clients: usize,
        n_frames: u64,
        n_misbehaving: usize,
    ) -> FaultPlan {
        assert!(n_clients > 0 && n_frames > 0, "empty delta storm scenario");
        let n_misbehaving = n_misbehaving.min(n_clients);
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        // distinct victims via a Fisher–Yates prefix, like the other storms
        let mut ids: Vec<usize> = (0..n_clients).collect();
        for i in 0..n_misbehaving {
            let j = i + (next() % (n_clients - i) as u64) as usize;
            ids.swap(i, j);
        }
        // leave at least two frames after the fault for resync + recovery
        let last_fault_frame = n_frames.saturating_sub(3).max(1);
        let mut plan = FaultPlan::none();
        for (k, &victim) in ids[..n_misbehaving].iter().enumerate() {
            let frame = 1 + next() % last_fault_frame;
            let fault = match k % 3 {
                0 => Fault::CorruptDeltaAt(frame),
                1 => Fault::DropDeltaAt(frame),
                _ => Fault::DelayDeltaAt(frame, 5 + next() % 20),
            };
            plan = plan.inject(victim, fault);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_find_scripted_faults() {
        let plan = FaultPlan::none()
            .inject(2, Fault::DropAtFrame(5))
            .inject(2, Fault::RefuseReconnect(3))
            .inject(0, Fault::DelayReplies(40))
            .inject(1, Fault::CorruptAtFrame(1));
        assert_eq!(plan.client(2).drop_at(), Some(5));
        assert_eq!(plan.client(2).refused_reconnects(), 3);
        assert_eq!(plan.client(0).reply_delay_ms(), 40);
        assert_eq!(plan.client(1).corrupt_at(), Some(1));
        // unscripted client: all-clear defaults
        let clean = plan.client(9);
        assert!(clean.is_empty());
        assert_eq!(clean.drop_at(), None);
        assert_eq!(clean.reply_delay_ms(), 0);
        assert_eq!(clean.corrupt_at(), None);
        assert_eq!(clean.refused_reconnects(), 0);
        assert_eq!(plan.faulty_clients(), vec![0, 1, 2]);
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn service_fault_queries_find_scripted_faults() {
        let plan = FaultPlan::none()
            .inject(0, Fault::SlowLoris(25))
            .inject(1, Fault::MidRequestDisconnect(3))
            .inject(2, Fault::ReconnectStorm(9))
            .inject(3, Fault::QuotaStorm(64));
        assert_eq!(plan.client(0).slow_loris_ms(), 25);
        assert_eq!(plan.client(1).mid_request_disconnect_at(), Some(3));
        assert_eq!(plan.client(2).reconnect_storm(), 9);
        assert_eq!(plan.client(3).quota_storm(), 64);
        // unscripted defaults
        let clean = plan.client(7);
        assert_eq!(clean.slow_loris_ms(), 0);
        assert_eq!(clean.mid_request_disconnect_at(), None);
        assert_eq!(clean.reconnect_storm(), 0);
        assert_eq!(clean.quota_storm(), 0);
    }

    #[test]
    fn seeded_service_storm_is_deterministic_with_distinct_victims() {
        let a = FaultPlan::seeded_service_storm(7, 16, 12, 32);
        let b = FaultPlan::seeded_service_storm(7, 16, 12, 32);
        assert_eq!(a, b);
        let victims = a.faulty_clients();
        assert_eq!(victims.len(), 12, "victims must be distinct: {victims:?}");
        assert!(victims.iter().all(|&v| v < 16));
        // every storm kind appears when enough victims are drawn
        let (mut storms, mut loris, mut cuts, mut herds) = (0, 0, 0, 0);
        for &v in &victims {
            let f = a.client(v);
            if f.quota_storm() > 0 {
                storms += 1;
            }
            if f.slow_loris_ms() > 0 {
                loris += 1;
            }
            if f.mid_request_disconnect_at().is_some() {
                cuts += 1;
            }
            if f.reconnect_storm() > 0 {
                herds += 1;
            }
        }
        assert!(storms > 0 && loris > 0 && cuts > 0 && herds > 0);
        // different seeds explore different victim sets
        let other = FaultPlan::seeded_service_storm(8, 16, 12, 32);
        assert_ne!(a, other);
        // misbehaving count is clamped to the session count
        let clamped = FaultPlan::seeded_service_storm(1, 3, 10, 4);
        assert_eq!(clamped.faulty_clients().len(), 3);
    }

    #[test]
    fn delta_fault_queries_find_scripted_faults() {
        let plan = FaultPlan::none()
            .inject(0, Fault::CorruptDeltaAt(2))
            .inject(1, Fault::DropDeltaAt(4))
            .inject(2, Fault::DelayDeltaAt(3, 15));
        assert_eq!(plan.client(0).corrupt_delta_at(), Some(2));
        assert_eq!(plan.client(1).drop_delta_at(), Some(4));
        assert_eq!(plan.client(2).delay_delta_at(), Some((3, 15)));
        let clean = plan.client(9);
        assert_eq!(clean.corrupt_delta_at(), None);
        assert_eq!(clean.drop_delta_at(), None);
        assert_eq!(clean.delay_delta_at(), None);
    }

    #[test]
    fn seeded_delta_storm_is_deterministic_with_room_to_recover() {
        let a = FaultPlan::seeded_delta_storm(11, 6, 10, 4);
        let b = FaultPlan::seeded_delta_storm(11, 6, 10, 4);
        assert_eq!(a, b);
        let victims = a.faulty_clients();
        assert_eq!(victims.len(), 4, "victims must be distinct: {victims:?}");
        assert!(victims.iter().all(|&v| v < 6));
        // every fault lands early enough that resync can complete
        for &v in &victims {
            let f = a.client(v);
            let frame = f
                .corrupt_delta_at()
                .or(f.drop_delta_at())
                .or(f.delay_delta_at().map(|(n, _)| n))
                .expect("victim has a delta fault");
            assert!((1..=7).contains(&frame), "fault frame {frame} leaves no recovery room");
        }
        // different seeds explore different storms
        assert_ne!(a, FaultPlan::seeded_delta_storm(12, 6, 10, 4));
        // misbehaving count clamps to the client count
        assert_eq!(FaultPlan::seeded_delta_storm(1, 2, 10, 5).faulty_clients().len(), 2);
    }

    #[test]
    fn seeded_crash_is_deterministic_and_in_range() {
        let a = FaultPlan::seeded_crash(42, 15, 8, 2);
        let b = FaultPlan::seeded_crash(42, 15, 8, 2);
        assert_eq!(a, b);
        let victims = a.faulty_clients();
        assert_eq!(victims.len(), 1);
        assert!(victims[0] < 15);
        let faults = a.client(victims[0]);
        assert!(faults.drop_at().unwrap() < 8);
        assert_eq!(faults.refused_reconnects(), 2);
        // different seeds explore different scenarios
        let scenarios: std::collections::BTreeSet<_> = (0..32)
            .map(|s| {
                let p = FaultPlan::seeded_crash(s, 15, 8, 0);
                let v = p.faulty_clients()[0];
                (v, p.client(v).drop_at().unwrap())
            })
            .collect();
        assert!(scenarios.len() > 5, "seeds barely vary: {scenarios:?}");
    }
}
