//! Deterministic fault injection for wall resilience testing.
//!
//! A [`FaultPlan`] scripts exactly what goes wrong, where, and when: client
//! code consults its [`ClientFaults`] at each protocol step and misbehaves
//! on cue. Because the plan is plain data (and the seeded constructor is a
//! pure function of its seed), every failure scenario is reproducible —
//! the degradation/recovery tests in [`crate::cluster`] are ordinary
//! deterministic unit tests, not flaky chaos runs.

use std::collections::BTreeMap;

/// One scripted misbehaviour of a display client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Drop the TCP connection upon receiving `Execute { frame }` —
    /// simulates a client crash mid-animation.
    DropAtFrame(u64),
    /// Sleep this many milliseconds before every reply — simulates a
    /// saturated node; large values trip the server's frame deadline.
    DelayReplies(u64),
    /// Answer `Execute { frame }` with garbage bytes instead of a valid
    /// `FrameDone` — simulates wire corruption / a buggy client build.
    CorruptAtFrame(u64),
    /// Pretend the first K reconnect attempts fail (flaky network between
    /// the crash and the recovery).
    RefuseReconnect(u32),
}

/// All faults scripted for a single client, with query helpers the client
/// loop calls at each decision point.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClientFaults {
    faults: Vec<Fault>,
}

impl ClientFaults {
    /// True when nothing is scripted.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Frame at which this client drops its connection, if scripted.
    pub fn drop_at(&self) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            Fault::DropAtFrame(n) => Some(*n),
            _ => None,
        })
    }

    /// Scripted delay before every reply, in milliseconds.
    pub fn reply_delay_ms(&self) -> u64 {
        self.faults
            .iter()
            .find_map(|f| match f {
                Fault::DelayReplies(d) => Some(*d),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// Frame whose `FrameDone` is replaced by garbage bytes, if scripted.
    pub fn corrupt_at(&self) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            Fault::CorruptAtFrame(n) => Some(*n),
            _ => None,
        })
    }

    /// How many reconnect attempts the client must pretend fail.
    pub fn refused_reconnects(&self) -> u32 {
        self.faults
            .iter()
            .find_map(|f| match f {
                Fault::RefuseReconnect(k) => Some(*k),
                _ => None,
            })
            .unwrap_or(0)
    }
}

/// A scripted failure scenario for a whole wall run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    per_client: BTreeMap<usize, ClientFaults>,
}

impl FaultPlan {
    /// The empty plan: every client behaves.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Scripts a fault for one client. Chainable.
    pub fn inject(mut self, client: usize, fault: Fault) -> FaultPlan {
        self.per_client.entry(client).or_default().faults.push(fault);
        self
    }

    /// The faults scripted for `client` (empty set when unscripted).
    pub fn client(&self, client: usize) -> ClientFaults {
        self.per_client.get(&client).cloned().unwrap_or_default()
    }

    /// True when no client has scripted faults.
    pub fn is_empty(&self) -> bool {
        self.per_client.values().all(ClientFaults::is_empty)
    }

    /// Clients with at least one scripted fault.
    pub fn faulty_clients(&self) -> Vec<usize> {
        self.per_client
            .iter()
            .filter(|(_, f)| !f.is_empty())
            .map(|(&c, _)| c)
            .collect()
    }

    /// A seeded random crash: picks one victim client and one crash frame
    /// deterministically from `seed` (SplitMix64), with `refusals` flaky
    /// reconnect attempts. Same seed → same scenario, always.
    pub fn seeded_crash(seed: u64, n_clients: usize, n_frames: u64, refusals: u32) -> FaultPlan {
        assert!(n_clients > 0 && n_frames > 0, "empty wall scenario");
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let victim = (next() % n_clients as u64) as usize;
        let frame = next() % n_frames;
        FaultPlan::none()
            .inject(victim, Fault::DropAtFrame(frame))
            .inject(victim, Fault::RefuseReconnect(refusals))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_find_scripted_faults() {
        let plan = FaultPlan::none()
            .inject(2, Fault::DropAtFrame(5))
            .inject(2, Fault::RefuseReconnect(3))
            .inject(0, Fault::DelayReplies(40))
            .inject(1, Fault::CorruptAtFrame(1));
        assert_eq!(plan.client(2).drop_at(), Some(5));
        assert_eq!(plan.client(2).refused_reconnects(), 3);
        assert_eq!(plan.client(0).reply_delay_ms(), 40);
        assert_eq!(plan.client(1).corrupt_at(), Some(1));
        // unscripted client: all-clear defaults
        let clean = plan.client(9);
        assert!(clean.is_empty());
        assert_eq!(clean.drop_at(), None);
        assert_eq!(clean.reply_delay_ms(), 0);
        assert_eq!(clean.corrupt_at(), None);
        assert_eq!(clean.refused_reconnects(), 0);
        assert_eq!(plan.faulty_clients(), vec![0, 1, 2]);
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn seeded_crash_is_deterministic_and_in_range() {
        let a = FaultPlan::seeded_crash(42, 15, 8, 2);
        let b = FaultPlan::seeded_crash(42, 15, 8, 2);
        assert_eq!(a, b);
        let victims = a.faulty_clients();
        assert_eq!(victims.len(), 1);
        assert!(victims[0] < 15);
        let faults = a.client(victims[0]);
        assert!(faults.drop_at().unwrap() < 8);
        assert_eq!(faults.refused_reconnects(), 2);
        // different seeds explore different scenarios
        let scenarios: std::collections::BTreeSet<_> = (0..32)
            .map(|s| {
                let p = FaultPlan::seeded_crash(s, 15, 8, 0);
                let v = p.faulty_clients()[0];
                (v, p.client(v).drop_at().unwrap())
            })
            .collect();
        assert!(scenarios.len() > 5, "seeds barely vary: {scenarios:?}");
    }
}
