//! The client (display) node: executes its 1-cell sub-workflow locally at
//! full resolution and responds to propagated interaction ops.
//!
//! [`ClientNode::run`] is the strict loop used by healthy walls; the
//! fault-injection harness drives [`ClientNode::run_with_faults`], which
//! misbehaves exactly as its [`ClientFaults`] script says (crash at a
//! frame, delay replies, corrupt a reply, refuse reconnects) and treats a
//! lost connection as a graceful end of service rather than an error —
//! in a degraded wall the server is entitled to drop us.

use crate::fault::ClientFaults;
use crate::frame_delta::{FrameStreamer, DEFAULT_KEYFRAME_EVERY, PREVIEW_DOWNSAMPLE};
use crate::protocol::{
    read_message_deadline, read_message_idle, write_message_deadline, Message, PROTO_DELTA,
};
use crate::workflow::wall_registry;
use crate::{Result, WallError};
use dv3d::cell::Dv3dCell;
use dv3d::plots::PlotSpec;
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};
use vistrails::executor::Executor;
use vistrails::pipeline::Pipeline;

/// One slice of an idle command wait. Waiting for the next command may
/// legitimately take forever, but never in one unbounded block.
const IDLE_SLICE: Duration = Duration::from_millis(250);

/// Deadline for any single message exchange once bytes are in flight.
const IO_DEADLINE: Duration = Duration::from_secs(5);

/// A display client, driven entirely by server messages.
#[derive(Debug)]
pub struct ClientNode {
    id: usize,
    addr: std::net::SocketAddr,
    stream: TcpStream,
    cell: Option<Dv3dCell>,
    size: (usize, usize),
    frames_rendered: u64,
    /// Protocol revision spoken at the handshake (1 = metadata only,
    /// [`PROTO_DELTA`] = frame-delta pixel transport).
    proto: u32,
    /// The delta encoder, created at `AssignWorkflow` for v2 clients.
    streamer: Option<FrameStreamer>,
    /// Set when a camera op arrives; the next frame leads with a low-res
    /// preview (progressive refinement during motion).
    in_motion: bool,
}

impl ClientNode {
    /// Connects with the original (v1) handshake: frame metadata only, no
    /// pixel transport. Kept for old deployments; new walls use
    /// [`ClientNode::connect_v2`].
    pub fn connect(addr: std::net::SocketAddr, id: usize) -> Result<ClientNode> {
        ClientNode::connect_proto(addr, id, 1)
    }

    /// Connects with the v2 handshake, opting into the dirty-tile
    /// frame-delta transport (keyframes, deltas, previews, resync).
    pub fn connect_v2(addr: std::net::SocketAddr, id: usize) -> Result<ClientNode> {
        ClientNode::connect_proto(addr, id, PROTO_DELTA)
    }

    fn connect_proto(addr: std::net::SocketAddr, id: usize, proto: u32) -> Result<ClientNode> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let hello = ClientNode::hello_message(id, proto);
        write_message_deadline(&mut stream, &hello, IO_DEADLINE, "Hello")?;
        Ok(ClientNode {
            id,
            addr,
            stream,
            cell: None,
            size: (64, 64),
            frames_rendered: 0,
            proto,
            streamer: None,
            in_motion: false,
        })
    }

    fn hello_message(id: usize, proto: u32) -> Message {
        if proto >= PROTO_DELTA {
            Message::HelloV2 { client_id: id, proto }
        } else {
            Message::Hello { client_id: id }
        }
    }

    /// Runs the strict message loop until `Shutdown`. Returns the number of
    /// frames rendered. Any protocol violation or connection loss is an
    /// error.
    pub fn run(mut self) -> Result<u64> {
        loop {
            match read_message_idle(&mut self.stream, IDLE_SLICE, IO_DEADLINE, "command")? {
                Message::AssignWorkflow { pipeline_json, cell_module, width, height } => {
                    self.size = (width, height);
                    let pipeline = Pipeline::from_json(&pipeline_json)?;
                    self.cell = Some(self.instantiate(&pipeline, cell_module)?);
                    self.reset_streamer();
                    write_message_deadline(
                        &mut self.stream,
                        &Message::Ready { client_id: self.id },
                        IO_DEADLINE,
                        "Ready",
                    )?;
                }
                Message::Op(op) => {
                    if matches!(op, dv3d::interaction::ConfigOp::Camera(_)) {
                        self.in_motion = true;
                    }
                    if let Some(cell) = &mut self.cell {
                        // ops the local plot type doesn't understand are fine
                        let _ = cell.configure(&op);
                    }
                }
                Message::Execute { frame } => {
                    let (done, rgba) = self.render_frame(frame)?;
                    self.send_transport(frame, &rgba, &ClientFaults::default())?;
                    write_message_deadline(&mut self.stream, &done, IO_DEADLINE, "FrameDone")?;
                }
                Message::ResyncRequest { .. } => {
                    if let Some(streamer) = &mut self.streamer {
                        streamer.force_keyframe();
                    }
                }
                Message::Heartbeat { seq } => {
                    write_message_deadline(
                        &mut self.stream,
                        &Message::HeartbeatAck { client_id: self.id, seq },
                        IO_DEADLINE,
                        "HeartbeatAck",
                    )?;
                }
                Message::Shutdown => return Ok(self.frames_rendered),
                other => {
                    return Err(WallError::Protocol(format!(
                        "client {} got unexpected {other:?}",
                        self.id
                    )))
                }
            }
        }
    }

    /// Runs the message loop under a fault script. Differences from
    /// [`ClientNode::run`]:
    ///
    /// * scripted faults fire on cue (drop / delay / corrupt / refuse);
    /// * a lost or dropped connection ends the loop gracefully with the
    ///   frames rendered so far (the server has degraded our panel and is
    ///   serving its mirror — that is the design, not an error);
    /// * after a scripted crash the client attempts the recovery
    ///   handshake (reconnect, `Hello`, wait for re-`AssignWorkflow`),
    ///   honouring any scripted reconnect refusals.
    pub fn run_with_faults(mut self, faults: ClientFaults) -> Result<u64> {
        let delay = Duration::from_millis(faults.reply_delay_ms());
        let mut refusals_left = faults.refused_reconnects();
        let mut dropped = false;
        let mut corrupted = false;
        let mut cut = false;
        // after a reconnect the next message must arrive under a deadline:
        // the server may have given this panel up, and a blocking read
        // would hang the client thread forever
        let mut expect_reassign = false;
        loop {
            let msg = if expect_reassign {
                match read_message_deadline(
                    &mut self.stream,
                    Duration::from_secs(2),
                    "re-AssignWorkflow",
                ) {
                    Ok(m) => m,
                    Err(_) => return Ok(self.frames_rendered),
                }
            } else {
                match read_message_idle(&mut self.stream, IDLE_SLICE, IO_DEADLINE, "command") {
                    Ok(m) => m,
                    Err(_) => return Ok(self.frames_rendered),
                }
            };
            expect_reassign = false;
            match msg {
                Message::AssignWorkflow { pipeline_json, cell_module, width, height } => {
                    self.size = (width, height);
                    let pipeline = Pipeline::from_json(&pipeline_json)?;
                    self.cell = Some(self.instantiate(&pipeline, cell_module)?);
                    self.reset_streamer();
                    std::thread::sleep(delay);
                    if write_message_deadline(
                        &mut self.stream,
                        &Message::Ready { client_id: self.id },
                        IO_DEADLINE,
                        "Ready",
                    )
                    .is_err()
                    {
                        return Ok(self.frames_rendered);
                    }
                }
                Message::Op(op) => {
                    if matches!(op, dv3d::interaction::ConfigOp::Camera(_)) {
                        self.in_motion = true;
                    }
                    if let Some(cell) = &mut self.cell {
                        let _ = cell.configure(&op);
                    }
                }
                Message::ResyncRequest { .. } => {
                    if let Some(streamer) = &mut self.streamer {
                        streamer.force_keyframe();
                    }
                }
                Message::Execute { frame } => {
                    if !dropped && faults.drop_at() == Some(frame) {
                        // scripted crash: vanish without answering (close
                        // the socket NOW so the server sees a dead peer,
                        // not a slow one, while we redial)
                        dropped = true;
                        self.stream.shutdown(std::net::Shutdown::Both).ok();
                        if !self.reconnect(&mut refusals_left) {
                            return Ok(self.frames_rendered);
                        }
                        self.cell = None;
                        expect_reassign = true;
                        continue;
                    }
                    if !cut && faults.mid_request_disconnect_at() == Some(frame) {
                        // scripted torn frame: send half the FrameDone
                        // bytes, then cut the connection — the server sees
                        // a truncated frame, not a clean close
                        cut = true;
                        let (done, _) = self.render_frame(frame)?;
                        let framed = crate::protocol::encode_frame(&done)?;
                        let half = &framed[..framed.len() / 2];
                        self.stream.write_all(half).ok();
                        self.stream.flush().ok();
                        self.stream.shutdown(std::net::Shutdown::Both).ok();
                        if !self.reconnect(&mut refusals_left) {
                            return Ok(self.frames_rendered);
                        }
                        self.cell = None;
                        expect_reassign = true;
                        continue;
                    }
                    if faults.slow_loris_ms() > 0 {
                        // slow-loris: the reply dribbles out one byte at a
                        // time, so the frame never completes within the
                        // server's deadline even though the socket is live
                        let (done, _) = self.render_frame(frame)?;
                        let framed = crate::protocol::encode_frame(&done)?;
                        let delay = Duration::from_millis(faults.slow_loris_ms());
                        for byte in framed {
                            if self.stream.write_all(&[byte]).is_err() {
                                return Ok(self.frames_rendered);
                            }
                            self.stream.flush().ok();
                            std::thread::sleep(delay);
                        }
                        continue;
                    }
                    if !corrupted && faults.corrupt_at() == Some(frame) {
                        // scripted corruption: a plausible length prefix
                        // followed by bytes that are not a Message
                        corrupted = true;
                        let garbage = *b"!!not-json-data!";
                        let mut framed = (garbage.len() as u32).to_le_bytes().to_vec();
                        framed.extend_from_slice(&garbage);
                        if self.stream.write_all(&framed).is_err() {
                            return Ok(self.frames_rendered);
                        }
                        continue;
                    }
                    let (done, rgba) = self.render_frame(frame)?;
                    std::thread::sleep(delay);
                    if self.send_transport(frame, &rgba, &faults).is_err() {
                        return Ok(self.frames_rendered);
                    }
                    if write_message_deadline(&mut self.stream, &done, IO_DEADLINE, "FrameDone")
                        .is_err()
                    {
                        return Ok(self.frames_rendered);
                    }
                }
                Message::Heartbeat { seq } => {
                    std::thread::sleep(delay);
                    if write_message_deadline(
                        &mut self.stream,
                        &Message::HeartbeatAck { client_id: self.id, seq },
                        IO_DEADLINE,
                        "HeartbeatAck",
                    )
                    .is_err()
                    {
                        return Ok(self.frames_rendered);
                    }
                }
                Message::Shutdown => return Ok(self.frames_rendered),
                other => {
                    return Err(WallError::Protocol(format!(
                        "client {} got unexpected {other:?}",
                        self.id
                    )))
                }
            }
        }
    }

    /// Renders the assigned cell; returns the `FrameDone` reply and the
    /// raw RGBA8 pixels (the delta transport's input).
    fn render_frame(&mut self, frame: u64) -> Result<(Message, Vec<u8>)> {
        let cell = self
            .cell
            .as_mut()
            .ok_or_else(|| WallError::Protocol("Execute before AssignWorkflow".into()))?;
        let start = Instant::now();
        let fb = cell.render(self.size.0, self.size.1)?;
        let render_ms = start.elapsed().as_secs_f64() * 1000.0;
        let coverage = fb.covered_pixels(rvtk::Color::BLACK) as f64
            / (self.size.0 * self.size.1) as f64;
        self.frames_rendered += 1;
        let rgba = fb.to_rgba8();
        Ok((Message::FrameDone { client_id: self.id, frame, coverage, render_ms }, rgba))
    }

    /// Fresh delta stream for the (re)assigned size — v2 clients only.
    /// A fresh streamer's first frame is always a keyframe, so a
    /// reconnected client and its server-side assembler re-sync naturally.
    fn reset_streamer(&mut self) {
        self.streamer = if self.proto >= PROTO_DELTA {
            Some(FrameStreamer::new(self.size.0, self.size.1, DEFAULT_KEYFRAME_EVERY))
        } else {
            None
        };
    }

    /// Ships this frame's pixel content ahead of `FrameDone`: an optional
    /// low-res preview when the camera moved since the last frame, then
    /// the keyframe/delta. No-op for v1 clients. Scripted transport faults
    /// (corrupt / drop / delay) are applied here, after encoding — the
    /// streamer's state always advances as if the send succeeded, which is
    /// exactly the failure the server's resync path must absorb.
    fn send_transport(&mut self, frame: u64, rgba: &[u8], faults: &ClientFaults) -> Result<()> {
        let Some(streamer) = &mut self.streamer else { return Ok(()) };
        if self.in_motion {
            self.in_motion = false;
            let (pw, ph) = (
                (self.size.0 / PREVIEW_DOWNSAMPLE).max(8),
                (self.size.1 / PREVIEW_DOWNSAMPLE).max(8),
            );
            if let Some(cell) = &mut self.cell {
                let low = cell.render(pw, ph)?;
                let preview =
                    streamer.encode_preview(self.id, frame, &low.to_rgba8(), pw, ph)?;
                write_message_deadline(&mut self.stream, &preview, IO_DEADLINE, "FramePreview")?;
            }
        }
        let (mut msg, _) = streamer.encode(self.id, frame, rgba)?;
        if let Some((f, ms)) = faults.delay_delta_at() {
            if f == frame {
                std::thread::sleep(Duration::from_millis(ms));
            }
        }
        if faults.drop_delta_at() == Some(frame) {
            // encoded, then discarded: the server gets FrameDone with no
            // pixels and must answer with a ResyncRequest
            return Ok(());
        }
        if faults.corrupt_delta_at() == Some(frame) {
            corrupt_transport(&mut msg);
        }
        write_message_deadline(&mut self.stream, &msg, IO_DEADLINE, "FrameDelta")
    }

    /// The client half of crash recovery: redial the server and say Hello,
    /// pretending the first `refusals_left` attempts fail (flaky network).
    /// Gives up (returns false) after a bounded number of attempts.
    fn reconnect(&mut self, refusals_left: &mut u32) -> bool {
        for attempt in 0u64..40 {
            std::thread::sleep(Duration::from_millis(5 * (attempt + 1).min(10)));
            if *refusals_left > 0 {
                *refusals_left -= 1;
                continue;
            }
            let Ok(mut s) = TcpStream::connect(self.addr) else { continue };
            s.set_nodelay(true).ok();
            let hello = ClientNode::hello_message(self.id, self.proto);
            if write_message_deadline(&mut s, &hello, IO_DEADLINE, "Hello").is_err() {
                continue;
            }
            self.stream = s;
            return true;
        }
        false
    }

    /// Executes the assigned sub-workflow up to the plot module and builds
    /// the live cell from the produced `PlotSpec`.
    fn instantiate(&self, pipeline: &Pipeline, cell_module: u64) -> Result<Dv3dCell> {
        // find the plot module feeding the cell's "plot" port
        let plot_conn = pipeline
            .inputs_of(cell_module)
            .into_iter()
            .find(|c| c.to_port == "plot")
            .ok_or_else(|| WallError::Protocol("cell has no plot input".into()))?
            .clone();
        let mut exec = Executor::new(wall_registry());
        let results = exec.execute_subset(pipeline, Some(plot_conn.from_module))?;
        let spec = results
            .output(plot_conn.from_module, &plot_conn.from_port)
            .and_then(|d| d.as_opaque::<PlotSpec>())
            .ok_or_else(|| WallError::Protocol("plot module produced no PlotSpec".into()))?;
        let name = pipeline.modules[&cell_module]
            .params
            .get("name")
            .and_then(vistrails::value::ParamValue::as_str)
            .unwrap_or("wall cell")
            .to_string();
        Dv3dCell::try_new(&name, (*spec).clone()).map_err(Into::into)
    }
}

/// Flips payload bits inside a transport message so it still parses as a
/// `Message` but fails its content hashes — the scripted
/// [`crate::fault::Fault::CorruptDeltaAt`] wire corruption.
fn corrupt_transport(msg: &mut Message) {
    match msg {
        Message::FrameDelta { tiles, frame_hash, .. } => {
            // flip a color byte of the first tile; an empty delta has no
            // payload to damage, so lie about the frame hash instead
            match tiles.first_mut().and_then(|t| t.data.get_mut(1)) {
                Some(b) => *b ^= 0xA5,
                None => *frame_hash ^= 0xDEAD_BEEF,
            }
        }
        Message::FrameKey { payload, frame_hash, .. } => {
            match payload.get_mut(1) {
                Some(b) => *b ^= 0xA5,
                None => *frame_hash ^= 0xDEAD_BEEF,
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, FaultPlan};
    use crate::protocol::{read_message, write_message};
    use crate::workflow::{build_wall_pipeline, split_per_client, WallWorkflowConfig};
    use std::net::TcpListener;

    /// Drives one client through the full protocol by hand.
    #[test]
    fn client_full_protocol_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        let client_thread = std::thread::spawn(move || {
            let client = ClientNode::connect(addr, 0).unwrap();
            client.run().unwrap()
        });

        let (mut stream, _) = listener.accept().unwrap();
        // hello
        let hello = read_message(&mut stream).unwrap();
        assert_eq!(hello, Message::Hello { client_id: 0 });
        // assign
        let cfg = WallWorkflowConfig { n_cells: 2, synth: (1, 2, 8, 16), cell_px: (48, 48) };
        let (p, chains) = build_wall_pipeline(&cfg).unwrap();
        let subs = split_per_client(&p, &chains).unwrap();
        write_message(
            &mut stream,
            &Message::AssignWorkflow {
                pipeline_json: subs[0].to_json().unwrap(),
                cell_module: chains[0].cell,
                width: 48,
                height: 48,
            },
        )
        .unwrap();
        assert_eq!(read_message(&mut stream).unwrap(), Message::Ready { client_id: 0 });
        // an op, a heartbeat, then two frames
        write_message(
            &mut stream,
            &Message::Op(dv3d::interaction::ConfigOp::NextColormap),
        )
        .unwrap();
        write_message(&mut stream, &Message::Heartbeat { seq: 5 }).unwrap();
        assert_eq!(
            read_message(&mut stream).unwrap(),
            Message::HeartbeatAck { client_id: 0, seq: 5 }
        );
        for frame in 0..2u64 {
            write_message(&mut stream, &Message::Execute { frame }).unwrap();
            match read_message(&mut stream).unwrap() {
                Message::FrameDone { client_id, frame: f, coverage, render_ms } => {
                    assert_eq!(client_id, 0);
                    assert_eq!(f, frame);
                    assert!(coverage > 0.0);
                    assert!(render_ms >= 0.0);
                }
                other => panic!("expected FrameDone, got {other:?}"),
            }
        }
        write_message(&mut stream, &Message::Shutdown).unwrap();
        assert_eq!(client_thread.join().unwrap(), 2);
    }

    #[test]
    fn execute_before_assign_is_an_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client_thread = std::thread::spawn(move || {
            let client = ClientNode::connect(addr, 1).unwrap();
            client.run()
        });
        let (mut stream, _) = listener.accept().unwrap();
        read_message(&mut stream).unwrap(); // hello
        write_message(&mut stream, &Message::Execute { frame: 0 }).unwrap();
        assert!(client_thread.join().unwrap().is_err());
    }

    #[test]
    fn faulted_client_drops_on_cue_and_redials() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let faults = FaultPlan::none()
            .inject(0, Fault::DropAtFrame(0))
            .inject(0, Fault::RefuseReconnect(1))
            .client(0);
        let client_thread = std::thread::spawn(move || {
            let client = ClientNode::connect(addr, 0).unwrap();
            client.run_with_faults(faults).unwrap()
        });
        let (mut stream, _) = listener.accept().unwrap();
        read_message(&mut stream).unwrap(); // hello
        // order Execute{0}: the scripted crash fires, the socket dies
        write_message(&mut stream, &Message::Execute { frame: 0 }).unwrap();
        assert!(read_message(&mut stream).is_err(), "client should have hung up");
        // the client redials (after one refused attempt) and says Hello again
        let (mut stream2, _) = listener.accept().unwrap();
        assert_eq!(
            read_message(&mut stream2).unwrap(),
            Message::Hello { client_id: 0 }
        );
        // we never re-assign; the client's deadline expires and it exits
        // gracefully having rendered nothing
        assert_eq!(client_thread.join().unwrap(), 0);
    }

    #[test]
    fn faulted_client_corrupts_on_cue_then_exits_gracefully() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let scripted = FaultPlan::none().inject(0, Fault::CorruptAtFrame(0)).client(0);
        let client_thread = std::thread::spawn(move || {
            let client = ClientNode::connect(addr, 0).unwrap();
            client.run_with_faults(scripted).unwrap()
        });
        let (mut stream, _) = listener.accept().unwrap();
        read_message(&mut stream).unwrap(); // hello
        write_message(&mut stream, &Message::Execute { frame: 0 }).unwrap();
        // the reply is garbage, not a Message
        let err = read_message(&mut stream).unwrap_err();
        assert!(matches!(err, WallError::Protocol(_)), "{err}");
        // server hangs up on the corrupt client; client exits gracefully
        drop(stream);
        assert_eq!(client_thread.join().unwrap(), 0);
    }
}
