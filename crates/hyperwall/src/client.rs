//! The client (display) node: executes its 1-cell sub-workflow locally at
//! full resolution and responds to propagated interaction ops.

use crate::protocol::{read_message, write_message, Message};
use crate::workflow::wall_registry;
use crate::{Result, WallError};
use dv3d::cell::Dv3dCell;
use dv3d::plots::PlotSpec;
use std::net::TcpStream;
use std::time::Instant;
use vistrails::executor::Executor;
use vistrails::pipeline::Pipeline;

/// A display client, driven entirely by server messages.
pub struct ClientNode {
    id: usize,
    stream: TcpStream,
    cell: Option<Dv3dCell>,
    size: (usize, usize),
    frames_rendered: u64,
}

impl ClientNode {
    /// Connects to the server and identifies itself.
    pub fn connect(addr: std::net::SocketAddr, id: usize) -> Result<ClientNode> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        write_message(&mut stream, &Message::Hello { client_id: id })?;
        Ok(ClientNode { id, stream, cell: None, size: (64, 64), frames_rendered: 0 })
    }

    /// Runs the message loop until `Shutdown`. Returns the number of frames
    /// rendered.
    pub fn run(mut self) -> Result<u64> {
        loop {
            match read_message(&mut self.stream)? {
                Message::AssignWorkflow { pipeline_json, cell_module, width, height } => {
                    self.size = (width, height);
                    let pipeline = Pipeline::from_json(&pipeline_json)?;
                    self.cell = Some(self.instantiate(&pipeline, cell_module)?);
                    write_message(&mut self.stream, &Message::Ready { client_id: self.id })?;
                }
                Message::Op(op) => {
                    if let Some(cell) = &mut self.cell {
                        // ops the local plot type doesn't understand are fine
                        let _ = cell.configure(&op);
                    }
                }
                Message::Execute { frame } => {
                    let cell = self.cell.as_mut().ok_or_else(|| {
                        WallError::Protocol("Execute before AssignWorkflow".into())
                    })?;
                    let start = Instant::now();
                    let fb = cell.render(self.size.0, self.size.1)?;
                    let render_ms = start.elapsed().as_secs_f64() * 1000.0;
                    let coverage = fb.covered_pixels(rvtk::Color::BLACK) as f64
                        / (self.size.0 * self.size.1) as f64;
                    self.frames_rendered += 1;
                    write_message(
                        &mut self.stream,
                        &Message::FrameDone { client_id: self.id, frame, coverage, render_ms },
                    )?;
                }
                Message::Shutdown => return Ok(self.frames_rendered),
                other => {
                    return Err(WallError::Protocol(format!(
                        "client {} got unexpected {other:?}",
                        self.id
                    )))
                }
            }
        }
    }

    /// Executes the assigned sub-workflow up to the plot module and builds
    /// the live cell from the produced `PlotSpec`.
    fn instantiate(&self, pipeline: &Pipeline, cell_module: u64) -> Result<Dv3dCell> {
        // find the plot module feeding the cell's "plot" port
        let plot_conn = pipeline
            .inputs_of(cell_module)
            .into_iter()
            .find(|c| c.to_port == "plot")
            .ok_or_else(|| WallError::Protocol("cell has no plot input".into()))?
            .clone();
        let mut exec = Executor::new(wall_registry());
        let results = exec.execute_subset(pipeline, Some(plot_conn.from_module))?;
        let spec = results
            .output(plot_conn.from_module, &plot_conn.from_port)
            .and_then(|d| d.as_opaque::<PlotSpec>())
            .ok_or_else(|| WallError::Protocol("plot module produced no PlotSpec".into()))?;
        let name = pipeline.modules[&cell_module]
            .params
            .get("name")
            .and_then(vistrails::value::ParamValue::as_str)
            .unwrap_or("wall cell")
            .to_string();
        Dv3dCell::try_new(&name, (*spec).clone()).map_err(Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::{build_wall_pipeline, split_per_client, WallWorkflowConfig};
    use std::net::TcpListener;

    /// Drives one client through the full protocol by hand.
    #[test]
    fn client_full_protocol_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        let client_thread = std::thread::spawn(move || {
            let client = ClientNode::connect(addr, 0).unwrap();
            client.run().unwrap()
        });

        let (mut stream, _) = listener.accept().unwrap();
        // hello
        let hello = read_message(&mut stream).unwrap();
        assert_eq!(hello, Message::Hello { client_id: 0 });
        // assign
        let cfg = WallWorkflowConfig { n_cells: 2, synth: (1, 2, 8, 16), cell_px: (48, 48) };
        let (p, chains) = build_wall_pipeline(&cfg).unwrap();
        let subs = split_per_client(&p, &chains).unwrap();
        write_message(
            &mut stream,
            &Message::AssignWorkflow {
                pipeline_json: subs[0].to_json().unwrap(),
                cell_module: chains[0].cell,
                width: 48,
                height: 48,
            },
        )
        .unwrap();
        assert_eq!(read_message(&mut stream).unwrap(), Message::Ready { client_id: 0 });
        // an op, then two frames
        write_message(
            &mut stream,
            &Message::Op(dv3d::interaction::ConfigOp::NextColormap),
        )
        .unwrap();
        for frame in 0..2u64 {
            write_message(&mut stream, &Message::Execute { frame }).unwrap();
            match read_message(&mut stream).unwrap() {
                Message::FrameDone { client_id, frame: f, coverage, render_ms } => {
                    assert_eq!(client_id, 0);
                    assert_eq!(f, frame);
                    assert!(coverage > 0.0);
                    assert!(render_ms >= 0.0);
                }
                other => panic!("expected FrameDone, got {other:?}"),
            }
        }
        write_message(&mut stream, &Message::Shutdown).unwrap();
        assert_eq!(client_thread.join().unwrap(), 2);
    }

    #[test]
    fn execute_before_assign_is_an_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client_thread = std::thread::spawn(move || {
            let client = ClientNode::connect(addr, 1).unwrap();
            client.run()
        });
        let (mut stream, _) = listener.accept().unwrap();
        read_message(&mut stream).unwrap(); // hello
        write_message(&mut stream, &Message::Execute { frame: 0 }).unwrap();
        assert!(client_thread.join().unwrap().is_err());
    }
}
