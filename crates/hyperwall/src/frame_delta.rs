//! Dirty-tile frame-delta transport: the pixel side of the wall protocol.
//!
//! Protocol v2 clients ship their rendered panels to the server as
//! RGBA8 pixel streams: a periodic **keyframe** carrying the whole frame,
//! and between keyframes a **delta** carrying only the tiles whose content
//! changed since the previous frame (the same 32×32 tiling the rvtk
//! rasterizer bins by — [`rvtk::render::TileGrid`] is shared). Payloads are
//! losslessly RLE-compressed, every tile carries an FNV-1a content hash,
//! and every message carries a whole-frame hash, so a corrupted or dropped
//! message is *detected and rejected atomically* — the receiving
//! [`FrameAssembler`] never commits a torn frame. Rejection feeds the
//! resync path: the server answers with a `ResyncRequest` and the client's
//! [`FrameStreamer`] promotes its next frame to a keyframe.
//!
//! Epoch/sequence discipline: every keyframe starts a new *epoch* and
//! resets the *sequence*; deltas are only valid against the epoch they
//! were encoded in and in strict sequence order. A delta from a stale
//! epoch (e.g. one that raced a resync) is rejected without touching the
//! assembled frame — "zero stale-epoch tiles" is enforced here, not by
//! the transport's good behaviour.
//!
//! During camera motion a client can additionally send a low-resolution
//! [`crate::protocol::Message::FramePreview`] ahead of the full-resolution
//! delta — the wall-scale version of the low-res-mirror trick the server
//! already uses for degraded panels: photons early, fidelity a moment
//! later.

use rvtk::render::TileGrid;
use serde::{Deserialize, Serialize};

/// How many frames a [`FrameStreamer`] sends between periodic keyframes
/// when the caller does not override the cadence (0 disables periodic
/// keyframes entirely; the first frame and forced resyncs still produce
/// them).
pub const DEFAULT_KEYFRAME_EVERY: u64 = 16;

/// Downsample factor for motion previews (each axis).
pub const PREVIEW_DOWNSAMPLE: usize = 4;

// FNV-1a, the same content-hash the rvtk tile cache uses.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A payload-level codec failure (truncated run, length mismatch). Carried
/// as the `source()` of [`DeltaError::Codec`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The RLE stream ended mid-run.
    Truncated { at: usize },
    /// A run of length zero (never produced by the encoder).
    ZeroRun { at: usize },
    /// Decoded length disagrees with the geometry it claims to cover.
    LengthMismatch { expected: usize, got: usize },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { at } => write!(f, "RLE stream truncated at byte {at}"),
            CodecError::ZeroRun { at } => write!(f, "zero-length RLE run at byte {at}"),
            CodecError::LengthMismatch { expected, got } => {
                write!(f, "decoded {got} bytes, geometry needs {expected}")
            }
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        None // leaf error: the byte offsets in the variants are the cause
    }
}

/// Why a frame message was rejected. Rejection is always all-or-nothing:
/// the assembled frame is untouched whenever one of these is returned.
#[derive(Debug)]
#[non_exhaustive]
pub enum DeltaError {
    /// The RLE payload would not decode.
    Codec(CodecError),
    /// The message's geometry disagrees with the assembler's.
    WrongSize { expected: (usize, usize), got: (usize, usize) },
    /// A delta from an epoch other than the current keyframe lineage.
    StaleEpoch { current: u64, got: u64 },
    /// A delta arrived out of sequence (a message was lost or duplicated).
    SeqGap { expected: u64, got: u64 },
    /// A delta arrived before any keyframe established a base frame.
    NotSynced,
    /// A tile coordinate outside the frame's tile grid.
    TileOutOfRange { tx: usize, ty: usize },
    /// A tile payload failed its content hash — wire corruption.
    TileHashMismatch { tx: usize, ty: usize },
    /// The assembled frame failed the whole-frame hash — the delta was
    /// internally consistent but does not reproduce the sender's frame.
    FrameHashMismatch { expected: u64, got: u64 },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::Codec(e) => write!(f, "payload codec: {e}"),
            DeltaError::WrongSize { expected, got } => {
                write!(f, "frame geometry {got:?}, assembler expects {expected:?}")
            }
            DeltaError::StaleEpoch { current, got } => {
                write!(f, "delta from epoch {got}, current epoch {current}")
            }
            DeltaError::SeqGap { expected, got } => {
                write!(f, "delta seq {got}, expected {expected}")
            }
            DeltaError::NotSynced => write!(f, "delta before any keyframe"),
            DeltaError::TileOutOfRange { tx, ty } => {
                write!(f, "tile ({tx},{ty}) outside the frame grid")
            }
            DeltaError::TileHashMismatch { tx, ty } => {
                write!(f, "tile ({tx},{ty}) failed its content hash")
            }
            DeltaError::FrameHashMismatch { expected, got } => {
                write!(f, "assembled frame hash {got:#x}, sender claims {expected:#x}")
            }
        }
    }
}

impl std::error::Error for DeltaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeltaError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for DeltaError {
    fn from(e: CodecError) -> DeltaError {
        DeltaError::Codec(e)
    }
}

/// One dirty tile on the wire: grid coordinates, an FNV-1a hash of the
/// *decoded* tile bytes, and the RLE-compressed RGBA8 payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireTile {
    /// Tile column in the frame's tile grid.
    pub tx: usize,
    /// Tile row in the frame's tile grid.
    pub ty: usize,
    /// FNV-1a over the decoded (raw RGBA8) tile bytes.
    pub hash: u64,
    /// RLE-compressed RGBA8, row-major within the tile rect.
    pub data: Vec<u8>,
}

// ---- lossless RLE over RGBA8 pixels ----
//
// Runs of identical 4-byte pixels become `[count, r, g, b, a]` (count in
// 1..=255). Constant regions — background, cleared tiles — compress ~200x;
// the worst case (no two equal neighbours) expands by 5/4. Lossless by
// construction: decode(encode(x)) == x for every pixel stream.

/// RLE-encodes a raw RGBA8 pixel stream.
pub fn rle_encode(rgba: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(rgba.len() / 4 + 8);
    let mut current: Option<[u8; 4]> = None;
    let mut count: u8 = 0;
    for chunk in rgba.chunks_exact(4) {
        let Ok(px) = <[u8; 4]>::try_from(chunk) else { continue };
        match current {
            Some(c) if c == px && count < u8::MAX => count += 1,
            Some(c) => {
                out.push(count);
                out.extend_from_slice(&c);
                current = Some(px);
                count = 1;
            }
            None => {
                current = Some(px);
                count = 1;
            }
        }
    }
    if let Some(c) = current {
        out.push(count);
        out.extend_from_slice(&c);
    }
    out
}

/// Decodes an RLE stream, validating against the byte length the claimed
/// geometry requires. Never panics on attacker-shaped input; never
/// allocates beyond `expected_len`.
pub fn rle_decode(data: &[u8], expected_len: usize) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::with_capacity(expected_len);
    let mut consumed = 0usize;
    for chunk in data.chunks(5) {
        let Ok(run) = <[u8; 5]>::try_from(chunk) else {
            return Err(CodecError::Truncated { at: consumed });
        };
        let [count, r, g, b, a] = run;
        if count == 0 {
            return Err(CodecError::ZeroRun { at: consumed });
        }
        if out.len() + usize::from(count) * 4 > expected_len {
            return Err(CodecError::LengthMismatch {
                expected: expected_len,
                got: out.len() + usize::from(count) * 4,
            });
        }
        for _ in 0..count {
            out.extend_from_slice(&[r, g, b, a]);
        }
        consumed += 5;
    }
    if out.len() != expected_len {
        return Err(CodecError::LengthMismatch { expected: expected_len, got: out.len() });
    }
    Ok(out)
}

/// Copies one tile rect out of a full row-major RGBA8 frame.
fn tile_bytes(rgba: &[u8], width: usize, rect: &rvtk::render::TileRect) -> Vec<u8> {
    let mut out = Vec::with_capacity(rect.w * rect.h * 4);
    for row in 0..rect.h {
        let start = ((rect.y0 + row) * width + rect.x0) * 4;
        if let Some(s) = rgba.get(start..start + rect.w * 4) {
            out.extend_from_slice(s);
        }
    }
    out
}

/// True when the tile rect differs between two frames (row-slice compare,
/// no allocation).
fn tile_differs(a: &[u8], b: &[u8], width: usize, rect: &rvtk::render::TileRect) -> bool {
    for row in 0..rect.h {
        let start = ((rect.y0 + row) * width + rect.x0) * 4;
        let span = start..start + rect.w * 4;
        if a.get(span.clone()) != b.get(span) {
            return true;
        }
    }
    false
}

/// Writes decoded tile bytes back into a full frame buffer.
fn write_tile(buf: &mut [u8], width: usize, rect: &rvtk::render::TileRect, data: &[u8]) {
    for (row, src) in data.chunks_exact(rect.w * 4).enumerate() {
        let start = ((rect.y0 + row) * width + rect.x0) * 4;
        if let Some(dst) = buf.get_mut(start..start + rect.w * 4) {
            dst.copy_from_slice(src);
        }
    }
}

/// What one encoded frame turned out to be.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodedKind {
    /// A full-frame keyframe (new epoch).
    Key,
    /// A dirty-tile delta with this many tiles.
    Delta { tiles: usize },
}

/// The sender half: tracks the previous frame, decides keyframe vs delta,
/// and stamps epoch/sequence numbers.
#[derive(Debug, Clone)]
pub struct FrameStreamer {
    width: usize,
    height: usize,
    grid: TileGrid,
    prev: Option<Vec<u8>>,
    epoch: u64,
    seq: u64,
    since_key: u64,
    keyframe_every: u64,
    force_key: bool,
}

impl FrameStreamer {
    /// A streamer for `width`×`height` frames, sending a keyframe every
    /// `keyframe_every` frames (0 = only the first frame and forced
    /// resyncs).
    pub fn new(width: usize, height: usize, keyframe_every: u64) -> FrameStreamer {
        FrameStreamer {
            width,
            height,
            grid: TileGrid::with_default_tile(width, height),
            prev: None,
            epoch: 0,
            seq: 0,
            since_key: 0,
            keyframe_every,
            force_key: false,
        }
    }

    /// Promote the next encoded frame to a keyframe — the client-side half
    /// of resync: called when the server reports a rejected or missing
    /// delta (`ResyncRequest`).
    pub fn force_keyframe(&mut self) {
        self.force_key = true;
    }

    /// Epoch of the current keyframe lineage (0 before the first frame).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Encodes one rendered frame into the fields of a `FrameKey` or
    /// `FrameDelta` message (the caller wraps them with its client id /
    /// frame number). Errors only on a caller bug (wrong buffer size).
    pub fn encode(
        &mut self,
        client_id: usize,
        frame: u64,
        rgba: &[u8],
    ) -> Result<(crate::protocol::Message, EncodedKind), DeltaError> {
        let expected = self.width * self.height * 4;
        if rgba.len() != expected {
            return Err(DeltaError::WrongSize {
                expected: (self.width, self.height),
                got: (rgba.len() / 4, 1),
            });
        }
        let key_due = self.prev.is_none()
            || self.force_key
            || (self.keyframe_every > 0 && self.since_key + 1 >= self.keyframe_every);
        if key_due {
            self.force_key = false;
            self.epoch += 1;
            self.seq = 0;
            self.since_key = 0;
            let msg = crate::protocol::Message::FrameKey {
                client_id,
                frame,
                epoch: self.epoch,
                seq: 0,
                width: self.width,
                height: self.height,
                payload: rle_encode(rgba),
                frame_hash: fnv1a(rgba),
            };
            self.prev = Some(rgba.to_vec());
            return Ok((msg, EncodedKind::Key));
        }
        // delta: walk the tile grid, ship only the rects whose bytes moved
        self.seq += 1;
        self.since_key += 1;
        let mut tiles = Vec::new();
        if let Some(prev) = &self.prev {
            for idx in 0..self.grid.len() {
                let rect = self.grid.rect(idx);
                if !tile_differs(prev, rgba, self.width, &rect) {
                    continue;
                }
                let raw = tile_bytes(rgba, self.width, &rect);
                tiles.push(WireTile {
                    tx: rect.x0 / self.grid.tile(),
                    ty: rect.y0 / self.grid.tile(),
                    hash: fnv1a(&raw),
                    data: rle_encode(&raw),
                });
            }
        }
        let n = tiles.len();
        let msg = crate::protocol::Message::FrameDelta {
            client_id,
            frame,
            epoch: self.epoch,
            seq: self.seq,
            tiles,
            frame_hash: fnv1a(rgba),
        };
        self.prev = Some(rgba.to_vec());
        Ok((msg, EncodedKind::Delta { tiles: n }))
    }

    /// Encodes a low-resolution preview frame (progressive refinement
    /// during camera motion). Previews ride outside the epoch/seq
    /// discipline: they are advisory photons, not state transitions.
    pub fn encode_preview(
        &self,
        client_id: usize,
        frame: u64,
        rgba: &[u8],
        width: usize,
        height: usize,
    ) -> Result<crate::protocol::Message, DeltaError> {
        if rgba.len() != width * height * 4 {
            return Err(DeltaError::WrongSize {
                expected: (width, height),
                got: (rgba.len() / 4, 1),
            });
        }
        Ok(crate::protocol::Message::FramePreview {
            client_id,
            frame,
            epoch: self.epoch,
            width,
            height,
            payload: rle_encode(rgba),
            hash: fnv1a(rgba),
        })
    }
}

/// What a successfully applied message was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applied {
    /// A keyframe replaced the whole frame (new epoch).
    Key,
    /// A delta patched this many tiles.
    Delta { tiles: usize },
    /// A low-res preview was stored (frame content unchanged).
    Preview,
}

/// The receiver half: validates and applies keyframes/deltas with
/// all-or-nothing semantics. The committed frame is only ever replaced by
/// a fully-validated next frame — a rejected message leaves it untouched,
/// so the wall can keep showing the last good frame while resync runs.
#[derive(Debug, Clone)]
pub struct FrameAssembler {
    width: usize,
    height: usize,
    grid: TileGrid,
    buf: Vec<u8>,
    epoch: u64,
    next_seq: u64,
    synced: bool,
    last_hash: u64,
    preview: Option<(usize, usize, Vec<u8>)>,
    keys_applied: u64,
    deltas_applied: u64,
}

impl FrameAssembler {
    /// An assembler for `width`×`height` frames; unsynced until the first
    /// keyframe lands.
    pub fn new(width: usize, height: usize) -> FrameAssembler {
        FrameAssembler {
            width,
            height,
            grid: TileGrid::with_default_tile(width, height),
            buf: vec![0u8; width * height * 4],
            epoch: 0,
            next_seq: 0,
            synced: false,
            last_hash: 0,
            preview: None,
            keys_applied: 0,
            deltas_applied: 0,
        }
    }

    /// True once a keyframe has established a valid base and every
    /// subsequent delta validated.
    pub fn is_synced(&self) -> bool {
        self.synced
    }

    /// The last committed frame, raw RGBA8, if synced.
    pub fn frame(&self) -> Option<&[u8]> {
        if self.synced {
            Some(&self.buf)
        } else {
            None
        }
    }

    /// The latest low-res preview, `(width, height, rgba)`, if any.
    pub fn preview(&self) -> Option<(usize, usize, &[u8])> {
        self.preview.as_ref().map(|(w, h, d)| (*w, *h, d.as_slice()))
    }

    /// Epoch of the committed frame (0 before the first keyframe).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Keyframes committed so far.
    pub fn keys_applied(&self) -> u64 {
        self.keys_applied
    }

    /// Deltas committed so far.
    pub fn deltas_applied(&self) -> u64 {
        self.deltas_applied
    }

    /// Recomputes the committed frame's hash — true when the stored pixels
    /// still match what the sender claimed. A torn or stale commit (which
    /// the all-or-nothing apply is designed to make impossible) would show
    /// up here.
    pub fn verify(&self) -> bool {
        self.synced && fnv1a(&self.buf) == self.last_hash
    }

    /// Validates and applies one transport message. On any error the
    /// committed frame is untouched; errors that imply the stream state is
    /// unrecoverable without a keyframe also clear `synced`, so later
    /// deltas are refused until resync completes.
    pub fn apply(&mut self, msg: &crate::protocol::Message) -> Result<Applied, DeltaError> {
        use crate::protocol::Message;
        match msg {
            Message::FrameKey { epoch, width, height, payload, frame_hash, .. } => {
                self.apply_key(*epoch, *width, *height, payload, *frame_hash)
            }
            Message::FrameDelta { epoch, seq, tiles, frame_hash, .. } => {
                self.apply_delta(*epoch, *seq, tiles, *frame_hash)
            }
            Message::FramePreview { width, height, payload, hash, .. } => {
                self.apply_preview(*width, *height, payload, *hash)
            }
            _ => Err(DeltaError::NotSynced),
        }
    }

    fn apply_key(
        &mut self,
        epoch: u64,
        width: usize,
        height: usize,
        payload: &[u8],
        frame_hash: u64,
    ) -> Result<Applied, DeltaError> {
        if (width, height) != (self.width, self.height) {
            return Err(DeltaError::WrongSize {
                expected: (self.width, self.height),
                got: (width, height),
            });
        }
        let decoded = rle_decode(payload, self.width * self.height * 4)?;
        let got = fnv1a(&decoded);
        if got != frame_hash {
            return Err(DeltaError::FrameHashMismatch { expected: frame_hash, got });
        }
        self.buf = decoded;
        self.epoch = epoch;
        self.next_seq = 1;
        self.synced = true;
        self.last_hash = frame_hash;
        self.keys_applied += 1;
        Ok(Applied::Key)
    }

    fn apply_delta(
        &mut self,
        epoch: u64,
        seq: u64,
        tiles: &[WireTile],
        frame_hash: u64,
    ) -> Result<Applied, DeltaError> {
        if !self.synced {
            return Err(DeltaError::NotSynced);
        }
        if epoch != self.epoch {
            // a stale-epoch delta (raced a resync) is rejected WITHOUT
            // clearing synced: the committed frame is still valid, and a
            // current-epoch delta may legitimately follow
            if epoch < self.epoch {
                return Err(DeltaError::StaleEpoch { current: self.epoch, got: epoch });
            }
            // an epoch from the future means we missed its keyframe
            self.synced = false;
            return Err(DeltaError::StaleEpoch { current: self.epoch, got: epoch });
        }
        if seq != self.next_seq {
            self.synced = false;
            return Err(DeltaError::SeqGap { expected: self.next_seq, got: seq });
        }
        // Stage 1: decode and validate EVERY tile before touching the
        // frame — this is what makes a torn frame structurally impossible.
        let mut staged: Vec<(rvtk::render::TileRect, Vec<u8>)> =
            Vec::with_capacity(tiles.len());
        for t in tiles {
            if t.tx >= self.grid.cols() || t.ty >= self.grid.rows() {
                self.synced = false;
                return Err(DeltaError::TileOutOfRange { tx: t.tx, ty: t.ty });
            }
            let rect = self.grid.rect(self.grid.index(t.tx, t.ty));
            let decoded = match rle_decode(&t.data, rect.w * rect.h * 4) {
                Ok(d) => d,
                Err(e) => {
                    self.synced = false;
                    return Err(e.into());
                }
            };
            if fnv1a(&decoded) != t.hash {
                self.synced = false;
                return Err(DeltaError::TileHashMismatch { tx: t.tx, ty: t.ty });
            }
            staged.push((rect, decoded));
        }
        // Stage 2: apply to a scratch copy and check the whole-frame hash;
        // only then commit.
        let mut next = self.buf.clone();
        for (rect, decoded) in &staged {
            write_tile(&mut next, self.width, rect, decoded);
        }
        let got = fnv1a(&next);
        if got != frame_hash {
            self.synced = false;
            return Err(DeltaError::FrameHashMismatch { expected: frame_hash, got });
        }
        self.buf = next;
        self.next_seq = seq + 1;
        self.last_hash = frame_hash;
        self.deltas_applied += 1;
        Ok(Applied::Delta { tiles: staged.len() })
    }

    fn apply_preview(
        &mut self,
        width: usize,
        height: usize,
        payload: &[u8],
        hash: u64,
    ) -> Result<Applied, DeltaError> {
        let decoded = rle_decode(payload, width * height * 4)?;
        let got = fnv1a(&decoded);
        if got != hash {
            return Err(DeltaError::FrameHashMismatch { expected: hash, got });
        }
        self.preview = Some((width, height, decoded));
        Ok(Applied::Preview)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Message;

    fn frame(w: usize, h: usize, seed: u64) -> Vec<u8> {
        // deterministic pseudo-content with large constant regions (like a
        // real render: background plus a moving blob)
        let mut out = vec![0u8; w * h * 4];
        for y in 0..h {
            for x in 0..w {
                let i = (y * w + x) * 4;
                let lit = ((x as u64 + seed * 3) % 17 < 4) && ((y as u64 + seed) % 13 < 5);
                let px: [u8; 4] =
                    if lit { [200, (seed % 255) as u8, 40, 255] } else { [10, 10, 30, 255] };
                out[i..i + 4].copy_from_slice(&px);
            }
        }
        out
    }

    #[test]
    fn rle_roundtrips_losslessly() {
        for seed in 0..8u64 {
            let raw = frame(37, 23, seed);
            let enc = rle_encode(&raw);
            assert!(enc.len() < raw.len(), "constant regions must compress");
            assert_eq!(rle_decode(&enc, raw.len()).unwrap(), raw);
        }
        // worst case: every pixel distinct still roundtrips
        let noisy: Vec<u8> = (0..64u32 * 4).map(|i| (i * 37 % 251) as u8).collect();
        let enc = rle_encode(&noisy);
        assert_eq!(rle_decode(&enc, noisy.len()).unwrap(), noisy);
        // empty stream
        assert_eq!(rle_decode(&rle_encode(&[]), 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn rle_decode_rejects_malformed_input() {
        let raw = frame(16, 16, 1);
        let enc = rle_encode(&raw);
        // truncated mid-run
        let err = rle_decode(&enc[..enc.len() - 2], raw.len()).unwrap_err();
        assert!(matches!(err, CodecError::Truncated { .. }), "{err}");
        // zero run count
        let mut zeroed = enc.clone();
        zeroed[0] = 0;
        assert!(matches!(rle_decode(&zeroed, raw.len()), Err(CodecError::ZeroRun { .. })));
        // wrong claimed geometry, both directions
        assert!(matches!(
            rle_decode(&enc, raw.len() - 4),
            Err(CodecError::LengthMismatch { .. })
        ));
        assert!(matches!(
            rle_decode(&enc, raw.len() + 4),
            Err(CodecError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn streamer_emits_key_then_deltas_and_assembler_tracks_exactly() {
        let (w, h) = (70, 50); // not tile-aligned on purpose
        let mut streamer = FrameStreamer::new(w, h, 0);
        let mut asm = FrameAssembler::new(w, h);
        assert!(!asm.is_synced());
        for i in 0..6u64 {
            let rgba = frame(w, h, i);
            let (msg, kind) = streamer.encode(3, i, &rgba).unwrap();
            if i == 0 {
                assert_eq!(kind, EncodedKind::Key);
            } else {
                assert!(matches!(kind, EncodedKind::Delta { .. }), "{kind:?}");
            }
            asm.apply(&msg).unwrap();
            assert_eq!(asm.frame().unwrap(), rgba.as_slice(), "frame {i} diverged");
            assert!(asm.verify());
        }
        assert_eq!(asm.keys_applied(), 1);
        assert_eq!(asm.deltas_applied(), 5);
    }

    #[test]
    fn identical_frames_produce_empty_deltas() {
        let (w, h) = (64, 64);
        let mut streamer = FrameStreamer::new(w, h, 0);
        let rgba = frame(w, h, 7);
        streamer.encode(0, 0, &rgba).unwrap();
        let (msg, kind) = streamer.encode(0, 1, &rgba).unwrap();
        assert_eq!(kind, EncodedKind::Delta { tiles: 0 });
        match msg {
            Message::FrameDelta { tiles, .. } => assert!(tiles.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn keyframe_cadence_and_force_keyframe() {
        let (w, h) = (40, 40);
        let mut streamer = FrameStreamer::new(w, h, 3);
        let kinds: Vec<EncodedKind> = (0..7u64)
            .map(|i| streamer.encode(0, i, &frame(w, h, i)).unwrap().1)
            .collect();
        // cadence 3: key, delta, delta, key, delta, delta, key
        let keys: Vec<bool> = kinds.iter().map(|k| *k == EncodedKind::Key).collect();
        assert_eq!(keys, [true, false, false, true, false, false, true], "{kinds:?}");
        // force_keyframe promotes the very next frame
        let mut s2 = FrameStreamer::new(w, h, 0);
        s2.encode(0, 0, &frame(w, h, 0)).unwrap();
        s2.force_keyframe();
        let (_, kind) = s2.encode(0, 1, &frame(w, h, 1)).unwrap();
        assert_eq!(kind, EncodedKind::Key);
        assert_eq!(s2.epoch(), 2, "each keyframe starts a new epoch");
    }

    #[test]
    fn corrupt_delta_is_rejected_without_partial_mutation() {
        let (w, h) = (70, 50);
        let mut streamer = FrameStreamer::new(w, h, 0);
        let mut asm = FrameAssembler::new(w, h);
        let f0 = frame(w, h, 0);
        let (key, _) = streamer.encode(0, 0, &f0).unwrap();
        asm.apply(&key).unwrap();
        let before = asm.frame().unwrap().to_vec();
        let (mut delta, kind) = streamer.encode(0, 1, &frame(w, h, 1)).unwrap();
        assert!(matches!(kind, EncodedKind::Delta { tiles } if tiles > 1));
        // corrupt one payload byte of the SECOND tile: the first tile
        // decodes fine, but nothing of it may reach the committed frame
        if let Message::FrameDelta { tiles, .. } = &mut delta {
            if let Some(b) = tiles.get_mut(1).and_then(|t| t.data.get_mut(2)) {
                *b ^= 0xA5;
            }
        }
        let err = asm.apply(&delta).unwrap_err();
        assert!(matches!(err, DeltaError::TileHashMismatch { .. }), "{err}");
        // all-or-nothing: the committed frame is byte-identical to before
        assert_eq!(asm.buf, before, "partial tile application leaked through");
        assert!(!asm.is_synced(), "a corrupt delta must force resync");
        // resync: a fresh keyframe restores sync
        streamer.force_keyframe();
        let f2 = frame(w, h, 2);
        let (key2, kind2) = streamer.encode(0, 2, &f2).unwrap();
        assert_eq!(kind2, EncodedKind::Key);
        asm.apply(&key2).unwrap();
        assert_eq!(asm.frame().unwrap(), f2.as_slice());
        assert!(asm.verify());
    }

    #[test]
    fn stale_epoch_and_seq_gaps_are_rejected() {
        let (w, h) = (64, 48);
        let mut streamer = FrameStreamer::new(w, h, 0);
        let mut asm = FrameAssembler::new(w, h);
        let (key, _) = streamer.encode(0, 0, &frame(w, h, 0)).unwrap();
        asm.apply(&key).unwrap();
        let (d1, _) = streamer.encode(0, 1, &frame(w, h, 1)).unwrap();
        let (d2, _) = streamer.encode(0, 2, &frame(w, h, 2)).unwrap();
        // seq gap: applying d2 before d1
        let err = asm.apply(&d2).unwrap_err();
        assert!(matches!(err, DeltaError::SeqGap { expected: 1, got: 2 }), "{err}");
        assert!(!asm.is_synced());
        // resync, then replay a delta from the OLD epoch: stale, rejected,
        // and the committed frame stays valid (synced is NOT cleared)
        streamer.force_keyframe();
        let f3 = frame(w, h, 3);
        let (key2, _) = streamer.encode(0, 3, &f3).unwrap();
        asm.apply(&key2).unwrap();
        let err = asm.apply(&d1).unwrap_err();
        assert!(matches!(err, DeltaError::StaleEpoch { .. }), "{err}");
        assert!(asm.is_synced(), "stale-epoch rejection must not unsync");
        assert_eq!(asm.frame().unwrap(), f3.as_slice());
    }

    #[test]
    fn delta_before_keyframe_is_refused() {
        let (w, h) = (32, 32);
        let mut streamer = FrameStreamer::new(w, h, 0);
        streamer.encode(0, 0, &frame(w, h, 0)).unwrap();
        let (d, _) = streamer.encode(0, 1, &frame(w, h, 1)).unwrap();
        let mut asm = FrameAssembler::new(w, h);
        assert!(matches!(asm.apply(&d), Err(DeltaError::NotSynced)));
        assert!(asm.frame().is_none());
    }

    #[test]
    fn preview_applies_without_touching_frame_state() {
        let (w, h) = (64, 48);
        let mut streamer = FrameStreamer::new(w, h, 0);
        let mut asm = FrameAssembler::new(w, h);
        let (key, _) = streamer.encode(0, 0, &frame(w, h, 0)).unwrap();
        asm.apply(&key).unwrap();
        let hash_before = asm.last_hash;
        let low = frame(16, 12, 5);
        let preview = streamer.encode_preview(0, 1, &low, 16, 12).unwrap();
        assert_eq!(asm.apply(&preview).unwrap(), Applied::Preview);
        let (pw, ph, data) = asm.preview().unwrap();
        assert_eq!((pw, ph), (16, 12));
        assert_eq!(data, low.as_slice());
        assert_eq!(asm.last_hash, hash_before, "previews are advisory only");
        // corrupt preview: rejected, old preview kept
        let mut bad = streamer.encode_preview(0, 2, &frame(16, 12, 6), 16, 12).unwrap();
        if let Message::FramePreview { payload, .. } = &mut bad {
            if let Some(b) = payload.get_mut(3) {
                *b ^= 0xFF;
            }
        }
        assert!(asm.apply(&bad).is_err());
        assert_eq!(asm.preview().unwrap().2, low.as_slice());
        assert!(asm.is_synced(), "a bad preview must not unsync the frame");
    }

    #[test]
    fn wrong_geometry_is_rejected() {
        let mut streamer = FrameStreamer::new(32, 32, 0);
        assert!(matches!(
            streamer.encode(0, 0, &[0u8; 16]),
            Err(DeltaError::WrongSize { .. })
        ));
        let mut asm = FrameAssembler::new(16, 16);
        let (key, _) =
            FrameStreamer::new(32, 32, 0).encode(0, 0, &frame(32, 32, 0)).unwrap();
        let err = asm.apply(&key).unwrap_err();
        assert!(matches!(err, DeltaError::WrongSize { .. }), "{err}");
    }

    #[test]
    fn error_chain_carries_codec_source() {
        use std::error::Error;
        let e: DeltaError = CodecError::Truncated { at: 3 }.into();
        assert!(e.source().is_some());
        assert!(e.source().unwrap().to_string().contains("truncated"));
        let plain = DeltaError::NotSynced;
        assert!(plain.source().is_none());
    }
}
