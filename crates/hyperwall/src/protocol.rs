//! The wire protocol between the server node and the display clients:
//! length-prefixed JSON messages over TCP.

use crate::{Result, WallError};
use dv3d::interaction::ConfigOp;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Messages exchanged between server and clients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Client → server: identify after connecting.
    Hello { client_id: usize },
    /// Server → client: the 1-cell sub-workflow to own.
    AssignWorkflow {
        /// Serialized `vistrails::Pipeline`.
        pipeline_json: String,
        /// The cell (sink) module id within the pipeline.
        cell_module: u64,
        /// Full-resolution render size for this display.
        width: usize,
        height: usize,
    },
    /// Client → server: the assigned workflow executed and the cell is live.
    Ready { client_id: usize },
    /// Server → client: apply an interaction op (propagated navigation /
    /// configuration from the server GUI).
    Op(ConfigOp),
    /// Server → client: render frame `frame` now.
    Execute { frame: u64 },
    /// Client → server: frame finished.
    FrameDone {
        client_id: usize,
        frame: u64,
        /// Fraction of non-background pixels (sanity signal).
        coverage: f64,
        /// Render wall time in milliseconds.
        render_ms: f64,
    },
    /// Server → client: shut down cleanly.
    Shutdown,
}

/// Writes one message (u32-LE length prefix + JSON body).
pub fn write_message(stream: &mut impl Write, msg: &Message) -> Result<()> {
    let body = serde_json::to_vec(msg).map_err(|e| WallError::Protocol(e.to_string()))?;
    stream.write_all(&(body.len() as u32).to_le_bytes())?;
    stream.write_all(&body)?;
    stream.flush()?;
    Ok(())
}

/// Reads one message; blocks until a full frame arrives.
pub fn read_message(stream: &mut impl Read) -> Result<Message> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > 256 << 20 {
        return Err(WallError::Protocol(format!("implausible message length {len}")));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    serde_json::from_slice(&body).map_err(|e| WallError::Protocol(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dv3d::interaction::{Axis3, CameraOp};

    #[test]
    fn roundtrip_through_a_buffer() {
        let msgs = vec![
            Message::Hello { client_id: 3 },
            Message::AssignWorkflow {
                pipeline_json: "{}".into(),
                cell_module: 12,
                width: 1920,
                height: 1080,
            },
            Message::Ready { client_id: 3 },
            Message::Op(ConfigOp::MoveSlice { axis: Axis3::Z, delta: 2 }),
            Message::Op(ConfigOp::Camera(CameraOp::Azimuth(15.0))),
            Message::Execute { frame: 7 },
            Message::FrameDone { client_id: 3, frame: 7, coverage: 0.42, render_ms: 12.5 },
            Message::Shutdown,
        ];
        let mut buf: Vec<u8> = Vec::new();
        for m in &msgs {
            write_message(&mut buf, m).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for expect in &msgs {
            let got = read_message(&mut cursor).unwrap();
            assert_eq!(&got, expect);
        }
    }

    #[test]
    fn truncated_stream_errors() {
        let mut buf: Vec<u8> = Vec::new();
        write_message(&mut buf, &Message::Shutdown).unwrap();
        buf.truncate(buf.len() - 1);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_message(&mut cursor).is_err());
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = (u32::MAX).to_le_bytes().to_vec();
        buf.extend_from_slice(b"xx");
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(read_message(&mut cursor), Err(WallError::Protocol(_))));
    }

    #[test]
    fn works_over_real_tcp() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let msg = read_message(&mut stream).unwrap();
            write_message(&mut stream, &msg).unwrap(); // echo
        });
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        let msg = Message::Execute { frame: 99 };
        write_message(&mut stream, &msg).unwrap();
        let back = read_message(&mut stream).unwrap();
        assert_eq!(back, msg);
        handle.join().unwrap();
    }
}
